"""Shared fixtures for the benchmark harness.

Each figure's dataset is computed once per session and shared; every
bench writes its regenerated table to ``benchmarks/results/`` so the
artifacts survive the run.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.overhead import measure_overheads
from repro.experiments.partition import measure_partition_variants
from repro.experiments.recompile import measure_recompile_times
from repro.programs.registry import all_programs

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def write_result(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / name).write_text(text + "\n")


@pytest.fixture(scope="session")
def programs():
    return all_programs()


@pytest.fixture(scope="session")
def overhead_summary(programs):
    """Fig. 8/9 dataset: all tools x all 13 programs."""
    return measure_overheads(programs)


@pytest.fixture(scope="session")
def partition_summary(programs):
    """Fig. 10 dataset: 3 partition variants x all 13 programs."""
    return measure_partition_variants(programs)


@pytest.fixture(scope="session")
def recompile_summary(programs):
    """Fig. 11/12 dataset: per-fragment compile times, all variants."""
    return measure_recompile_times(programs)
