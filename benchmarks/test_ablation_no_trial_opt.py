"""Ablation: disable the trial-optimization survey.

DESIGN.md design decision 2: the partitioner's quality comes from the
requirement log.  Without it (bonds and copy-on-use unknown), Algorithm 1
degenerates to innate constraints only — i.e. Odin-MaxPartition — and the
generated code pays the lost-IPO price on exactly the programs that need
inlining.
"""

from conftest import write_result

from repro.core.partition import STRATEGY_MAX, STRATEGY_ODIN, partition
from repro.experiments.runners import (
    build_odin_engine,
    measure_baseline_cycles,
    replay_cycles,
)
from repro.fuzz.executor import PlainExecutor
from repro.programs.registry import get_program

PROGRAMS = ("harfbuzz", "json", "libjpeg")


def partition_without_survey(module):
    """Partition with an empty requirement log (the ablated configuration)."""
    return partition(module, STRATEGY_ODIN, ("main", "run_input"), requirements=[])


def test_ablation_no_trial_opt(benchmark):
    module = get_program("harfbuzz").compile()
    fragdef = benchmark(partition_without_survey, module)

    lines = ["Ablation — partitioning without the trial-optimization survey", ""]
    lines.append(f"{'program':>10} | {'odin ovh':>9} | {'ablated ovh':>11} | fragments odin/ablated")
    lines.append("-" * 62)
    for name in PROGRAMS:
        program = get_program(name)
        seeds = program.seeds()
        base = measure_baseline_cycles(program, seeds)

        engine = build_odin_engine(program)
        engine.initial_build()
        odin_cycles = replay_cycles(PlainExecutor(engine.executable), seeds)

        module = program.compile()
        ablated_def = partition_without_survey(module)
        from repro.core.engine import Odin

        # Construct over the cheap MAX strategy, then install the ablated
        # definition (avoids re-running the survey we are ablating).
        ablated = Odin(module, strategy=STRATEGY_MAX, preserve=("main", "run_input"))
        ablated.fragdef = ablated_def
        ablated.cache.clear()
        ablated.initial_build()
        ablated_cycles = replay_cycles(PlainExecutor(ablated.executable), seeds)

        odin_ovh = odin_cycles / base - 1
        ablated_ovh = ablated_cycles / base - 1
        lines.append(
            f"{name:>10} | {odin_ovh*100:>8.2f}% | {ablated_ovh*100:>10.2f}% |"
            f" {engine.num_fragments}/{ablated.num_fragments}"
        )
        # Without the survey the partition fractures like MaxPartition...
        assert ablated.num_fragments >= engine.num_fragments
        # ...and on IPO-heavy programs the code gets slower.
        if name in ("harfbuzz", "json"):
            assert ablated_ovh > odin_ovh + 0.05, name
        else:  # libjpeg barely cares (flat kernels)
            assert ablated_ovh < 0.10

    write_result("ablation_no_trial_opt.txt", "\n".join(lines))
