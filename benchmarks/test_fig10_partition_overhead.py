"""Figure 10 + Table 1: execution duration of partition-scheme variants.

Paper: Odin-OnePartition 1.12%, Odin 1.43%, Odin-MaxPartition 55.77%
average overhead on non-instrumented programs; harfbuzz is MaxPartition's
worst case (186.91%), libjpeg its best (0.95%).  The benchmark measures
one Odin partition run (trial optimization + Algorithm 1).
"""

from conftest import write_result

from repro.core.partition import STRATEGY_MAX, STRATEGY_ODIN, STRATEGY_ONE, partition
from repro.experiments.partition import format_fig10, format_table1
from repro.programs.registry import get_program


def test_fig10_partition_overhead(benchmark, partition_summary):
    # Benchmark the partitioning survey itself on a mid-sized program.
    module = get_program("libxml2").compile()
    benchmark(partition, module, STRATEGY_ODIN, ("main", "run_input"))

    report = format_table1() + "\n\n" + format_fig10(partition_summary)
    mean_one = partition_summary.mean_overhead(STRATEGY_ONE)
    mean_odin = partition_summary.mean_overhead(STRATEGY_ODIN)
    mean_max = partition_summary.mean_overhead(STRATEGY_MAX)
    report += (
        f"\n\nmean overheads (paper): one {mean_one*100:.2f}% (1.12%), "
        f"odin {mean_odin*100:.2f}% (1.43%), max {mean_max*100:.2f}% (55.77%)"
        f"\nmax worst: {partition_summary.worst_program(STRATEGY_MAX).program}"
        f" (paper: harfbuzz)"
        f"\nmax best:  {partition_summary.best_program(STRATEGY_MAX).program}"
        f" (paper: libjpeg)"
    )
    write_result("fig10_partition_overhead.txt", report)

    # Shape: One <= Odin << Max on average; Odin stays within a couple of
    # percent of OnePartition (paper gap: 0.31%).
    assert mean_one <= mean_odin + 0.02
    assert mean_max > mean_odin + 0.05
    assert abs(mean_odin - mean_one) < 0.03
    # Per-program spread: IPO-heavy programs suffer, flat kernels don't.
    rows = {r.program: r for r in partition_summary.rows}
    assert rows["libjpeg"].overhead(STRATEGY_MAX) < 0.05
    assert rows["harfbuzz"].overhead(STRATEGY_MAX) > 0.20
    assert rows["json"].overhead(STRATEGY_MAX) > 0.20
    # Fragment-count monotonicity everywhere.
    for row in partition_summary.rows:
        assert row.num_fragments[STRATEGY_ONE] == 1
        assert (
            row.num_fragments[STRATEGY_ONE]
            <= row.num_fragments[STRATEGY_ODIN]
            <= row.num_fragments[STRATEGY_MAX]
        )
