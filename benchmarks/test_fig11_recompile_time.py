"""Figure 11: average recompilation duration per code fragment.

Paper: normalized to recompiling the whole program, Odin's average
fragment costs ~2% (json worst at 3.63%, sqlite best at 0.09%), saving
97.91% of recompilation time; MaxPartition fragments are ~6.5x cheaper
again, per-fragment (2.03 ms vs 30.67 ms).

Our programs are orders of magnitude smaller than the real targets
(dozens of symbols instead of thousands), so the average-fragment ratios
land around 10-20% rather than 2% — the long tail of tiny fragments that
pulls the paper's average down barely exists here.  The orderings all
hold; see EXPERIMENTS.md.
"""

from conftest import write_result

from repro.core.partition import STRATEGY_MAX, STRATEGY_ODIN, STRATEGY_ONE
from repro.experiments.recompile import format_fig11
from repro.experiments.runners import build_odin_engine
from repro.programs.registry import get_program


def rebuild_one_fragment(engine, probe):
    engine.manager.mark_changed(probe)
    return engine.rebuild()


def test_fig11_recompile_time(benchmark, recompile_summary):
    # Benchmark a real single-fragment recompilation on x509.
    from repro.instrument.coverage import OdinCov

    engine = build_odin_engine(get_program("x509"))
    tool = OdinCov(engine)
    tool.add_all_block_probes()
    tool.build()
    probe = next(iter(tool.probes.values()))
    benchmark.pedantic(
        rebuild_one_fragment, args=(engine, probe), rounds=3, iterations=1
    )

    table = format_fig11(recompile_summary)
    savings = recompile_summary.mean_savings(STRATEGY_ODIN)
    table += (
        f"\n\nOdin mean recompilation savings vs whole-program: "
        f"{savings*100:.1f}%  (paper: 97.91%)"
    )
    write_result("fig11_recompile_time.txt", table)

    programs = recompile_summary.programs()
    for program in programs:
        one = recompile_summary.normalized_average(program, STRATEGY_ONE)
        odin = recompile_summary.normalized_average(program, STRATEGY_ODIN)
        maxp = recompile_summary.normalized_average(program, STRATEGY_MAX)
        assert abs(one - 1.0) < 1e-9
        assert odin < 0.5, f"{program}: Odin must save >50% per fragment"
        assert maxp <= odin + 1e-9, f"{program}: MaxPartition compiles faster"
    assert savings > 0.75, "average savings must be large"
    # Scaling claim (§5.3): the ratio improves as programs grow — sqlite
    # (largest) beats json (smallest).
    assert recompile_summary.normalized_average(
        "sqlite", STRATEGY_ODIN
    ) < recompile_summary.normalized_average("json", STRATEGY_ODIN)
