"""Figure 12: worst-case re-instrumentation duration (+ link cost).

Paper: median slowest-fragment recompile ~542 ms, only three programs
exceed 1 s; sqlite is the worst case (its giant sqlite3VdbeExec-style
function), taking ~2 s under Odin vs 0.69 s under MaxPartition; linking
averages ~49 ms because internalized fragments leave few symbols to
resolve.
"""

from conftest import write_result

from repro.core.partition import STRATEGY_MAX, STRATEGY_ODIN, STRATEGY_ONE
from repro.experiments.recompile import format_fig12
from repro.experiments.runners import build_odin_engine
from repro.linker.linker import link
from repro.programs.registry import get_program


def test_fig12_worst_case(benchmark, recompile_summary):
    # Benchmark the relink step (the dark bars of Fig. 12).
    engine = build_odin_engine(get_program("libxml2"))
    engine.initial_build()
    objects = [engine.cache[f.id] for f in engine.fragdef.fragments]
    benchmark(link, objects)

    table = format_fig12(recompile_summary)
    odin_rows = [
        recompile_summary.row(p, STRATEGY_ODIN)
        for p in recompile_summary.programs()
    ]
    worsts = sorted(r.worst_ms for r in odin_rows)
    median_worst = worsts[len(worsts) // 2]
    mean_link = sum(r.link_ms for r in odin_rows) / len(odin_rows)
    table += (
        f"\n\nmedian worst-case fragment: {median_worst:.0f} ms (paper: 542 ms)"
        f"\nmean link cost: {mean_link:.0f} ms (paper: 49 ms)"
    )
    write_result("fig12_worst_case.txt", table)

    by_program = {r.program: r for r in odin_rows}
    # sqlite's interpreter dominates everything else.
    sqlite_worst = by_program["sqlite"].worst_ms
    assert sqlite_worst == max(r.worst_ms for r in odin_rows)
    assert sqlite_worst > 2 * median_worst
    assert sqlite_worst > 1000, "the giant function costs > 1s to recompile"
    # Link cost is small relative to the worst compile and in the tens of ms.
    assert 10 <= mean_link <= 200
    assert mean_link < sqlite_worst / 5
    # MaxPartition's worst fragment is never worse than Odin's.
    for program in recompile_summary.programs():
        assert (
            recompile_summary.row(program, STRATEGY_MAX).worst_ms
            <= recompile_summary.row(program, STRATEGY_ODIN).worst_ms + 1e-9
        )
