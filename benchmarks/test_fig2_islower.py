"""Figure 2: the `islower` distortion case study.

Regenerates the before/after IR of the paper's running example and checks
the exact transformation: two signed comparisons plus branching fold to
one offset-add and one unsigned comparison.  The benchmark measures the
optimizing passes on the example.
"""

from conftest import write_result

from repro.ir.parser import parse_module
from repro.ir.printer import print_module
from repro.opt.dce import DeadCodeElimination
from repro.opt.instcombine import InstCombine
from repro.opt.pass_manager import OptContext
from repro.opt.simplifycfg import SimplifyCFG

ISLOWER = """
define i1 @islower(i8 %chr) {
test_lb:
  %cmp1 = icmp sge i8 %chr, 97
  br i1 %cmp1, label %test_ub, label %end
test_ub:
  %cmp2 = icmp sle i8 %chr, 122
  br label %end
end:
  %r = phi i1 [ false, %test_lb ], [ %cmp2, %test_ub ]
  ret i1 %r
}
"""


def optimize_islower():
    module = parse_module(ISLOWER)
    ctx = OptContext()
    for _ in range(3):
        SimplifyCFG().run(module, ctx)
        InstCombine().run(module, ctx)
    DeadCodeElimination().run(module, ctx)
    return module, ctx


def test_fig2_islower_fold(benchmark):
    module, ctx = benchmark(optimize_islower)

    before = print_module(parse_module(ISLOWER))
    after = print_module(module)
    report = (
        "Figure 2 — effect of optimization on islower\n\n"
        "--- before ---\n" + before + "\n--- after ---\n" + after
    )
    write_result("fig2_islower.txt", report)

    # Paper's exact outcome: one block, offset add, unsigned range compare.
    fn = module.get("islower")
    assert len(fn.blocks) == 1, "branches must disappear"
    assert "add i8 %chr, -97" in after
    assert "icmp ult" in after and ", 26" in after
    assert ctx.stats.get("instcombine.range_fold", 0) >= 1
    # Coverage feedback collapses from 3 classes to 1 (the §2.2 complaint).
    assert len(parse_module(ISLOWER).get("islower").blocks) == 3
