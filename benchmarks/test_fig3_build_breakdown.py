"""Figure 3: breakdown of compilation cost on libxml2.

Paper: autogen 10.83 s + configure 4.56 s (38%), frontend 6.22 s,
optimize+instrument 15.28 s, codegen 2.75 s, linker 60 ms (0.15%).
The shape assertions check the stage *fractions*; the benchmark measures
the breakdown computation (which includes a frontend run).
"""

from conftest import write_result

from repro.buildsim.buildcost import measure_build
from repro.programs.registry import get_program


def test_fig3_build_breakdown(benchmark):
    program = get_program("libxml2")
    breakdown = benchmark(measure_build, program.name, program.source)

    f = breakdown.fractions()
    lines = [
        "Figure 3 — breakdown of compilation cost (libxml2)",
        "",
        f"{'stage':>18} | {'ms':>10} | {'fraction':>9}",
        "-" * 45,
        f"{'autogen':>18} | {breakdown.autogen_ms:>10.1f} | {f['autogen']*100:>8.2f}%",
        f"{'configure':>18} | {breakdown.configure_ms:>10.1f} | {f['configure']*100:>8.2f}%",
        f"{'frontend':>18} | {breakdown.frontend_ms:>10.1f} | {f['frontend']*100:>8.2f}%",
        f"{'opt + instrument':>18} | {breakdown.opt_instrument_ms:>10.1f} | {f['opt_instrument']*100:>8.2f}%",
        f"{'codegen':>18} | {breakdown.codegen_ms:>10.1f} | {f['codegen']*100:>8.2f}%",
        f"{'linker':>18} | {breakdown.link_ms:>10.1f} | {f['link']*100:>8.2f}%",
        "-" * 45,
        f"{'total':>18} | {breakdown.total_ms:>10.1f} |",
        "",
        f"Odin-eliminable share (build system + frontend): "
        f"{breakdown.odin_savings()*100:.1f}%  (paper: ~45%)",
    ]
    write_result("fig3_build_breakdown.txt", "\n".join(lines))

    # Shape: build system is a major cost, linker is negligible, the
    # middle end dominates the compiler stages.
    assert 0.25 <= f["build_system"] <= 0.50
    assert f["link"] < 0.05  # paper: 0.15%; our whole builds are far smaller
    assert f["opt_instrument"] > f["codegen"]
    assert f["opt_instrument"] > f["frontend"]
    assert 0.35 <= breakdown.odin_savings() <= 0.60
