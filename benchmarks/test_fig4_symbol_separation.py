"""Figure 4: missed / incorrect optimization when symbols are separated.

Regenerates both §2.3 hazards:

* local: `printf -> puts` needs the format string's bytes — a fragment
  holding only `foo` misses the rewrite unless @str is copied in;
* interprocedural: dead-argument elimination must rewrite callee and
  caller in pairs — separated, the exported callee keeps its dead arg.

The benchmark measures the trial-optimization run that discovers these
requirements (the partitioner's survey, §3.2).
"""

from conftest import write_result

from repro.ir.clone import extract_module
from repro.ir.parser import parse_module
from repro.ir.printer import print_module
from repro.opt.dae import DeadArgumentElimination
from repro.opt.instcombine import InstCombine
from repro.opt.internalize import Internalize
from repro.opt.pass_manager import OptContext, REQ_BOND, REQ_COPY_ON_USE
from repro.opt.pipeline import trial_optimize

FIG4 = """
@str = internal const [7 x i8] c"hello\\0A\\00"

declare i32 @printf(ptr, ...)

define internal void @foo(i32 %unused) {
entry:
  %r = call i32 @printf(ptr @str)
  ret void
}

define i32 @main() {
entry:
  call void @foo(i32 1)
  ret i32 0
}
"""


def test_fig4_symbol_separation(benchmark):
    requirements = benchmark(trial_optimize, parse_module(FIG4))

    # The trial run must discover both of Figure 4's dependencies.
    assert any(
        r.kind == REQ_COPY_ON_USE and r.subject == "str" for r in requirements
    ), "printf->puts must log the copy-on-use requirement on @str"
    assert any(
        r.kind == REQ_BOND and r.subject == "foo" and r.peer == "main"
        for r in requirements
    ), "interprocedural optimization must bond foo with main"

    # Hazard 1 (missed optimization): extract foo WITHOUT the string.
    module = parse_module(FIG4)
    alone = extract_module(module, ["foo"])
    InstCombine().run(alone, OptContext())
    missed = "@puts" not in print_module(alone)

    # With copy-on-use cloning the rewrite succeeds.
    with_str = extract_module(parse_module(FIG4), ["foo"], copy_on_use=["str"])
    InstCombine().run(with_str, OptContext())
    rewritten = "@puts" in print_module(with_str)

    # Hazard 2 (incorrect optimization prevented): a separated, exported
    # foo must keep its ABI — DAE refuses.
    separated = extract_module(parse_module(FIG4), ["foo"], copy_on_use=["str"])
    separated.get("foo").linkage = "external"  # remedy from §2.3
    dae_changed = DeadArgumentElimination().run(separated, OptContext())

    # Together (one module, internalized), DAE proceeds.
    together = parse_module(FIG4)
    Internalize(preserve=("main",)).run(together, OptContext())
    dae_together = DeadArgumentElimination().run(together, OptContext())

    report = "\n".join(
        [
            "Figure 4 — symbol-separation hazards",
            "",
            f"requirements logged by trial optimization: {len(requirements)}",
            *(f"  {r.kind:12s} {r.subject} (peer {r.peer}, {r.pass_name})"
              for r in requirements),
            "",
            f"foo extracted alone:       printf->puts applied = {not missed}",
            f"foo + copy-on-use @str:    printf->puts applied = {rewritten}",
            f"foo separated (exported):  dead arg removed     = {dae_changed}",
            f"foo together w/ main:      dead arg removed     = {dae_together}",
        ]
    )
    write_result("fig4_symbol_separation.txt", report)

    assert missed, "separated fragment must miss the libcall rewrite"
    assert rewritten, "copy-on-use must restore the rewrite"
    assert not dae_changed, "exported callee must keep its ABI"
    assert dae_together, "co-located pair must allow DAE"
