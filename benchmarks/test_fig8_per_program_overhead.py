"""Figure 8: normalized execution duration per program, five tools.

Regenerates the full 13-program x 5-tool table.  The shape assertions
check the per-program tool ordering the paper reports; the benchmark
measures one seed-corpus replay on the OdinCov build (the fast path every
fuzzing execution takes).
"""

from conftest import write_result

from repro.experiments.overhead import format_fig8
from repro.experiments.runners import (
    ALL_TOOLS,
    TOOL_DRCOV,
    TOOL_LIBINST,
    TOOL_ODINCOV,
    TOOL_ODINCOV_NOPRUNE,
    TOOL_SANCOV,
    deploy_odincov,
    replay_cycles,
)
from repro.programs.registry import get_program


def test_fig8_per_program_overhead(benchmark, overhead_summary):
    # Benchmark the measured operation itself: one instrumented replay.
    program = get_program("x509")
    seeds = program.seeds()
    setup = deploy_odincov(program, prune=True, seeds=seeds)
    benchmark(replay_cycles, setup.executor, seeds)

    table = format_fig8(overhead_summary)
    tool_table = "\n".join(
        [
            "",
            "Tools (paper §5 table):",
            f"{'Tool':>16} | {'Framework':>10} | {'Type':>7} | Target",
            "-" * 55,
            f"{'OdinCov':>16} | {'Odin':>10} | {'Dynamic':>7} | Compiler",
            f"{'SanitizerCoverage':>16} | {'LLVM':>10} | {'Static':>7} | Compiler",
            f"{'DrCov':>16} | {'DynamoRIO':>10} | {'Dynamic':>7} | Binary",
            f"{'libInst':>16} | {'DynInst':>10} | {'Static':>7} | Binary",
        ]
    )
    write_result("fig8_per_program_overhead.txt", table + "\n" + tool_table)

    for row in overhead_summary.rows:
        odin = row.normalized(TOOL_ODINCOV)
        sancov = row.normalized(TOOL_SANCOV)
        noprune = row.normalized(TOOL_ODINCOV_NOPRUNE)
        drcov = row.normalized(TOOL_DRCOV)
        libinst = row.normalized(TOOL_LIBINST)
        # Per-program orderings from the paper:
        assert odin < sancov, f"{row.program}: OdinCov must beat SanCov"
        assert odin < noprune, f"{row.program}: pruning must help"
        assert sancov < noprune, f"{row.program}: late instr is cheaper"
        assert libinst > drcov, f"{row.program}: static rewriting is the slowest"
        assert libinst > 2.5, f"{row.program}: libInst slowdown is drastic"
        assert odin < 1.10, f"{row.program}: OdinCov overhead must be tiny"
