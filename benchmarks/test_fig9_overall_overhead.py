"""Figure 9 + §5.1 headline claims: pooled overheads of all tools.

Paper numbers: OdinCov median 3.48%, SanCov 15%, DrCov 63%, libInst
1,920%; OdinCov beats SanCov 3x and DrCov 17x; OdinCov-NoPrune is ~23%
slower than SanCov; pruning improves OdinCov over NoPrune by ~22%.

Our model reproduces the ordering and the coarse factors (OdinCov lands
at ~0% rather than 3.48% because the VM carries no residual bookkeeping
cost once a probe is gone — see EXPERIMENTS.md).
"""

from conftest import write_result

from repro.experiments.overhead import format_fig9
from repro.experiments.runners import (
    TOOL_DRCOV,
    TOOL_LIBINST,
    TOOL_ODINCOV,
    TOOL_ODINCOV_NOPRUNE,
    TOOL_SANCOV,
    geometric_mean,
)


def summarize(overhead_summary):
    return {
        tool: overhead_summary.median_overhead(tool)
        for tool in overhead_summary.tools
    }


def test_fig9_overall_overhead(benchmark, overhead_summary):
    medians = benchmark(summarize, overhead_summary)

    lines = [format_fig9(overhead_summary), ""]
    lines.append("§5.1 headline comparisons (paper in parentheses):")
    san_vs_odin = overhead_summary.mean_normalized(TOOL_SANCOV) - 1.0
    noprune = overhead_summary.mean_normalized(TOOL_ODINCOV_NOPRUNE)
    sancov = overhead_summary.mean_normalized(TOOL_SANCOV)
    odincov = overhead_summary.mean_normalized(TOOL_ODINCOV)
    lines.append(
        f"  NoPrune / SanCov duration: {noprune/sancov:5.2f}x   (paper: ~1.23x)"
    )
    lines.append(
        f"  NoPrune / OdinCov duration: {noprune/odincov:5.2f}x  (paper: ~1.22x gain from pruning)"
    )
    lines.append(
        f"  medians: OdinCov {medians[TOOL_ODINCOV]*100:.2f}% (3.48%), "
        f"SanCov {medians[TOOL_SANCOV]*100:.2f}% (15%), "
        f"DrCov {medians[TOOL_DRCOV]*100:.2f}% (63%), "
        f"libInst {medians[TOOL_LIBINST]*100:.0f}% (1,920%)"
    )
    write_result("fig9_overall_overhead.txt", "\n".join(lines))

    # Ordering of median overheads matches the paper exactly.
    assert (
        medians[TOOL_ODINCOV]
        < medians[TOOL_SANCOV]
        < medians[TOOL_ODINCOV_NOPRUNE]
    )
    assert medians[TOOL_SANCOV] < medians[TOOL_DRCOV] < medians[TOOL_LIBINST]
    # Bands: SanCov in the tens of percent, DrCov tens-to-hundred,
    # libInst in the thousands (x10+ slowdowns), OdinCov near zero.
    assert medians[TOOL_ODINCOV] < 0.05
    assert 0.08 <= medians[TOOL_SANCOV] <= 0.35
    assert 0.35 <= medians[TOOL_DRCOV] <= 1.2
    assert medians[TOOL_LIBINST] > 8.0
    # The 3x/17x-style gaps: SanCov and DrCov overheads are at least an
    # order of magnitude above OdinCov's.
    assert medians[TOOL_SANCOV] > 10 * max(medians[TOOL_ODINCOV], 0.005)
    assert medians[TOOL_DRCOV] > 2 * medians[TOOL_SANCOV]
