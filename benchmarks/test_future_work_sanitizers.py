"""§7 future work: UBSan with on-demand probe removal, online ASAP.

* UBSan: a false-positive-prone check would end the campaign on every
  well-formed input; Odin removes the triggered probe with one on-the-fly
  recompilation and fuzzing continues.
* ASan-lite: hot checks are pruned online from runtime profiles (ASAP
  without the separate profiling build), cutting sanitizer overhead.
"""

from conftest import write_result

from repro.core.engine import Odin
from repro.frontend.codegen import compile_source
from repro.instrument.asan import ASanTool
from repro.instrument.ubsan import UBSanTool
from repro.programs.registry import get_program

# A hash mixer whose *intentional* wraparound trips signed-overflow checks
# on ordinary inputs — the classic UBSan false positive.
UBSAN_TARGET = r"""
int run_input(const char *data, long size) {
    int h = 0x12345;
    long i;
    for (i = 0; i < size; i++) {
        h = h * 31 + ((int)data[i] & 255);   // overflows routinely, by design
    }
    return h;
}

int main(void) { return 0; }
"""


def deploy_ubsan():
    engine = Odin(compile_source(UBSAN_TARGET, "t"), preserve=("main", "run_input"))
    tool = UBSanTool(engine)
    tool.add_all_overflow_probes()
    tool.build()
    return tool


def run_one(tool, data: bytes):
    vm = tool.make_vm()
    addr = vm.alloc(len(data) + 1)
    vm.write_bytes(addr, data)
    return vm.run("run_input", (addr, len(data)), reset=False)


def test_future_work_sanitizers(benchmark):
    # --- UBSan: remove-on-trigger keeps the campaign alive -----------------
    tool = deploy_ubsan()
    data = bytes(range(64)) * 2  # long enough to overflow the mixer

    first = run_one(tool, data)
    assert first.trap == "ubsan", "the false positive must fire first"

    rebuild = benchmark.pedantic(
        tool.remove_fired_probe, rounds=1, iterations=1
    )
    assert rebuild is not None

    removals = 1
    result = run_one(tool, data)
    while result.trap == "ubsan" and removals < 20:
        tool.remove_fired_probe()
        removals += 1
        result = run_one(tool, data)
    assert result.trap is None, "campaign must continue after removals"

    # --- ASan-lite: online hot-check pruning --------------------------------
    program = get_program("lcms")
    engine = Odin(program.compile(), preserve=("main", "run_input"))
    asan = ASanTool(engine)
    num_checks = asan.add_all_access_probes()
    asan.build()

    seeds = program.seeds()[:4]
    for seed in seeds:
        assert run_one(asan, seed).trap is None
    before = sum(run_one(asan, s).cycles for s in seeds)
    report = asan.prune_hot_checks(hot_fraction=0.3)
    assert report is not None
    after = sum(run_one(asan, s).cycles for s in seeds)
    assert after < before, "removing hot checks must cut sanitizer cost"

    lines = [
        "§7 future work — sanitizers on demand",
        "",
        f"UBSan: probes removed until clean: {removals}",
        f"UBSan: final run trap = {result.trap}",
        "",
        f"ASan-lite: checks instrumented: {num_checks}",
        f"ASan-lite: replay cycles before hot-prune: {before}",
        f"ASan-lite: replay cycles after hot-prune:  {after}"
        f"  ({(1 - after/before)*100:.1f}% saved)",
    ]
    write_result("future_work_sanitizers.txt", "\n".join(lines))
