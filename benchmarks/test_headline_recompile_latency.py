"""§5.3 headline: "the recompilation only takes 82 ms on average".

Runs a pruning coverage campaign over every program (probes removed in
waves, one on-the-fly rebuild per wave) and averages the end-to-end
rebuild latency (compile + relink).  The benchmark measures one such
rebuild on a mid-sized program.

The tiered fast path gets its own headline below: the same probe-toggle
schedule replayed through the patch tier and through the full path, per
program, with the patch-tier median required to be at least 5x lower.
"""

from conftest import write_result

from repro.core.engine import Odin
from repro.experiments.recompile import measure_headline_recompile
from repro.experiments.runners import deploy_odincov
from repro.instrument.coverage import OdinCov
from repro.programs.registry import all_programs, get_program


def one_prune_rebuild():
    program = get_program("woff2")
    setup = deploy_odincov(program, prune=False)
    setup.tool.prune = True
    for seed in program.seeds()[:4]:
        setup.executor.execute(seed)
    return setup.executor.prune()


def test_headline_recompile_latency(benchmark):
    report = benchmark.pedantic(one_prune_rebuild, rounds=3, iterations=1)
    assert report.rebuild is not None

    result = measure_headline_recompile(all_programs())
    ordered = sorted(result.rebuild_ms)
    median_ms = ordered[len(ordered) // 2]
    lines = [
        "§5.3 headline — on-the-fly recompilation latency",
        "",
        f"recompilations: {result.count}",
        f"mean latency:   {result.mean_ms:.1f} ms   (paper: 82 ms)",
        f"median latency: {median_ms:.1f} ms",
        f"max latency:    {max(result.rebuild_ms):.1f} ms  (sqlite's giant fragment)",
        f"min latency:    {min(result.rebuild_ms):.1f} ms",
    ]
    write_result("headline_recompile_latency.txt", "\n".join(lines))

    assert result.count >= 13  # at least one rebuild per program
    # Latency stays in the low hundreds of ms — fast enough to repeat
    # frequently within a fuzzing campaign (the paper's point).  The mean
    # is dragged up by sqlite's enormous interpreter fragment.
    assert median_ms < 300
    assert result.mean_ms < 600
    assert result.mean_ms > 1


# -- tiered fast path ------------------------------------------------------------

TIER_PROGRAMS = ("json", "lcms", "libjpeg")
TOGGLE_STEPS = 12


def _toggle_schedule(engine, steps=TOGGLE_STEPS):
    """Deterministic toggle workload: one rebuild per step.

    A sliding window of three probes is disabled, then re-enabled on the
    next step — the enable/disable churn a fuzzer's roadblock handling
    produces, and exactly the shape the patch tier exists for.
    """
    pids = sorted(p.id for p in engine.manager)
    latencies = []
    for step in range(steps):
        probes = {p.id: p for p in engine.manager}
        window = [pids[(step * 3 + k) % len(pids)] for k in range(3)]
        for pid in window:
            probe = probes[pid]
            if probe.enabled:
                engine.manager.disable(probe)
            else:
                engine.manager.enable(probe)
        report = engine.rebuild_if_needed()
        latencies.append((report.tier, report.wall_ms))
    return latencies


def _median(values):
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


def _build_engine(name, enable_patching):
    engine = Odin(
        get_program(name).compile(),
        preserve=("main", "run_input"),
        enable_patching=enable_patching,
    )
    tool = OdinCov(engine)
    tool.add_all_block_probes()
    tool.build()
    return engine


def _histogram(values, width=40):
    """Tiny log-bucketed ASCII histogram of latencies in ms."""
    buckets = [0.1, 1.0, 10.0, 100.0, 1000.0, float("inf")]
    labels = ["<0.1ms", "<1ms", "<10ms", "<100ms", "<1s", ">=1s"]
    counts = [0] * len(buckets)
    for v in values:
        for i, bound in enumerate(buckets):
            if v < bound:
                counts[i] += 1
                break
    peak = max(counts) or 1
    return [
        f"    {label:>7} | {'#' * (count * width // peak):<{width}} {count}"
        for label, count in zip(labels, counts)
        if count
    ]


def test_tiered_recompile_latency(benchmark):
    """Patch-tier rebuilds are >=5x faster than the full path, per program."""
    # Real-time benchmark: one patch-tier toggle rebuild on json.
    bench_engine = _build_engine("json", enable_patching=True)
    probe = min((p for p in bench_engine.manager), key=lambda p: p.id)

    def one_toggle():
        if probe.enabled:
            bench_engine.manager.disable(probe)
        else:
            bench_engine.manager.enable(probe)
        return bench_engine.rebuild_if_needed()

    report = benchmark.pedantic(one_toggle, rounds=5, iterations=1)
    assert report.tier == "patch"

    lines = ["Tiered recompilation — toggle-schedule latency by tier", ""]
    for name in TIER_PROGRAMS:
        patched = _toggle_schedule(_build_engine(name, enable_patching=True))
        full = _toggle_schedule(_build_engine(name, enable_patching=False))
        assert all(tier == "patch" for tier, _ in patched)
        assert all(tier == "full" for tier, _ in full)
        patch_ms = [ms for _t, ms in patched]
        full_ms = [ms for _t, ms in full]
        patch_median = _median(patch_ms)
        full_median = _median(full_ms)
        speedup = full_median / patch_median
        lines += [
            f"{name}: {len(patch_ms)} toggle rebuilds per path",
            f"  patch median: {patch_median:8.3f} ms",
            f"  full  median: {full_median:8.3f} ms",
            f"  speedup:      {speedup:8.1f}x",
            "  patch tier:",
            *_histogram(patch_ms),
            "  full path:",
            *_histogram(full_ms),
            "",
        ]
        # The PR's headline claim: the patch tier is at least 5x faster
        # at the median than recompiling the affected fragments.
        assert patch_median * 5 <= full_median, (
            f"{name}: patch median {patch_median:.3f} ms not 5x below "
            f"full median {full_median:.3f} ms"
        )
    write_result("tiered_recompile_latency.txt", "\n".join(lines))
