"""§5.3 headline: "the recompilation only takes 82 ms on average".

Runs a pruning coverage campaign over every program (probes removed in
waves, one on-the-fly rebuild per wave) and averages the end-to-end
rebuild latency (compile + relink).  The benchmark measures one such
rebuild on a mid-sized program.
"""

from conftest import write_result

from repro.experiments.recompile import measure_headline_recompile
from repro.experiments.runners import deploy_odincov
from repro.programs.registry import all_programs, get_program


def one_prune_rebuild():
    program = get_program("woff2")
    setup = deploy_odincov(program, prune=False)
    setup.tool.prune = True
    for seed in program.seeds()[:4]:
        setup.executor.execute(seed)
    return setup.executor.prune()


def test_headline_recompile_latency(benchmark):
    report = benchmark.pedantic(one_prune_rebuild, rounds=3, iterations=1)
    assert report.rebuild is not None

    result = measure_headline_recompile(all_programs())
    ordered = sorted(result.rebuild_ms)
    median_ms = ordered[len(ordered) // 2]
    lines = [
        "§5.3 headline — on-the-fly recompilation latency",
        "",
        f"recompilations: {result.count}",
        f"mean latency:   {result.mean_ms:.1f} ms   (paper: 82 ms)",
        f"median latency: {median_ms:.1f} ms",
        f"max latency:    {max(result.rebuild_ms):.1f} ms  (sqlite's giant fragment)",
        f"min latency:    {min(result.rebuild_ms):.1f} ms",
    ]
    write_result("headline_recompile_latency.txt", "\n".join(lines))

    assert result.count >= 13  # at least one rebuild per program
    # Latency stays in the low hundreds of ms — fast enough to repeat
    # frequently within a fuzzing campaign (the paper's point).  The mean
    # is dragged up by sqlite's enormous interpreter fragment.
    assert median_ms < 300
    assert result.mean_ms < 600
    assert result.mean_ms > 1
