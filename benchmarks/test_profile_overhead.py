"""Budgeted profiling: convergence under budget with patch-tier toggles.

The acceptance claims for the profiling probe family, CaPI-style on top
of Odin's engine:

1. **Budget convergence** — on each benchmarked program the overhead
   controller steers the recent-window slowdown into the ±25% tolerance
   band around the 25% budget (or sits below it fully instrumented).
2. **Patch-tier actuation** — every de/re-instrumentation flip is
   serviced entirely by stage-1 probe patching: zero compile batches
   across all controller rebuilds.
3. **Cold-path retention** — symbols the workload never reaches keep
   their instrumentation; only measured-hot symbols are removed.
"""

from conftest import write_result

import pytest

from repro.profile import run_profile
from repro.programs.registry import get_program

PROGRAMS = ("json", "lcms", "libpng", "woff2")
BUDGET = 0.25
TOLERANCE = 0.25
EXECUTIONS = 300
WINDOW = 20
SEED = 5


@pytest.fixture(scope="session")
def profile_runs():
    return {
        name: run_profile(
            get_program(name),
            budget=BUDGET,
            executions=EXECUTIONS,
            seed=SEED,
            window=WINDOW,
        )
        for name in PROGRAMS
    }


def test_budget_convergence(benchmark, profile_runs):
    def summarize(runs):
        return {
            name: run.report.final_window_overhead
            for name, run in runs.items()
        }

    finals = benchmark(summarize, profile_runs)

    lines = [
        f"budget {BUDGET:+.2f} ±{TOLERANCE:.0%}, {EXECUTIONS} executions, "
        f"window {WINDOW}, seed {SEED}",
        f"{'program':>10} {'lifetime':>9} {'last-win':>9} {'probes':>9} "
        f"{'rebuilds':>8}  de-instrumented",
    ]
    ceiling = BUDGET * (1.0 + TOLERANCE)
    steered = 0
    for name, run in profile_runs.items():
        report = run.report
        assert report.converged, f"{name} did not converge"
        assert finals[name] <= ceiling + 1e-9, (
            f"{name} final window {finals[name]:+.3f} above band ceiling"
        )
        if report.deinstrumented:
            # The controller actually had to steer: the final window must
            # also clear the band floor.
            assert finals[name] >= BUDGET * (1.0 - TOLERANCE) - 1e-9
            steered += 1
        lines.append(
            f"{name:>10} {report.achieved_overhead:+9.3f} "
            f"{finals[name]:+9.3f} "
            f"{report.probes_enabled:>4}/{report.probes_total:<4} "
            f"{report.rebuilds:>8}  {', '.join(report.deinstrumented) or '-'}"
        )
    # The claim needs teeth: at least two programs must be expensive
    # enough at full instrumentation that the controller had to act.
    assert steered >= 2, f"only {steered} programs required steering"
    write_result("profile_overhead.txt", "\n".join(lines))


def test_toggle_rounds_never_compile(profile_runs):
    for name, run in profile_runs.items():
        report = run.report
        assert report.toggles_patch_only, (
            f"{name}: toggle rebuilds left the patch tier "
            f"(tiers: {report.rebuild_tiers})"
        )
        assert report.compile_batches == 0
        for rebuild in run.controller.rebuilds:
            assert all(
                tier in ("patch", "noop")
                for tier in rebuild.fragment_tiers.values()
            )
            # The probe family behind every patch is profiling's.
            for families in rebuild.fragment_families.values():
                assert families == ("prof",)


def test_cold_paths_stay_instrumented(profile_runs):
    for name, run in profile_runs.items():
        report = run.report
        called = {row["symbol"] for row in report.flat if row["calls"]}
        # Everything removed was measured hot; everything never reached
        # is still carrying its probes.
        assert set(report.deinstrumented) <= called, name
        for symbol in report.cold_instrumented:
            assert symbol not in called, name
        enabled = {
            probe.target_symbol()
            for probe in run.tool.probes.values()
            if probe.enabled
        }
        assert set(report.cold_instrumented) <= enabled, name


def test_profile_attribution_consistency(profile_runs):
    """Inclusive time nests: a symbol's exclusive cycles never exceed its
    inclusive cycles, and call counts match the recorded edges."""
    for name, run in profile_runs.items():
        stats = run.tool.runtime.stats
        for symbol, st in stats.items():
            assert 0 <= st.excl_cycles <= st.incl_cycles, (name, symbol)
        inbound = {}
        for (_, callee), count in run.tool.runtime.edges.items():
            inbound[callee] = inbound.get(callee, 0) + count
        for symbol, st in stats.items():
            assert inbound.get(symbol, 0) == st.calls, (name, symbol)
