"""Recompilation-service throughput: N clients x M probe flips.

The service batches and deduplicates concurrent probe-change requests,
compiles a batch's fragments on a worker pool, and answers repeat probe
states from a content-addressed code cache.  This bench drives a
synthetic multi-client workload and reports the three wins:

* **dedup ratio** — ops submitted / ops applied (overlapping requests
  collapse into one rebuild);
* **cache hit rate** — fragments served from the content cache instead
  of recompiling;
* **pool speedup** — simulated batch wall-clock (LPT makespan over the
  per-fragment cost model) of a multi-worker pool vs serial rebuilds.
"""

from __future__ import annotations

import threading
import time

from conftest import write_result

from repro.cluster import CompileCluster, TenantQuotaError, TenantSpec
from repro.instrument.coverage import OdinCov
from repro.programs.registry import get_program
from repro.service import RecompilationService
from repro.utils.rng import DeterministicRNG

PRESERVED = ("main", "run_input")
PROGRAM = "re2"
CLIENTS = 4
FLIPS = 6

CLUSTER_PROGRAM = "json"
CLUSTER_WINDOW = 16
HAMMER_ROUNDS = 20
TENANT_SPECS = (
    TenantSpec("heavy-a", weight=3.0, tier="interactive"),
    TenantSpec("bulk-a", weight=1.0, tier="bulk"),
    TenantSpec("heavy-b", weight=3.0, tier="interactive"),
    TenantSpec("bulk-b", weight=1.0, tier="bulk"),
)


def run_workload(workers: int, worker_mode: str) -> dict:
    """CLIENTS threads x FLIPS disable/enable rounds against one service."""
    program = get_program(PROGRAM)
    service = RecompilationService(workers=workers, worker_mode=worker_mode)
    engine = service.register_target(
        PROGRAM, program.compile(), preserve=PRESERVED
    )
    tool = OdinCov(engine)
    tool.add_all_block_probes()
    build = service.build(PROGRAM)
    probe_ids = sorted(tool.probes)

    def client_loop(index: int) -> None:
        client = service.client(PROGRAM, f"client-{index}")
        rng = DeterministicRNG(100 + index)
        for _ in range(FLIPS):
            picked = [
                probe_ids[rng.randint(0, len(probe_ids) - 1)] for _ in range(4)
            ]
            client.disable(*picked).result(60.0)
            client.enable(*picked).result(60.0)

    with service:
        threads = [
            threading.Thread(target=client_loop, args=(i,))
            for i in range(CLIENTS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    stats = service.stats()
    rebuild_wall_ms = sum(r.wall_ms for r in engine.history)
    rebuild_total_ms = sum(r.total_ms for r in engine.history)
    return {
        "initial_build_ms": build.total_ms,
        "initial_wall_ms": build.wall_ms,
        "requests": stats["counters"]["requests_total"],
        "batches": stats["counters"]["batches_total"],
        "dedup_ratio": stats["derived"]["dedup_ratio"],
        "cache_hit_rate": stats["derived"]["cache_hit_rate"],
        "fragments_patched": stats["counters"].get("fragments_patched", 0),
        "fragments_compiled": stats["derived"]["fragments_compiled"],
        "rebuild_wall_ms": rebuild_wall_ms,
        "rebuild_total_ms": rebuild_total_ms,
    }


def test_service_throughput(benchmark):
    serial = run_workload(workers=1, worker_mode="serial")
    pooled = benchmark.pedantic(
        run_workload, args=(4, "thread"), rounds=1, iterations=1
    )

    # The workload is deterministic, so both runs see the same requests.
    assert serial["requests"] == pooled["requests"] == CLIENTS * FLIPS * 2

    # Concurrent clients overlap: some batches carry more than one request.
    assert pooled["dedup_ratio"] >= 1.0
    assert pooled["batches"] <= pooled["requests"]

    # Re-visited probe states ride the fast path: patched in place (the
    # probe-flip tier) or served from the content cache — never a fresh
    # compile of an already-seen fragment state.
    assert serial["fragments_patched"] > 0 or serial["cache_hit_rate"] > 0
    assert pooled["fragments_patched"] > 0 or pooled["cache_hit_rate"] > 0

    # Pool speedup on the initial build (the one guaranteed-identical
    # multi-fragment batch): makespan over 4 workers beats the serial sum.
    assert pooled["initial_wall_ms"] < pooled["initial_build_ms"]
    speedup = serial["initial_build_ms"] / pooled["initial_wall_ms"]
    assert speedup > 1.5

    # And across the whole campaign the pooled wall-clock never loses.
    total_speedup = (
        (serial["initial_build_ms"] + serial["rebuild_total_ms"])
        / (pooled["initial_wall_ms"] + pooled["rebuild_wall_ms"])
    )
    assert total_speedup >= 1.0

    lines = [
        f"service throughput: {CLIENTS} clients x {FLIPS} flips on {PROGRAM}",
        "",
        f"{'':>22}  {'serial':>10}  {'4 workers':>10}",
        f"{'requests':>22}  {serial['requests']:>10}  {pooled['requests']:>10}",
        f"{'batches':>22}  {serial['batches']:>10}  {pooled['batches']:>10}",
        f"{'dedup ratio':>22}  {serial['dedup_ratio']:>10.2f}  "
        f"{pooled['dedup_ratio']:>10.2f}",
        f"{'cache hit rate':>22}  {serial['cache_hit_rate']:>9.1%}  "
        f"{pooled['cache_hit_rate']:>9.1%}",
        f"{'fragments patched':>22}  {serial['fragments_patched']:>10g}  "
        f"{pooled['fragments_patched']:>10g}",
        f"{'fragment compiles':>22}  {serial['fragments_compiled']:>10g}  "
        f"{pooled['fragments_compiled']:>10g}",
        f"{'initial build (ms)':>22}  {serial['initial_build_ms']:>10.1f}  "
        f"{pooled['initial_wall_ms']:>10.1f}",
        f"{'rebuild wall (ms)':>22}  {serial['rebuild_total_ms']:>10.1f}  "
        f"{pooled['rebuild_wall_ms']:>10.1f}",
        "",
        f"initial-build pool speedup: {speedup:.2f}x "
        f"(campaign: {total_speedup:.2f}x)",
    ]
    write_result("service_throughput.txt", "\n".join(lines))


def cluster_instrument(engine):
    tool = OdinCov(engine)
    tool.add_all_block_probes()
    return tool


def run_cluster_matrix() -> dict:
    """Cold / warm / shared-cache matrix on a 3-shard, 4-tenant cluster.

    * **cold** — first tenant registers + builds with an empty shared
      cache (every fragment is a compile);
    * **warm** — the same tenant flips probes back and forth, revisited
      probe states come out of the shared content cache;
    * **shared** — three more tenants register the *identical* program:
      their initial builds are served from the cache tier warmed by the
      first tenant, attributed as cross-tenant hits;
    * **hammer** — all four tenants submit round-robin past the
      admission window, so shed counts must follow quota weights
      (heavy 3.0 tenants inside allowance, bulk 1.0 tenants shed).
    """
    program = get_program(CLUSTER_PROGRAM)
    result = {}
    with CompileCluster(
        shards=3, quota_window=CLUSTER_WINDOW, reply_timeout_s=60.0
    ) as cluster:
        for spec in TENANT_SPECS:
            cluster.register_tenant(spec)
        cache = cluster.cache

        def phase(fn) -> dict:
            hits0, misses0 = cache.hits, cache.misses
            start = time.perf_counter()
            fn()
            return {
                "ms": (time.perf_counter() - start) * 1e3,
                "hits": cache.hits - hits0,
                "misses": cache.misses - misses0,
            }

        first = TENANT_SPECS[0].tenant_id
        result["cold"] = phase(lambda: cluster.register_target(
            first, CLUSTER_PROGRAM, program.compile(),
            instrument=cluster_instrument, preserve=PRESERVED,
        ))

        engine = cluster.engine(first, CLUSTER_PROGRAM)
        picked = sorted(p.id for p in engine.manager)[:4]
        client = cluster.client(first, CLUSTER_PROGRAM, "bench")
        warm_replies = []

        def warm():
            for _ in range(2):
                warm_replies.append(client.rebuild(client.disable(*picked)))
                warm_replies.append(client.rebuild(client.enable(*picked)))

        result["warm"] = phase(warm)
        # Probe flips ride the tiered fast path: fragments whose state
        # was seen before are patched or reused, not recompiled.
        result["warm"]["reused"] = sum(
            r.report.cache_reused + r.report.cache_hits + r.report.patched
            for r in warm_replies if r.report is not None
        )

        def shared():
            for spec in TENANT_SPECS[1:]:
                cluster.register_target(
                    spec.tenant_id, CLUSTER_PROGRAM, program.compile(),
                    instrument=cluster_instrument, preserve=PRESERVED,
                )

        result["shared"] = phase(shared)
        result["cross_tenant_hits"] = cluster.metrics.counter(
            "cross_tenant_cache_hits"
        )

        clients = {
            spec.tenant_id: cluster.client(
                spec.tenant_id, CLUSTER_PROGRAM, "hammer"
            )
            for spec in TENANT_SPECS
        }
        sheds = {spec.tenant_id: 0 for spec in TENANT_SPECS}
        replies = {spec.tenant_id: 0 for spec in TENANT_SPECS}
        # Warm-up turns the admission window over once so the earlier
        # phases' submits stop skewing the steady-state shed counts.
        warmup = CLUSTER_WINDOW // len(TENANT_SPECS)
        for round_index in range(warmup + HAMMER_ROUNDS):
            counted = round_index >= warmup
            for spec in TENANT_SPECS:
                try:
                    clients[spec.tenant_id].rebuild(())
                    if counted:
                        replies[spec.tenant_id] += 1
                except TenantQuotaError:
                    if counted:
                        sheds[spec.tenant_id] += 1
        result["sheds"] = sheds
        result["replies"] = replies
        result["allowances"] = {
            tid: stats["allowance"]
            for tid, stats in cluster.tenants.stats()["tenants"].items()
        }
    return result


def test_multi_tenant_cluster_matrix(benchmark):
    result = benchmark.pedantic(run_cluster_matrix, rounds=1, iterations=1)

    cold, warm, shared = result["cold"], result["warm"], result["shared"]

    # Cold start actually compiles; nothing was in the shared cache.
    assert cold["misses"] > 0

    # Revisited probe states never recompile the world: flips are
    # served by patching or reuse, and the warm wall-clock beats cold.
    assert warm["reused"] > 0
    assert warm["misses"] <= cold["misses"]

    # The acceptance bar: tenants 2..4 build the identical program and
    # are served from the cache tier another tenant warmed.
    assert result["cross_tenant_hits"] > 0
    assert shared["hits"] > 0
    assert shared["misses"] == 0

    # Quota weights hold under the hammer: heavy (3.0) tenants stay
    # inside their allowance, bulk (1.0) tenants shed, and every shed
    # count respects the weight ordering.
    sheds = result["sheds"]
    for spec in TENANT_SPECS:
        if spec.weight >= 3.0:
            assert sheds[spec.tenant_id] == 0, (spec.tenant_id, sheds)
        else:
            assert sheds[spec.tenant_id] > 0, (spec.tenant_id, sheds)
    assert result["allowances"]["heavy-a"] > result["allowances"]["bulk-a"]
    # Heavy tenants never lose a request; bulk tenants hammering past
    # quota without backing off stay throttled (that is the contract —
    # the shed error carries the retry hint they are ignoring here).
    for spec in TENANT_SPECS:
        if spec.weight >= 3.0:
            assert result["replies"][spec.tenant_id] == HAMMER_ROUNDS

    lines = [
        f"multi-tenant cluster matrix: 3 shards x {len(TENANT_SPECS)} "
        f"tenants on {CLUSTER_PROGRAM}",
        "",
        f"{'phase':>10}  {'wall (ms)':>10}  {'hits':>6}  {'misses':>6}",
    ]
    for name in ("cold", "warm", "shared"):
        row = result[name]
        lines.append(
            f"{name:>10}  {row['ms']:>10.1f}  {row['hits']:>6}  "
            f"{row['misses']:>6}"
        )
    lines += [
        "",
        f"warm reuse (patched + cached fragments): {warm['reused']}",
        f"cross-tenant cache hits: {result['cross_tenant_hits']}",
        "",
        f"{'tenant':>10}  {'weight':>6}  {'allow':>6}  {'replies':>8}  "
        f"{'shed':>6}",
    ]
    for spec in TENANT_SPECS:
        tid = spec.tenant_id
        lines.append(
            f"{tid:>10}  {spec.weight:>6.1f}  "
            f"{result['allowances'][tid]:>6}  {result['replies'][tid]:>8}  "
            f"{result['sheds'][tid]:>6}"
        )
    write_result("cluster_matrix.txt", "\n".join(lines))
