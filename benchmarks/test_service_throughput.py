"""Recompilation-service throughput: N clients x M probe flips.

The service batches and deduplicates concurrent probe-change requests,
compiles a batch's fragments on a worker pool, and answers repeat probe
states from a content-addressed code cache.  This bench drives a
synthetic multi-client workload and reports the three wins:

* **dedup ratio** — ops submitted / ops applied (overlapping requests
  collapse into one rebuild);
* **cache hit rate** — fragments served from the content cache instead
  of recompiling;
* **pool speedup** — simulated batch wall-clock (LPT makespan over the
  per-fragment cost model) of a multi-worker pool vs serial rebuilds.
"""

from __future__ import annotations

import threading

from conftest import write_result

from repro.instrument.coverage import OdinCov
from repro.programs.registry import get_program
from repro.service import RecompilationService
from repro.utils.rng import DeterministicRNG

PRESERVED = ("main", "run_input")
PROGRAM = "re2"
CLIENTS = 4
FLIPS = 6


def run_workload(workers: int, worker_mode: str) -> dict:
    """CLIENTS threads x FLIPS disable/enable rounds against one service."""
    program = get_program(PROGRAM)
    service = RecompilationService(workers=workers, worker_mode=worker_mode)
    engine = service.register_target(
        PROGRAM, program.compile(), preserve=PRESERVED
    )
    tool = OdinCov(engine)
    tool.add_all_block_probes()
    build = service.build(PROGRAM)
    probe_ids = sorted(tool.probes)

    def client_loop(index: int) -> None:
        client = service.client(PROGRAM, f"client-{index}")
        rng = DeterministicRNG(100 + index)
        for _ in range(FLIPS):
            picked = [
                probe_ids[rng.randint(0, len(probe_ids) - 1)] for _ in range(4)
            ]
            client.disable(*picked).result(60.0)
            client.enable(*picked).result(60.0)

    with service:
        threads = [
            threading.Thread(target=client_loop, args=(i,))
            for i in range(CLIENTS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    stats = service.stats()
    rebuild_wall_ms = sum(r.wall_ms for r in engine.history)
    rebuild_total_ms = sum(r.total_ms for r in engine.history)
    return {
        "initial_build_ms": build.total_ms,
        "initial_wall_ms": build.wall_ms,
        "requests": stats["counters"]["requests_total"],
        "batches": stats["counters"]["batches_total"],
        "dedup_ratio": stats["derived"]["dedup_ratio"],
        "cache_hit_rate": stats["derived"]["cache_hit_rate"],
        "fragments_compiled": stats["derived"]["fragments_compiled"],
        "rebuild_wall_ms": rebuild_wall_ms,
        "rebuild_total_ms": rebuild_total_ms,
    }


def test_service_throughput(benchmark):
    serial = run_workload(workers=1, worker_mode="serial")
    pooled = benchmark.pedantic(
        run_workload, args=(4, "thread"), rounds=1, iterations=1
    )

    # The workload is deterministic, so both runs see the same requests.
    assert serial["requests"] == pooled["requests"] == CLIENTS * FLIPS * 2

    # Concurrent clients overlap: some batches carry more than one request.
    assert pooled["dedup_ratio"] >= 1.0
    assert pooled["batches"] <= pooled["requests"]

    # Re-visited probe states come from the content cache.
    assert serial["cache_hit_rate"] > 0
    assert pooled["cache_hit_rate"] > 0

    # Pool speedup on the initial build (the one guaranteed-identical
    # multi-fragment batch): makespan over 4 workers beats the serial sum.
    assert pooled["initial_wall_ms"] < pooled["initial_build_ms"]
    speedup = serial["initial_build_ms"] / pooled["initial_wall_ms"]
    assert speedup > 1.5

    # And across the whole campaign the pooled wall-clock never loses.
    total_speedup = (
        (serial["initial_build_ms"] + serial["rebuild_total_ms"])
        / (pooled["initial_wall_ms"] + pooled["rebuild_wall_ms"])
    )
    assert total_speedup >= 1.0

    lines = [
        f"service throughput: {CLIENTS} clients x {FLIPS} flips on {PROGRAM}",
        "",
        f"{'':>22}  {'serial':>10}  {'4 workers':>10}",
        f"{'requests':>22}  {serial['requests']:>10}  {pooled['requests']:>10}",
        f"{'batches':>22}  {serial['batches']:>10}  {pooled['batches']:>10}",
        f"{'dedup ratio':>22}  {serial['dedup_ratio']:>10.2f}  "
        f"{pooled['dedup_ratio']:>10.2f}",
        f"{'cache hit rate':>22}  {serial['cache_hit_rate']:>9.1%}  "
        f"{pooled['cache_hit_rate']:>9.1%}",
        f"{'fragment compiles':>22}  {serial['fragments_compiled']:>10g}  "
        f"{pooled['fragments_compiled']:>10g}",
        f"{'initial build (ms)':>22}  {serial['initial_build_ms']:>10.1f}  "
        f"{pooled['initial_wall_ms']:>10.1f}",
        f"{'rebuild wall (ms)':>22}  {serial['rebuild_total_ms']:>10.1f}  "
        f"{pooled['rebuild_wall_ms']:>10.1f}",
        "",
        f"initial-build pool speedup: {speedup:.2f}x "
        f"(campaign: {total_speedup:.2f}x)",
    ]
    write_result("service_throughput.txt", "\n".join(lines))
