"""Span-derived rebuild stage breakdown.

Drives a pruning coverage campaign on one mid-sized program and
decomposes every recorded rebuild — via the observability span trees,
not ad-hoc counters — into schedule / extract / instrument / compile
(with its top passes) / link.  The paper's claim that on-the-fly
rebuilds are dominated by fragment compilation (link is negligible)
falls out of the span sums.
"""

import pytest
from conftest import write_result

from repro.experiments.runners import deploy_odincov
from repro.obs.trace import pass_totals, stage_totals
from repro.programs.registry import get_program

PROGRAM = "libjpeg"


def prune_campaign():
    program = get_program(PROGRAM)
    setup = deploy_odincov(program, prune=False)
    setup.tool.prune = True
    for seed in program.seeds()[:4]:
        setup.executor.execute(seed)
    setup.executor.prune()
    return setup.tool.engine


def test_stage_breakdown(benchmark):
    engine = benchmark.pedantic(prune_campaign, rounds=1, iterations=1)
    roots = engine.tracer.roots()
    rebuilds = [r for r in roots if r.name == "rebuild"]
    assert len(rebuilds) >= 2  # initial build + at least one prune rebuild

    stages = stage_totals(rebuilds)
    passes = pass_totals(rebuilds)
    total = sum(r.sim_ms for r in rebuilds)

    # The span trees must account for every simulated millisecond.
    # (Per-rebuild sums are float-exact — see tests/obs — but these
    # aggregates add the same terms in a different order.)
    top = ("schedule", "extract", "instrument", "compile", "link")
    assert sum(stages[s] for s in top) == pytest.approx(total, rel=1e-9)
    # Per-phase spans tile compile: optimize + isel == compile.
    assert stages["optimize"] + stages["isel"] == pytest.approx(
        stages["compile"], rel=1e-9
    )
    # And the per-pass spans tile optimize.
    assert sum(passes.values()) == pytest.approx(
        stages["optimize"], rel=1e-9
    )

    lines = [
        f"Span-derived rebuild stage breakdown ({PROGRAM}, "
        f"{len(rebuilds)} rebuilds)",
        "",
        f"{'stage':>12} | {'sim ms':>10} | {'share':>7}",
        "-" * 36,
    ]
    for name in top:
        ms = stages[name]
        share = (ms / total * 100.0) if total else 0.0
        lines.append(f"{name:>12} | {ms:>10.2f} | {share:>6.2f}%")
    lines += [
        "-" * 36,
        f"{'total':>12} | {total:>10.2f} |",
        "",
        "top optimization passes (simulated ms):",
    ]
    for name, ms in sorted(passes.items(), key=lambda kv: -kv[1])[:8]:
        lines.append(f"  {name:<24} {ms:>10.2f}")
    write_result("stage_breakdown.txt", "\n".join(lines))

    # Shape: fragment compilation dominates.  Link weighs more here
    # than in a full build (paper fig. 3: 0.15%) because every
    # incremental rebuild re-links while recompiling few fragments.
    assert stages["compile"] > stages["link"]
    assert stages["link"] / total < 0.5
