"""Run-time partitioned sanitization: budget convergence + variant costs.

Three claims, PartiSan/CaPI-style, on top of Odin's engine:

1. **Budget convergence** — on every benchmarked program the controller
   steers the variant mix until the recent-window slowdown sits inside
   the tolerance band around the 25% budget.
2. **Hot-path de-instrumentation** — persistently hot functions are
   pinned clean and their probes flipped off through a fragment-level
   on-the-fly recompile, observable as a ``partisan.deinstrument`` span
   with the rebuild tree nested inside.
3. **Variant cost ordering** — pinning the whole mix to one family
   yields the expected overhead ladder: clean ≈ 0, coverage in between,
   sanitized highest.
"""

from conftest import write_result

from repro.programs.registry import get_program
from repro.variants.builder import VariantBuilder
from repro.variants.dispatch import VariantSelector
from repro.variants.runner import PRESERVED, _run_one, run_partisan
from repro.variants.spec import FAMILY_CLEAN, FAMILY_COVERAGE, FAMILY_SANITIZED

import pytest

PROGRAMS = ("json", "lcms", "libjpeg")
BUDGET = 0.25
EXECUTIONS = 720
WINDOW = 60
SEED = 5


@pytest.fixture(scope="session")
def partisan_runs():
    return {
        name: run_partisan(
            get_program(name),
            budget=BUDGET,
            executions=EXECUTIONS,
            seed=SEED,
            window=WINDOW,
            mode="per-call",
        )
        for name in PROGRAMS
    }


def test_budget_convergence(benchmark, partisan_runs):
    def summarize(runs):
        return {name: run.report.achieved_overhead for name, run in runs.items()}

    overheads = benchmark(summarize, partisan_runs)

    lines = [
        f"budget {BUDGET:+.2f}, {EXECUTIONS} executions, "
        f"window {WINDOW}, per-call dispatch, seed {SEED}",
        f"{'program':>10} {'lifetime':>9} {'last-win':>9} "
        f"{'converged':>9}  mix (clean/cov/san)",
    ]
    for name, run in partisan_runs.items():
        report = run.report
        controller = run.controller
        mix = report.mix_final
        lines.append(
            f"{name:>10} {report.achieved_overhead:>+9.3f} "
            f"{report.final_window_overhead:>+9.3f} "
            f"{str(report.converged):>9}  "
            f"{mix.get(FAMILY_CLEAN, 0):.2f}/{mix.get(FAMILY_COVERAGE, 0):.2f}"
            f"/{mix.get(FAMILY_SANITIZED, 0):.2f}"
        )
        # The controller must land the recent-window mean inside the
        # tolerance band on every program.
        assert report.converged, (
            f"{name}: controller did not converge "
            f"(windows: {[round(w.achieved_overhead, 3) for w in controller.windows]})"
        )
    write_result("variant_budget_convergence.txt", "\n".join(lines))
    assert set(overheads) == set(PROGRAMS)


def test_hot_functions_deinstrumented(partisan_runs):
    lines = [f"{'program':>10} {'de-instrumented':<24} probes-flipped rebuild-span"]
    for name, run in partisan_runs.items():
        report = run.report
        assert report.deinstrumented, (
            f"{name}: no hot function was de-instrumented"
        )
        # Probe flips reached the instrumented families...
        flipped = run.metrics.counter("partisan.probes.flipped")
        assert flipped > 0
        # ...and every de-instrumentation ran a recompile inside its span.
        spans = [
            s
            for root in run.tracer.roots()
            for s in root.find_all("partisan.deinstrument")
        ]
        assert len(spans) >= len(report.deinstrumented)
        rebuilds = sum(1 for s in spans if s.find("rebuild") is not None)
        assert rebuilds >= len(report.deinstrumented)
        for symbol in report.deinstrumented:
            assert run.selector.pinned[symbol] == FAMILY_CLEAN
        lines.append(
            f"{name:>10} {','.join(report.deinstrumented):<24} "
            f"{int(flipped):>14} {rebuilds:>12}"
        )
    write_result("variant_deinstrumentation.txt", "\n".join(lines))


def test_variant_cost_ladder():
    program = get_program("json")
    builder = VariantBuilder(program.compile, preserve=PRESERVED)
    builder.build()
    inputs = program.seeds(SEED)[:4]

    def pinned_cycles(family):
        total = 0
        for data in inputs:
            vm = builder.make_vm(selector=VariantSelector({family: 1.0}))
            total += _run_one(vm, data).cycles
        return total

    cycles = {
        family: pinned_cycles(family)
        for family in (FAMILY_CLEAN, FAMILY_COVERAGE, FAMILY_SANITIZED)
    }
    clean = cycles[FAMILY_CLEAN]
    lines = [f"{'family':>10} {'cycles':>10} {'overhead':>9}"]
    for family, total in cycles.items():
        lines.append(
            f"{family:>10} {total:>10} {total / clean - 1.0:>+9.3f}"
        )
    write_result("variant_cost_ladder.txt", "\n".join(lines))
    assert cycles[FAMILY_CLEAN] < cycles[FAMILY_COVERAGE] < cycles[FAMILY_SANITIZED]


def test_findings_survive_recording_mode(partisan_runs):
    # The sanitized family runs in recording (non-trapping) mode; the
    # coverage family must still have observed real blocks on every
    # program — sanitization stayed live under the budget.
    for name, run in partisan_runs.items():
        assert run.report.findings["coverage_blocks"] > 0, name
        assert run.report.probes[FAMILY_SANITIZED] > 0, name
