#!/usr/bin/env python3
"""CmpLog + input-to-state: smashing a magic-number roadblock (§2.1).

The target hides a bug behind a 32-bit magic comparison that random
mutation will essentially never satisfy.  The example runs the AFL++-style
pipeline the paper describes:

1. fuzz with coverage probes — the campaign stalls at the comparison;
2. CmpLog probes record the comparison operands (which, because Odin
   instruments *before* optimization, are direct copies of the input —
   the input-to-state prerequisite);
3. the RedQueen-style solver substitutes the wanted operand into the
   input, unlocking the guarded branch;
4. the solved comparison "is no longer a fuzzing roadblock", so its probe
   is removed with one on-the-fly recompilation.

Run:  python examples/cmplog_roadblock.py
"""

from repro.core import Odin
from repro.frontend import compile_source
from repro.fuzz import CmpLogFuzzer, OdinCovExecutor
from repro.instrument import CmpLogRuntime, OdinCov, add_cmp_probes

TARGET = r"""
int run_input(const char *data, long size) {
    int header;
    if (size < 8) return 0;
    header = ((int)data[0] & 255) | (((int)data[1] & 255) << 8)
           | (((int)data[2] & 255) << 16) | (((int)data[3] & 255) << 24);
    if (header == 0x0DEFACED) {
        if (data[4] == 'B' && data[5] == 'U' && data[6] == 'G')
            abort();                       // the hidden bug
        return 2;
    }
    return 1;
}

int main(void) { return 0; }
"""


def main() -> None:
    engine = Odin(compile_source(TARGET, "roadblock"),
                  preserve=("main", "run_input"))
    cov = OdinCov(engine, prune=False)
    cov.add_all_block_probes()
    cmp_probes = add_cmp_probes(engine, functions={"run_input"})
    cov.build()
    print(f"coverage probes: {len(cov.probes)}, cmp probes: {len(cmp_probes)}")

    cmplog = CmpLogRuntime()
    executor = OdinCovExecutor(cov, extra_runtime=cmplog)
    fuzzer = CmpLogFuzzer(
        executor,
        seeds=[b"\x00" * 8],
        cmplog_runtime=cmplog,
        cmp_probes=cmp_probes,
        seed=3,
    )

    # Phase 1: plain fuzzing stalls before the magic.
    stats = fuzzer.run(500)
    print(f"\nafter {stats.executions} random executions: "
          f"corpus={stats.corpus_size} coverage={stats.coverage} "
          f"crashes={stats.crashes}")

    # Phase 2+: alternate solving and fuzzing — each round unlocks the
    # next layer of comparisons (header, then the byte checks guarding
    # the bug), and each solved probe is pruned with a recompilation.
    unlocked = False
    for round_no in range(1, 6):
        solved = fuzzer.solve_roadblocks()
        unlocked = unlocked or any(
            e.data[:4] == (0x0DEFACED).to_bytes(4, "little")
            for e in fuzzer.corpus.entries
        )
        print(f"round {round_no}: solved {solved} comparison(s), "
              f"magic unlocked={unlocked}, rebuilds={fuzzer.stats.rebuilds}")
        stats = fuzzer.run(400)
        if stats.crashes:
            break

    print(f"\ncrashes: {stats.crashes}")
    if stats.crash_inputs:
        print(f"crashing input: {stats.crash_inputs[0][:16]!r}")
    assert unlocked, "input-to-state must reconstruct the magic"
    assert stats.crashes > 0, "the guarded bug must be reached"


if __name__ == "__main__":
    main()
