#!/usr/bin/env python3
"""A coverage-guided fuzzing campaign with on-the-fly probe pruning.

Fuzzes the `json` benchmark target with OdinCov.  Every 300 executions
the fuzzer prunes covered probes and Odin recompiles the touched
fragments — the §5.1 workflow that keeps steady-state overhead near zero.

Run:  python examples/fuzzing_campaign.py
"""

from repro.core import Odin
from repro.fuzz import Fuzzer, OdinCovExecutor, PlainExecutor
from repro.instrument import OdinCov
from repro.programs.registry import get_program
from repro.toolchain import build_module

EXECUTIONS = 1500
PRUNE_EVERY = 300


def main() -> None:
    program = get_program("json")
    seeds = program.seeds()

    # Instrumented deployment.
    engine = Odin(program.compile(), preserve=("main", "run_input"))
    tool = OdinCov(engine)
    probes = tool.add_all_block_probes()
    tool.build()
    executor = OdinCovExecutor(tool)

    print(f"target: {program.name} — {program.description}")
    print(f"probes: {probes}, fragments: {engine.num_fragments}, "
          f"seeds: {len(seeds)}\n")

    fuzzer = Fuzzer(executor, seeds, seed=7, prune_interval=PRUNE_EVERY)
    stats = fuzzer.run(EXECUTIONS)

    print(f"executions:      {stats.executions}")
    print(f"corpus size:     {stats.corpus_size}")
    print(f"coverage:        {stats.coverage} probes")
    print(f"crashes:         {stats.crashes}")
    print(f"on-the-fly rebuilds: {stats.rebuilds} "
          f"(avg {stats.rebuild_ms / max(stats.rebuilds, 1):.1f} ms — "
          f"paper reports 82 ms)")
    print(f"probes remaining: {len(tool.probes)} of {probes}")

    # How much did pruning save?  Replay the corpus on the pruned binary
    # versus an uninstrumented baseline.
    baseline = build_module(program.compile())
    plain = PlainExecutor(baseline.executable)
    corpus_inputs = [e.data for e in fuzzer.corpus.entries]
    pruned_cycles = sum(
        executor.execute(d).result.cycles for d in corpus_inputs
    )
    plain_cycles = sum(
        plain.execute(d).result.cycles for d in corpus_inputs
    )
    overhead = pruned_cycles / plain_cycles - 1
    print(f"\nsteady-state coverage overhead after pruning: "
          f"{overhead * 100:.2f}%  (paper: 3.48% median)")


if __name__ == "__main__":
    main()
