#!/usr/bin/env python3
"""Quickstart: the Odin workflow on a small C program in ~60 lines.

    compile -> partition -> instrument -> build -> run -> prune -> rebuild

Run:  python examples/quickstart.py
"""

from repro.core import Odin
from repro.frontend import compile_source
from repro.instrument import OdinCov

SOURCE = r"""
static int classify(char c) {
    if (c >= 'a' && c <= 'z') return 1;
    if (c >= 'A' && c <= 'Z') return 2;
    if (c >= '0' && c <= '9') return 3;
    return 0;
}

int run_input(const char *data, long size) {
    int histogram[4] = {0, 0, 0, 0};
    long i;
    for (i = 0; i < size; i++)
        histogram[classify(data[i])]++;
    return histogram[1] * 100 + histogram[2] * 10 + histogram[3];
}

int main(void) { return 0; }
"""


def run(tool: OdinCov, data: bytes):
    vm = tool.make_vm()
    addr = vm.alloc(len(data) + 1)
    vm.write_bytes(addr, data)
    return vm.run("run_input", (addr, len(data)), reset=False)


def main() -> None:
    # 1. Frontend: MiniC -> whole-program IR (unoptimized — Odin always
    #    instruments *before* optimization, that is the correctness story).
    module = compile_source(SOURCE, "quickstart")

    # 2. Partition: trial optimization finds Bond/Copy-on-use constraints.
    engine = Odin(module, preserve=("main", "run_input"))
    print(engine.describe_partition(), "\n")

    # 3. Instrument + initial build: coverage probe on every basic block.
    cov = OdinCov(engine)
    num_probes = cov.add_all_block_probes()
    report = cov.build()
    print(
        f"initial build: {num_probes} probes, "
        f"{len(report.fragment_ids)} fragments compiled in "
        f"{report.total_compile_ms:.1f} ms (+{report.link_ms:.1f} ms link)\n"
    )

    # 4. Execute: the probe runtime counts hits per basic block.
    result = run(cov, b"Hello 42 worlds")
    print(f"run #1: result={result.exit_code} cycles={result.cycles} "
          f"covered={len(cov.runtime.covered_ids())} blocks")

    # 5. Prune: covered probes have served their purpose; Odin removes
    #    them and recompiles ONLY the affected fragments on the fly.
    prune = cov.prune_covered()
    rebuilt = prune.rebuild
    print(
        f"pruned {prune.pruned} probes ({prune.remaining} remain); "
        f"recompiled fragments {rebuilt.fragment_ids} in "
        f"{rebuilt.total_ms:.1f} ms, reused {rebuilt.cache_reused} from cache"
    )

    # 6. Same input, same answer, fewer cycles.
    result2 = run(cov, b"Hello 42 worlds")
    print(f"run #2: result={result2.exit_code} cycles={result2.cycles} "
          f"({result.cycles - result2.cycles} cycles cheaper)")
    assert result2.exit_code == result.exit_code


if __name__ == "__main__":
    main()
