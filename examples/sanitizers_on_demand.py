#!/usr/bin/env python3
"""§7 future work: sanitizers that adapt during the campaign.

Part 1 — UBSan with remove-on-trigger: a hash mixer overflows by design,
so classic UBSan would kill every execution.  Odin removes the offending
probe with one on-the-fly recompilation and fuzzing continues, while the
*other* overflow checks stay armed.

Part 2 — online ASAP for ASan-lite: hot memory checks (the ones fuzzing
exercises millions of times but that rarely find bugs) are pruned from
live profiles, no separate profiling build required.

Run:  python examples/sanitizers_on_demand.py
"""

from repro.core import Odin
from repro.frontend import compile_source
from repro.instrument import ASanTool, UBSanTool
from repro.programs.registry import get_program

NOISY = r"""
int run_input(const char *data, long size) {
    int h = 0x1505;
    long i;
    for (i = 0; i < size; i++) {
        h = h * 31 + ((int)data[i] & 255);    // overflow by design
    }
    return h;
}

int main(void) { return 0; }
"""


def run(tool, data: bytes):
    vm = tool.make_vm()
    addr = vm.alloc(len(data) + 1)
    vm.write_bytes(addr, data)
    return vm.run("run_input", (addr, len(data)), reset=False)


def ubsan_demo() -> None:
    print("== UBSan with on-demand probe removal ==")
    engine = Odin(compile_source(NOISY, "noisy"), preserve=("main", "run_input"))
    tool = UBSanTool(engine)
    checks = tool.add_all_overflow_probes()
    tool.build()
    print(f"overflow checks installed: {checks}")

    data = bytes(range(48))
    removals = 0
    result = run(tool, data)
    while result.trap == "ubsan" and removals < 10:
        report = tool.remove_fired_probe()
        removals += 1
        print(f"  check #{tool.removed[-1]} fired -> removed, "
              f"recompiled {len(report.fragment_ids)} fragment(s) "
              f"in {report.total_ms:.1f} ms")
        result = run(tool, data)
    print(f"campaign continues after {removals} removal(s): "
          f"result={result.exit_code}, {len(tool.probes)} checks still armed\n")


def asap_demo() -> None:
    print("== ASan-lite with online hot-check pruning (ASAP) ==")
    program = get_program("lcms")
    engine = Odin(program.compile(), preserve=("main", "run_input"))
    tool = ASanTool(engine)
    checks = tool.add_all_access_probes()
    tool.build()
    seeds = program.seeds()[:5]
    print(f"target: {program.name}, memory checks: {checks}")

    before = sum(run(tool, s).cycles for s in seeds)
    report = tool.prune_hot_checks(hot_fraction=0.25)
    after = sum(run(tool, s).cycles for s in seeds)
    print(f"replay cycles: {before} -> {after} "
          f"({(1 - after / before) * 100:.1f}% saved) after pruning the "
          f"hottest 25% of checks in {report.total_ms:.1f} ms")

    # Cold checks still catch real bugs: a wild pointer read traps.
    vm = tool.make_vm()
    wild = vm.run("run_input", (0x3F0000, 32), reset=False)
    print(f"wild-pointer probe still armed: trap={wild.trap}")


if __name__ == "__main__":
    ubsan_demo()
    asap_demo()
