"""repro — a Python reproduction of "Odin: On-Demand Instrumentation with
On-the-Fly Recompilation" (PLDI 2022).

Quick tour::

    from repro.frontend import compile_source
    from repro.core import Odin
    from repro.instrument import OdinCov

    module = compile_source(C_SOURCE, "target")   # MiniC -> IR
    engine = Odin(module, preserve=("main", "run_input"))
    cov = OdinCov(engine)
    cov.add_all_block_probes()
    cov.build()                                   # partition + compile + link

    vm = cov.make_vm()
    ...                                           # run, observe coverage
    cov.prune_covered()                           # on-the-fly recompilation

Sub-packages: ``ir`` (SSA IR), ``frontend`` (MiniC), ``opt`` (O2 pipeline),
``backend``/``linker``/``vm`` (codegen + execution substrate), ``core``
(the Odin framework), ``instrument`` (probe schemes), ``baselines``
(DrCov/libInst analogues), ``fuzz`` (fuzzing loop), ``programs`` (the 13
benchmark targets), ``experiments`` (per-figure harness), ``buildsim``
(Fig. 3 build-cost model).
"""

from repro.core.engine import Odin, RebuildReport
from repro.errors import ReproError
from repro.toolchain import BuildResult, build, build_module, compile_ir, run_source

__version__ = "1.0.0"

__all__ = [
    "Odin", "RebuildReport", "ReproError",
    "BuildResult", "build", "build_module", "compile_ir", "run_source",
    "__version__",
]
