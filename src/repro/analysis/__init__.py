"""Static analysis layer: dataflow engine, probe-integrity sanitizer, lints.

The paper's whole-program-IR design is what "enables sophisticated online
static analysis" (§1); this package supplies that layer for the repro:

* :mod:`repro.analysis.dataflow` — a generic worklist dataflow engine plus
  the concrete analyses (liveness, reaching stores, value ranges) the rest
  of the package is built on;
* :mod:`repro.analysis.sanitizer` — the probe-integrity sanitizer: a
  static complement to the dynamic differential oracle in
  :mod:`repro.check`, run between optimization passes;
* :mod:`repro.analysis.lints` — an IR lint suite reporting likely source
  defects (and feeding guided UBSan probe placement);
* :mod:`repro.analysis.diagnostics` — the structured :class:`Diagnostic`
  record every check reports through.
"""

from repro.analysis.diagnostics import (
    Diagnostic,
    SEVERITY_ERROR,
    SEVERITY_NOTE,
    SEVERITY_WARNING,
)
from repro.analysis.dataflow import (
    BACKWARD,
    DataflowProblem,
    DataflowResult,
    FORWARD,
    Liveness,
    ReachingStores,
    UNINIT,
    ValueRange,
    compute_value_ranges,
    escaping_allocas,
    may_overflow,
    solve,
)
from repro.analysis.lints import run_lints
from repro.analysis.sanitizer import (
    DEFAULT_PROBE_RUNTIMES,
    ProbeIntegritySanitizer,
)

__all__ = [
    "BACKWARD",
    "DEFAULT_PROBE_RUNTIMES",
    "DataflowProblem",
    "DataflowResult",
    "Diagnostic",
    "FORWARD",
    "Liveness",
    "ProbeIntegritySanitizer",
    "ReachingStores",
    "SEVERITY_ERROR",
    "SEVERITY_NOTE",
    "SEVERITY_WARNING",
    "UNINIT",
    "ValueRange",
    "compute_value_ranges",
    "escaping_allocas",
    "may_overflow",
    "run_lints",
    "solve",
]
