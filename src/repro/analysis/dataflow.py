"""Generic worklist dataflow engine and the concrete analyses built on it.

The engine solves any monotone framework instance over a function's CFG:
a :class:`DataflowProblem` supplies the direction, the boundary/initial
states, the meet, and the per-block transfer function; :func:`solve`
iterates a worklist seeded in reverse-postorder (postorder for backward
problems) to a fixpoint and returns per-block in/out states.

Concrete instances used by the lint suite and the sanitizer:

* :class:`Liveness` — backward live-variable analysis with SSA-aware
  edge states (phi uses are live only on their incoming edge);
* :class:`ReachingStores` — forward may-analysis over non-escaping
  allocas, tracking which stores (or the :data:`UNINIT` marker) may
  reach each program point;
* :func:`compute_value_ranges` — an SCCP-style signed interval analysis
  with aggressive phi widening, conservative enough to be sound and
  precise enough to discharge byte-arithmetic overflow checks (guided
  UBSan placement, ISSUE §tentpole / PartiSan-style selective
  sanitization).

States must support ``==`` (frozensets and dicts of frozensets do), and
the meet must be monotone for termination.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.ir.analysis import predecessor_map, reachable_blocks
from repro.ir.instructions import (
    AllocaInst,
    BinaryInst,
    CallInst,
    CastInst,
    FreezeInst,
    IcmpInst,
    Instruction,
    LoadInst,
    PhiInst,
    SelectInst,
    StoreInst,
)
from repro.ir.module import BasicBlock, Function
from repro.ir.types import I1, IntType
from repro.ir.values import Argument, ConstantInt, Value

FORWARD = "forward"
BACKWARD = "backward"


class DataflowProblem:
    """One monotone dataflow framework instance.

    Subclasses set :attr:`direction` and implement the lattice hooks.
    ``edge`` lets SSA-aware analyses specialise the state flowing along
    one CFG edge (the default is the identity).
    """

    direction = FORWARD

    def boundary(self, fn: Function):
        """State at the entry (forward) or at every exit (backward)."""
        raise NotImplementedError

    def initial(self, fn: Function):
        """Optimistic starting state for all non-boundary blocks."""
        raise NotImplementedError

    def meet(self, a, b):
        """Combine two states at a control-flow join."""
        raise NotImplementedError

    def transfer(self, block: BasicBlock, state):
        """Push *state* through *block*; must not mutate its argument."""
        raise NotImplementedError

    def edge(self, src: BasicBlock, dst: BasicBlock, state):
        """Specialise *state* flowing along the edge ``src -> dst``.

        For forward problems the state is ``out[src]`` on its way into
        *dst*; for backward problems it is ``in[dst]`` on its way back
        into *src*.
        """
        return state


@dataclass
class DataflowResult:
    """Fixpoint states per block, as produced by :func:`solve`."""

    block_in: Dict[BasicBlock, object]
    block_out: Dict[BasicBlock, object]
    iterations: int


def solve(problem: DataflowProblem, fn: Function) -> DataflowResult:
    """Run *problem* to a fixpoint over the reachable CFG of *fn*."""
    rpo = reachable_blocks(fn)
    preds = predecessor_map(fn)
    reachable = set(rpo)
    forward = problem.direction == FORWARD

    block_in: Dict[BasicBlock, object] = {}
    block_out: Dict[BasicBlock, object] = {}

    if forward:
        order = rpo
        for block in rpo:
            block_in[block] = problem.initial(fn)
        block_in[fn.entry] = problem.boundary(fn)
        for block in rpo:
            block_out[block] = problem.transfer(block, block_in[block])
    else:
        order = list(reversed(rpo))
        for block in rpo:
            block_out[block] = (
                problem.boundary(fn) if not block.successors()
                else problem.initial(fn)
            )
        for block in order:
            block_in[block] = problem.transfer(block, block_out[block])

    worklist = list(order)
    queued = set(worklist)
    iterations = 0
    while worklist:
        block = worklist.pop(0)
        queued.discard(block)
        iterations += 1

        if forward:
            incoming = [
                problem.edge(p, block, block_out[p])
                for p in preds[block]
                if p in reachable
            ]
            if block is fn.entry:
                incoming.append(problem.boundary(fn))
            if incoming:
                state = incoming[0]
                for other in incoming[1:]:
                    state = problem.meet(state, other)
                block_in[block] = state
            new_out = problem.transfer(block, block_in[block])
            if new_out != block_out[block]:
                block_out[block] = new_out
                for succ in block.successors():
                    if succ in reachable and succ not in queued:
                        worklist.append(succ)
                        queued.add(succ)
        else:
            incoming = [
                problem.edge(block, s, block_in[s])
                for s in block.successors()
                if s in reachable
            ]
            if not block.successors():
                incoming.append(problem.boundary(fn))
            if incoming:
                state = incoming[0]
                for other in incoming[1:]:
                    state = problem.meet(state, other)
                block_out[block] = state
            new_in = problem.transfer(block, block_out[block])
            if new_in != block_in[block]:
                block_in[block] = new_in
                for pred in preds[block]:
                    if pred in reachable and pred not in queued:
                        worklist.append(pred)
                        queued.add(pred)

    return DataflowResult(block_in, block_out, iterations)


# -- liveness --------------------------------------------------------------------


def _is_tracked_value(v: Value) -> bool:
    """Values with a local definition: instructions and arguments."""
    return isinstance(v, (Instruction, Argument))


class Liveness(DataflowProblem):
    """Backward live-variable analysis over SSA values.

    Phi operands are live only along their incoming edge, which is
    exactly what the ``edge`` hook models; phi *results* are killed at
    their block head like any other definition.
    """

    direction = BACKWARD

    def boundary(self, fn: Function):
        return frozenset()

    def initial(self, fn: Function):
        return frozenset()

    def meet(self, a, b):
        return a | b

    def edge(self, src: BasicBlock, dst: BasicBlock, state):
        live = set(state)
        for phi in dst.phis():
            live.discard(phi)
            value = phi.incoming_for(src)
            if _is_tracked_value(value):
                live.add(value)
        return frozenset(live)

    def transfer(self, block: BasicBlock, state):
        live = set(state)
        for inst in reversed(block.instructions):
            live.discard(inst)
            if isinstance(inst, PhiInst):
                continue  # uses accounted on the incoming edges
            for op in inst.operands:
                if _is_tracked_value(op):
                    live.add(op)
        return frozenset(live)


# -- reaching stores / may-uninitialized -----------------------------------------


class _Uninit:
    """Singleton marker: the alloca's initial, unwritten state."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<uninit>"


UNINIT = _Uninit()


def escaping_allocas(fn: Function) -> Set[AllocaInst]:
    """Allocas whose address leaves the load/store-pointer discipline.

    Once the address escapes (passed to a call, stored somewhere, used in
    address arithmetic) stores through unknown pointers may alias it, so
    slot-precise analyses must give up on it.
    """
    escaped: Set[AllocaInst] = set()
    for inst in fn.instructions():
        ops = list(inst.operands)
        if isinstance(inst, PhiInst):
            ops.extend(inst.used_values())
        for i, op in enumerate(ops):
            if not isinstance(op, AllocaInst):
                continue
            if isinstance(inst, LoadInst) and op is inst.pointer:
                continue
            if isinstance(inst, StoreInst) and i == 1 and op is inst.pointer:
                continue
            escaped.add(op)
    return escaped


class ReachingStores(DataflowProblem):
    """Forward may-analysis: which stores may reach each point, per slot.

    The state maps each tracked (non-escaping) alloca to the set of
    :class:`StoreInst` that may have written it last, with
    :data:`UNINIT` standing in for "never written since allocation".
    A load observing :data:`UNINIT` is a may-uninitialized use.
    """

    direction = FORWARD

    def __init__(self, tracked: Iterable[AllocaInst]):
        self.tracked = set(tracked)

    def boundary(self, fn: Function):
        return {}

    def initial(self, fn: Function):
        return {}

    def meet(self, a, b):
        merged = dict(a)
        for slot, defs in b.items():
            merged[slot] = merged.get(slot, frozenset()) | defs
        return merged

    def transfer(self, block: BasicBlock, state):
        out = dict(state)
        for inst in block.instructions:
            self.step(inst, out)
        return out

    def step(self, inst: Instruction, state: Dict) -> None:
        """Apply one instruction's effect to *state* in place."""
        if isinstance(inst, AllocaInst) and inst in self.tracked:
            state[inst] = frozenset([UNINIT])
        elif isinstance(inst, StoreInst) and inst.pointer in self.tracked:
            state[inst.pointer] = frozenset([inst])


# -- signed value-range (SCCP-style interval) analysis ----------------------------


@dataclass(frozen=True)
class ValueRange:
    """Inclusive signed interval ``[lo, hi]``."""

    lo: int
    hi: int

    def __post_init__(self):
        if self.lo > self.hi:
            raise ValueError(f"empty range [{self.lo}, {self.hi}]")

    def hull(self, other: "ValueRange") -> "ValueRange":
        return ValueRange(min(self.lo, other.lo), max(self.hi, other.hi))

    def is_nonnegative(self) -> bool:
        return self.lo >= 0

    def contains(self, other: "ValueRange") -> bool:
        return self.lo <= other.lo and other.hi <= self.hi

    def __str__(self) -> str:
        return f"[{self.lo}, {self.hi}]"


def full_range(ty: IntType) -> ValueRange:
    """The whole signed range of *ty* (i1 is the 0/1 pair)."""
    if ty is I1:
        return ValueRange(0, 1)
    return ValueRange(ty.smin, ty.smax)


def _clamp(lo: int, hi: int, ty: IntType) -> ValueRange:
    """The computed interval if it fits the type, else the full range."""
    full = full_range(ty)
    if full.lo <= lo and hi <= full.hi:
        return ValueRange(lo, hi)
    return full


def _icmp_range(inst: "IcmpInst", range_of) -> ValueRange:
    """[0, 1], narrowed to a single point when the operand intervals
    decide the (signed) predicate outright."""
    a, b = range_of(inst.lhs), range_of(inst.rhs)
    if a is not None and b is not None:
        verdict = None
        pred = inst.predicate
        if pred == "eq":
            if a.lo == a.hi == b.lo == b.hi:
                verdict = True
            elif a.hi < b.lo or b.hi < a.lo:
                verdict = False
        elif pred == "ne":
            if a.hi < b.lo or b.hi < a.lo:
                verdict = True
            elif a.lo == a.hi == b.lo == b.hi:
                verdict = False
        elif pred in ("slt", "ult") and (
            pred == "slt" or (a.is_nonnegative() and b.is_nonnegative())
        ):
            if a.hi < b.lo:
                verdict = True
            elif a.lo >= b.hi:
                verdict = False
        elif pred in ("sle", "ule") and (
            pred == "sle" or (a.is_nonnegative() and b.is_nonnegative())
        ):
            if a.hi <= b.lo:
                verdict = True
            elif a.lo > b.hi:
                verdict = False
        elif pred in ("sgt", "ugt") and (
            pred == "sgt" or (a.is_nonnegative() and b.is_nonnegative())
        ):
            if a.lo > b.hi:
                verdict = True
            elif a.hi <= b.lo:
                verdict = False
        elif pred in ("sge", "uge") and (
            pred == "sge" or (a.is_nonnegative() and b.is_nonnegative())
        ):
            if a.lo >= b.hi:
                verdict = True
            elif a.hi < b.lo:
                verdict = False
        if verdict is not None:
            point = 1 if verdict else 0
            return ValueRange(point, point)
    return ValueRange(0, 1)


_MAX_SWEEPS = 16


def compute_value_ranges(fn: Function) -> Dict[Value, ValueRange]:
    """Signed value ranges for every integer SSA value in *fn*.

    RPO sweeps to a fixpoint.  Phis are widened aggressively: any growth
    after a phi's first assignment jumps it to the full type range, so
    loop counters converge in two sweeps instead of tracing every trip.
    The result is a sound over-approximation — unknown producers (loads,
    calls, arguments) are the full range of their type.
    """
    rpo = reachable_blocks(fn)
    ranges: Dict[Value, ValueRange] = {}

    def range_of(v: Value) -> Optional[ValueRange]:
        if isinstance(v, ConstantInt):
            return ValueRange(v.signed, v.signed)
        if v in ranges:
            return ranges[v]
        if isinstance(v.type, IntType):
            return full_range(v.type)
        return None

    def optimistic_range_of(v: Value) -> Optional[ValueRange]:
        # Phi merges treat not-yet-visited instructions as bottom (skip)
        # instead of the full range, so a loop phi's first assignment
        # sees only its entry edge — the SCCP-style optimistic start.
        if isinstance(v, ConstantInt):
            return ValueRange(v.signed, v.signed)
        if v in ranges:
            return ranges[v]
        if isinstance(v, Instruction):
            return None
        if isinstance(v.type, IntType):
            return full_range(v.type)
        return None

    for _ in range(_MAX_SWEEPS):
        changed = False
        for block in rpo:
            for inst in block.instructions:
                if not isinstance(inst.type, IntType):
                    continue
                if isinstance(inst, PhiInst):
                    new = None
                    for value, _pred in inst.incoming:
                        r = optimistic_range_of(value)
                        if r is not None:
                            new = r if new is None else new.hull(r)
                    if new is None:
                        continue  # every incoming still bottom: stay there
                else:
                    new = _transfer_range(inst, range_of)
                    if new is None:
                        new = full_range(inst.type)
                old = ranges.get(inst)
                if old is not None and new != old:
                    # A phi that keeps growing is a loop cycle: jump it
                    # to the full range rather than tracing every trip.
                    if isinstance(inst, PhiInst) and not old.contains(new):
                        new = full_range(inst.type)
                if new != old:
                    ranges[inst] = new
                    changed = True
        if not changed:
            return ranges

    # Did not converge (pathological CFG): keep only what is trivially
    # sound — constants stay exact, everything else is the full range.
    return {
        v: (r if isinstance(v, ConstantInt) else full_range(v.type))
        for v, r in ranges.items()
    }


def _transfer_range(inst: Instruction, range_of) -> Optional[ValueRange]:
    """Interval transfer for one instruction; None means "no idea"."""
    ty = inst.type
    if isinstance(inst, BinaryInst):
        return _binary_range(inst, range_of)
    if isinstance(inst, IcmpInst):
        return _icmp_range(inst, range_of)
    if isinstance(inst, CastInst):
        src = range_of(inst.value)
        if inst.opcode == "zext":
            if src is not None and src.is_nonnegative():
                return ValueRange(src.lo, src.hi)
            return ValueRange(0, inst.value.type.umax)
        if inst.opcode == "sext":
            return None if src is None else ValueRange(src.lo, src.hi)
        if inst.opcode == "trunc":
            full = full_range(ty)
            if src is not None and full.contains(src):
                return ValueRange(src.lo, src.hi)
            return full
        return None  # ptrtoint / inttoptr
    if isinstance(inst, SelectInst):
        a, b = range_of(inst.if_true), range_of(inst.if_false)
        if a is None or b is None:
            return None
        return a.hull(b)
    if isinstance(inst, PhiInst):
        merged: Optional[ValueRange] = None
        for value, _ in inst.incoming:
            r = range_of(value)
            if r is None:
                return None
            merged = r if merged is None else merged.hull(r)
        return merged
    if isinstance(inst, FreezeInst):
        return range_of(inst.value)
    return None  # load, call, alloca result, ...


def _binary_range(inst: BinaryInst, range_of) -> Optional[ValueRange]:
    ty = inst.type
    a, b = range_of(inst.lhs), range_of(inst.rhs)
    if a is None or b is None:
        return None
    op = inst.opcode
    if op == "add":
        return _clamp(a.lo + b.lo, a.hi + b.hi, ty)
    if op == "sub":
        return _clamp(a.lo - b.hi, a.hi - b.lo, ty)
    if op == "mul":
        products = (a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi)
        return _clamp(min(products), max(products), ty)
    if op in ("sdiv", "srem", "udiv", "urem"):
        return _division_range(op, a, b, ty)
    if op == "and":
        # x & m keeps only bits set in m: when either side is a
        # non-negative mask the result lies in [0, that side's hi],
        # whatever the sign of the other operand.
        bounds = [r.hi for r in (a, b) if r.is_nonnegative()]
        if not bounds:
            return full_range(ty)
        return _clamp(0, min(bounds), ty)
    if op in ("or", "xor"):
        if not (a.is_nonnegative() and b.is_nonnegative()):
            return full_range(ty)
        # or/xor cannot set bits above the highest operand bit
        bits = max(a.hi.bit_length(), b.hi.bit_length())
        return _clamp(0, (1 << bits) - 1, ty)
    if op in ("shl", "lshr", "ashr"):
        return _shift_range(op, inst, a, ty)
    return full_range(ty)


def _division_range(op: str, a: ValueRange, b: ValueRange,
                    ty: IntType) -> ValueRange:
    if b.lo <= 0 <= b.hi:
        return full_range(ty)  # possible division by zero: anything goes
    if op in ("udiv", "urem") and not (a.is_nonnegative() and b.is_nonnegative()):
        return full_range(ty)  # unsigned view of a negative value is huge
    if op in ("sdiv", "udiv"):
        # |a / b| <= |a| for |b| >= 1; sdiv INT_MIN, -1 wraps but the
        # clamp to the type range keeps the bound sound.
        bound = max(abs(a.lo), abs(a.hi))
        lo = 0 if a.is_nonnegative() else -bound
        return _clamp(lo, bound, ty)
    # remainder magnitude is bounded by |b| - 1; its sign follows a
    bound = max(abs(b.lo), abs(b.hi)) - 1
    lo = 0 if a.is_nonnegative() else -bound
    hi = bound if a.hi > 0 else 0
    return _clamp(min(lo, hi), max(lo, hi), ty)


def _shift_range(op: str, inst: BinaryInst, a: ValueRange,
                 ty: IntType) -> ValueRange:
    if not isinstance(inst.rhs, ConstantInt):
        return full_range(ty)
    k = inst.rhs.value
    if k >= ty.bits:
        return full_range(ty)  # poison in LLVM; treat as unknown
    if op == "shl":
        return _clamp(a.lo << k, a.hi << k, ty)
    if op == "ashr":
        return _clamp(a.lo >> k, a.hi >> k, ty)
    # lshr on a possibly-negative value reinterprets the sign bit
    if not a.is_nonnegative():
        return _clamp(0, ty.umax >> k, ty)
    return _clamp(a.lo >> k, a.hi >> k, ty)


_OVERFLOW_OPCODES = ("add", "sub", "mul")


def may_overflow(inst: Instruction,
                 ranges: Dict[Value, ValueRange]) -> bool:
    """Whether signed overflow of *inst* cannot be ruled out.

    The decision procedure behind guided UBSan placement: recompute the
    mathematical (unclamped) result interval from the operand ranges and
    test it against the type's signed bounds.  ``True`` is the safe
    answer for anything unknown.
    """
    if not (isinstance(inst, BinaryInst) and inst.opcode in _OVERFLOW_OPCODES):
        return False
    ty = inst.type
    if not isinstance(ty, IntType) or ty is I1:
        return True

    def operand_range(v: Value) -> ValueRange:
        if isinstance(v, ConstantInt):
            return ValueRange(v.signed, v.signed)
        return ranges.get(v, full_range(v.type))

    a = operand_range(inst.lhs)
    b = operand_range(inst.rhs)
    if inst.opcode == "add":
        lo, hi = a.lo + b.lo, a.hi + b.hi
    elif inst.opcode == "sub":
        lo, hi = a.lo - b.hi, a.hi - b.lo
    else:
        products = (a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi)
        lo, hi = min(products), max(products)
    return not (ty.smin <= lo and hi <= ty.smax)
