"""Structured diagnostics for the static-analysis layer.

Sanitizer and lint findings are *reports*, not failures: a distorted probe
must surface with enough context to attribute it (which check, which pass,
which function/block/probe) without aborting the build the way
:class:`repro.errors.VerifierError` does.  Callers decide severity policy
— the CLI's lint gate, for example, fails on errors and prints warnings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"
SEVERITY_NOTE = "note"
SEVERITIES = (SEVERITY_ERROR, SEVERITY_WARNING, SEVERITY_NOTE)


@dataclass(frozen=True)
class Diagnostic:
    """One finding from the sanitizer or the lint suite."""

    severity: str          # error / warning / note
    check: str             # kebab-case check slug, e.g. "probe-erased"
    message: str
    function: Optional[str] = None
    block: Optional[str] = None
    pass_name: Optional[str] = None   # optimization pass that caused it
    probe_id: Optional[int] = None

    def __post_init__(self):
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown diagnostic severity {self.severity!r}")

    @property
    def is_error(self) -> bool:
        return self.severity == SEVERITY_ERROR

    def location(self) -> str:
        """``@fn:block`` / ``@fn`` / ``<module>`` — wherever it points."""
        if self.function is None:
            return "<module>"
        if self.block is None:
            return f"@{self.function}"
        return f"@{self.function}:{self.block}"

    def __str__(self) -> str:
        parts = [f"{self.severity}[{self.check}]"]
        if self.pass_name is not None:
            parts.append(f"after pass {self.pass_name!r}")
        parts.append(f"{self.location()}:")
        parts.append(self.message)
        if self.probe_id is not None:
            parts.append(f"(probe #{self.probe_id})")
        return " ".join(parts)


def errors_of(diagnostics: List[Diagnostic]) -> List[Diagnostic]:
    return [d for d in diagnostics if d.is_error]


def format_diagnostics(diagnostics: List[Diagnostic]) -> str:
    return "\n".join(str(d) for d in diagnostics)
