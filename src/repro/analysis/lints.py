"""IR lint suite built on the dataflow engine.

Each lint walks one function with the analyses from
:mod:`repro.analysis.dataflow` and reports findings as
:class:`Diagnostic` records:

========================  ========  =======================================
check                     severity  meaning
========================  ========  =======================================
``unreachable-block``     warning   block cannot be reached from the entry
``dead-store``            warning   store to a local never read afterwards
``uninitialized-load``    warning   load may observe an unwritten local
``constant-condition``    warning   branch condition provably constant
``overflow-candidate``    note      signed overflow cannot be ruled out
``div-by-zero``           varies    divisor interval contains zero
``shift-range``           varies    shift amount may be out of range
========================  ========  =======================================

The interval lints grade their findings: a *warning* when the range
analysis proves the hazard (constant zero divisor, shift amount whose
whole interval is out of range) or narrows the operand to an interval
that still straddles the hazard, and a *note* when the operand is simply
unknown (full range) — unknown divisors are everywhere and would drown
real findings at warning severity.

``overflow-candidate`` doubles as the placement oracle for guided UBSan
instrumentation (:meth:`repro.instrument.ubsan.UBSanTool
.add_all_overflow_probes` with ``guided=True``): probes are only emitted
where the range analysis cannot prove safety — the PartiSan-style
"sanitize selectively" idea, decided statically.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.analysis.dataflow import (
    BACKWARD,
    DataflowProblem,
    ReachingStores,
    UNINIT,
    ValueRange,
    compute_value_ranges,
    escaping_allocas,
    full_range,
    may_overflow,
    solve,
)
from repro.analysis.diagnostics import (
    Diagnostic,
    SEVERITY_NOTE,
    SEVERITY_WARNING,
)
from repro.ir.analysis import reachable_blocks
from repro.ir.instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    LoadInst,
    StoreInst,
)
from repro.ir.module import Function, Module
from repro.ir.values import ConstantInt

ALL_LINTS = (
    "unreachable-block",
    "dead-store",
    "uninitialized-load",
    "constant-condition",
    "overflow-candidate",
    "div-by-zero",
    "shift-range",
)


def _sort_key(diag: Diagnostic):
    return (
        diag.function or "",
        diag.block or "",
        diag.check,
        diag.severity,
        diag.message,
        diag.pass_name or "",
        -1 if diag.probe_id is None else diag.probe_id,
    )


def stable_diagnostics(diags: Iterable[Diagnostic]) -> List[Diagnostic]:
    """Deterministic lint output: sorted by (function, block, kind) and
    de-duplicated, so repeated ``repro lint`` runs are byte-identical.

    :class:`Diagnostic` is frozen (hashable), so duplicates — the same
    finding reached through two analysis paths — collapse by value.
    """
    return sorted(dict.fromkeys(diags), key=_sort_key)


def run_lints(
    module: Module, checks: Optional[Iterable[str]] = None
) -> List[Diagnostic]:
    """Run the lint suite over every defined function of *module*.

    The result is stably sorted and de-duplicated
    (:func:`stable_diagnostics`): byte-identical across repeated runs.
    """
    enabled = set(checks) if checks is not None else set(ALL_LINTS)
    unknown = enabled - set(ALL_LINTS)
    if unknown:
        raise ValueError(f"unknown lints: {sorted(unknown)}")
    diags: List[Diagnostic] = []
    for fn in module.defined_functions():
        if "unreachable-block" in enabled:
            diags.extend(lint_unreachable_blocks(fn))
        if "dead-store" in enabled:
            diags.extend(lint_dead_stores(fn))
        if "uninitialized-load" in enabled:
            diags.extend(lint_uninitialized_loads(fn))
        if "constant-condition" in enabled:
            diags.extend(lint_constant_conditions(fn))
        if "overflow-candidate" in enabled:
            diags.extend(lint_overflow_candidates(fn))
        if "div-by-zero" in enabled:
            diags.extend(lint_div_by_zero(fn))
        if "shift-range" in enabled:
            diags.extend(lint_shift_range(fn))
    return stable_diagnostics(diags)


def _tracked_allocas(fn: Function) -> List[AllocaInst]:
    escaped = escaping_allocas(fn)
    return [
        inst for inst in fn.instructions()
        if isinstance(inst, AllocaInst) and inst not in escaped
    ]


def lint_unreachable_blocks(fn: Function) -> List[Diagnostic]:
    reachable = set(reachable_blocks(fn))
    return [
        Diagnostic(
            severity=SEVERITY_WARNING,
            check="unreachable-block",
            message="block is unreachable from the function entry",
            function=fn.name,
            block=block.name,
        )
        for block in fn.blocks
        if block not in reachable
    ]


class _SlotLiveness(DataflowProblem):
    """Backward liveness of alloca *slots* (not SSA values): a slot is
    live when some path to an exit loads it before storing over it."""

    direction = BACKWARD

    def __init__(self, tracked: Iterable[AllocaInst]):
        self.tracked = set(tracked)

    def boundary(self, fn: Function):
        return frozenset()

    def initial(self, fn: Function):
        return frozenset()

    def meet(self, a, b):
        return a | b

    def transfer(self, block, state):
        live = set(state)
        for inst in reversed(block.instructions):
            if isinstance(inst, LoadInst) and inst.pointer in self.tracked:
                live.add(inst.pointer)
            elif isinstance(inst, StoreInst) and inst.pointer in self.tracked:
                live.discard(inst.pointer)
        return frozenset(live)


def lint_dead_stores(fn: Function) -> List[Diagnostic]:
    tracked = _tracked_allocas(fn)
    if not tracked:
        return []
    problem = _SlotLiveness(tracked)
    result = solve(problem, fn)
    diags: List[Diagnostic] = []
    for block in reachable_blocks(fn):
        live = set(result.block_out[block])
        for inst in reversed(block.instructions):
            if isinstance(inst, LoadInst) and inst.pointer in problem.tracked:
                live.add(inst.pointer)
            elif isinstance(inst, StoreInst) and inst.pointer in problem.tracked:
                if inst.pointer not in live:
                    diags.append(Diagnostic(
                        severity=SEVERITY_WARNING,
                        check="dead-store",
                        message=(
                            f"store to %{inst.pointer.name} is never read"
                        ),
                        function=fn.name,
                        block=block.name,
                    ))
                live.discard(inst.pointer)
    return diags


def lint_uninitialized_loads(fn: Function) -> List[Diagnostic]:
    tracked = _tracked_allocas(fn)
    if not tracked:
        return []
    problem = ReachingStores(tracked)
    result = solve(problem, fn)
    diags: List[Diagnostic] = []
    for block in reachable_blocks(fn):
        state: Dict = dict(result.block_in[block])
        for inst in block.instructions:
            if (
                isinstance(inst, LoadInst)
                and inst.pointer in problem.tracked
                and UNINIT in state.get(inst.pointer, frozenset())
            ):
                diags.append(Diagnostic(
                    severity=SEVERITY_WARNING,
                    check="uninitialized-load",
                    message=(
                        f"%{inst.name} may read %{inst.pointer.name} "
                        f"before it is written"
                    ),
                    function=fn.name,
                    block=block.name,
                ))
            problem.step(inst, state)
    return diags


def lint_constant_conditions(fn: Function) -> List[Diagnostic]:
    ranges = compute_value_ranges(fn)
    diags: List[Diagnostic] = []
    for block in reachable_blocks(fn):
        term = block.terminator
        if not (isinstance(term, BranchInst) and term.is_conditional):
            continue
        cond = term.cond
        verdict = None
        if isinstance(cond, ConstantInt):
            verdict = bool(cond.value)
        else:
            r = ranges.get(cond)
            if r is not None and r.lo == r.hi:
                verdict = bool(r.lo)
        if verdict is not None:
            diags.append(Diagnostic(
                severity=SEVERITY_WARNING,
                check="constant-condition",
                message=(
                    f"branch condition is always "
                    f"{'true' if verdict else 'false'}"
                ),
                function=fn.name,
                block=block.name,
            ))
    return diags


_DIV_OPCODES = ("sdiv", "udiv", "srem", "urem")
_SHIFT_OPCODES = ("shl", "lshr", "ashr")


def _range_of(value, ranges) -> ValueRange:
    if isinstance(value, ConstantInt):
        return ValueRange(value.signed, value.signed)
    r = ranges.get(value)
    if r is not None:
        return r
    return full_range(value.type)


def _provably_nonzero(value) -> bool:
    """Bit-level refinement the interval analysis cannot express:
    ``x | c`` with ``c != 0`` keeps at least c's bits set, so the result
    is nonzero — the standard ``d | 1`` divisor-guard idiom."""
    if isinstance(value, ConstantInt):
        return value.value != 0
    if isinstance(value, BinaryInst) and value.opcode == "or":
        return _provably_nonzero(value.lhs) or _provably_nonzero(value.rhs)
    return False


def lint_div_by_zero(fn: Function) -> List[Diagnostic]:
    """Divisions whose divisor interval contains zero.

    Zero has the same bit pattern under both signedness conventions, so
    the signed interval answers for ``udiv``/``urem`` too: the divisor
    may be zero iff its signed interval straddles 0.
    """
    ranges = compute_value_ranges(fn)
    diags: List[Diagnostic] = []
    for block in reachable_blocks(fn):
        for inst in block.instructions:
            if not (isinstance(inst, BinaryInst)
                    and inst.opcode in _DIV_OPCODES):
                continue
            if _provably_nonzero(inst.rhs):
                continue
            r = _range_of(inst.rhs, ranges)
            if not (r.lo <= 0 <= r.hi):
                continue  # proven nonzero
            if r.lo == r.hi == 0:
                severity, what = SEVERITY_WARNING, "is always zero"
            elif r != full_range(inst.rhs.type):
                severity, what = SEVERITY_WARNING, f"may be zero (range {r})"
            else:
                severity, what = SEVERITY_NOTE, "is unknown and may be zero"
            diags.append(Diagnostic(
                severity=severity,
                check="div-by-zero",
                message=f"divisor of {inst.opcode} %{inst.name} {what}",
                function=fn.name,
                block=block.name,
            ))
    return diags


def lint_shift_range(fn: Function) -> List[Diagnostic]:
    """Shift amounts that may be negative or >= the operand width.

    The IR's shift semantics are total (over-wide shifts saturate to
    0 / sign fill, see :mod:`repro.ir.semantics`), so this is a logic
    lint, not a UB lint: such shifts almost always mean the program
    computed the amount wrong.
    """
    ranges = compute_value_ranges(fn)
    diags: List[Diagnostic] = []
    for block in reachable_blocks(fn):
        for inst in block.instructions:
            if not (isinstance(inst, BinaryInst)
                    and inst.opcode in _SHIFT_OPCODES):
                continue
            bits = inst.type.bits
            r = _range_of(inst.rhs, ranges)
            if 0 <= r.lo and r.hi < bits:
                continue  # proven in range
            if r.hi < 0 or r.lo >= bits:
                severity = SEVERITY_WARNING
                what = f"is always out of range (range {r})"
            elif r != full_range(inst.rhs.type):
                severity = SEVERITY_WARNING
                what = f"may be out of range (range {r})"
            else:
                severity = SEVERITY_NOTE
                what = "is unknown and may be out of range"
            diags.append(Diagnostic(
                severity=severity,
                check="shift-range",
                message=(
                    f"shift amount of {inst.opcode} %{inst.name} {what} "
                    f"for {inst.type}"
                ),
                function=fn.name,
                block=block.name,
            ))
    return diags


def lint_overflow_candidates(fn: Function) -> List[Diagnostic]:
    ranges = compute_value_ranges(fn)
    diags: List[Diagnostic] = []
    for block in reachable_blocks(fn):
        for inst in block.instructions:
            if (
                isinstance(inst, BinaryInst)
                and inst.opcode in ("add", "sub", "mul")
                and inst.type.bits < 64
                and may_overflow(inst, ranges)
            ):
                diags.append(Diagnostic(
                    severity=SEVERITY_NOTE,
                    check="overflow-candidate",
                    message=(
                        f"signed {inst.opcode} %{inst.name} may overflow "
                        f"{inst.type}"
                    ),
                    function=fn.name,
                    block=block.name,
                ))
    return diags
