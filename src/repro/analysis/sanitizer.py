"""Probe-integrity sanitizer: static distortion detection at pass boundaries.

The paper's correctness argument (§2.2) is that instrument-first probes act
as optimization barriers: a probe inserted into un-optimized IR must reach
the backend un-distorted.  The differential oracle in :mod:`repro.check`
verifies this *dynamically*; this sanitizer verifies it *statically*, in
milliseconds, between optimization passes — and attributes any violation
to the pass that introduced it.

It watches the module-level footprint probes leave after instrumentation:
calls to the probe runtimes (``__odin_cov_hit``, ``__cmplog_hit``, ...)
whose first argument is the constant probe id.  After each pass it
re-snapshots that footprint and diffs it against the previous one:

* a probe call that vanished from live, reachable code → **probe-erased**
  (the paper's CFG-restructuring distortion: a CovProbe block merged or
  deleted while enabled);
* a CmpProbe whose frozen value operands all became constants →
  **probe-operands-folded** (comparison folding: instcombine must not
  rewrite across the ``freeze`` barrier);
* a probe call left only in dead or unreachable code → a
  **probe-unreachable** warning (coverage silently lost);
* a probe runtime symbol internalized, turned into a definition (an
  inlining enabler) or dropped while calls remain → value-shifting
  hazards on the runtime boundary itself.

Pass-to-pass diffing is what makes the clean pipeline run silent: a probe
inside an internal function that is dead on arrival (no callers in its
fragment) is legitimately removed by globaldce, and because the previous
snapshot already marked it non-live the sanitizer stays quiet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.diagnostics import (
    Diagnostic,
    SEVERITY_ERROR,
    SEVERITY_WARNING,
)
from repro.ir.analysis import executable_blocks
from repro.ir.instructions import CallInst
from repro.ir.module import Function, Module
from repro.ir.values import Constant, ConstantInt, GlobalAlias

# Runtime symbols whose calls carry a leading constant probe id.  Literal
# names (not imports from repro.instrument) so the analysis layer stays
# import-cycle-free below the instrumentation tools.
DEFAULT_PROBE_RUNTIMES = (
    "__odin_cov_hit",
    "__cmplog_hit",
    "__ubsan_check",
    "__asan_check",
    "__sancov_hit",
    "__odin_prof_enter",
    "__odin_prof_exit",
)

# Runtimes whose value operands are pinned with ``freeze`` at
# instrumentation time: every live call keeps at least one non-constant
# argument, so an all-constant argument list proves a pass folded through
# the barrier.  (UBSan/ASan conditions may legitimately fold to a
# constant when the check is provably never-firing, so they are not
# listed here.)
FROZEN_OPERAND_RUNTIMES = ("__cmplog_hit",)


@dataclass(frozen=True)
class _Occurrence:
    """One probe call site in one snapshot."""

    function: str
    block: str
    reachable: bool        # block executable from the function entry
    live: bool             # function reachable from an external root
    const_value_args: bool  # every argument past the probe id is constant


@dataclass
class _Snapshot:
    """Module probe footprint after one pass."""

    # (runtime symbol, probe id) -> call sites
    occurrences: Dict[Tuple[str, int], List[_Occurrence]]
    # runtime symbol -> (linkage, is_declaration)
    runtime_state: Dict[str, Tuple[str, bool]]


def _live_function_names(module: Module) -> Set[str]:
    """Functions reachable from the module's external-linkage roots."""
    roots: List[Function] = []
    for symbol in module.symbols.values():
        if isinstance(symbol, Function) and not symbol.is_declaration():
            if not symbol.is_internal:
                roots.append(symbol)
        elif isinstance(symbol, GlobalAlias) and not symbol.is_internal:
            if isinstance(symbol.aliasee, Function):
                roots.append(symbol.aliasee)
    live: Set[str] = set()
    stack = list(roots)
    while stack:
        fn = stack.pop()
        if fn.name in live:
            continue
        live.add(fn.name)
        if fn.is_declaration():
            continue
        for ref in fn.referenced_globals():
            target = ref.aliasee if isinstance(ref, GlobalAlias) else ref
            if isinstance(target, Function) and target.name not in live:
                stack.append(target)
    return live


class ProbeIntegritySanitizer:
    """Watches one module's probe footprint across a pass pipeline.

    Construct it over the instrumented module *before* optimization, then
    call :meth:`advance` after every pass; each call returns the
    :class:`Diagnostic` list for that pass (empty when clean).
    """

    def __init__(self, module: Module, runtimes: Optional[Iterable[str]] = None):
        self.module = module
        self.runtimes = tuple(runtimes) if runtimes else DEFAULT_PROBE_RUNTIMES
        self._snapshot = self._capture()

    # -- snapshotting ------------------------------------------------------------

    def _capture(self) -> _Snapshot:
        occurrences: Dict[Tuple[str, int], List[_Occurrence]] = {}
        live = _live_function_names(self.module)
        runtime_names = set(self.runtimes)
        for fn in self.module.defined_functions():
            # Executable (not merely edge-connected) reachability: the
            # never-taken arm of a constant-folded branch no longer
            # protects its probes — removing them is legitimate.
            reachable = set(executable_blocks(fn))
            fn_live = fn.name in live
            for block in fn.blocks:
                for inst in block.instructions:
                    if not isinstance(inst, CallInst):
                        continue
                    callee = inst.called_function_name()
                    if callee not in runtime_names:
                        continue
                    args = inst.args
                    if not args or not isinstance(args[0], ConstantInt):
                        continue  # not a probe-shaped call
                    occ = _Occurrence(
                        function=fn.name,
                        block=block.name,
                        reachable=block in reachable,
                        live=fn_live,
                        const_value_args=all(
                            isinstance(a, Constant) for a in args[1:]
                        ),
                    )
                    key = (callee, args[0].signed)
                    occurrences.setdefault(key, []).append(occ)
        runtime_state: Dict[str, Tuple[str, bool]] = {}
        for name in self.runtimes:
            symbol = self.module.get_or_none(name)
            if symbol is not None:
                runtime_state[name] = (symbol.linkage, symbol.is_declaration())
        return _Snapshot(occurrences, runtime_state)

    # -- the check ---------------------------------------------------------------

    def advance(self, pass_name: str) -> List[Diagnostic]:
        """Diff the module against the last snapshot; attribute findings
        to *pass_name*; make the new state the baseline."""
        prev, cur = self._snapshot, self._capture()
        self._snapshot = cur
        diags: List[Diagnostic] = []
        diags.extend(self._check_occurrences(prev, cur, pass_name))
        diags.extend(self._check_runtimes(prev, cur, pass_name))
        return diags

    def check_module(self) -> List[Diagnostic]:
        """One-shot consistency report on the current module state:
        warnings for probes that exist only in dead or unreachable code."""
        cur = self._capture()
        diags: List[Diagnostic] = []
        for (runtime, probe_id), occs in sorted(cur.occurrences.items()):
            if not any(o.live and o.reachable for o in occs):
                diags.append(Diagnostic(
                    severity=SEVERITY_WARNING,
                    check="probe-unreachable",
                    message=(
                        f"every call to @{runtime} for this probe sits in "
                        f"dead or unreachable code"
                    ),
                    function=occs[0].function,
                    block=occs[0].block,
                    probe_id=probe_id,
                ))
        return diags

    def _check_occurrences(
        self, prev: _Snapshot, cur: _Snapshot, pass_name: str
    ) -> List[Diagnostic]:
        diags: List[Diagnostic] = []
        for key, prev_occs in sorted(prev.occurrences.items()):
            runtime, probe_id = key
            prev_live = [o for o in prev_occs if o.live and o.reachable]
            if not prev_live:
                continue  # already dead before this pass: nothing to lose
            cur_occs = cur.occurrences.get(key, [])
            if not cur_occs:
                diags.append(Diagnostic(
                    severity=SEVERITY_ERROR,
                    check="probe-erased",
                    message=(
                        f"call to @{runtime} disappeared from live code "
                        f"(was in @{prev_live[0].function}:"
                        f"{prev_live[0].block})"
                    ),
                    function=prev_live[0].function,
                    block=prev_live[0].block,
                    pass_name=pass_name,
                    probe_id=probe_id,
                ))
                continue
            cur_live = [o for o in cur_occs if o.live and o.reachable]
            if not cur_live:
                diags.append(Diagnostic(
                    severity=SEVERITY_WARNING,
                    check="probe-unreachable",
                    message=(
                        f"call to @{runtime} survives only in dead or "
                        f"unreachable code"
                    ),
                    function=cur_occs[0].function,
                    block=cur_occs[0].block,
                    pass_name=pass_name,
                    probe_id=probe_id,
                ))
                continue
            if runtime in FROZEN_OPERAND_RUNTIMES:
                if (any(not o.const_value_args for o in prev_live)
                        and all(o.const_value_args for o in cur_live)):
                    diags.append(Diagnostic(
                        severity=SEVERITY_ERROR,
                        check="probe-operands-folded",
                        message=(
                            f"every value operand of @{runtime} became a "
                            f"constant; a pass folded through the freeze "
                            f"barrier"
                        ),
                        function=cur_live[0].function,
                        block=cur_live[0].block,
                        pass_name=pass_name,
                        probe_id=probe_id,
                    ))
        return diags

    def _check_runtimes(
        self, prev: _Snapshot, cur: _Snapshot, pass_name: str
    ) -> List[Diagnostic]:
        diags: List[Diagnostic] = []
        for name, (linkage, was_decl) in sorted(prev.runtime_state.items()):
            calls_remain = any(
                key[0] == name and any(o.live and o.reachable for o in occs)
                for key, occs in cur.occurrences.items()
            )
            state = cur.runtime_state.get(name)
            if state is None:
                if calls_remain:
                    diags.append(Diagnostic(
                        severity=SEVERITY_ERROR,
                        check="probe-runtime-removed",
                        message=(
                            f"probe runtime @{name} was removed from the "
                            f"module while live calls to it remain"
                        ),
                        pass_name=pass_name,
                    ))
                continue
            new_linkage, is_decl = state
            if linkage == "external" and new_linkage == "internal":
                diags.append(Diagnostic(
                    severity=SEVERITY_ERROR,
                    check="probe-runtime-internalized",
                    message=(
                        f"probe runtime @{name} was internalized; its "
                        f"calls no longer bind to the shared runtime"
                    ),
                    pass_name=pass_name,
                ))
            if was_decl and not is_decl:
                diags.append(Diagnostic(
                    severity=SEVERITY_ERROR,
                    check="probe-runtime-defined",
                    message=(
                        f"probe runtime @{name} gained a body; a pass may "
                        f"now inline the probe away"
                    ),
                    pass_name=pass_name,
                ))
        return diags
