"""repro.backend — instruction selection, register costing, object files."""

from repro.backend.costmodel import compile_cost_ms, frontend_cost_ms, link_cost_ms
from repro.backend.isel import PROBE_RUNTIME_FUNCTIONS, lower_function, lower_module
from repro.backend.machine import DataSymbol, MachineFunction, MachineInst, ObjectFile

__all__ = [
    "compile_cost_ms", "frontend_cost_ms", "link_cost_ms",
    "lower_function", "lower_module", "PROBE_RUNTIME_FUNCTIONS",
    "DataSymbol", "MachineFunction", "MachineInst", "ObjectFile",
]
