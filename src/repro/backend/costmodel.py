"""Cost models: execution cycles and compile time.

The paper's figures report *relative* wall-clock durations on real
hardware; this reproduction replaces the hardware with two deterministic
models.

Execution (cycles per machine instruction)
-------------------------------------------
The table approximates a modern out-of-order x86 core's throughput-ish
costs the same way llvm-mca's summary would: cheap ALU, pricier memory,
expensive division, moderate call overhead.  Spill penalties are added by
the register allocator.  Probe costs follow the instrumentation designs:
an inlined 8-bit counter update is a load-add-store (3), a CmpLog probe
writes both operands plus a header (8), an ASan-style check is a shadow
load, compare and branch (6).

Compile time (simulated milliseconds)
-------------------------------------
Calibrated so whole-program figures land in the paper's regime (tens of
seconds for a libxml2-sized program, §2.3 / Fig. 3): per-function cost is
linear in instructions for the middle end plus a superlinear term for
instruction selection + register allocation — which is what makes sqlite's
enormous ``sqlite3VdbeExec``-style function dominate worst-case
recompilation (Fig. 12).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

if TYPE_CHECKING:  # pragma: no cover
    from repro.backend.machine import MachineFunction, ObjectFile
    from repro.ir.module import Function, Module

# -- execution cycle costs ------------------------------------------------------

BASE_COST: Dict[str, int] = {
    "mov": 1, "movi": 1, "lea": 1, "leaf": 1,
    "bin": 1, "bini": 1,
    "cmp": 1, "cmpi": 1,
    "cast": 1,
    "sel": 1,
    "ld": 3, "st": 2,
    "addsc": 1,
    "jmp": 1, "brt": 3, "switch": 4,
    "ret": 2,
    "icall": 8,
    "trap": 0,
    "bb": 0,
    "freeze": 0,
}

MUL_COST = 3
DIV_COST = 20
CALL_BASE_COST = 6
CALL_PER_ARG_COST = 1
SPILL_PENALTY = 0  # see DESIGN.md: naive spill ranking mispriced inlining

PROBE_COST: Dict[str, int] = {
    "cov": 2,          # inlined 8-bit counter: load, inc, store (reg-cached)
    "cmplog": 8,       # record both operands + header into a log
    "asan": 6,         # shadow load + compare + branch
    "ubsan": 4,        # range/overflow check + branch
    "prof_enter": 9,   # read timestamp + push shadow-stack frame + edge count
    "prof_exit": 7,    # read timestamp + pop frame + accumulate incl/excl
}

# Number of "physical" registers; the hottest vregs get them, the rest spill.
NUM_PHYS_REGS = 24


def base_cost(op: str) -> int:
    """Cycle cost of a machine op before spill penalties."""
    head = op.split(".", 1)[0]
    if head in ("bin", "bini"):
        kind = op.split(".")[1]
        if kind == "mul":
            return MUL_COST
        if kind in ("sdiv", "udiv", "srem", "urem"):
            return DIV_COST
        return BASE_COST[head]
    try:
        return BASE_COST[head]
    except KeyError:
        raise KeyError(f"no cost defined for machine op {op!r}") from None


# -- compile-time model --------------------------------------------------------------

# Middle end: per-instruction optimization cost.
OPT_MS_PER_INST = 0.07
# Back end: linear ISel/scheduling plus superlinear regalloc/coalescing.
ISEL_MS_PER_INST = 0.05
REGALLOC_MS_COEFF = 0.008
REGALLOC_EXPONENT = 1.55
# Fixed per-compile overhead (pipeline setup, symbol table churn).
COMPILE_FIXED_MS = 0.4
PER_FUNCTION_MS = 0.02

# Frontend model (only the whole-program build pays this; recompiles reuse
# cached bitcode, §2.3): lexing/parsing/sema per source line.
FRONTEND_MS_PER_LINE = 1.35

# Linker: symbol resolution + image copy.
LINK_FIXED_MS = 35.0
LINK_MS_PER_SYMBOL = 0.25
LINK_MS_PER_CODE_UNIT = 0.004

# Stage-1 probe patching (Algorithm 2 fast path): flipping a counter-style
# probe rewrites a handful of bytes in a cached object instead of running
# the middle end — fixed bookkeeping plus a per-site touch cost.
PATCH_FIXED_MS = 0.05
PATCH_MS_PER_SITE = 0.01
# Patching the linked image in place (swap the patched functions, keep
# data/layout/resolution): far below a full relink's symbol resolution.
IMAGE_PATCH_FIXED_MS = 1.2
IMAGE_PATCH_MS_PER_FUNCTION = 0.08


def compile_cost_ms(module: "Module") -> float:
    """Simulated middle-end + backend time to compile *module*."""
    total = COMPILE_FIXED_MS
    for fn in module.defined_functions():
        n = fn.count_instructions()
        total += PER_FUNCTION_MS
        total += n * (OPT_MS_PER_INST + ISEL_MS_PER_INST)
        total += REGALLOC_MS_COEFF * (n ** REGALLOC_EXPONENT)
    return total


def middle_end_cost_ms(module: "Module") -> float:
    """The optimize (middle-end) share of :func:`compile_cost_ms`.

    Per-pass span attribution splits this share across the pipeline's
    passes in proportion to their charged work; the backend (ISel +
    regalloc + fixed overhead) share is the exact remainder, so the two
    stage spans always sum to the fragment's ``compile_ms``.
    """
    total = 0.0
    for fn in module.defined_functions():
        total += fn.count_instructions() * OPT_MS_PER_INST
    return total


def link_cost_ms(num_symbols: int, code_size: int) -> float:
    """Simulated link time for an executable image."""
    return LINK_FIXED_MS + num_symbols * LINK_MS_PER_SYMBOL + code_size * LINK_MS_PER_CODE_UNIT


def probe_patch_cost_ms(sites_touched: int) -> float:
    """Simulated time to flip *sites_touched* probe sites in a cached object."""
    return PATCH_FIXED_MS + sites_touched * PATCH_MS_PER_SITE


def image_patch_cost_ms(functions_replaced: int) -> float:
    """Simulated time to splice patched functions into the linked image."""
    return IMAGE_PATCH_FIXED_MS + functions_replaced * IMAGE_PATCH_MS_PER_FUNCTION


def frontend_cost_ms(source_lines: int) -> float:
    """Simulated clang-frontend time for a source of *source_lines* lines."""
    return source_lines * FRONTEND_MS_PER_LINE
