"""Instruction selection: IR module -> object file.

Lowering pipeline per function:

1. split critical edges so phi moves have a home
2. number basic blocks, assign virtual registers to SSA values
3. emit machine instructions per block (constants fold into immediate
   forms; globals materialize through ``lea``; allocas become static
   frame slots)
4. eliminate phis with parallel-copy move sequences in predecessors
5. lay out blocks, resolve branch targets to instruction indices
6. "register allocate": rank vregs by use count, give the hottest
   :data:`NUM_PHYS_REGS` zero-cost access and bake spill penalties into
   the cost of every instruction touching the rest

Probe calls — calls to the well-known instrumentation runtime functions —
lower to dedicated ``probe`` instructions with their scheme's cost instead
of full calls, modelling inlined instrumentation sequences.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.backend.costmodel import (
    CALL_BASE_COST,
    CALL_PER_ARG_COST,
    NUM_PHYS_REGS,
    PROBE_COST,
    SPILL_PENALTY,
    base_cost,
    compile_cost_ms,
)
from repro.backend.machine import (
    DataSymbol,
    MachineFunction,
    MachineInst,
    ObjectFile,
)
from repro.errors import BackendError
from repro.ir.builder import IRBuilder
from repro.ir.instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    FreezeInst,
    GepInst,
    IcmpInst,
    Instruction,
    LoadInst,
    PhiInst,
    RetInst,
    SelectInst,
    StoreInst,
    SwitchInst,
    UnreachableInst,
)
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.values import (
    Argument,
    ConstantArray,
    ConstantData,
    ConstantInt,
    GlobalValue,
    NullPtr,
    UndefValue,
    Value,
)

# Instrumentation runtime functions lowered to probe instructions.
PROBE_RUNTIME_FUNCTIONS: Dict[str, str] = {
    "__odin_cov_hit": "cov",
    "__sancov_hit": "cov",
    "__cmplog_hit": "cmplog",
    "__asan_check": "asan",
    "__ubsan_check": "ubsan",
    "__odin_prof_enter": "prof_enter",
    "__odin_prof_exit": "prof_exit",
}


def lower_module(module: Module) -> ObjectFile:
    """Lower every definition in *module* to an object file.

    Critical-edge splitting mutates the module's CFG (semantics preserved);
    modules handed to the backend are treated as compilation scratch.
    """
    obj = ObjectFile(module.name)
    for gv in module.global_variables():
        if gv.is_declaration():
            obj.imports.append(gv.name)
        else:
            obj.add_data(
                DataSymbol(gv.name, _lower_initializer(gv), gv.linkage, gv.is_const)
            )
    for fn in module.functions():
        if fn.is_declaration():
            obj.imports.append(fn.name)
        else:
            obj.add_function(lower_function(fn))
    for alias in module.aliases():
        obj.aliases[alias.name] = (alias.aliasee.name, alias.linkage)
    obj.compile_ms = compile_cost_ms(module)
    return obj


def _lower_initializer(gv) -> bytes:
    init = gv.initializer
    if isinstance(init, ConstantInt):
        return init.value.to_bytes(init.type.size, "little")
    if isinstance(init, ConstantData):
        data = init.data
        want = gv.value_type.size
        return data + b"\x00" * (want - len(data)) if len(data) < want else data[:want]
    if isinstance(init, ConstantArray):
        width = init.element_type.size
        return b"".join(v.to_bytes(width, "little") for v in init.values)
    if isinstance(init, NullPtr):
        return b"\x00" * 8
    if isinstance(init, UndefValue):
        return b"\x00" * gv.value_type.size
    raise BackendError(f"cannot lower initializer of @{gv.name}: {init!r}")


def split_critical_edges(fn: Function) -> None:
    """Insert empty blocks on critical edges into blocks with phis."""
    for block in list(fn.blocks):
        if not block.phis():
            continue
        preds = block.predecessors()
        if len(preds) < 2:
            continue
        for pred in preds:
            if len(pred.successors()) < 2:
                continue
            term = pred.terminator
            # A switch may reach `block` through several edges; one split
            # block per predecessor is enough since all carry the same value.
            mid = fn.add_block(f"{pred.name}.{block.name}.crit")
            IRBuilder.at_end(mid).br(block)
            term.replace_target(block, mid)
            for phi in block.phis():
                phi.replace_incoming_block(pred, mid)


class _FunctionLowering:
    def __init__(self, fn: Function):
        self.fn = fn
        self.reg_of: Dict[int, int] = {}
        self.next_reg = 0
        self.frame_offsets: Dict[int, int] = {}
        self.frame_size = 0
        self.block_ids: Dict[int, int] = {}
        # Per-block machine code; merged at layout time.
        self.block_code: List[List[MachineInst]] = []

    # -- registers -----------------------------------------------------------

    def new_reg(self) -> int:
        reg = self.next_reg
        self.next_reg += 1
        return reg

    def reg_for(self, value: Value) -> int:
        reg = self.reg_of.get(id(value))
        if reg is None:
            reg = self.new_reg()
            self.reg_of[id(value)] = reg
        return reg

    # -- main ------------------------------------------------------------------

    def run(self) -> MachineFunction:
        fn = self.fn
        split_critical_edges(fn)

        mf = MachineFunction(fn.name, fn.linkage)
        for i, arg in enumerate(fn.args):
            self.reg_of[id(arg)] = self.new_reg()

        for i, block in enumerate(fn.blocks):
            self.block_ids[id(block)] = i
            mf.block_names[i] = block.name
        mf.num_blocks = len(fn.blocks)

        # Allocate frame slots for allocas up front (static frame layout).
        for inst in fn.instructions():
            if isinstance(inst, AllocaInst):
                size = max(1, inst.allocated_type.size)
                size = (size + 7) & ~7
                self.frame_offsets[id(inst)] = self.frame_size
                self.frame_size += size

        for block in fn.blocks:
            self.block_code.append(self._lower_block(block))

        self._eliminate_phis(fn)
        insts = self._layout(fn)
        self._apply_regalloc(insts)

        mf.insts = insts
        mf.num_regs = self.next_reg
        mf.frame_size = self.frame_size
        return mf

    # -- block lowering --------------------------------------------------------

    def _lower_block(self, block: BasicBlock) -> List[MachineInst]:
        code: List[MachineInst] = [
            MachineInst("bb", imm=self.block_ids[id(block)], cost=0)
        ]
        for inst in block.instructions:
            if isinstance(inst, PhiInst):
                self.reg_for(inst)  # reserve the register; moves come later
                continue
            self._lower_inst(inst, code)
        return code

    def _emit(self, code: List[MachineInst], inst: MachineInst) -> MachineInst:
        inst.cost = self._initial_cost(inst)
        code.append(inst)
        return inst

    @staticmethod
    def _initial_cost(inst: MachineInst) -> int:
        if inst.op == "call":
            return CALL_BASE_COST + CALL_PER_ARG_COST * len(inst.args)
        if inst.op == "icall":
            return base_cost("icall") + CALL_PER_ARG_COST * len(inst.args)
        if inst.op == "probe":
            return PROBE_COST[inst.probe_kind]
        return base_cost(inst.op)

    def _materialize(self, value: Value, code: List[MachineInst]) -> int:
        """Return a register holding *value*, emitting code if needed."""
        if isinstance(value, ConstantInt):
            # Registers hold the unsigned (wrapped) representation.
            reg = self.new_reg()
            self._emit(code, MachineInst("movi", dst=reg, imm=value.value))
            return reg
        if isinstance(value, NullPtr):
            reg = self.new_reg()
            self._emit(code, MachineInst("movi", dst=reg, imm=0))
            return reg
        if isinstance(value, UndefValue):
            reg = self.new_reg()
            self._emit(code, MachineInst("movi", dst=reg, imm=0))
            return reg
        if isinstance(value, GlobalValue):
            reg = self.new_reg()
            self._emit(code, MachineInst("lea", dst=reg, sym=value.name))
            return reg
        if isinstance(value, AllocaInst):
            reg = self.new_reg()
            self._emit(
                code,
                MachineInst("leaf", dst=reg, imm=self.frame_offsets[id(value)]),
            )
            return reg
        if isinstance(value, (Instruction, Argument)):
            return self.reg_for(value)
        raise BackendError(f"cannot materialize operand {value!r}")

    def _index_reg(self, value: Value, code: List[MachineInst]) -> int:
        """Materialize a GEP index, widening to 64 bits if needed."""
        reg = self._materialize(value, code)
        bits = value.type.bits if value.type.is_integer() else 64
        if bits < 64:
            wide = self.new_reg()
            self._emit(
                code, MachineInst(f"cast.sext.{bits}.64", dst=wide, srcs=(reg,))
            )
            return wide
        return reg

    @staticmethod
    def _width(value: Value) -> int:
        if value.type.is_integer():
            return max(8, value.type.bits)
        return 64  # pointers

    def _lower_inst(self, inst: Instruction, code: List[MachineInst]) -> None:
        if isinstance(inst, AllocaInst):
            return  # frame slot; address materialized at use sites
        if isinstance(inst, BinaryInst):
            bits = inst.type.bits
            if isinstance(inst.rhs, ConstantInt):
                a = self._materialize(inst.lhs, code)
                self._emit(
                    code,
                    MachineInst(
                        f"bini.{inst.opcode}.{bits}",
                        dst=self.reg_for(inst),
                        srcs=(a,),
                        imm=inst.rhs.value,
                    ),
                )
            else:
                a = self._materialize(inst.lhs, code)
                b = self._materialize(inst.rhs, code)
                self._emit(
                    code,
                    MachineInst(
                        f"bin.{inst.opcode}.{bits}",
                        dst=self.reg_for(inst),
                        srcs=(a, b),
                    ),
                )
            return
        if isinstance(inst, IcmpInst):
            bits = inst.lhs.type.bits if inst.lhs.type.is_integer() else 64
            if isinstance(inst.rhs, ConstantInt):
                a = self._materialize(inst.lhs, code)
                self._emit(
                    code,
                    MachineInst(
                        f"cmpi.{inst.predicate}.{bits}",
                        dst=self.reg_for(inst),
                        srcs=(a,),
                        imm=inst.rhs.value,
                    ),
                )
            else:
                a = self._materialize(inst.lhs, code)
                b = self._materialize(inst.rhs, code)
                self._emit(
                    code,
                    MachineInst(
                        f"cmp.{inst.predicate}.{bits}",
                        dst=self.reg_for(inst),
                        srcs=(a, b),
                    ),
                )
            return
        if isinstance(inst, CastInst):
            src = self._materialize(inst.value, code)
            if inst.opcode in ("ptrtoint", "inttoptr"):
                self._emit(code, MachineInst("mov", dst=self.reg_for(inst), srcs=(src,)))
                return
            from_bits = inst.value.type.bits
            to_bits = inst.type.bits
            self._emit(
                code,
                MachineInst(
                    f"cast.{inst.opcode}.{from_bits}.{to_bits}",
                    dst=self.reg_for(inst),
                    srcs=(src,),
                ),
            )
            return
        if isinstance(inst, SelectInst):
            c = self._materialize(inst.cond, code)
            a = self._materialize(inst.if_true, code)
            b = self._materialize(inst.if_false, code)
            self._emit(
                code, MachineInst("sel", dst=self.reg_for(inst), srcs=(c, a, b))
            )
            return
        if isinstance(inst, FreezeInst):
            src = self._materialize(inst.value, code)
            self._emit(code, MachineInst("freeze", dst=self.reg_for(inst), srcs=(src,)))
            return
        if isinstance(inst, LoadInst):
            addr = self._materialize(inst.pointer, code)
            self._emit(
                code,
                MachineInst(
                    f"ld.{self._width(inst)}", dst=self.reg_for(inst), srcs=(addr,)
                ),
            )
            return
        if isinstance(inst, StoreInst):
            value = self._materialize(inst.value, code)
            addr = self._materialize(inst.pointer, code)
            self._emit(
                code,
                MachineInst(f"st.{self._width(inst.value)}", srcs=(addr, value)),
            )
            return
        if isinstance(inst, GepInst):
            base = self._materialize(inst.base, code)
            index = self._index_reg(inst.index, code)
            self._emit(
                code,
                MachineInst(
                    "addsc",
                    dst=self.reg_for(inst),
                    srcs=(base, index),
                    imm=max(1, inst.element_type.size),
                ),
            )
            return
        if isinstance(inst, CallInst):
            self._lower_call(inst, code)
            return
        if isinstance(inst, BranchInst):
            if inst.is_conditional:
                cond = self._materialize(inst.cond, code)
                self._emit(
                    code,
                    MachineInst(
                        "brt",
                        srcs=(cond,),
                        targets=(
                            self.block_ids[id(inst.targets[0])],
                            self.block_ids[id(inst.targets[1])],
                        ),
                    ),
                )
            else:
                self._emit(
                    code,
                    MachineInst(
                        "jmp", targets=(self.block_ids[id(inst.targets[0])],)
                    ),
                )
            return
        if isinstance(inst, SwitchInst):
            value = self._materialize(inst.value, code)
            table = tuple(
                (c.signed, self.block_ids[id(b)]) for c, b in inst.cases
            )
            self._emit(
                code,
                MachineInst(
                    "switch",
                    srcs=(value,),
                    table=table,
                    targets=(self.block_ids[id(inst.default)],),
                ),
            )
            return
        if isinstance(inst, RetInst):
            if inst.value is not None:
                src = self._materialize(inst.value, code)
                self._emit(code, MachineInst("ret", srcs=(src,)))
            else:
                self._emit(code, MachineInst("ret"))
            return
        if isinstance(inst, UnreachableInst):
            self._emit(code, MachineInst("trap"))
            return
        raise BackendError(f"cannot lower instruction {inst!r}")

    def _lower_call(self, inst: CallInst, code: List[MachineInst]) -> None:
        callee_name = inst.called_function_name()
        dst = self.reg_for(inst) if not inst.type.is_void() else -1

        # Instrumentation runtime calls lower to probe instructions.
        probe_kind = PROBE_RUNTIME_FUNCTIONS.get(callee_name or "")
        if probe_kind is not None:
            args = inst.args
            probe_id = 0
            value_args: List[int] = []
            if args and isinstance(args[0], ConstantInt):
                probe_id = args[0].signed
                rest = args[1:]
            else:
                rest = args
            for arg in rest:
                value_args.append(self._materialize(arg, code))
            self._emit(
                code,
                MachineInst(
                    "probe",
                    probe_kind=probe_kind,
                    probe_id=probe_id,
                    args=tuple(value_args),
                ),
            )
            return

        arg_regs = tuple(self._materialize(a, code) for a in inst.args)
        if callee_name is not None:
            self._emit(
                code, MachineInst("call", dst=dst, sym=callee_name, args=arg_regs)
            )
        else:
            target = self._materialize(inst.callee, code)
            self._emit(
                code, MachineInst("icall", dst=dst, srcs=(target,), args=arg_regs)
            )

    # -- phi elimination ---------------------------------------------------------

    def _eliminate_phis(self, fn: Function) -> None:
        for block in fn.blocks:
            phis = block.phis()
            if not phis:
                continue
            for pred in block.predecessors():
                pred_code = self.block_code[self.block_ids[id(pred)]]
                moves: List[MachineInst] = []
                # Parallel copy via temporaries (handles phi swaps).
                temps: List[Tuple[int, int]] = []
                for phi in phis:
                    value = phi.incoming_for(pred)
                    tmp = self.new_reg()
                    src = self._materialize_into(value, moves, tmp)
                    temps.append((self.reg_for(phi), src))
                for phi_reg, tmp in temps:
                    moves.append(MachineInst("mov", dst=phi_reg, srcs=(tmp,), cost=1))
                # Insert before the terminator (last instruction).
                term_index = self._terminator_index(pred_code)
                pred_code[term_index:term_index] = moves

    def _materialize_into(
        self, value: Value, code: List[MachineInst], tmp: int
    ) -> int:
        """Like _materialize, but constants land in the given temp register."""
        if isinstance(value, ConstantInt):
            code.append(MachineInst("movi", dst=tmp, imm=value.value, cost=1))
            return tmp
        if isinstance(value, (NullPtr, UndefValue)):
            code.append(MachineInst("movi", dst=tmp, imm=0, cost=1))
            return tmp
        if isinstance(value, GlobalValue):
            code.append(MachineInst("lea", dst=tmp, sym=value.name, cost=1))
            return tmp
        if isinstance(value, AllocaInst):
            code.append(
                MachineInst("leaf", dst=tmp, imm=self.frame_offsets[id(value)], cost=1)
            )
            return tmp
        code.append(
            MachineInst("mov", dst=tmp, srcs=(self.reg_for(value),), cost=1)
        )
        return tmp

    @staticmethod
    def _terminator_index(code: List[MachineInst]) -> int:
        for i in range(len(code) - 1, -1, -1):
            if code[i].op in ("jmp", "brt", "switch", "ret", "trap"):
                return i
        return len(code)

    # -- layout and branch fixup -----------------------------------------------------

    def _layout(self, fn: Function) -> List[MachineInst]:
        insts: List[MachineInst] = []
        block_start: Dict[int, int] = {}
        for block_id, code in enumerate(self.block_code):
            block_start[block_id] = len(insts)
            insts.extend(code)
        for inst in insts:
            if inst.op in ("jmp", "brt"):
                inst.targets = tuple(block_start[t] for t in inst.targets)
            elif inst.op == "switch":
                inst.targets = (block_start[inst.targets[0]],)
                inst.table = tuple((v, block_start[t]) for v, t in inst.table)
        return insts

    # -- register allocation (cost model only) ------------------------------------------

    def _apply_regalloc(self, insts: List[MachineInst]) -> None:
        use_count: Dict[int, int] = {}
        for inst in insts:
            for reg in (inst.dst, *inst.srcs, *inst.args):
                if reg >= 0:
                    use_count[reg] = use_count.get(reg, 0) + 1
        hot = {
            reg
            for reg, _ in sorted(
                use_count.items(), key=lambda kv: (-kv[1], kv[0])
            )[:NUM_PHYS_REGS]
        }
        for inst in insts:
            spills = sum(
                1
                for reg in (inst.dst, *inst.srcs, *inst.args)
                if reg >= 0 and reg not in hot
            )
            inst.cost += spills * SPILL_PENALTY


def lower_function(fn: Function) -> MachineFunction:
    """Lower one IR function definition to machine code."""
    return _FunctionLowering(fn).run()
