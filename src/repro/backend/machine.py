"""Machine-level representation: instructions, functions, object files.

One IR module lowers to one :class:`ObjectFile` ("the minimal translation
unit of LLVM is a module.  It is lowered to an object file after code
generation", §2.3).  Object files carry defined symbols, imported symbols
and relocations, which is exactly the boundary Odin's fragments need: an
exported symbol of one object can be imported and used by another.

The machine is a register VM:

* unbounded virtual registers per function (the register allocator ranks
  them and bakes spill penalties into instruction cost)
* byte-addressable little-endian memory
* a static frame per call (spilled slots + alloca storage)

Branch targets are indices into the function's flat instruction list,
resolved at layout time.  ``bb`` marker instructions carry the function-
local basic-block id; they cost nothing natively but are where dynamic
binary instrumentation tools pay their per-block dispatch tax.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import BackendError

# Probe kinds understood by the VM's probe runtime.
PROBE_COV = "cov"
PROBE_CMPLOG = "cmplog"
PROBE_ASAN = "asan"
PROBE_UBSAN = "ubsan"


@dataclass
class MachineInst:
    """One machine instruction.

    ``op`` encodes the operation and, where relevant, the operand width,
    e.g. ``bin.add.32`` or ``ld.8``.  ``dst`` and ``srcs`` are virtual
    register numbers; ``imm`` is an integer immediate; ``sym`` a symbol
    reference (resolved by the linker); ``targets`` are instruction
    indices after layout.  ``cost`` is the cycle cost charged by the VM,
    set during lowering (spill penalties included).
    """

    op: str
    dst: int = -1
    srcs: Tuple[int, ...] = ()
    imm: int = 0
    sym: Optional[str] = None
    targets: Tuple[int, ...] = ()
    table: Tuple[Tuple[int, int], ...] = ()  # switch: (value, target index)
    cost: int = 1
    # call/icall/probe argument registers
    args: Tuple[int, ...] = ()
    # probe bookkeeping
    probe_kind: str = ""
    probe_id: int = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [self.op]
        if self.dst >= 0:
            parts.append(f"r{self.dst}")
        parts.extend(f"r{s}" for s in self.srcs)
        if self.sym is not None:
            parts.append(f"@{self.sym}")
        if self.targets:
            parts.append(f"->{list(self.targets)}")
        if self.op.endswith("i") or "imm" in self.op or self.imm:
            parts.append(f"#{self.imm}")
        return f"<{' '.join(parts)}>"

    def canonical(self) -> str:
        """Deterministic full-field encoding (repro check equivalence)."""
        return "|".join((
            self.op,
            str(self.dst),
            ",".join(map(str, self.srcs)),
            str(self.imm),
            self.sym or "",
            ",".join(map(str, self.targets)),
            ";".join(f"{v}:{t}" for v, t in self.table),
            str(self.cost),
            ",".join(map(str, self.args)),
            self.probe_kind,
            str(self.probe_id),
        ))


@dataclass
class MachineFunction:
    """A lowered function: flat instruction list plus frame metadata."""

    name: str
    linkage: str
    insts: List[MachineInst] = field(default_factory=list)
    num_regs: int = 0
    frame_size: int = 0
    num_blocks: int = 0
    # Map of function-local block id -> IR block name (probe mapping and
    # coverage reports use this).
    block_names: Dict[int, str] = field(default_factory=dict)

    @property
    def code_size(self) -> int:
        return len(self.insts)

    def canonical_dump(self) -> str:
        """Deterministic text form of the generated code and frame layout."""
        lines = [
            f"fn {self.name} linkage={self.linkage} regs={self.num_regs} "
            f"frame={self.frame_size} blocks={self.num_blocks}",
            "names " + " ".join(
                f"{bid}={name}" for bid, name in sorted(self.block_names.items())
            ),
        ]
        lines.extend(inst.canonical() for inst in self.insts)
        return "\n".join(lines)


@dataclass
class DataSymbol:
    """A global variable lowered to raw bytes."""

    name: str
    data: bytes
    linkage: str
    is_const: bool = False

    @property
    def size(self) -> int:
        return len(self.data)


@dataclass
class ObjectFile:
    """Result of compiling one module (= one Odin fragment)."""

    name: str
    functions: Dict[str, MachineFunction] = field(default_factory=dict)
    data: Dict[str, DataSymbol] = field(default_factory=dict)
    # alias name -> (target symbol, linkage)
    aliases: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    imports: List[str] = field(default_factory=list)
    # Simulated compile duration (middle end + backend) in milliseconds.
    compile_ms: float = 0.0

    def defined_symbols(self) -> List[str]:
        return (
            list(self.functions.keys())
            + list(self.data.keys())
            + list(self.aliases.keys())
        )

    def exported_symbols(self) -> List[str]:
        out = []
        for name, fn in self.functions.items():
            if fn.linkage != "internal":
                out.append(name)
        for name, sym in self.data.items():
            if sym.linkage != "internal":
                out.append(name)
        for name in self.aliases:
            out.append(name)
        return out

    def add_function(self, fn: MachineFunction) -> None:
        if fn.name in self.functions:
            raise BackendError(f"duplicate function {fn.name} in object {self.name}")
        self.functions[fn.name] = fn

    def add_data(self, sym: DataSymbol) -> None:
        if sym.name in self.data:
            raise BackendError(f"duplicate data symbol {sym.name} in object {self.name}")
        self.data[sym.name] = sym

    @property
    def code_size(self) -> int:
        return sum(f.code_size for f in self.functions.values())

    def canonical_bytes(self) -> bytes:
        """Deterministic serialization of everything that *is* the object.

        Timing metadata (``compile_ms``) is excluded: two objects are
        equivalent iff they would execute identically after linking.
        This is the byte-equivalence currency of the ``repro check``
        differential oracle.
        """
        parts = [f"object {self.name}"]
        for name in sorted(self.functions):
            parts.append(self.functions[name].canonical_dump())
        for name in sorted(self.data):
            sym = self.data[name]
            parts.append(
                f"data {name} linkage={sym.linkage} const={sym.is_const} "
                f"bytes={sym.data.hex()}"
            )
        for alias in sorted(self.aliases):
            target, linkage = self.aliases[alias]
            parts.append(f"alias {alias} -> {target} linkage={linkage}")
        parts.append("imports " + " ".join(sorted(self.imports)))
        return "\n".join(parts).encode()
