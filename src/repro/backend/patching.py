"""Stage-1 probe patching: flip probe sites in cached object files.

Algorithm 2's fast path services counter-style probe flips (coverage
enable/disable) without re-optimizing or re-lowering anything.  The trick
that makes this byte-exact is *sites-always-compiled*: the engine
instruments every patchable probe into the fragment IR regardless of its
enabled state, compiles that to a **master** object, and then realizes
the current toggle state by deleting the disabled sites from a copy of
the master (:func:`toggle_object`).  Every tier — full recompile, cache
hit, stage-1 patch — goes through the same toggle, so a patched object is
byte-identical to a from-scratch build *by construction*, and ``repro
check --tiers`` proves it empirically.

Why deleting a probe site cannot perturb the rest of the code:

* a patchable probe lowers to exactly one ``probe`` machine instruction
  with no destination register, no source registers and no argument
  registers, so register allocation and every other instruction's cost
  are unaffected by its presence;
* blocks always begin with their ``bb`` marker, so a probe instruction is
  never a branch target; deleting it only *shifts* later instruction
  indices, which :func:`toggle_object` remaps.

Objects are treated as immutable cache entries throughout: toggling
returns fresh :class:`ObjectFile` / :class:`MachineFunction` instances
and shares every function (and the whole object) that holds no affected
site.
"""

from __future__ import annotations

import dataclasses
from typing import FrozenSet, Iterable, List, Set

from repro.backend.machine import MachineFunction, MachineInst, ObjectFile

__all__ = ["probe_site_ids", "toggle_function", "toggle_object"]


def probe_site_ids(obj: ObjectFile) -> FrozenSet[int]:
    """All probe ids with a site compiled into *obj* (any kind)."""
    ids: Set[int] = set()
    for mf in obj.functions.values():
        for inst in mf.insts:
            if inst.op == "probe":
                ids.add(inst.probe_id)
    return frozenset(ids)


def _has_site(mf: MachineFunction, disabled: FrozenSet[int]) -> bool:
    return any(
        inst.op == "probe" and inst.probe_id in disabled for inst in mf.insts
    )


def toggle_function(
    mf: MachineFunction, disabled: FrozenSet[int]
) -> MachineFunction:
    """Copy of *mf* with the sites of every probe id in *disabled* deleted.

    Branch targets and switch tables are remapped through an old->new
    index map; everything else (frame, registers, block count/names) is
    structurally unchanged because probe instructions touch none of it.
    """
    if not _has_site(mf, disabled):
        return mf
    kept: List[MachineInst] = []
    index_map = {}
    for old_index, inst in enumerate(mf.insts):
        if inst.op == "probe" and inst.probe_id in disabled:
            continue
        index_map[old_index] = len(kept)
        kept.append(inst)

    def remap(old_target: int) -> int:
        # Probes are never block leaders (the `bb` marker is), so every
        # branch target survives deletion; the dict hit is guaranteed.
        return index_map[old_target]

    fixed: List[MachineInst] = []
    for inst in kept:
        if inst.targets or inst.table:
            inst = dataclasses.replace(
                inst,
                targets=tuple(remap(t) for t in inst.targets),
                table=tuple((v, remap(t)) for v, t in inst.table),
            )
        fixed.append(inst)
    return dataclasses.replace(
        mf,
        insts=fixed,
        block_names=dict(mf.block_names),
    )


def toggle_object(master: ObjectFile, disabled: Iterable[int]) -> ObjectFile:
    """Master object with the sites of *disabled* probe ids deleted.

    The master is the fragment compiled with **all** patchable sites in;
    this is the single choke point every rebuild tier uses to realize the
    current enable/disable state, which is what makes the tiers
    byte-equivalent.  Returns *master* itself when no listed site is
    present (nothing to delete, nothing to copy).
    """
    disabled = frozenset(disabled)
    if not disabled:
        return master
    replaced = {}
    for name, mf in master.functions.items():
        toggled = toggle_function(mf, disabled)
        if toggled is not mf:
            replaced[name] = toggled
    if not replaced:
        return master
    functions = {
        name: replaced.get(name, mf) for name, mf in master.functions.items()
    }
    return dataclasses.replace(
        master,
        functions=functions,
        data=dict(master.data),
        aliases=dict(master.aliases),
        imports=list(master.imports),
    )
