"""repro.baselines — binary-instrumentation comparators (DrCov, libInst)."""

from repro.baselines.dbi import DBI_BLOCK_TAX, DBI_TRANSLATION_COST, DrCov
from repro.baselines.rewriter import REWRITER_BLOCK_TAX, LibInst

__all__ = [
    "DrCov", "LibInst",
    "DBI_BLOCK_TAX", "DBI_TRANSLATION_COST", "REWRITER_BLOCK_TAX",
]
