"""DrCov baseline: DynamoRIO-style dynamic binary instrumentation.

Binary-level coverage over an *uninstrumented* optimized binary.  Like
DynamoRIO, the tool translates basic blocks into a code cache on first
execution (a one-time translation cost per block) and inserts coverage
bookkeeping at block granularity; every block entry then pays a dispatch/
bookkeeping tax on top of the native code.  This is the cost structure
the paper cites: JIT-based DBI is far cheaper than interpretation but
still tens-of-percent slower even before any probe logic runs (§2.1:
"PIN incurs a 63% overhead without any probe installed").

No recompilation is possible: the lowered representation has lost IR
semantics, so the tax applies to every block forever — the flexibility/
performance gap Odin closes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set, Tuple

from repro.linker.linker import Executable
from repro.vm.interpreter import ExecutionResult, VM

# Per-block-entry dispatch + inline coverage bookkeeping (cycles).
DBI_BLOCK_TAX = 7
# One-time translation of a block into the code cache (cycles).
DBI_TRANSLATION_COST = 120


@dataclass
class DrCov:
    """DynamoRIO-DrCov-style coverage collector."""

    executable: Executable
    block_tax: int = DBI_BLOCK_TAX
    translation_cost: int = DBI_TRANSLATION_COST
    coverage: Set[Tuple[int, int]] = field(default_factory=set)
    translated: Set[Tuple[int, int]] = field(default_factory=set)

    def make_vm(self, **kwargs) -> VM:
        vm = VM(self.executable, block_tax=self.block_tax, **kwargs)

        def hook(func_index: int, block_id: int) -> None:
            key = (func_index, block_id)
            if key not in self.translated:
                self.translated.add(key)
                vm.cycles += self.translation_cost
            self.coverage.add(key)

        vm.block_hook = hook
        return vm

    def run(self, entry: str = "main", args: Tuple[int, ...] = ()) -> ExecutionResult:
        return self.make_vm().run(entry, args)

    @property
    def blocks_covered(self) -> int:
        return len(self.coverage)

    def clear(self) -> None:
        self.coverage.clear()
        self.translated.clear()
