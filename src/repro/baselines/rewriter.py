"""libInst baseline: DynInst-style static binary rewriting.

Every basic block is rewritten to detour through a trampoline that saves
machine state, runs the instrumentation payload, restores state and jumps
back.  Because the rewriter works on lowered machine code with no liveness
information, it must spill/restore conservatively — which is why the paper
measures a median slowdown around 19x for libInst (§5.1) and why
"lightweight" rewriting approaches like Untracer freeze the code layout
instead.

Like the DBI baseline, the tax is per block entry and permanent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Set, Tuple

from repro.linker.linker import Executable
from repro.vm.interpreter import ExecutionResult, VM

# Trampoline cost per block entry: jump out, conservative register
# save/restore (no liveness at binary level), payload, jump back.
REWRITER_BLOCK_TAX = 250


@dataclass
class LibInst:
    """DynInst-libInst-style static rewriting coverage collector."""

    executable: Executable
    block_tax: int = REWRITER_BLOCK_TAX
    coverage: Set[Tuple[int, int]] = field(default_factory=set)

    def make_vm(self, **kwargs) -> VM:
        vm = VM(self.executable, block_tax=self.block_tax, **kwargs)
        vm.block_hook = lambda func_index, block_id: self.coverage.add(
            (func_index, block_id)
        )
        return vm

    def run(self, entry: str = "main", args: Tuple[int, ...] = ()) -> ExecutionResult:
        return self.make_vm().run(entry, args)

    @property
    def blocks_covered(self) -> int:
        return len(self.coverage)

    def clear(self) -> None:
        self.coverage.clear()
