"""Build-system cost model (Fig. 3).

The paper's Figure 3 breaks a full libxml2 build into build-system
(autogen + configure), frontend, optimize + instrument, codegen and link
stages to show that Odin's on-the-fly path can skip everything above the
middle end.  :mod:`repro.buildsim.buildcost` reproduces that breakdown
with a deterministic, calibrated stage model over the MiniC targets.
"""

from repro.buildsim.buildcost import BuildBreakdown, measure_build

__all__ = ["BuildBreakdown", "measure_build"]
