"""Calibrated build-stage cost breakdown (Fig. 3, §2.3).

Figure 3 measures a full libxml2 build: autogen 10.83 s + configure
4.56 s (38% together), frontend ~16%, optimize + instrument ~38%,
codegen ~7%, linker 0.15%.  §2.3's argument is that the build system and
frontend — roughly 45% of the build — are pure overhead for an
instrumentation change, because Odin recompiles from cached bitcode.

``measure_build`` runs the *real* frontend over a target's MiniC source
(so the breakdown reflects the program actually being built), then
charges each stage with deterministic per-line / per-instruction costs
calibrated once against the paper's libxml2 fractions and frozen:

* build system — fixed project-setup cost plus a per-line term
  (autotools walks every source file); autogen/configure split matches
  the paper's 10.83 s : 4.56 s ratio.
* frontend — :func:`repro.backend.costmodel.frontend_cost_ms`, the same
  per-line model the recompile experiments use.
* optimize + instrument / codegen — per-instruction over the IR the
  frontend produced, in the paper's ~5.4 : 1 ratio.
* link — :func:`repro.backend.costmodel.link_cost_ms` over the module's
  symbol table, like the real linker stage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.backend.costmodel import frontend_cost_ms, link_cost_ms
from repro.frontend.codegen import compile_source

# Build system (autotools): fixed project setup + per-source-line walk.
# Ratio autogen:configure ~ 2.37, per the paper's 10.83 s : 4.56 s.
AUTOGEN_FIXED_MS = 120.0
AUTOGEN_MS_PER_LINE = 1.70
CONFIGURE_FIXED_MS = 55.0
CONFIGURE_MS_PER_LINE = 0.70

# Middle end + instrumentation vs. back end, per unoptimized instruction.
# Calibrated so libxml2 lands on the paper's 38% : 7% split.
OPT_INSTRUMENT_MS_PER_INST = 0.81
CODEGEN_MS_PER_INST = 0.149


@dataclass
class BuildBreakdown:
    """Per-stage cost of one full (classic) build, in simulated ms."""

    program: str
    source_lines: int
    instructions: int
    autogen_ms: float
    configure_ms: float
    frontend_ms: float
    opt_instrument_ms: float
    codegen_ms: float
    link_ms: float

    @property
    def build_system_ms(self) -> float:
        return self.autogen_ms + self.configure_ms

    @property
    def total_ms(self) -> float:
        return (
            self.build_system_ms
            + self.frontend_ms
            + self.opt_instrument_ms
            + self.codegen_ms
            + self.link_ms
        )

    def fractions(self) -> Dict[str, float]:
        """Stage -> fraction of the total build.

        ``build_system`` aggregates ``autogen`` + ``configure`` (the
        paper reports both views), so the values sum to > 1.
        """
        total = self.total_ms
        return {
            "autogen": self.autogen_ms / total,
            "configure": self.configure_ms / total,
            "build_system": self.build_system_ms / total,
            "frontend": self.frontend_ms / total,
            "opt_instrument": self.opt_instrument_ms / total,
            "codegen": self.codegen_ms / total,
            "link": self.link_ms / total,
        }

    def odin_savings(self) -> float:
        """Fraction of the build Odin's cached-bitcode path eliminates:
        the build system and the frontend (§2.3, ~45% in the paper)."""
        return (self.build_system_ms + self.frontend_ms) / self.total_ms

    def recompile_scope_ms(self) -> float:
        """Cost of the stages an on-the-fly recompile actually re-runs
        (optimize + instrument, codegen, link) for the *whole* program —
        fragment partitioning then shrinks this further (Fig. 11)."""
        return self.opt_instrument_ms + self.codegen_ms + self.link_ms


def measure_build(name: str, source: str) -> BuildBreakdown:
    """Break one full build of *source* into Fig. 3's stages.

    Runs the real frontend (so instruction counts reflect the program),
    then applies the calibrated stage cost model.
    """
    module = compile_source(source, name)
    lines = source.count("\n") + 1
    instructions = sum(
        fn.count_instructions() for fn in module.defined_functions()
    )
    num_symbols = len(module.symbols)
    return BuildBreakdown(
        program=name,
        source_lines=lines,
        instructions=instructions,
        autogen_ms=AUTOGEN_FIXED_MS + AUTOGEN_MS_PER_LINE * lines,
        configure_ms=CONFIGURE_FIXED_MS + CONFIGURE_MS_PER_LINE * lines,
        frontend_ms=frontend_cost_ms(lines),
        opt_instrument_ms=OPT_INSTRUMENT_MS_PER_INST * instructions,
        codegen_ms=CODEGEN_MS_PER_INST * instructions,
        link_ms=link_cost_ms(num_symbols, instructions),
    )
