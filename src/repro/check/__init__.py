"""``repro check``: the differential rebuild oracle (PR 2).

Odin's central claim — an incremental rebuild is semantically identical
to recompiling the world (§3.3, Algorithm 2) — was unfalsifiable in this
repo until now.  This package makes it testable, in the spirit of
FuzzyFlow's cutout-based differential testing of program transformations:

* :mod:`repro.check.schedules` — deterministic random probe-state
  schedules (enable/disable/remove/prune sequences, seeded RNG);
* :mod:`repro.check.oracle` — replays each schedule incrementally (engine
  or recompilation service) and from scratch, asserting object-byte,
  linked-image and behavioural equivalence over a seed corpus;
* :mod:`repro.check.faults` — injects persistent-cache faults (truncated
  objects, torn writes, corrupt/stale index) and asserts every fault
  degrades to a cache miss, never to wrong code;
* :mod:`repro.check.invariants` — direct checks of the scheduler's
  stage-3 back propagation and content-key determinism.

Surfaced as ``python -m repro check`` and a bounded CI sweep.
"""

from repro.check.chaos import (
    FAULT_KINDS,
    ChaosReport,
    ChaosRunner,
    ChaosSchedule,
    FaultEvent,
    generate_chaos_schedules,
    run_chaos,
)
from repro.check.faults import run_fault_checks
from repro.check.invariants import (
    RecordingCache,
    check_backpropagation,
    check_content_key_determinism,
    run_invariant_checks,
)
from repro.check.oracle import (
    CheckReport,
    DifferentialOracle,
    ScheduleOutcome,
    StepOutcome,
)
from repro.check.tiers import (
    TierScheduleOutcome,
    TierStepOutcome,
    TierSweep,
    TierSweepReport,
)
from repro.check.schedules import (
    STEP_DISABLE,
    STEP_ENABLE,
    STEP_KINDS,
    STEP_PRUNE,
    STEP_REMOVE,
    ProbeSchedule,
    ScheduleStep,
    generate_schedules,
    pick_targets,
)

__all__ = [
    "ChaosReport",
    "ChaosRunner",
    "ChaosSchedule",
    "CheckReport",
    "DifferentialOracle",
    "FAULT_KINDS",
    "FaultEvent",
    "ProbeSchedule",
    "RecordingCache",
    "STEP_DISABLE",
    "STEP_ENABLE",
    "STEP_KINDS",
    "STEP_PRUNE",
    "STEP_REMOVE",
    "ScheduleOutcome",
    "ScheduleStep",
    "StepOutcome",
    "TierScheduleOutcome",
    "TierStepOutcome",
    "TierSweep",
    "TierSweepReport",
    "check_backpropagation",
    "check_content_key_determinism",
    "generate_chaos_schedules",
    "generate_schedules",
    "pick_targets",
    "run_chaos",
    "run_fault_checks",
    "run_invariant_checks",
]
