"""Seeded chaos harness for the fault-tolerant recompilation service.

``repro check`` proves incremental rebuilds equivalent to from-scratch
builds on a *healthy* service.  This module proves the same property
under injected faults: each :class:`ChaosSchedule` pairs a deterministic
probe-state schedule with a seeded plan of fault events —

* ``worker-crash`` / ``worker-hang`` — arm a
  :class:`~repro.service.workers.WorkerCrashError` /
  :class:`~repro.service.workers.WorkerTimeoutError` on the supervised
  compiler's ``fault_injector`` hook, firing inside the next real
  compile exactly where a dying or wedged pool worker would surface;
* ``cache-corrupt`` — flip bytes of one stored blob in the persistent
  code cache mid-run (``inject_fault("corrupt-obj")``), which the cache
  must quarantine as a miss, never raise or serve;
* ``dispatcher-restart`` — stop (drained) and restart the service's
  dispatcher thread, modelling a compile-server kill/restart;
* ``deadline-expire`` — submit a job whose deadline has already passed
  while the dispatcher is down, which the queue must shed with
  :class:`~repro.service.jobs.DeadlineExpiredError`.

After the schedule the harness asserts the service *degraded but never
lied*: every non-shed job got a reply, every corrupted key now misses or
round-trips byte-identically (quarantined, not raised), and the final
engine state passes the full differential oracle — object bytes, linked
image and behaviour equal to a fault-free from-scratch build.

Everything is a pure function of the seed: schedules, fault placement,
victim keys, retry backoff (``RetryPolicy.seed``).  A failing chaos run
is therefore replayable with ``repro chaos --seed N``.
"""

from __future__ import annotations

import json
import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.check.oracle import PRESERVED, DifferentialOracle
from repro.check.schedules import (
    ProbeSchedule,
    generate_schedules,
    pick_targets,
)
from repro.fuzz.executor import OdinCovExecutor
from repro.instrument.coverage import OdinCov
from repro.programs.registry import TargetProgram
from repro.service.jobs import (
    OP_DISABLE,
    OP_ENABLE,
    OP_REMOVE,
    DeadlineExpiredError,
    ProbeOp,
)
from repro.service.resilience import RetryPolicy
from repro.service.server import RecompilationService, ServiceError
from repro.service.workers import (
    MODE_PROCESS,
    WorkerCrashError,
    WorkerTimeoutError,
)
from repro.utils.rng import DeterministicRNG

# Fault kinds a chaos schedule may fire before a probe step.
FAULT_WORKER_CRASH = "worker-crash"
FAULT_WORKER_HANG = "worker-hang"
FAULT_CACHE_CORRUPT = "cache-corrupt"
FAULT_DISPATCHER_RESTART = "dispatcher-restart"
FAULT_DEADLINE_EXPIRE = "deadline-expire"
FAULT_KINDS = (
    FAULT_WORKER_CRASH,
    FAULT_WORKER_HANG,
    FAULT_CACHE_CORRUPT,
    FAULT_DISPATCHER_RESTART,
    FAULT_DEADLINE_EXPIRE,
)

# Generation weights: worker faults dominate (they exercise the whole
# restart/retry/degrade ladder), the rest stay common enough that every
# few schedules cover each kind.
_FAULT_WEIGHTS = (
    (FAULT_WORKER_CRASH, 30),
    (FAULT_WORKER_HANG, 20),
    (FAULT_CACHE_CORRUPT, 20),
    (FAULT_DISPATCHER_RESTART, 15),
    (FAULT_DEADLINE_EXPIRE, 15),
)

_STEP_OPS = {"disable": OP_DISABLE, "enable": OP_ENABLE, "remove": OP_REMOVE}


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, fired just before probe step ``step``."""

    step: int
    kind: str

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.step < 0:
            raise ValueError("step must be >= 0")


@dataclass(frozen=True)
class ChaosSchedule:
    """A probe schedule plus the fault plan replayed against it."""

    schedule_id: int
    seed: int
    probe_schedule: ProbeSchedule
    faults: Tuple[FaultEvent, ...]

    def describe(self) -> str:
        inner = "; ".join(f"@{f.step} {f.kind}" for f in self.faults) or "none"
        return (
            f"chaos #{self.schedule_id} (seed {self.seed}): "
            f"{len(self.probe_schedule.steps)} steps, faults: {inner}"
        )


def generate_chaos_schedules(
    count: int,
    seed: int,
    *,
    min_faults: int = 1,
    max_faults: int = 3,
    **schedule_kwargs,
) -> List[ChaosSchedule]:
    """Generate *count* chaos schedules, a pure function of the arguments.

    Probe steps come from the oracle's generator (pruning excluded: the
    chaos replayer drives everything through service clients, and prune
    is an executor-side operation); fault events are then placed at
    seeded step indices.
    """
    if not 0 <= min_faults <= max_faults:
        raise ValueError("need 0 <= min_faults <= max_faults")
    schedule_kwargs.setdefault("include_prune", False)
    probe_schedules = generate_schedules(count, seed, **schedule_kwargs)
    rng = DeterministicRNG(seed ^ 0x5EEDFA17)
    out: List[ChaosSchedule] = []
    for probe_schedule in probe_schedules:
        steps = len(probe_schedule.steps)
        faults = tuple(
            sorted(
                (
                    FaultEvent(rng.randint(0, steps - 1), _weighted_fault(rng))
                    for _ in range(rng.randint(min_faults, max_faults))
                ),
                key=lambda f: (f.step, f.kind),
            )
        )
        out.append(
            ChaosSchedule(
                probe_schedule.schedule_id, probe_schedule.seed,
                probe_schedule, faults,
            )
        )
    return out


def _weighted_fault(rng: DeterministicRNG) -> str:
    total = sum(weight for _, weight in _FAULT_WEIGHTS)
    roll = rng.randint(1, total)
    for kind, weight in _FAULT_WEIGHTS:
        roll -= weight
        if roll <= 0:
            return kind
    return _FAULT_WEIGHTS[-1][0]  # pragma: no cover - unreachable


@dataclass
class ChaosOutcome:
    """One replayed chaos schedule: faults fired, replies, verdict."""

    schedule: ChaosSchedule
    injected: Dict[str, int] = field(default_factory=dict)
    replies: int = 0
    shed: int = 0
    breaker_rejections: int = 0
    worker_restarts: int = 0
    degradations: int = 0
    quarantined: int = 0
    unfired_worker_faults: int = 0
    mismatches: List[str] = field(default_factory=list)
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None and not self.mismatches

    def to_dict(self) -> dict:
        return {
            "schedule_id": self.schedule.schedule_id,
            "seed": self.schedule.seed,
            "faults": [(f.step, f.kind) for f in self.schedule.faults],
            "injected": dict(self.injected),
            "replies": self.replies,
            "shed": self.shed,
            "breaker_rejections": self.breaker_rejections,
            "worker_restarts": self.worker_restarts,
            "degradations": self.degradations,
            "quarantined": self.quarantined,
            "unfired_worker_faults": self.unfired_worker_faults,
            "mismatches": list(self.mismatches),
            "error": self.error,
            "ok": self.ok,
        }


@dataclass
class ChaosReport:
    """Everything ``repro chaos`` learned about one program."""

    program: str
    seed: int
    outcomes: List[ChaosOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    @property
    def faults_injected(self) -> int:
        return sum(sum(o.injected.values()) for o in self.outcomes)

    @property
    def failures(self) -> List[str]:
        out = []
        for outcome in self.outcomes:
            sid = outcome.schedule.schedule_id
            if outcome.error is not None:
                out.append(f"chaos #{sid}: {outcome.error}")
            for mismatch in outcome.mismatches:
                out.append(f"chaos #{sid}: {mismatch}")
        return out

    def summary(self) -> str:
        status = "ok" if self.ok else f"{len(self.failures)} FAILURES"
        restarts = sum(o.worker_restarts for o in self.outcomes)
        shed = sum(o.shed for o in self.outcomes)
        return (
            f"{self.program}: {len(self.outcomes)} chaos schedules "
            f"(seed {self.seed}), {self.faults_injected} faults injected, "
            f"{restarts} worker restarts, {shed} jobs shed, {status}"
        )

    def to_dict(self) -> dict:
        return {
            "program": self.program,
            "seed": self.seed,
            "ok": self.ok,
            "faults_injected": self.faults_injected,
            "outcomes": [o.to_dict() for o in self.outcomes],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


class ChaosRunner:
    """Replays chaos schedules against a supervised service instance.

    Each schedule gets a fresh service (process-pool compiler by
    default, persistent cache in a scratch directory) and is torn down
    afterwards; the final probe state is judged by the differential
    oracle's full three-layer equivalence check.
    """

    def __init__(
        self,
        program: TargetProgram,
        *,
        workers: int = 2,
        worker_mode: str = MODE_PROCESS,
        max_inputs: int = 4,
        batch_timeout_s: float = 30.0,
        reply_timeout_s: float = 120.0,
    ):
        self.program = program
        self.workers = workers
        self.worker_mode = worker_mode
        self.batch_timeout_s = batch_timeout_s
        self.reply_timeout_s = reply_timeout_s
        # Reused for its corpus + compare_to_reference (fault-free
        # scratch rebuild of the same probe state).
        self.oracle = DifferentialOracle(program, max_inputs=max_inputs)

    def run(self, schedules: List[ChaosSchedule], seed: int = 0) -> ChaosReport:
        report = ChaosReport(self.program.name, seed)
        for schedule in schedules:
            report.outcomes.append(self.run_schedule(schedule))
        return report

    def run_schedule(self, schedule: ChaosSchedule) -> ChaosOutcome:
        outcome = ChaosOutcome(schedule)
        workdir = tempfile.mkdtemp(prefix="repro-chaos-")
        session: Optional[_ChaosSession] = None
        try:
            session = _ChaosSession(self, schedule, workdir, outcome)
            session.replay()
            session.verdict()
        except Exception as error:  # surface, do not crash the sweep
            outcome.error = f"{type(error).__name__}: {error}"
        finally:
            if session is not None:
                session.close()
            shutil.rmtree(workdir, ignore_errors=True)
        return outcome


class _ChaosSession:
    """One schedule's live side: service, client, armed faults."""

    def __init__(
        self,
        runner: ChaosRunner,
        schedule: ChaosSchedule,
        workdir: str,
        outcome: ChaosOutcome,
    ):
        self.runner = runner
        self.schedule = schedule
        self.outcome = outcome
        self.rng = DeterministicRNG(schedule.seed ^ 0xC4A05)
        self._armed: List[type] = []
        self._corrupted: List[str] = []
        self.service = RecompilationService(
            workers=runner.workers,
            worker_mode=runner.worker_mode,
            cache_dir=f"{workdir}/cache",
            retry_policy=RetryPolicy(seed=schedule.seed),
            batch_timeout_s=runner.batch_timeout_s,
        )
        self.service.compiler.fault_injector = self._inject
        # Patching is off for chaos: the tiered fast path services probe
        # toggles without ever reaching the worker pool, but armed worker
        # faults only fire inside a compile batch — every step must take
        # the full path for the schedule's faults to land where intended.
        self.engine = self.service.register_target(
            runner.program.name, runner.program.compile(), preserve=PRESERVED,
            enable_patching=False,
        )
        self.client = self.service.client(runner.program.name, "chaos")
        self.tool = OdinCov(self.engine, rebuild_fn=self.client.rebuild_report)
        self.tool.add_all_block_probes()
        self.service.build(runner.program.name)
        self.service.start()
        self.executor = OdinCovExecutor(self.tool)

    # -- fault machinery -------------------------------------------------------

    def _inject(self, compiler, batch, attempt) -> None:
        """SupervisedCompiler hook: fire one armed fault per attempt."""
        if self._armed and batch:
            raise self._armed.pop(0)(
                f"chaos: injected {self.schedule.describe()} fault "
                f"(attempt {attempt}, batch of {len(batch)})"
            )

    def _fire(self, event: FaultEvent) -> None:
        count = self.outcome.injected
        if event.kind == FAULT_WORKER_CRASH:
            self._armed.append(WorkerCrashError)
        elif event.kind == FAULT_WORKER_HANG:
            self._armed.append(WorkerTimeoutError)
        elif event.kind == FAULT_CACHE_CORRUPT:
            keys = self.service.cache.keys()
            if not keys:  # nothing stored yet: fault is a no-op
                return
            victim = keys[self.rng.randint(0, len(keys) - 1)]
            self.service.cache.inject_fault("corrupt-obj", key=victim)
            self._corrupted.append(victim)
        elif event.kind == FAULT_DISPATCHER_RESTART:
            self.service.stop(drain=True)
            self.service.start()
        elif event.kind == FAULT_DEADLINE_EXPIRE:
            # Submitted while the dispatcher is down with a deadline of
            # zero: already expired by the time dispatch resumes, so the
            # queue must shed it instead of compiling for nobody.
            self.service.stop(drain=True)
            job = self.client.submit((), deadline_s=0.0)
            self.service.start()
            try:
                job.result(self.runner.reply_timeout_s)
                self.outcome.mismatches.append(
                    f"deadline-expired job before step {event.step} was "
                    f"compiled instead of shed"
                )
            except DeadlineExpiredError:
                self.outcome.shed += 1
        count[event.kind] = count.get(event.kind, 0) + 1

    # -- replay ----------------------------------------------------------------

    def replay(self) -> None:
        inputs = self.runner.oracle.inputs
        cursor = 0
        pick_rng = DeterministicRNG(self.schedule.seed)
        for index, step in enumerate(self.schedule.probe_schedule.steps):
            for event in self.schedule.faults:
                if event.step == index:
                    self._fire(event)
            for _ in range(step.inputs):
                self.executor.execute(inputs[cursor % len(inputs)])
                cursor += 1
            self._apply_step(step, pick_rng)
            self.executor._refresh_vm()

    def _apply_step(self, step, pick_rng: DeterministicRNG) -> None:
        manager = self.engine.manager
        if step.kind == "disable":
            eligible = [p for p in manager if p.enabled]
        elif step.kind == "enable":
            eligible = [p for p in manager if not p.enabled]
        else:  # remove
            eligible = list(manager)
        eligible.sort(key=lambda p: p.id)
        picked = pick_targets(pick_rng, eligible, step.count)
        if not picked:
            return
        if step.kind == "remove":
            for probe in picked:
                self.tool.probes.pop(probe.id, None)
        ops = [ProbeOp(_STEP_OPS[step.kind], p.id) for p in picked]
        try:
            self.client.rebuild(ops, timeout=self.runner.reply_timeout_s)
            self.outcome.replies += 1
        except ServiceError as error:
            if error.retry_after_s is None:
                raise
            # Breaker open: a fast failure, not a hang.  Count it; the
            # step's ops were never applied, so state stays consistent.
            self.outcome.breaker_rejections += 1

    # -- verdict ---------------------------------------------------------------

    def verdict(self) -> None:
        outcome = self.outcome
        outcome.unfired_worker_faults = len(self._armed)
        self._armed.clear()  # never let a leftover fault poison teardown
        # Corrupted entries must self-heal: a get may miss (quarantined)
        # but must never raise or return different bytes (the oracle
        # below would catch wrong bytes that got linked).
        cache = self.service.cache
        for key in self._corrupted:
            try:
                cache.get(key)
            except Exception as error:  # noqa: BLE001 - the assertion itself
                outcome.mismatches.append(
                    f"corrupted cache entry {key[:12]} raised "
                    f"{type(error).__name__} instead of degrading to a miss"
                )
        compiler_stats = self.service.compiler.stats()
        outcome.worker_restarts = compiler_stats["worker_restarts"]
        outcome.degradations = compiler_stats["degradations"]
        outcome.quarantined = getattr(cache, "quarantined", 0)
        # Every fault behind us: the final probe state must still be
        # exactly what a fault-free from-scratch build produces.
        outcome.mismatches.extend(
            self.runner.oracle.compare_to_reference(self.engine)
        )

    def close(self) -> None:
        self.service.close()


def run_chaos(
    program: TargetProgram,
    *,
    schedules: int = 3,
    seed: int = 0,
    workers: int = 2,
    worker_mode: str = MODE_PROCESS,
    max_inputs: int = 4,
) -> ChaosReport:
    """Generate and replay *schedules* chaos schedules for *program*."""
    runner = ChaosRunner(
        program, workers=workers, worker_mode=worker_mode, max_inputs=max_inputs
    )
    return runner.run(generate_chaos_schedules(schedules, seed), seed)


# ---------------------------------------------------------------------------
# Cluster chaos: shard-level faults against the sharded multi-tenant cluster.
# ---------------------------------------------------------------------------

# Fault kinds a cluster chaos schedule may fire before a replay round.
CLUSTER_FAULT_SHARD_KILL = "shard-kill"
CLUSTER_FAULT_SHARD_HANG = "shard-hang"
CLUSTER_FAULT_ROUTER_PARTITION = "router-partition"
CLUSTER_FAULT_KINDS = (
    CLUSTER_FAULT_SHARD_KILL,
    CLUSTER_FAULT_SHARD_HANG,
    CLUSTER_FAULT_ROUTER_PARTITION,
)

_CLUSTER_FAULT_WEIGHTS = (
    (CLUSTER_FAULT_SHARD_KILL, 40),
    (CLUSTER_FAULT_SHARD_HANG, 30),
    (CLUSTER_FAULT_ROUTER_PARTITION, 30),
)


@dataclass(frozen=True)
class ClusterFaultEvent:
    """One shard-level fault, fired just before replay round ``round``."""

    round: int
    kind: str

    def __post_init__(self):
        if self.kind not in CLUSTER_FAULT_KINDS:
            raise ValueError(
                f"unknown cluster fault {self.kind!r}; "
                f"expected one of {CLUSTER_FAULT_KINDS}"
            )
        if self.round < 0:
            raise ValueError("round must be >= 0")


@dataclass(frozen=True)
class ClusterChaosSchedule:
    """Per-tenant probe schedules + a shard-level fault plan.

    Replay is round-based: in round *r* every tenant applies step *r* of
    its own probe schedule (tenants whose schedule is shorter sit the
    round out), faults fire before the round, and a health-check/heal
    tick runs after it.
    """

    schedule_id: int
    seed: int
    tenant_schedules: Tuple[ProbeSchedule, ...]
    faults: Tuple[ClusterFaultEvent, ...]

    @property
    def rounds(self) -> int:
        return max((len(s.steps) for s in self.tenant_schedules), default=0)

    def describe(self) -> str:
        inner = "; ".join(f"@{f.round} {f.kind}" for f in self.faults) or "none"
        return (
            f"cluster chaos #{self.schedule_id} (seed {self.seed}): "
            f"{len(self.tenant_schedules)} tenants, {self.rounds} rounds, "
            f"faults: {inner}"
        )


def generate_cluster_chaos_schedules(
    count: int,
    seed: int,
    *,
    tenants: int = 8,
    min_faults: int = 1,
    max_faults: int = 2,
    **schedule_kwargs,
) -> List[ClusterChaosSchedule]:
    """Generate *count* cluster chaos schedules (pure function of args)."""
    if tenants < 1:
        raise ValueError("need at least one tenant")
    if not 0 <= min_faults <= max_faults:
        raise ValueError("need 0 <= min_faults <= max_faults")
    schedule_kwargs.setdefault("include_prune", False)
    rng = DeterministicRNG(seed ^ 0xC1A57E12)
    out: List[ClusterChaosSchedule] = []
    for schedule_id in range(count):
        tenant_schedules = tuple(
            generate_schedules(
                tenants, seed + 7919 * (schedule_id + 1), **schedule_kwargs
            )
        )
        rounds = max(len(s.steps) for s in tenant_schedules)
        faults = tuple(
            sorted(
                (
                    ClusterFaultEvent(
                        rng.randint(0, rounds - 1), _weighted_cluster_fault(rng)
                    )
                    for _ in range(rng.randint(min_faults, max_faults))
                ),
                key=lambda f: (f.round, f.kind),
            )
        )
        out.append(
            ClusterChaosSchedule(schedule_id, seed, tenant_schedules, faults)
        )
    return out


def _weighted_cluster_fault(rng: DeterministicRNG) -> str:
    total = sum(weight for _, weight in _CLUSTER_FAULT_WEIGHTS)
    roll = rng.randint(1, total)
    for kind, weight in _CLUSTER_FAULT_WEIGHTS:
        roll -= weight
        if roll <= 0:
            return kind
    return _CLUSTER_FAULT_WEIGHTS[-1][0]  # pragma: no cover - unreachable


@dataclass
class TenantChaosOutcome:
    """One tenant's campaign through a cluster chaos schedule."""

    tenant_id: str
    program: str
    weight: float
    tier: str
    steps: int = 0
    replies: int = 0
    shed_quota: int = 0
    shed_deadline: int = 0
    resubmits: int = 0
    breaker_rejections: int = 0
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def to_dict(self) -> dict:
        return {
            "tenant_id": self.tenant_id,
            "program": self.program,
            "weight": self.weight,
            "tier": self.tier,
            "steps": self.steps,
            "replies": self.replies,
            "shed_quota": self.shed_quota,
            "shed_deadline": self.shed_deadline,
            "resubmits": self.resubmits,
            "breaker_rejections": self.breaker_rejections,
            "mismatches": list(self.mismatches),
            "ok": self.ok,
        }


@dataclass
class ClusterChaosOutcome:
    """One replayed cluster schedule: faults, failovers, per-tenant verdicts."""

    schedule: ClusterChaosSchedule
    injected: Dict[str, int] = field(default_factory=dict)
    failovers: int = 0
    migrations: int = 0
    resubmits: int = 0
    live_shards: int = 0
    degraded: bool = False
    tenants: List[TenantChaosOutcome] = field(default_factory=list)
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None and all(t.ok for t in self.tenants)

    def to_dict(self) -> dict:
        return {
            "schedule_id": self.schedule.schedule_id,
            "seed": self.schedule.seed,
            "faults": [(f.round, f.kind) for f in self.schedule.faults],
            "injected": dict(self.injected),
            "failovers": self.failovers,
            "migrations": self.migrations,
            "resubmits": self.resubmits,
            "live_shards": self.live_shards,
            "degraded": self.degraded,
            "tenants": [t.to_dict() for t in self.tenants],
            "error": self.error,
            "ok": self.ok,
        }


@dataclass
class ClusterChaosReport:
    """Everything ``repro cluster --chaos`` learned about one sweep."""

    programs: List[str]
    seed: int
    shards: int
    outcomes: List[ClusterChaosOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    @property
    def faults_injected(self) -> int:
        return sum(sum(o.injected.values()) for o in self.outcomes)

    @property
    def failures(self) -> List[str]:
        out = []
        for outcome in self.outcomes:
            sid = outcome.schedule.schedule_id
            if outcome.error is not None:
                out.append(f"cluster chaos #{sid}: {outcome.error}")
            for tenant in outcome.tenants:
                for mismatch in tenant.mismatches:
                    out.append(
                        f"cluster chaos #{sid} [{tenant.tenant_id}]: {mismatch}"
                    )
        return out

    def summary(self) -> str:
        status = "ok" if self.ok else f"{len(self.failures)} FAILURES"
        failovers = sum(o.failovers for o in self.outcomes)
        resubmits = sum(o.resubmits for o in self.outcomes)
        shed = sum(
            t.shed_quota + t.shed_deadline
            for o in self.outcomes for t in o.tenants
        )
        return (
            f"cluster[{','.join(self.programs)}] x{self.shards} shards: "
            f"{len(self.outcomes)} schedules (seed {self.seed}), "
            f"{self.faults_injected} faults, {failovers} failovers, "
            f"{resubmits} resubmits, {shed} shed, {status}"
        )

    def to_dict(self) -> dict:
        return {
            "programs": list(self.programs),
            "seed": self.seed,
            "shards": self.shards,
            "ok": self.ok,
            "faults_injected": self.faults_injected,
            "outcomes": [o.to_dict() for o in self.outcomes],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


class ClusterChaosRunner:
    """Replays shard-level chaos against a fresh cluster per schedule.

    Tenants alternate interactive (weight 3) / bulk (weight 1) and are
    spread round-robin over *programs*, so several tenants always share
    a program — exercising content-key co-location and the shared cache
    tier while shards die under them.  The recovery oracle is the
    differential oracle's full three-layer check, run per tenant against
    whatever engine the tenant ended up on: the surviving campaigns'
    final probe state must rebuild fingerprint-identical to an
    uninterrupted single-service run.
    """

    def __init__(
        self,
        programs: List[TargetProgram],
        *,
        shards: int = 3,
        tenants: int = 8,
        max_inputs: int = 3,
        reply_timeout_s: float = 4.0,
        quota_window: int = 64,
    ):
        if not programs:
            raise ValueError("need at least one program")
        self.programs = programs
        self.shards = shards
        self.tenants = tenants
        self.reply_timeout_s = reply_timeout_s
        self.quota_window = quota_window
        self.oracles = {
            program.name: DifferentialOracle(program, max_inputs=max_inputs)
            for program in programs
        }

    def run(
        self, schedules: List[ClusterChaosSchedule], seed: int = 0
    ) -> ClusterChaosReport:
        report = ClusterChaosReport(
            [p.name for p in self.programs], seed, self.shards
        )
        for schedule in schedules:
            report.outcomes.append(self.run_schedule(schedule))
        return report

    def run_schedule(self, schedule: ClusterChaosSchedule) -> ClusterChaosOutcome:
        outcome = ClusterChaosOutcome(schedule)
        session: Optional[_ClusterChaosSession] = None
        try:
            session = _ClusterChaosSession(self, schedule, outcome)
            session.replay()
            session.verdict()
        except Exception as error:  # surface, do not crash the sweep
            outcome.error = f"{type(error).__name__}: {error}"
        finally:
            if session is not None:
                session.close()
        return outcome


class _ClusterChaosSession:
    """One cluster schedule's live side: cluster, tenants, fault plan."""

    def __init__(
        self,
        runner: ClusterChaosRunner,
        schedule: ClusterChaosSchedule,
        outcome: ClusterChaosOutcome,
    ):
        from repro.cluster import CompileCluster, TenantSpec
        from repro.cluster.tenants import TIER_BULK, TIER_INTERACTIVE

        self.runner = runner
        self.schedule = schedule
        self.outcome = outcome
        self.rng = DeterministicRNG(schedule.seed ^ 0x51A8D0)
        self.cluster = CompileCluster(
            shards=runner.shards,
            reply_timeout_s=runner.reply_timeout_s,
            quota_window=runner.quota_window,
            heartbeat_miss_threshold=2,
        )
        # shard id -> replay round at which its partition heals.
        self._partitions: Dict[str, int] = {}
        self._tenants: List[Tuple[str, TargetProgram]] = []
        for index in range(runner.tenants):
            tenant_id = f"tenant-{index}"
            program = runner.programs[index % len(runner.programs)]
            interactive = index % 2 == 0
            self.cluster.register_tenant(TenantSpec(
                tenant_id,
                weight=3.0 if interactive else 1.0,
                tier=TIER_INTERACTIVE if interactive else TIER_BULK,
            ))
            self.cluster.register_target(
                tenant_id, program.name, program.compile(),
                instrument=_chaos_instrument, preserve=PRESERVED,
            )
            self._tenants.append((tenant_id, program))
            spec = self.cluster.tenants.spec(tenant_id)
            outcome.tenants.append(TenantChaosOutcome(
                tenant_id, program.name, spec.weight, spec.tier,
            ))
        self.cluster.start()
        self.clients = [
            self.cluster.client(tenant_id, program.name, client_id=tenant_id)
            for tenant_id, program in self._tenants
        ]

    # -- fault machinery -------------------------------------------------------

    def _victim(self) -> Optional[str]:
        """Pick a faultable shard: live, preferring ones hosting targets.

        Returns None (fault becomes a no-op) when fewer than two shards
        survive — a failover needs somewhere to send the targets.
        """
        live = list(self.cluster.ring.nodes)
        if len(live) < 2:
            return None
        hosting = sorted({
            entry.shard_id for entry in self.cluster._targets.values()
            if entry.shard_id in live
        })
        pool = hosting or sorted(live)
        return pool[self.rng.randint(0, len(pool) - 1)]

    def _fire(self, event: ClusterFaultEvent, rnd: int) -> None:
        victim = self._victim()
        if victim is None:
            return
        shard = self.cluster.shards[victim]
        if event.kind == CLUSTER_FAULT_SHARD_KILL:
            shard.kill()
        elif event.kind == CLUSTER_FAULT_SHARD_HANG:
            shard.hang()
        elif event.kind == CLUSTER_FAULT_ROUTER_PARTITION:
            shard.partition()
            # Heals after 1-2 rounds — racing the 2-miss condemnation
            # threshold, so seeded schedules cover both the transient
            # (heal, no failover) and escalated (failover) paths.
            self._partitions[victim] = rnd + self.rng.randint(1, 2)
        count = self.outcome.injected
        count[event.kind] = count.get(event.kind, 0) + 1

    def _tick(self, rnd: int) -> None:
        """Post-round housekeeping: heal due partitions, health-check."""
        for shard_id, heal_at in list(self._partitions.items()):
            if rnd + 1 >= heal_at:
                shard = self.cluster.shards[shard_id]
                if not shard.fenced:  # failover may have won the race
                    shard.heal_partition()
                del self._partitions[shard_id]
        self.cluster.check_health_once()

    # -- replay ----------------------------------------------------------------

    def replay(self) -> None:
        pick_rngs = [
            DeterministicRNG(self.schedule.seed ^ (0xA11CE + 131 * index))
            for index in range(len(self._tenants))
        ]
        for rnd in range(self.schedule.rounds):
            for event in self.schedule.faults:
                if event.round == rnd:
                    self._fire(event, rnd)
            for index, tenant_schedule in enumerate(
                self.schedule.tenant_schedules
            ):
                if rnd >= len(tenant_schedule.steps):
                    continue
                self._apply_step(index, tenant_schedule.steps[rnd],
                                 pick_rngs[index])
            self._tick(rnd)

    def _apply_step(self, index: int, step, pick_rng: DeterministicRNG) -> None:
        from repro.cluster import TenantQuotaError

        tenant_id, program = self._tenants[index]
        tenant_outcome = self.outcome.tenants[index]
        tenant_outcome.steps += 1
        # Always re-fetch: a failover since the last round swapped the
        # engine (and tool) under this tenant.
        entry = self.cluster.target(tenant_id, program.name)
        manager = entry.engine.manager
        if step.kind == "disable":
            eligible = [p for p in manager if p.enabled]
        elif step.kind == "enable":
            eligible = [p for p in manager if not p.enabled]
        else:  # remove
            eligible = list(manager)
        eligible.sort(key=lambda p: p.id)
        picked = pick_targets(pick_rng, eligible, step.count)
        if not picked:
            return
        ops = tuple(ProbeOp(_STEP_OPS[step.kind], p.id) for p in picked)
        try:
            self.clients[index].rebuild(ops)
        except TenantQuotaError:
            tenant_outcome.shed_quota += 1
            return  # ops never reached a shard; state unchanged
        except DeadlineExpiredError:
            tenant_outcome.shed_deadline += 1
            return  # shed before apply on a healthy shard
        except ServiceError as error:
            if error.retry_after_s is None:
                raise
            tenant_outcome.breaker_rejections += 1
            return
        tenant_outcome.replies += 1
        if step.kind == "remove":
            tool = self.cluster.tool(tenant_id, program.name)
            probes = getattr(tool, "probes", None)
            if isinstance(probes, dict):
                for probe in picked:
                    probes.pop(probe.id, None)

    # -- verdict ---------------------------------------------------------------

    def verdict(self) -> None:
        outcome = self.outcome
        metrics = self.cluster.metrics
        outcome.failovers = int(metrics.counter("failovers"))
        outcome.migrations = int(metrics.counter("targets_migrated"))
        outcome.resubmits = int(metrics.counter("resubmits"))
        outcome.live_shards = len(self.cluster.ring)
        outcome.degraded = self.cluster.degraded
        tenant_stats = self.cluster.tenants.stats()["tenants"]
        for index, (tenant_id, program) in enumerate(self._tenants):
            tenant_outcome = outcome.tenants[index]
            counters = tenant_stats.get(tenant_id, {})
            tenant_outcome.resubmits = int(counters.get("resubmits", 0))
            # The recovery oracle: the tenant's final probe state — on
            # whatever shard it ended up — must rebuild fingerprint- and
            # behaviour-identical to an uninterrupted from-scratch run.
            engine = self.cluster.engine(tenant_id, program.name)
            tenant_outcome.mismatches.extend(
                self.runner.oracles[program.name].compare_to_reference(engine)
            )

    def close(self) -> None:
        self.cluster.close()


def _chaos_instrument(engine):
    """Re-runnable instrumentation for cluster chaos targets."""
    tool = OdinCov(engine)
    tool.add_all_block_probes()
    return tool


def run_cluster_chaos(
    programs: List[TargetProgram],
    *,
    schedules: int = 2,
    seed: int = 0,
    shards: int = 3,
    tenants: int = 8,
    max_inputs: int = 3,
    reply_timeout_s: float = 4.0,
) -> ClusterChaosReport:
    """Generate and replay *schedules* cluster chaos schedules."""
    runner = ClusterChaosRunner(
        programs,
        shards=shards,
        tenants=tenants,
        max_inputs=max_inputs,
        reply_timeout_s=reply_timeout_s,
    )
    return runner.run(
        generate_cluster_chaos_schedules(schedules, seed, tenants=tenants),
        seed,
    )
