"""Seeded chaos harness for the fault-tolerant recompilation service.

``repro check`` proves incremental rebuilds equivalent to from-scratch
builds on a *healthy* service.  This module proves the same property
under injected faults: each :class:`ChaosSchedule` pairs a deterministic
probe-state schedule with a seeded plan of fault events —

* ``worker-crash`` / ``worker-hang`` — arm a
  :class:`~repro.service.workers.WorkerCrashError` /
  :class:`~repro.service.workers.WorkerTimeoutError` on the supervised
  compiler's ``fault_injector`` hook, firing inside the next real
  compile exactly where a dying or wedged pool worker would surface;
* ``cache-corrupt`` — flip bytes of one stored blob in the persistent
  code cache mid-run (``inject_fault("corrupt-obj")``), which the cache
  must quarantine as a miss, never raise or serve;
* ``dispatcher-restart`` — stop (drained) and restart the service's
  dispatcher thread, modelling a compile-server kill/restart;
* ``deadline-expire`` — submit a job whose deadline has already passed
  while the dispatcher is down, which the queue must shed with
  :class:`~repro.service.jobs.DeadlineExpiredError`.

After the schedule the harness asserts the service *degraded but never
lied*: every non-shed job got a reply, every corrupted key now misses or
round-trips byte-identically (quarantined, not raised), and the final
engine state passes the full differential oracle — object bytes, linked
image and behaviour equal to a fault-free from-scratch build.

Everything is a pure function of the seed: schedules, fault placement,
victim keys, retry backoff (``RetryPolicy.seed``).  A failing chaos run
is therefore replayable with ``repro chaos --seed N``.
"""

from __future__ import annotations

import json
import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.check.oracle import PRESERVED, DifferentialOracle
from repro.check.schedules import (
    ProbeSchedule,
    generate_schedules,
    pick_targets,
)
from repro.fuzz.executor import OdinCovExecutor
from repro.instrument.coverage import OdinCov
from repro.programs.registry import TargetProgram
from repro.service.jobs import (
    OP_DISABLE,
    OP_ENABLE,
    OP_REMOVE,
    DeadlineExpiredError,
    ProbeOp,
)
from repro.service.resilience import RetryPolicy
from repro.service.server import RecompilationService, ServiceError
from repro.service.workers import (
    MODE_PROCESS,
    WorkerCrashError,
    WorkerTimeoutError,
)
from repro.utils.rng import DeterministicRNG

# Fault kinds a chaos schedule may fire before a probe step.
FAULT_WORKER_CRASH = "worker-crash"
FAULT_WORKER_HANG = "worker-hang"
FAULT_CACHE_CORRUPT = "cache-corrupt"
FAULT_DISPATCHER_RESTART = "dispatcher-restart"
FAULT_DEADLINE_EXPIRE = "deadline-expire"
FAULT_KINDS = (
    FAULT_WORKER_CRASH,
    FAULT_WORKER_HANG,
    FAULT_CACHE_CORRUPT,
    FAULT_DISPATCHER_RESTART,
    FAULT_DEADLINE_EXPIRE,
)

# Generation weights: worker faults dominate (they exercise the whole
# restart/retry/degrade ladder), the rest stay common enough that every
# few schedules cover each kind.
_FAULT_WEIGHTS = (
    (FAULT_WORKER_CRASH, 30),
    (FAULT_WORKER_HANG, 20),
    (FAULT_CACHE_CORRUPT, 20),
    (FAULT_DISPATCHER_RESTART, 15),
    (FAULT_DEADLINE_EXPIRE, 15),
)

_STEP_OPS = {"disable": OP_DISABLE, "enable": OP_ENABLE, "remove": OP_REMOVE}


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, fired just before probe step ``step``."""

    step: int
    kind: str

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.step < 0:
            raise ValueError("step must be >= 0")


@dataclass(frozen=True)
class ChaosSchedule:
    """A probe schedule plus the fault plan replayed against it."""

    schedule_id: int
    seed: int
    probe_schedule: ProbeSchedule
    faults: Tuple[FaultEvent, ...]

    def describe(self) -> str:
        inner = "; ".join(f"@{f.step} {f.kind}" for f in self.faults) or "none"
        return (
            f"chaos #{self.schedule_id} (seed {self.seed}): "
            f"{len(self.probe_schedule.steps)} steps, faults: {inner}"
        )


def generate_chaos_schedules(
    count: int,
    seed: int,
    *,
    min_faults: int = 1,
    max_faults: int = 3,
    **schedule_kwargs,
) -> List[ChaosSchedule]:
    """Generate *count* chaos schedules, a pure function of the arguments.

    Probe steps come from the oracle's generator (pruning excluded: the
    chaos replayer drives everything through service clients, and prune
    is an executor-side operation); fault events are then placed at
    seeded step indices.
    """
    if not 0 <= min_faults <= max_faults:
        raise ValueError("need 0 <= min_faults <= max_faults")
    schedule_kwargs.setdefault("include_prune", False)
    probe_schedules = generate_schedules(count, seed, **schedule_kwargs)
    rng = DeterministicRNG(seed ^ 0x5EEDFA17)
    out: List[ChaosSchedule] = []
    for probe_schedule in probe_schedules:
        steps = len(probe_schedule.steps)
        faults = tuple(
            sorted(
                (
                    FaultEvent(rng.randint(0, steps - 1), _weighted_fault(rng))
                    for _ in range(rng.randint(min_faults, max_faults))
                ),
                key=lambda f: (f.step, f.kind),
            )
        )
        out.append(
            ChaosSchedule(
                probe_schedule.schedule_id, probe_schedule.seed,
                probe_schedule, faults,
            )
        )
    return out


def _weighted_fault(rng: DeterministicRNG) -> str:
    total = sum(weight for _, weight in _FAULT_WEIGHTS)
    roll = rng.randint(1, total)
    for kind, weight in _FAULT_WEIGHTS:
        roll -= weight
        if roll <= 0:
            return kind
    return _FAULT_WEIGHTS[-1][0]  # pragma: no cover - unreachable


@dataclass
class ChaosOutcome:
    """One replayed chaos schedule: faults fired, replies, verdict."""

    schedule: ChaosSchedule
    injected: Dict[str, int] = field(default_factory=dict)
    replies: int = 0
    shed: int = 0
    breaker_rejections: int = 0
    worker_restarts: int = 0
    degradations: int = 0
    quarantined: int = 0
    unfired_worker_faults: int = 0
    mismatches: List[str] = field(default_factory=list)
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None and not self.mismatches

    def to_dict(self) -> dict:
        return {
            "schedule_id": self.schedule.schedule_id,
            "seed": self.schedule.seed,
            "faults": [(f.step, f.kind) for f in self.schedule.faults],
            "injected": dict(self.injected),
            "replies": self.replies,
            "shed": self.shed,
            "breaker_rejections": self.breaker_rejections,
            "worker_restarts": self.worker_restarts,
            "degradations": self.degradations,
            "quarantined": self.quarantined,
            "unfired_worker_faults": self.unfired_worker_faults,
            "mismatches": list(self.mismatches),
            "error": self.error,
            "ok": self.ok,
        }


@dataclass
class ChaosReport:
    """Everything ``repro chaos`` learned about one program."""

    program: str
    seed: int
    outcomes: List[ChaosOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    @property
    def faults_injected(self) -> int:
        return sum(sum(o.injected.values()) for o in self.outcomes)

    @property
    def failures(self) -> List[str]:
        out = []
        for outcome in self.outcomes:
            sid = outcome.schedule.schedule_id
            if outcome.error is not None:
                out.append(f"chaos #{sid}: {outcome.error}")
            for mismatch in outcome.mismatches:
                out.append(f"chaos #{sid}: {mismatch}")
        return out

    def summary(self) -> str:
        status = "ok" if self.ok else f"{len(self.failures)} FAILURES"
        restarts = sum(o.worker_restarts for o in self.outcomes)
        shed = sum(o.shed for o in self.outcomes)
        return (
            f"{self.program}: {len(self.outcomes)} chaos schedules "
            f"(seed {self.seed}), {self.faults_injected} faults injected, "
            f"{restarts} worker restarts, {shed} jobs shed, {status}"
        )

    def to_dict(self) -> dict:
        return {
            "program": self.program,
            "seed": self.seed,
            "ok": self.ok,
            "faults_injected": self.faults_injected,
            "outcomes": [o.to_dict() for o in self.outcomes],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


class ChaosRunner:
    """Replays chaos schedules against a supervised service instance.

    Each schedule gets a fresh service (process-pool compiler by
    default, persistent cache in a scratch directory) and is torn down
    afterwards; the final probe state is judged by the differential
    oracle's full three-layer equivalence check.
    """

    def __init__(
        self,
        program: TargetProgram,
        *,
        workers: int = 2,
        worker_mode: str = MODE_PROCESS,
        max_inputs: int = 4,
        batch_timeout_s: float = 30.0,
        reply_timeout_s: float = 120.0,
    ):
        self.program = program
        self.workers = workers
        self.worker_mode = worker_mode
        self.batch_timeout_s = batch_timeout_s
        self.reply_timeout_s = reply_timeout_s
        # Reused for its corpus + compare_to_reference (fault-free
        # scratch rebuild of the same probe state).
        self.oracle = DifferentialOracle(program, max_inputs=max_inputs)

    def run(self, schedules: List[ChaosSchedule], seed: int = 0) -> ChaosReport:
        report = ChaosReport(self.program.name, seed)
        for schedule in schedules:
            report.outcomes.append(self.run_schedule(schedule))
        return report

    def run_schedule(self, schedule: ChaosSchedule) -> ChaosOutcome:
        outcome = ChaosOutcome(schedule)
        workdir = tempfile.mkdtemp(prefix="repro-chaos-")
        session: Optional[_ChaosSession] = None
        try:
            session = _ChaosSession(self, schedule, workdir, outcome)
            session.replay()
            session.verdict()
        except Exception as error:  # surface, do not crash the sweep
            outcome.error = f"{type(error).__name__}: {error}"
        finally:
            if session is not None:
                session.close()
            shutil.rmtree(workdir, ignore_errors=True)
        return outcome


class _ChaosSession:
    """One schedule's live side: service, client, armed faults."""

    def __init__(
        self,
        runner: ChaosRunner,
        schedule: ChaosSchedule,
        workdir: str,
        outcome: ChaosOutcome,
    ):
        self.runner = runner
        self.schedule = schedule
        self.outcome = outcome
        self.rng = DeterministicRNG(schedule.seed ^ 0xC4A05)
        self._armed: List[type] = []
        self._corrupted: List[str] = []
        self.service = RecompilationService(
            workers=runner.workers,
            worker_mode=runner.worker_mode,
            cache_dir=f"{workdir}/cache",
            retry_policy=RetryPolicy(seed=schedule.seed),
            batch_timeout_s=runner.batch_timeout_s,
        )
        self.service.compiler.fault_injector = self._inject
        # Patching is off for chaos: the tiered fast path services probe
        # toggles without ever reaching the worker pool, but armed worker
        # faults only fire inside a compile batch — every step must take
        # the full path for the schedule's faults to land where intended.
        self.engine = self.service.register_target(
            runner.program.name, runner.program.compile(), preserve=PRESERVED,
            enable_patching=False,
        )
        self.client = self.service.client(runner.program.name, "chaos")
        self.tool = OdinCov(self.engine, rebuild_fn=self.client.rebuild_report)
        self.tool.add_all_block_probes()
        self.service.build(runner.program.name)
        self.service.start()
        self.executor = OdinCovExecutor(self.tool)

    # -- fault machinery -------------------------------------------------------

    def _inject(self, compiler, batch, attempt) -> None:
        """SupervisedCompiler hook: fire one armed fault per attempt."""
        if self._armed and batch:
            raise self._armed.pop(0)(
                f"chaos: injected {self.schedule.describe()} fault "
                f"(attempt {attempt}, batch of {len(batch)})"
            )

    def _fire(self, event: FaultEvent) -> None:
        count = self.outcome.injected
        if event.kind == FAULT_WORKER_CRASH:
            self._armed.append(WorkerCrashError)
        elif event.kind == FAULT_WORKER_HANG:
            self._armed.append(WorkerTimeoutError)
        elif event.kind == FAULT_CACHE_CORRUPT:
            keys = self.service.cache.keys()
            if not keys:  # nothing stored yet: fault is a no-op
                return
            victim = keys[self.rng.randint(0, len(keys) - 1)]
            self.service.cache.inject_fault("corrupt-obj", key=victim)
            self._corrupted.append(victim)
        elif event.kind == FAULT_DISPATCHER_RESTART:
            self.service.stop(drain=True)
            self.service.start()
        elif event.kind == FAULT_DEADLINE_EXPIRE:
            # Submitted while the dispatcher is down with a deadline of
            # zero: already expired by the time dispatch resumes, so the
            # queue must shed it instead of compiling for nobody.
            self.service.stop(drain=True)
            job = self.client.submit((), deadline_s=0.0)
            self.service.start()
            try:
                job.result(self.runner.reply_timeout_s)
                self.outcome.mismatches.append(
                    f"deadline-expired job before step {event.step} was "
                    f"compiled instead of shed"
                )
            except DeadlineExpiredError:
                self.outcome.shed += 1
        count[event.kind] = count.get(event.kind, 0) + 1

    # -- replay ----------------------------------------------------------------

    def replay(self) -> None:
        inputs = self.runner.oracle.inputs
        cursor = 0
        pick_rng = DeterministicRNG(self.schedule.seed)
        for index, step in enumerate(self.schedule.probe_schedule.steps):
            for event in self.schedule.faults:
                if event.step == index:
                    self._fire(event)
            for _ in range(step.inputs):
                self.executor.execute(inputs[cursor % len(inputs)])
                cursor += 1
            self._apply_step(step, pick_rng)
            self.executor._refresh_vm()

    def _apply_step(self, step, pick_rng: DeterministicRNG) -> None:
        manager = self.engine.manager
        if step.kind == "disable":
            eligible = [p for p in manager if p.enabled]
        elif step.kind == "enable":
            eligible = [p for p in manager if not p.enabled]
        else:  # remove
            eligible = list(manager)
        eligible.sort(key=lambda p: p.id)
        picked = pick_targets(pick_rng, eligible, step.count)
        if not picked:
            return
        if step.kind == "remove":
            for probe in picked:
                self.tool.probes.pop(probe.id, None)
        ops = [ProbeOp(_STEP_OPS[step.kind], p.id) for p in picked]
        try:
            self.client.rebuild(ops, timeout=self.runner.reply_timeout_s)
            self.outcome.replies += 1
        except ServiceError as error:
            if error.retry_after_s is None:
                raise
            # Breaker open: a fast failure, not a hang.  Count it; the
            # step's ops were never applied, so state stays consistent.
            self.outcome.breaker_rejections += 1

    # -- verdict ---------------------------------------------------------------

    def verdict(self) -> None:
        outcome = self.outcome
        outcome.unfired_worker_faults = len(self._armed)
        self._armed.clear()  # never let a leftover fault poison teardown
        # Corrupted entries must self-heal: a get may miss (quarantined)
        # but must never raise or return different bytes (the oracle
        # below would catch wrong bytes that got linked).
        cache = self.service.cache
        for key in self._corrupted:
            try:
                cache.get(key)
            except Exception as error:  # noqa: BLE001 - the assertion itself
                outcome.mismatches.append(
                    f"corrupted cache entry {key[:12]} raised "
                    f"{type(error).__name__} instead of degrading to a miss"
                )
        compiler_stats = self.service.compiler.stats()
        outcome.worker_restarts = compiler_stats["worker_restarts"]
        outcome.degradations = compiler_stats["degradations"]
        outcome.quarantined = getattr(cache, "quarantined", 0)
        # Every fault behind us: the final probe state must still be
        # exactly what a fault-free from-scratch build produces.
        outcome.mismatches.extend(
            self.runner.oracle.compare_to_reference(self.engine)
        )

    def close(self) -> None:
        self.service.close()


def run_chaos(
    program: TargetProgram,
    *,
    schedules: int = 3,
    seed: int = 0,
    workers: int = 2,
    worker_mode: str = MODE_PROCESS,
    max_inputs: int = 4,
) -> ChaosReport:
    """Generate and replay *schedules* chaos schedules for *program*."""
    runner = ChaosRunner(
        program, workers=workers, worker_mode=worker_mode, max_inputs=max_inputs
    )
    return runner.run(generate_chaos_schedules(schedules, seed), seed)
