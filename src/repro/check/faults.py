"""Persistent-cache fault injection: every fault must degrade to a miss.

The persistent code cache sits between the engine and wrong code: a
truncated ``.obj``, a torn write, or a corrupt/stale ``index.json`` must
never surface as a *different* object under a content key — only as a
cache miss that costs one recompile.  This module proves it by storing
real compiled fragments, injecting each fault kind from
``PersistentCodeCache.FAULT_KINDS``, and asserting the cache either
misses or returns byte-identical code, then recovers on re-put.

Index faults are checked through a *reopen* of the directory, modelling
a service restart over a damaged store.
"""

from __future__ import annotations

import shutil
import tempfile
from typing import Dict, List, Optional

from repro.core.engine import compile_fragment, object_fingerprint
from repro.frontend.codegen import compile_source
from repro.service.cache import PersistentCodeCache

# Two tiny translation units compiled into genuine object files; keyed
# like the engine would (any distinct stable keys work for the store).
_SOURCES = {
    "fault_a": """
int helper(int x) { return x * 3 + 1; }
int run_input(const char *data, long size) {
    if (size > 0) return helper((int)data[0]);
    return 0;
}
int main(void) { return helper(2); }
""",
    "fault_b": """
int acc;
int add(int x) { acc = acc + x; return acc; }
int run_input(const char *data, long size) {
    long i;
    for (i = 0; i < size; i = i + 1) add((int)data[i]);
    return acc;
}
int main(void) { return 0; }
""",
}


def _compiled_corpus() -> Dict[str, object]:
    objs = {}
    for name, source in _SOURCES.items():
        objs[f"{name:0<64}"] = compile_fragment(compile_source(source, name))
    return objs


def run_fault_checks(
    directory: Optional[str] = None, *, kinds=None
) -> List[str]:
    """Run every fault scenario; returns failure descriptions (empty = ok)."""
    failures: List[str] = []
    kinds = tuple(kinds) if kinds is not None else PersistentCodeCache.FAULT_KINDS
    workdir = directory or tempfile.mkdtemp(prefix="repro-check-faults-")
    try:
        for kind in kinds:
            failures.extend(_check_one_fault(workdir, kind))
    finally:
        if directory is None:
            shutil.rmtree(workdir, ignore_errors=True)
    return failures


def _check_one_fault(workdir: str, kind: str) -> List[str]:
    failures: List[str] = []
    cache_dir = tempfile.mkdtemp(prefix=f"{kind}-", dir=workdir)
    cache = PersistentCodeCache(cache_dir, flush_interval=1)
    corpus = _compiled_corpus()
    expected = {key: object_fingerprint(obj) for key, obj in corpus.items()}
    for key, obj in corpus.items():
        cache.put(key, obj)
    victim = sorted(corpus)[0]

    cache.inject_fault(kind, key=victim)
    if kind.endswith("-obj"):
        probe = cache
    else:
        # Index faults are only visible to a fresh reader of the
        # directory — the running instance holds the index in memory.
        probe = PersistentCodeCache(cache_dir, flush_interval=1)

    for key in sorted(corpus):
        got = probe.get(key)
        if got is not None and object_fingerprint(got) != expected[key]:
            failures.append(
                f"{kind}: key {key[:12]} returned WRONG CODE instead of a miss"
            )
    if kind.endswith("-obj") and probe.get(victim) is not None:
        # Damaged entries must have been dropped, not resurrected.
        failures.append(f"{kind}: damaged entry {victim[:12]} still loads")

    # Whatever was lost must be recoverable by a plain re-put.
    for key, obj in corpus.items():
        if probe.get(key) is None:
            probe.put(key, obj)
            got = probe.get(key)
            if got is None:
                failures.append(f"{kind}: re-put of {key[:12]} did not recover")
            elif object_fingerprint(got) != expected[key]:
                failures.append(f"{kind}: re-put of {key[:12]} returned wrong code")
    return failures
