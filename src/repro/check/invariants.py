"""Engine/scheduler invariants the differential oracle relies on.

Two properties are load-bearing for Algorithm 2's correctness and are
checked here directly, program by program:

* **Stage-3 back propagation** — recompiling a fragment wipes its old
  instrumentation, so the scheduler must re-apply *every* active probe
  targeting the fragment, not only the dirty ones.  A violation would
  silently drop probes from rebuilt fragments (coverage holes the
  fuzzer cannot see).
* **Content-key determinism** — identical content keys must map to
  identical object bytes across engines and runs; otherwise the shared
  content-addressed cache could hand one client code compiled for
  another state.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.engine import Odin, object_fingerprint
from repro.instrument.coverage import OdinCov
from repro.programs.registry import TargetProgram

PRESERVED = ("main", "run_input")


class RecordingCache:
    """Mapping-like cache stub: always misses, records key -> fingerprint.

    Forcing misses makes the engine compile every fragment, so every
    occurrence of a content key yields fresh object bytes to compare.
    """

    def __init__(self):
        self.seen: Dict[str, str] = {}
        self.conflicts: List[str] = []

    def get(self, key: str) -> None:
        return None

    def put(self, key: str, obj) -> None:
        fp = object_fingerprint(obj)
        old = self.seen.setdefault(key, fp)
        if old != fp:
            self.conflicts.append(
                f"content key {key[:12]} produced two different objects "
                f"({old[:12]} != {fp[:12]})"
            )


def check_backpropagation(program: TargetProgram) -> List[str]:
    """Dirty one probe; every active probe of the fragment must re-apply."""
    failures: List[str] = []
    engine = Odin(program.compile(), preserve=PRESERVED)
    tool = OdinCov(engine)
    tool.add_all_block_probes()
    tool.build()

    # Pick a fragment carrying at least two probes, disable one of them.
    by_fragment: Dict[int, List] = {}
    owner = engine.fragdef.owner
    for probe in engine.manager:
        fid = owner.get(probe.target_symbol())
        if fid is not None:
            by_fragment.setdefault(fid, []).append(probe)
    fid, probes = max(by_fragment.items(), key=lambda kv: len(kv[1]))
    if len(probes) < 2:
        return [f"{program.name}: no fragment carries two probes to check"]
    probes.sort(key=lambda p: p.id)
    engine.manager.disable(probes[0])

    scheduler = engine.manager.schedule()
    changed_symbols = scheduler.changed_symbols
    expected = {
        p.id
        for p in engine.manager
        if p.enabled and p.target_symbol() in changed_symbols
    }
    actual = {p.id for p in scheduler.active_probes}
    if actual != expected:
        failures.append(
            f"{program.name}: stage-3 back propagation scheduled {sorted(actual)} "
            f"but every active probe in changed fragments is {sorted(expected)}"
        )
    scheduler.apply_probes()
    report = scheduler.rebuild()
    if report.probes_applied != len(expected):
        failures.append(
            f"{program.name}: rebuild applied {report.probes_applied} probes, "
            f"expected {len(expected)}"
        )
    return failures


def check_content_key_determinism(program: TargetProgram) -> List[str]:
    """Same source + same probe ops => same keys => same object bytes."""
    recordings = []
    for _ in range(2):
        cache = RecordingCache()
        engine = Odin(program.compile(), preserve=PRESERVED, object_cache=cache)
        tool = OdinCov(engine)
        tool.add_all_block_probes()
        tool.build()
        # One incremental step too, so rebuild-path keys are covered.
        first = min(tool.probes)
        engine.manager.disable(tool.probes[first])
        engine.rebuild()
        recordings.append(cache)

    failures: List[str] = []
    for cache in recordings:
        failures.extend(f"{program.name}: {c}" for c in cache.conflicts)
    a, b = (r.seen for r in recordings)
    if set(a) != set(b):
        failures.append(
            f"{program.name}: two identical runs produced different "
            f"content-key sets ({len(a)} vs {len(b)} keys)"
        )
    else:
        for key in a:
            if a[key] != b[key]:
                failures.append(
                    f"{program.name}: key {key[:12]} compiled to different "
                    f"bytes across runs"
                )
    return failures


def run_invariant_checks(program: TargetProgram) -> List[str]:
    """All engine/scheduler invariants for one program."""
    failures = []
    failures.extend(check_backpropagation(program))
    failures.extend(check_content_key_determinism(program))
    return failures
