"""The differential rebuild oracle (Algorithm 2's missing referee).

Odin's correctness claim is that an incremental rebuild is semantically
identical to recompiling the world (§3.3).  The oracle makes that claim
falsifiable, FuzzyFlow-style: replay a probe-state schedule two ways —

* **incrementally**, through the live engine (or the recompilation
  service, batching and caches included), exactly as a fuzzing campaign
  would drive it;
* **from scratch**, by compiling a fresh engine from the original source
  into the same probe state with a single full build;

and after every effective step assert three layers of equivalence:

1. *object bytes* — every fragment's canonical object serialization;
2. *linked image* — the executable's canonical bytes;
3. *behaviour* — exit code, stdout, trap, cycle count and per-input
   coverage maps over a seed corpus.

Any divergence is reported with the schedule, step and layer that
exposed it, which is what makes the report actionable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Tuple

from repro.core.engine import Odin
from repro.check.schedules import (
    STEP_DISABLE,
    STEP_ENABLE,
    STEP_PRUNE,
    STEP_REMOVE,
    ProbeSchedule,
    pick_targets,
)
from repro.fuzz.executor import ENTRY, OdinCovExecutor
from repro.instrument.coverage import CoverageRuntime, OdinCov
from repro.linker.linker import Executable
from repro.programs.registry import TargetProgram
from repro.utils.rng import DeterministicRNG
from repro.vm.interpreter import VM

PRESERVED = ("main", "run_input")


@dataclass
class StepOutcome:
    """One replayed step: what ran and whether equivalence held."""

    index: int
    kind: str
    applied: int            # probe ops actually applied (0 = no-op step)
    rebuilt: bool           # did the incremental side rebuild?
    compared: bool          # was a from-scratch reference built?
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches


@dataclass
class ScheduleOutcome:
    schedule: ProbeSchedule
    steps: List[StepOutcome] = field(default_factory=list)
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None and all(step.ok for step in self.steps)

    @property
    def comparisons(self) -> int:
        return sum(1 for step in self.steps if step.compared)


@dataclass
class CheckReport:
    """Everything ``repro check`` learned about one program."""

    program: str
    schedules: List[ScheduleOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.schedules)

    @property
    def comparisons(self) -> int:
        return sum(outcome.comparisons for outcome in self.schedules)

    @property
    def mismatches(self) -> List[str]:
        out = []
        for outcome in self.schedules:
            if outcome.error is not None:
                out.append(
                    f"schedule #{outcome.schedule.schedule_id}: {outcome.error}"
                )
            for step in outcome.steps:
                for mismatch in step.mismatches:
                    out.append(
                        f"schedule #{outcome.schedule.schedule_id} "
                        f"step {step.index} ({step.kind}): {mismatch}"
                    )
        return out

    def summary(self) -> str:
        status = "ok" if self.ok else f"{len(self.mismatches)} MISMATCHES"
        return (
            f"{self.program}: {len(self.schedules)} schedules, "
            f"{self.comparisons} rebuild comparisons, {status}"
        )


class DifferentialOracle:
    """Replays schedules incrementally and against from-scratch builds."""

    def __init__(
        self,
        program: TargetProgram,
        *,
        use_service: bool = False,
        workers: int = 1,
        worker_mode: str = "serial",
        max_inputs: int = 4,
        corpus_seed: int = 0,
    ):
        self.program = program
        self.use_service = use_service
        self.workers = workers
        self.worker_mode = worker_mode
        inputs = program.seeds(corpus_seed)
        if not inputs:
            raise ValueError(f"program {program.name!r} has an empty seed corpus")
        self.inputs: List[bytes] = inputs[:max_inputs]

    # -- public API -------------------------------------------------------------

    def run(self, schedules: List[ProbeSchedule]) -> CheckReport:
        report = CheckReport(self.program.name)
        for schedule in schedules:
            report.schedules.append(self.check_schedule(schedule))
        return report

    def check_schedule(self, schedule: ProbeSchedule) -> ScheduleOutcome:
        outcome = ScheduleOutcome(schedule)
        session = _IncrementalSession(self)
        try:
            rng = DeterministicRNG(schedule.seed)
            cursor = 0
            for index, step in enumerate(schedule.steps):
                for _ in range(step.inputs):
                    session.executor.execute(self.inputs[cursor % len(self.inputs)])
                    cursor += 1
                applied, rebuilt = session.apply_step(step, rng)
                step_outcome = StepOutcome(index, step.kind, applied, rebuilt, False)
                # A no-op step (nothing eligible, nothing pruned) leaves
                # the probe state untouched, so the previous comparison
                # still vouches for it; skip the expensive reference.
                if applied or rebuilt:
                    step_outcome.compared = True
                    step_outcome.mismatches = self.compare_to_reference(
                        session.engine
                    )
                outcome.steps.append(step_outcome)
        except Exception as error:  # surface, do not crash the sweep
            outcome.error = f"{type(error).__name__}: {error}"
        finally:
            session.close()
        return outcome

    # -- equivalence ------------------------------------------------------------

    def compare_to_reference(self, engine: Odin) -> List[str]:
        """Build the same probe state from scratch and diff all layers."""
        mismatches: List[str] = []
        ref_engine, aligned = self._build_reference(engine)
        if not aligned:
            return ["probe id universe diverged between engines"]

        inc_objs = engine.object_fingerprints()
        ref_objs = ref_engine.object_fingerprints()
        for fid in sorted(ref_objs):
            if inc_objs.get(fid) != ref_objs[fid]:
                mismatches.append(
                    f"fragment #{fid} object bytes differ "
                    f"(incremental {str(inc_objs.get(fid))[:12]} != "
                    f"from-scratch {ref_objs[fid][:12]})"
                )
        inc_fp = engine.executable_fingerprint()
        ref_fp = ref_engine.executable_fingerprint()
        if inc_fp != ref_fp:
            mismatches.append(
                f"linked image differs (incremental {str(inc_fp)[:12]} != "
                f"from-scratch {str(ref_fp)[:12]})"
            )
        mismatches.extend(
            self._compare_behaviour(engine.executable, ref_engine.executable)
        )
        return mismatches

    def _build_reference(self, incremental: Odin) -> Tuple[Odin, bool]:
        """Fresh engine + single full build reproducing the probe state.

        Probe ids are assigned deterministically by
        ``add_all_block_probes`` (module iteration order), so the fresh
        engine's probes align with the incremental engine's by id; we
        then remove/disable until the states match.
        """
        engine = Odin(self.program.compile(), preserve=PRESERVED)
        tool = OdinCov(engine)
        tool.add_all_block_probes()
        state = {p.id: p.enabled for p in incremental.manager}
        if not set(state) <= set(tool.probes):
            return engine, False
        for pid in sorted(tool.probes):
            probe = tool.probes[pid]
            if pid not in state:
                engine.manager.remove(probe)
                tool.probes.pop(pid)
            elif not state[pid]:
                engine.manager.disable(probe)
        tool.build()
        return engine, True

    def _compare_behaviour(
        self, inc_exe: Optional[Executable], ref_exe: Optional[Executable]
    ) -> List[str]:
        mismatches: List[str] = []
        if inc_exe is None or ref_exe is None:
            return ["an engine has no executable to compare"]
        for data in self.inputs:
            inc = self._run_one(inc_exe, data)
            ref = self._run_one(ref_exe, data)
            for name, a, b in zip(
                ("exit_code", "stdout", "trap", "cycles", "coverage"), inc, ref
            ):
                if a != b:
                    mismatches.append(
                        f"input {data[:16]!r}: {name} differs ({a!r} != {b!r})"
                    )
        return mismatches

    def _run_one(
        self, executable: Executable, data: bytes
    ) -> Tuple[int, bytes, Optional[str], int, FrozenSet[int]]:
        """Run one input on a fresh VM + coverage runtime."""
        runtime = CoverageRuntime()
        vm = VM(executable, probe_runtime=runtime)
        vm.reset()
        addr = vm.alloc(max(len(data), 1) + 1)
        vm.write_bytes(addr, data)
        result = vm.run(ENTRY, (addr, len(data)), reset=False)
        covered = frozenset(pid for pid, hits in runtime.counters.items() if hits)
        return (result.exit_code, result.stdout, result.trap, result.cycles, covered)


class _IncrementalSession:
    """The live side of one schedule replay: engine, tool, executor.

    With ``use_service`` the engine is registered on a
    :class:`~repro.service.server.RecompilationService` (background
    dispatcher, shared content cache, link cache, worker pool) and every
    probe op travels through a client — the full production path.
    """

    def __init__(self, oracle: DifferentialOracle):
        self.oracle = oracle
        self.service = None
        self.client = None
        module = oracle.program.compile()
        if oracle.use_service:
            from repro.service import RecompilationService

            self.service = RecompilationService(
                workers=oracle.workers, worker_mode=oracle.worker_mode
            )
            self.engine = self.service.register_target(
                oracle.program.name, module, preserve=PRESERVED
            )
            self.client = self.service.client(oracle.program.name, "oracle")
            self.tool = OdinCov(self.engine, rebuild_fn=self.client.rebuild_report)
            self.tool.add_all_block_probes()
            self.service.build(oracle.program.name)
            self.service.start()
        else:
            self.engine = Odin(module, preserve=PRESERVED)
            self.tool = OdinCov(self.engine)
            self.tool.add_all_block_probes()
            self.tool.build()
        self.executor = OdinCovExecutor(self.tool)

    def close(self) -> None:
        if self.service is not None:
            self.service.close()

    # -- steps ------------------------------------------------------------------

    def apply_step(self, step, rng: DeterministicRNG) -> Tuple[int, bool]:
        """Apply one schedule step; returns (ops applied, rebuilt?)."""
        manager = self.engine.manager
        before_exe = self.engine.executable
        if step.kind == STEP_PRUNE:
            report = self.executor.prune()
            return report.pruned, report.rebuild is not None

        if step.kind == STEP_DISABLE:
            eligible = [p for p in manager if p.enabled]
        elif step.kind == STEP_ENABLE:
            eligible = [p for p in manager if not p.enabled]
        else:  # STEP_REMOVE
            eligible = list(manager)
        eligible.sort(key=lambda p: p.id)
        picked = pick_targets(rng, eligible, step.count)
        if not picked:
            return 0, False

        if self.client is not None:
            self._apply_via_service(step.kind, picked)
        else:
            for probe in picked:
                if step.kind == STEP_DISABLE:
                    manager.disable(probe)
                elif step.kind == STEP_ENABLE:
                    manager.enable(probe)
                else:
                    self.tool.probes.pop(probe.id, None)
                    manager.remove(probe)
            self.engine.rebuild_if_needed()
        self.executor._refresh_vm()
        return len(picked), self.engine.executable is not before_exe

    def _apply_via_service(self, kind: str, picked) -> None:
        from repro.service.jobs import OP_DISABLE, OP_ENABLE, OP_REMOVE, ProbeOp

        op_kind = {
            STEP_DISABLE: OP_DISABLE,
            STEP_ENABLE: OP_ENABLE,
            STEP_REMOVE: OP_REMOVE,
        }[kind]
        ids = [p.id for p in picked]
        if kind == STEP_REMOVE:
            for pid in ids:
                self.tool.probes.pop(pid, None)
        self.client.rebuild([ProbeOp(op_kind, pid) for pid in ids])
