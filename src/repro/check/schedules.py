"""Deterministic probe-state schedules for the differential oracle.

A schedule is a short random program over the probe-state API: run a few
corpus inputs, then disable / enable / remove a handful of probes or run
an Untracer-style prune — the exact operation mix a fuzzing campaign
exercises (§4's dynamic add/remove/change, §2.1's pruning).  Schedules
are pure data: the concrete probes touched are resolved at replay time
from the schedule's own seed, so the same schedule replays identically
against the incremental engine and the from-scratch reference.

Everything is driven by :class:`repro.utils.rng.DeterministicRNG`;
``generate_schedules(n, seed)`` is a pure function of its arguments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple, TypeVar

from repro.utils.rng import DeterministicRNG

T = TypeVar("T")

# Step kinds understood by the oracle's replayer.
STEP_DISABLE = "disable"
STEP_ENABLE = "enable"
STEP_REMOVE = "remove"
STEP_PRUNE = "prune"
STEP_KINDS = (STEP_DISABLE, STEP_ENABLE, STEP_REMOVE, STEP_PRUNE)

# Generation weights: toggles dominate (fuzzers flip probe sets far more
# often than they prune), removal and pruning stay common enough that
# every multi-step schedule shrinks the probe population.
_KIND_WEIGHTS = (
    (STEP_DISABLE, 30),
    (STEP_ENABLE, 25),
    (STEP_REMOVE, 25),
    (STEP_PRUNE, 20),
)


@dataclass(frozen=True)
class ScheduleStep:
    """One probe-state mutation, preceded by a burst of executions."""

    kind: str
    count: int = 1   # probes to touch (disable/enable/remove)
    inputs: int = 2  # corpus inputs executed before the mutation

    def __post_init__(self):
        if self.kind not in STEP_KINDS:
            raise ValueError(f"unknown step kind {self.kind!r}")
        if self.count < 1:
            raise ValueError("count must be >= 1")
        if self.inputs < 0:
            raise ValueError("inputs must be >= 0")

    def describe(self) -> str:
        if self.kind == STEP_PRUNE:
            return f"run {self.inputs}, prune covered"
        return f"run {self.inputs}, {self.kind} {self.count}"


@dataclass(frozen=True)
class ProbeSchedule:
    """A deterministic sequence of probe-state mutations.

    ``seed`` drives the replay-time probe picks; it is derived from the
    generator seed and the schedule id, so two oracles replaying the
    same schedule always touch the same probes.
    """

    schedule_id: int
    seed: int
    steps: Tuple[ScheduleStep, ...]

    def describe(self) -> str:
        inner = "; ".join(step.describe() for step in self.steps)
        return f"schedule #{self.schedule_id} (seed {self.seed}): {inner}"


def _weighted_kind(rng: DeterministicRNG, include_prune: bool) -> str:
    pool = [
        (kind, weight)
        for kind, weight in _KIND_WEIGHTS
        if include_prune or kind != STEP_PRUNE
    ]
    total = sum(weight for _, weight in pool)
    roll = rng.randint(1, total)
    for kind, weight in pool:
        roll -= weight
        if roll <= 0:
            return kind
    return pool[-1][0]  # pragma: no cover - unreachable

def generate_schedules(
    count: int,
    seed: int,
    *,
    min_steps: int = 3,
    max_steps: int = 6,
    max_probes_per_step: int = 4,
    max_inputs_per_step: int = 3,
    include_prune: bool = True,
) -> List[ProbeSchedule]:
    """Generate *count* schedules, a pure function of the arguments."""
    if count < 0:
        raise ValueError("count must be >= 0")
    if not 1 <= min_steps <= max_steps:
        raise ValueError("need 1 <= min_steps <= max_steps")
    rng = DeterministicRNG(seed)
    schedules: List[ProbeSchedule] = []
    for schedule_id in range(count):
        replay_seed = rng.randint(0, 2**62)
        steps = tuple(
            ScheduleStep(
                kind=_weighted_kind(rng, include_prune),
                count=rng.randint(1, max_probes_per_step),
                inputs=rng.randint(0, max_inputs_per_step),
            )
            for _ in range(rng.randint(min_steps, max_steps))
        )
        schedules.append(ProbeSchedule(schedule_id, replay_seed, steps))
    return schedules


def pick_targets(
    rng: DeterministicRNG, eligible: Sequence[T], count: int
) -> List[T]:
    """Deterministically pick up to *count* distinct items from *eligible*.

    The caller passes a stably ordered sequence (the oracle sorts live
    probes by id); sampling is without replacement so one step never
    issues the same op twice.
    """
    remaining = list(eligible)
    picked: List[T] = []
    while remaining and len(picked) < count:
        picked.append(remaining.pop(rng.randint(0, len(remaining) - 1)))
    return picked
