"""Tier-sweep differential check (``repro check --tiers``).

The tiered fast path (patch / memo / full, see ``core/engine.py``) is
only a fast path if every tier produces the *same artifacts*.  This
module replays one seeded probe schedule through three engine
configurations side by side:

* **patch** — stage-1 probe patching on, object cache on, memo off: pure
  toggles are serviced by patching the cached master object;
* **memo**  — patching off, object cache off, pass memoization on: every
  rebuild re-lowers, but optimized IR is replayed from the memo;
* **full**  — everything off: the classic from-scratch incremental path.

All three sessions execute the same corpus inputs and apply the same
probe ops (picked once, applied by id everywhere, so a behavioural
divergence cannot cascade into a state divergence).  After every
effective step the sweep asserts, pairwise against the full path:

1. *object bytes* — each fragment's canonical object fingerprint;
2. *linked image* — the executable's canonical fingerprint;
3. *behaviour* — exit code, stdout, trap, cycles and coverage per input.

Zero divergences is the acceptance bar: the fast tiers are not allowed
to be merely "close" to the slow one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.check.schedules import (
    STEP_DISABLE,
    STEP_ENABLE,
    STEP_PRUNE,
    STEP_REMOVE,
    ProbeSchedule,
    pick_targets,
)
from repro.core.engine import Odin
from repro.fuzz.executor import ENTRY, OdinCovExecutor
from repro.instrument.coverage import CoverageRuntime, OdinCov
from repro.linker.linker import Executable
from repro.programs.registry import TargetProgram
from repro.utils.rng import DeterministicRNG
from repro.vm.interpreter import VM

PRESERVED = ("main", "run_input")

# Tier label -> engine configuration.  The full path is last so the two
# fast tiers always diff against the slowest, most conservative build.
TIER_LABELS = ("patch", "memo", "full")


@dataclass
class TierStepOutcome:
    """One replayed step across all tiers."""

    index: int
    kind: str
    applied: int                 # probe ops applied (0 = no-op step)
    compared: bool
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches


@dataclass
class TierScheduleOutcome:
    schedule: ProbeSchedule
    steps: List[TierStepOutcome] = field(default_factory=list)
    # Tier label -> count of rebuilds whose report landed on that tier;
    # proves the sweep exercised the fast paths, not just the fallback.
    tiers_hit: Dict[str, int] = field(default_factory=dict)
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None and all(step.ok for step in self.steps)


@dataclass
class TierSweepReport:
    """Everything ``repro check --tiers`` learned about one program."""

    program: str
    schedules: List[TierScheduleOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.schedules)

    @property
    def comparisons(self) -> int:
        return sum(
            1
            for outcome in self.schedules
            for step in outcome.steps
            if step.compared
        )

    @property
    def tiers_hit(self) -> Dict[str, int]:
        total: Dict[str, int] = {}
        for outcome in self.schedules:
            for tier, count in outcome.tiers_hit.items():
                total[tier] = total.get(tier, 0) + count
        return total

    @property
    def mismatches(self) -> List[str]:
        out = []
        for outcome in self.schedules:
            if outcome.error is not None:
                out.append(
                    f"schedule #{outcome.schedule.schedule_id}: {outcome.error}"
                )
            for step in outcome.steps:
                for mismatch in step.mismatches:
                    out.append(
                        f"schedule #{outcome.schedule.schedule_id} "
                        f"step {step.index} ({step.kind}): {mismatch}"
                    )
        return out

    def summary(self) -> str:
        status = "ok" if self.ok else f"{len(self.mismatches)} DIVERGENCES"
        hit = ", ".join(
            f"{tier}={count}" for tier, count in sorted(self.tiers_hit.items())
        )
        return (
            f"{self.program}: tier sweep, {len(self.schedules)} schedules, "
            f"{self.comparisons} comparisons, tiers hit [{hit}], {status}"
        )


class _TierSession:
    """One tier's live engine + coverage tool + executor."""

    def __init__(self, program: TargetProgram, label: str):
        self.label = label
        kwargs = dict(preserve=PRESERVED)
        if label == "patch":
            from repro.service.cache import InMemoryCodeCache

            kwargs.update(
                enable_patching=True,
                object_cache=InMemoryCodeCache(),
            )
        elif label == "memo":
            from repro.service.cache import PassMemoCache

            kwargs.update(enable_patching=False, pass_memo=PassMemoCache())
        else:  # full
            kwargs.update(enable_patching=False)
        self.engine = Odin(program.compile(), **kwargs)
        self.tool = OdinCov(self.engine)
        self.tool.add_all_block_probes()
        self.tool.build()
        self.executor = OdinCovExecutor(self.tool)
        self.rebuilds_before = len(self.engine.history)

    def probes_by_id(self) -> Dict[int, object]:
        return {p.id: p for p in self.engine.manager}

    def apply_ops(self, kind: str, ids: List[int]) -> None:
        probes = self.probes_by_id()
        for pid in ids:
            probe = probes[pid]
            if kind == STEP_DISABLE:
                self.engine.manager.disable(probe)
            elif kind == STEP_ENABLE:
                self.engine.manager.enable(probe)
            else:  # remove (covers prune too)
                self.tool.probes.pop(pid, None)
                self.engine.manager.remove(probe)
        if kind == STEP_PRUNE:
            self.tool.runtime.clear()
        self.engine.rebuild_if_needed()
        self.executor._refresh_vm()

    def new_tiers(self) -> List[str]:
        """Tier labels of rebuilds since the last call."""
        fresh = self.engine.history[self.rebuilds_before:]
        self.rebuilds_before = len(self.engine.history)
        return [report.tier for report in fresh]


class TierSweep:
    """Replays schedules through every tier and diffs all layers."""

    def __init__(
        self,
        program: TargetProgram,
        *,
        max_inputs: int = 4,
        corpus_seed: int = 0,
    ):
        self.program = program
        inputs = program.seeds(corpus_seed)
        if not inputs:
            raise ValueError(f"program {program.name!r} has an empty seed corpus")
        self.inputs: List[bytes] = inputs[:max_inputs]

    def run(self, schedules: List[ProbeSchedule]) -> TierSweepReport:
        report = TierSweepReport(self.program.name)
        for schedule in schedules:
            report.schedules.append(self.check_schedule(schedule))
        return report

    def check_schedule(self, schedule: ProbeSchedule) -> TierScheduleOutcome:
        outcome = TierScheduleOutcome(schedule)
        sessions = [_TierSession(self.program, label) for label in TIER_LABELS]
        lead = sessions[0]
        try:
            rng = DeterministicRNG(schedule.seed)
            cursor = 0
            for index, step in enumerate(schedule.steps):
                for _ in range(step.inputs):
                    data = self.inputs[cursor % len(self.inputs)]
                    for session in sessions:
                        session.executor.execute(data)
                    cursor += 1
                kind, ids = self._pick_ops(lead, step, rng)
                step_outcome = TierStepOutcome(index, step.kind, len(ids), False)
                if ids:
                    for session in sessions:
                        session.apply_ops(kind, ids)
                        for tier in session.new_tiers():
                            outcome.tiers_hit[tier] = (
                                outcome.tiers_hit.get(tier, 0) + 1
                            )
                    step_outcome.compared = True
                    step_outcome.mismatches = self._compare(sessions)
                outcome.steps.append(step_outcome)
        except Exception as error:  # surface, do not crash the sweep
            outcome.error = f"{type(error).__name__}: {error}"
        return outcome

    # -- op selection ------------------------------------------------------------

    def _pick_ops(
        self, lead: _TierSession, step, rng: DeterministicRNG
    ) -> Tuple[str, List[int]]:
        """Pick the step's probe ids once, on the lead session.

        Every session then applies the same ids, so the three probe
        states stay aligned by construction — a behaviour bug shows up
        as a comparison mismatch, never as schedule drift.
        """
        manager = lead.engine.manager
        if step.kind == STEP_PRUNE:
            live = {p.id for p in manager}
            ids = sorted(
                pid for pid in lead.tool.runtime.covered_ids() if pid in live
            )
            return STEP_PRUNE, ids
        if step.kind == STEP_DISABLE:
            eligible = [p for p in manager if p.enabled]
        elif step.kind == STEP_ENABLE:
            eligible = [p for p in manager if not p.enabled]
        else:  # STEP_REMOVE
            eligible = list(manager)
        eligible.sort(key=lambda p: p.id)
        picked = pick_targets(rng, eligible, step.count)
        return step.kind, [p.id for p in picked]

    # -- equivalence -------------------------------------------------------------

    def _compare(self, sessions: List[_TierSession]) -> List[str]:
        """Diff every fast tier against the full path, all three layers."""
        mismatches: List[str] = []
        reference = sessions[-1]  # full
        ref_objs = reference.engine.object_fingerprints()
        ref_exe_fp = reference.engine.executable_fingerprint()
        ref_behaviour = [
            _run_one(reference.engine.executable, data) for data in self.inputs
        ]
        for session in sessions[:-1]:
            objs = session.engine.object_fingerprints()
            if set(objs) != set(ref_objs):
                mismatches.append(
                    f"{session.label}: linked fragment set differs from full "
                    f"({sorted(objs)} != {sorted(ref_objs)})"
                )
                continue
            for fid in sorted(ref_objs):
                if objs[fid] != ref_objs[fid]:
                    mismatches.append(
                        f"{session.label}: fragment #{fid} object bytes differ "
                        f"from full ({objs[fid][:12]} != {ref_objs[fid][:12]})"
                    )
            exe_fp = session.engine.executable_fingerprint()
            if exe_fp != ref_exe_fp:
                mismatches.append(
                    f"{session.label}: linked image differs from full "
                    f"({str(exe_fp)[:12]} != {str(ref_exe_fp)[:12]})"
                )
            for data, ref in zip(self.inputs, ref_behaviour):
                got = _run_one(session.engine.executable, data)
                for name, a, b in zip(
                    ("exit_code", "stdout", "trap", "cycles", "coverage"),
                    got,
                    ref,
                ):
                    if a != b:
                        mismatches.append(
                            f"{session.label}: input {data[:16]!r} {name} "
                            f"differs from full ({a!r} != {b!r})"
                        )
        return mismatches


def _run_one(
    executable: Optional[Executable], data: bytes
) -> Tuple[int, bytes, Optional[str], int, FrozenSet[int]]:
    """Run one input on a fresh VM + coverage runtime."""
    if executable is None:
        return (-1, b"", "no executable", 0, frozenset())
    runtime = CoverageRuntime()
    vm = VM(executable, probe_runtime=runtime)
    vm.reset()
    addr = vm.alloc(max(len(data), 1) + 1)
    vm.write_bytes(addr, data)
    result = vm.run(ENTRY, (addr, len(data)), reset=False)
    covered = frozenset(pid for pid, hits in runtime.counters.items() if hits)
    return (result.exit_code, result.stdout, result.trap, result.cycles, covered)
