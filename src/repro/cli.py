"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — the benchmark targets
* ``run PROGRAM`` — compile and run a target's smoke test + seed corpus
* ``partition PROGRAM`` — show the fragment definition (Figure 6 style)
* ``fuzz PROGRAM`` — a coverage-guided campaign with on-the-fly pruning
* ``check [PROGRAMS]`` — the differential rebuild oracle: replay random
  probe-state schedules incrementally and from scratch, assert byte- and
  behaviour-equivalence, and run cache-fault + invariant suites
* ``chaos [PROGRAMS]`` — seeded fault injection against the live
  service (worker crash/hang, cache corruption, dispatcher restarts,
  deadline expiry); every run must end oracle-equivalent to a
  fault-free from-scratch build
* ``lint [PROGRAMS]`` — the static layer: run the IR lint suite over each
  target and drive a fully instrumented build with the probe-integrity
  sanitizer between passes; exits non-zero on sanitizer errors
* ``partisan [PROGRAMS]`` — run-time partitioned sanitization: execute a
  target through a multi-variant image (clean/coverage/sanitized) under
  a budget-controlled dispatch mix and report per-variant execution
  shares, achieved overhead and de-instrumented hot functions
* ``profile [PROGRAMS]`` — budgeted call-path profiling: instrument
  every function with enter/exit timing probes, hold the slowdown to a
  target budget by de-instrumenting hot symbols through the patch tier,
  and report the flat + call-path profile with cold paths retained
* ``experiment NAME`` — regenerate one of the paper's tables/figures
* ``serve PROGRAM`` — run the recompilation service under a synthetic
  multi-client probe-flip workload and report its metrics
* ``stats [FILE]`` — pretty-print a stats snapshot written by ``serve``
* ``trace PROGRAM`` — record an instrumented build + one on-the-fly
  rebuild as span trees and export Chrome ``trace_event`` JSON
  (``fuzz`` and ``serve`` accept ``--trace-out`` for whole campaigns)
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
from typing import List, Optional

from repro.core.engine import Odin
from repro.core.variants import VARIANT_LABELS
from repro.fuzz.executor import OdinCovExecutor
from repro.fuzz.fuzzer import Fuzzer
from repro.instrument.coverage import OdinCov
from repro.programs.registry import all_programs, get_program
from repro.toolchain import build_module
from repro.vm.interpreter import VM

PRESERVED = ("main", "run_input")


def cmd_list(_args) -> int:
    for program in all_programs():
        print(f"{program.name:>10}  {program.source_lines:>4} lines  "
              f"{program.description}")
    return 0


def cmd_run(args) -> int:
    program = get_program(args.program)
    build = build_module(program.compile(), opt_level=args.opt)
    vm = VM(build.executable)
    smoke = vm.run("main")
    print(f"main: exit={smoke.exit_code} stdout={smoke.stdout.decode().strip()!r} "
          f"cycles={smoke.cycles}")
    total = 0
    for seed in program.seeds(args.seed):
        vm.reset()
        addr = vm.alloc(len(seed) + 1)
        vm.write_bytes(addr, seed)
        result = vm.run("run_input", (addr, len(seed)), reset=False)
        total += result.cycles
        status = result.trap or "ok"
        print(f"  seed[{len(seed):>4}B] -> {result.exit_code:>12} ({status}, "
              f"{result.cycles} cycles)")
    print(f"total replay cycles: {total}")
    return 0


def cmd_partition(args) -> int:
    program = get_program(args.program)
    engine = Odin(program.compile(), strategy=args.strategy, preserve=PRESERVED)
    print(f"{VARIANT_LABELS[args.strategy]} on {program.name}:")
    print(engine.describe_partition())
    report = engine.initial_build()
    print(f"\ninitial build: {report.total_compile_ms:.1f} ms compile "
          f"+ {report.link_ms:.1f} ms link across {len(report.fragment_ids)} fragments")
    worst = max(report.fragment_compile_ms.items(), key=lambda kv: kv[1])
    print(f"worst fragment: #{worst[0]} at {worst[1]:.1f} ms")
    return 0


def cmd_fuzz(args) -> int:
    program = get_program(args.program)
    service = None
    if args.service:
        from repro.service import RecompilationService

        service = RecompilationService(
            workers=args.workers, worker_mode=args.mode
        )
        engine = service.register_target(
            program.name, program.compile(), preserve=PRESERVED
        )
        client = service.client(program.name, "fuzzer")
        tool = OdinCov(engine, rebuild_fn=client.rebuild_report)
        probes = tool.add_all_block_probes()
        service.build(program.name)
        service.start()
    else:
        engine = Odin(program.compile(), preserve=PRESERVED)
        tool = OdinCov(engine)
        probes = tool.add_all_block_probes()
        tool.build()
    executor = OdinCovExecutor(tool)
    fuzzer = Fuzzer(
        executor, program.seeds(args.seed), seed=args.seed,
        prune_interval=args.prune_interval,
    )
    stats = fuzzer.run(args.executions)
    if service is not None:
        service.close()
    print(f"target:      {program.name} ({probes} probes, "
          f"{engine.num_fragments} fragments)")
    print(f"executions:  {stats.executions}")
    print(f"corpus:      {stats.corpus_size} entries, {stats.coverage} probes covered")
    print(f"crashes:     {stats.crashes}")
    rebuilds = max(stats.rebuilds, 1)
    print(f"rebuilds:    {stats.rebuilds} "
          f"(avg {stats.rebuild_ms / rebuilds:.1f} ms wall, "
          f"{stats.rebuild_cpu_ms / rebuilds:.1f} ms cpu)")
    print(f"probes left: {len(tool.probes)}")
    if service is not None:
        derived = service.stats()["derived"]
        print(f"service:     cache hit rate {derived['cache_hit_rate']:.1%}, "
              f"mean batch {derived['mean_batch_size']:.2f}, "
              f"{derived['fragments_compiled']:g} fragment compiles")
    if args.trace_out:
        tracer = service.tracer if service is not None else engine.tracer
        return _write_trace_file(args.trace_out, tracer.roots())
    return 0


def cmd_selffuzz(args) -> int:
    """Turn the toolchain on itself: composition-steered differential
    fuzzing of the -O2 pipeline against -O0 ground truth."""
    import json

    from repro.selffuzz import (
        SelfFuzzCampaign,
        SelfFuzzHarness,
        parse_style_mix,
    )

    mix = parse_style_mix(args.styles) if args.styles else None
    harness = SelfFuzzHarness(sanitize=not args.no_sanitize)

    def progress(verdict):
        if verdict.ok:
            if args.verbose:
                print(f"  {verdict.name} [{verdict.style}] ok")
            return
        print(f"  {verdict.name} [{verdict.style}] {verdict.status}"
              + (f" -> {verdict.pass_name}" if verdict.pass_name else ""))
        if verdict.detail and args.verbose:
            print(f"    {verdict.detail}")

    campaign = SelfFuzzCampaign(
        seed=args.seed, count=args.count, mix=mix,
        minimize=args.minimize, harness=harness, on_program=progress,
    )
    report = campaign.run()

    print(report.summary())
    for style, counts in sorted(report.styles.items()):
        print(f"  {style:15s} {counts['programs']:4d} programs, "
              f"{counts['failures']} failures")
    if report.passes:
        print("failures by pass:")
        for pass_name, n in sorted(report.passes.items()):
            print(f"  {pass_name}: {n}")

    if args.report_json:
        with open(args.report_json, "w") as fp:
            json.dump(report.to_dict(), fp, indent=2, sort_keys=True)
        print(f"report written to {args.report_json}")

    if args.corpus and report.failures:
        import os

        os.makedirs(args.corpus, exist_ok=True)
        for verdict in report.failures:
            path = os.path.join(args.corpus, f"{verdict.name}.c")
            source = verdict.minimized_source or verdict.source
            header = (
                f"// selffuzz reproducer: {verdict.status}\n"
                f"// seed={verdict.seed} index={verdict.index} "
                f"style={verdict.style}\n"
                + (f"// pass: {verdict.pass_name}\n" if verdict.pass_name
                   else "")
                + (f"// detail: {verdict.detail}\n" if verdict.detail else "")
            )
            with open(path, "w") as fp:
                fp.write(header + source)
            print(f"reproducer written to {path}")

    return 0 if report.ok else 1


DEFAULT_CHECK_PROGRAMS = ("libjpeg", "lcms")


def cmd_check(args) -> int:
    """Differential rebuild oracle + fault injection + invariants."""
    from repro.check import (
        DifferentialOracle,
        generate_schedules,
        run_fault_checks,
        run_invariant_checks,
    )

    programs = [
        get_program(name) for name in (args.programs or DEFAULT_CHECK_PROGRAMS)
    ]
    schedules = generate_schedules(
        args.schedules,
        args.seed,
        max_steps=args.max_steps,
        include_prune=not args.no_prune,
    )
    if args.tiers:
        # Tier-sweep mode: replay the same schedules through the
        # patch-only, memo-only and full paths and demand byte/behaviour
        # equivalence.  Replaces the ordinary oracle run — three engines
        # per schedule is the expensive part, not the oracle around it.
        from repro.check import TierSweep

        failed = False
        for program in programs:
            sweep = TierSweep(program, max_inputs=args.max_inputs)
            report = sweep.run(schedules)
            print(report.summary())
            for mismatch in report.mismatches:
                print(f"  DIVERGENCE {mismatch}")
            failed = failed or not report.ok
        print("FAIL" if failed else "PASS")
        return 1 if failed else 0
    failed = False
    for program in programs:
        oracle = DifferentialOracle(
            program,
            use_service=args.service,
            workers=args.workers,
            worker_mode=args.mode,
            max_inputs=args.max_inputs,
        )
        report = oracle.run(schedules)
        print(report.summary())
        for mismatch in report.mismatches:
            print(f"  MISMATCH {mismatch}")
        failed = failed or not report.ok

        invariant_failures = run_invariant_checks(program)
        if invariant_failures:
            failed = True
            for failure in invariant_failures:
                print(f"  INVARIANT {failure}")
        else:
            print(f"{program.name}: invariants ok "
                  f"(back propagation, content-key determinism)")

        if not args.no_variants:
            from repro.variants import check_clean_dispatch

            variant_report = check_clean_dispatch(
                program, seed=args.seed, max_inputs=args.max_inputs
            )
            print(variant_report.summary())
            for mismatch in variant_report.mismatches:
                print(f"  VARIANT {mismatch}")
            failed = failed or not variant_report.ok

    if not args.no_faults:
        fault_failures = run_fault_checks()
        if fault_failures:
            failed = True
            for failure in fault_failures:
                print(f"  FAULT {failure}")
        else:
            from repro.service.cache import PersistentCodeCache

            print(f"cache faults: {len(PersistentCodeCache.FAULT_KINDS)} "
                  f"scenarios, all degraded to a miss")
    print("FAIL" if failed else "PASS")
    return 1 if failed else 0


DEFAULT_CHAOS_PROGRAMS = ("lcms",)


def cmd_chaos(args) -> int:
    """Seeded chaos harness: fault-injected service runs vs the oracle."""
    from repro.check.chaos import ChaosRunner, generate_chaos_schedules

    programs = [
        get_program(name) for name in (args.programs or DEFAULT_CHAOS_PROGRAMS)
    ]
    schedules = generate_chaos_schedules(
        args.schedules,
        args.seed,
        min_faults=args.min_faults,
        max_faults=args.max_faults,
        max_steps=args.max_steps,
    )
    failed = False
    reports = []
    for program in programs:
        runner = ChaosRunner(
            program,
            workers=args.workers,
            worker_mode=args.mode,
            max_inputs=args.max_inputs,
        )
        report = runner.run(schedules, args.seed)
        reports.append(report)
        print(report.summary())
        for outcome in report.outcomes:
            print(f"  {outcome.schedule.describe()}: "
                  f"{outcome.replies} replies, {outcome.shed} shed, "
                  f"{outcome.worker_restarts} restarts, "
                  f"{outcome.quarantined} quarantined"
                  + ("" if outcome.ok else "  FAILED"))
        for failure in report.failures:
            print(f"  CHAOS {failure}")
        failed = failed or not report.ok
    if args.report_json:
        payload = [report.to_dict() for report in reports]
        with open(args.report_json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"chaos report written to {args.report_json}")
    print("FAIL" if failed else "PASS")
    return 1 if failed else 0


DEFAULT_CLUSTER_PROGRAMS = ("json", "lcms")


def cmd_cluster(args) -> int:
    """Sharded multi-tenant cluster chaos sweep with recovery oracle."""
    from repro.check.chaos import run_cluster_chaos

    programs = [
        get_program(name)
        for name in (args.programs or DEFAULT_CLUSTER_PROGRAMS)
    ]
    report = run_cluster_chaos(
        programs,
        schedules=args.schedules,
        seed=args.seed,
        shards=args.shards,
        tenants=args.tenants,
        max_inputs=args.max_inputs,
        reply_timeout_s=args.reply_timeout,
    )
    print(report.summary())
    for outcome in report.outcomes:
        shed = sum(t.shed_quota + t.shed_deadline for t in outcome.tenants)
        print(f"  {outcome.schedule.describe()}: "
              f"{sum(outcome.injected.values())} faults, "
              f"{outcome.failovers} failovers, "
              f"{outcome.migrations} migrated, "
              f"{outcome.resubmits} resubmits, {shed} shed, "
              f"{outcome.live_shards} shards live"
              + ("" if outcome.ok else "  FAILED"))
    for failure in report.failures:
        print(f"  CLUSTER {failure}")
    if args.report_json:
        with open(args.report_json, "w", encoding="utf-8") as fh:
            fh.write(report.to_json())
        print(f"cluster report written to {args.report_json}")
    print("FAIL" if not report.ok else "PASS")
    return 0 if report.ok else 1


DEFAULT_PARTISAN_PROGRAMS = ("json", "lcms", "libjpeg")


def cmd_partisan(args) -> int:
    """Run-time partitioned sanitization under an overhead budget."""
    from repro.variants import check_clean_dispatch, run_partisan

    programs = [
        get_program(name)
        for name in (args.programs or DEFAULT_PARTISAN_PROGRAMS)
    ]
    failed = False
    payload = []
    all_spans = []
    for program in programs:
        run = run_partisan(
            program,
            budget=args.budget,
            executions=args.executions,
            seed=args.seed,
            mode=args.mode,
            window=args.window,
            dispatch_tax=args.dispatch_tax,
            max_inputs=args.max_inputs,
        )
        report = run.report
        print(report.summary())
        for name in sorted(report.probes):
            cost = report.family_costs.get(name)
            print(
                f"  {name:>10}: {report.probes[name]:>3} live probes, "
                f"call share {report.call_shares.get(name, 0.0):.3f}, "
                f"mix weight {report.mix_final.get(name, 0.0):.3f}"
                + (f", cost {cost:.2f}x clean" if cost is not None else "")
            )
        if args.windows:
            for window in run.controller.windows:
                print(f"  {window.summary}")
        payload.append(report.to_dict())
        all_spans.extend(run.tracer.roots())
        if args.strict and not report.converged:
            failed = True
            print(f"  NOT CONVERGED (budget {args.budget:+.3f})")

    if not args.no_check:
        for program in programs:
            variant_report = check_clean_dispatch(program, seed=args.seed)
            print(variant_report.summary())
            for mismatch in variant_report.mismatches:
                print(f"  VARIANT {mismatch}")
            failed = failed or not variant_report.ok

    if args.report_json:
        with open(args.report_json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"partisan report written to {args.report_json}")
    if args.trace_out:
        _write_trace_file(args.trace_out, all_spans)
    print("FAIL" if failed else "PASS")
    return 1 if failed else 0


DEFAULT_PROFILE_PROGRAMS = ("json", "lcms")


def cmd_profile(args) -> int:
    """Budgeted call-path profiling through the patch tier."""
    from repro.profile import run_profile

    programs = [
        get_program(name)
        for name in (args.programs or DEFAULT_PROFILE_PROGRAMS)
    ]
    failed = False
    payload = []
    all_spans = []
    for program in programs:
        run = run_profile(
            program,
            budget=args.budget,
            executions=args.executions,
            seed=args.seed,
            window=args.window,
            max_inputs=args.max_inputs,
        )
        report = run.report
        print(report.summary())
        for row in report.flat[: args.top]:
            state = "on " if row["enabled"] else "off"
            print(
                f"  [{state}] {row['symbol']:>16}: {row['calls']:>6} calls, "
                f"incl {row['incl_cycles']:>9}, excl {row['excl_cycles']:>9}"
            )
        for edge in report.edges[: args.top]:
            print(
                f"  edge {edge['caller']} -> {edge['callee']}: "
                f"{edge['calls']} calls"
            )
        if report.cold_instrumented:
            print(f"  cold (still instrumented): "
                  f"{', '.join(report.cold_instrumented)}")
        if report.unattributed:
            print(f"  unattributed counter events: {report.unattributed}")
        if args.windows:
            for window in run.controller.windows:
                print(f"  {window.summary}")
        payload.append(report.to_dict())
        all_spans.extend(run.tracer.roots())
        if args.strict:
            if not report.converged:
                failed = True
                print(f"  NOT CONVERGED (budget {args.budget:+.3f})")
            if not report.toggles_patch_only:
                failed = True
                print(
                    f"  TOGGLES COMPILED: {report.compile_batches} fragment "
                    f"compiles in {report.rebuilds} toggle rebuilds "
                    f"(tiers: {', '.join(report.rebuild_tiers)})"
                )

    if args.report_json:
        with open(args.report_json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"profile report written to {args.report_json}")
    if args.trace_out:
        _write_trace_file(args.trace_out, all_spans)
    print("FAIL" if failed else "PASS")
    return 1 if failed else 0


def cmd_lint(args) -> int:
    """IR lint suite + probe-integrity-sanitized instrumented build."""
    from collections import Counter

    from repro.instrument.cmplog import add_cmp_probes

    programs = [get_program(n) for n in args.programs] if args.programs \
        else list(all_programs())
    failed = False
    for program in programs:
        engine = Odin(
            program.compile(), preserve=PRESERVED,
            opt_level=args.opt, sanitize=not args.no_sanitize,
        )
        diags = engine.lint()
        warnings = [d for d in diags if d.severity == "warning"]
        notes = [d for d in diags if d.severity == "note"]
        for d in warnings:
            print(f"  {d}")
        if args.notes:
            for d in notes:
                print(f"  {d}")

        sanitizer_errors = []
        sanitizer_warnings = []
        if not args.no_sanitize:
            tool = OdinCov(engine)
            tool.add_all_block_probes()
            add_cmp_probes(engine)
            engine.initial_build()
            sanitizer_errors = [
                d for d in engine.sanitizer_diagnostics if d.is_error
            ]
            sanitizer_warnings = [
                d for d in engine.sanitizer_diagnostics if not d.is_error
            ]
            for d in sanitizer_errors + sanitizer_warnings:
                print(f"  {d}")

        counts = Counter(d.check for d in diags)
        summary = ", ".join(f"{n} {check}" for check, n in sorted(counts.items()))
        print(f"{program.name}: {summary or 'no lint findings'}"
              + ("" if args.no_sanitize else
                 f"; sanitizer: {len(sanitizer_errors)} errors, "
                 f"{len(sanitizer_warnings)} warnings (-O{args.opt})"))
        if sanitizer_errors or (args.strict and (warnings or sanitizer_warnings)):
            failed = True
    print("FAIL" if failed else "PASS")
    return 1 if failed else 0


def cmd_serve(args) -> int:
    """Run the recompilation service under a multi-client workload."""
    from repro.service import RecompilationService, format_stats
    from repro.utils.rng import DeterministicRNG

    program = get_program(args.program)
    service = RecompilationService(
        workers=args.workers,
        worker_mode=args.mode,
        cache_dir=args.cache_dir,
    )
    engine = service.register_target(
        program.name, program.compile(), preserve=PRESERVED
    )
    tool = OdinCov(engine)
    probes = tool.add_all_block_probes()
    build = service.build(program.name)
    print(f"serving {program.name}: {probes} probes, "
          f"{engine.num_fragments} fragments, initial build "
          f"{build.total_compile_ms:.1f} ms compile + {build.link_ms:.1f} ms link")

    probe_ids = sorted(tool.probes)

    def client_loop(index: int) -> None:
        client = service.client(program.name, f"client-{index}")
        rng = DeterministicRNG(args.seed + index)
        for _ in range(args.flips):
            picked = [
                probe_ids[rng.randint(0, len(probe_ids) - 1)]
                for _ in range(min(4, len(probe_ids)))
            ]
            client.disable(*picked).result(60.0)
            client.enable(*picked).result(60.0)

    with service:
        threads = [
            threading.Thread(target=client_loop, args=(i,), daemon=True)
            for i in range(args.clients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    stats = service.stats()
    print()
    print(format_stats(stats))
    if args.stats_json:
        with open(args.stats_json, "w", encoding="utf-8") as fh:
            json.dump(stats, fh, indent=2, sort_keys=True)
        print(f"\nstats written to {args.stats_json}")
    if args.trace_out:
        return _write_trace_file(args.trace_out, service.tracer.roots())
    return 0


def _write_trace_file(path: str, spans) -> int:
    """Validate and write a Chrome trace; returns 0, or 2 on schema errors."""
    from repro.obs import to_trace_events, validate_trace_events, write_trace

    problems = validate_trace_events(to_trace_events(spans))
    if problems:
        for problem in problems:
            print(f"trace error: {problem}", file=sys.stderr)
        return 2
    write_trace(path, spans)
    print(f"trace written to {path} ({len(spans)} span trees)")
    return 0


def cmd_trace(args) -> int:
    """Trace an instrumented build plus one on-the-fly rebuild."""
    from repro.obs import flame_summary

    program = get_program(args.program)
    if args.service:
        from repro.service import RecompilationService

        with RecompilationService(
            workers=args.workers, worker_mode=args.mode
        ) as service:
            engine = service.register_target(
                program.name, program.compile(), preserve=PRESERVED
            )
            tool = OdinCov(engine)
            tool.add_all_block_probes()
            service.build(program.name)
            client = service.client(program.name, "trace")
            picked = sorted(tool.probes)[: args.flips]
            client.disable(*picked).result(60.0)
            client.enable(*picked).result(60.0)
        tracer = service.tracer
    else:
        engine = Odin(program.compile(), preserve=PRESERVED)
        tool = OdinCov(engine)
        tool.add_all_block_probes()
        tool.build()
        picked = sorted(tool.probes)[: args.flips]
        for pid in picked:
            engine.manager.disable(tool.probes[pid])
        engine.rebuild_if_needed()
        tracer = engine.tracer

    spans = tracer.roots()
    print(flame_summary(spans, max_depth=args.depth))
    if args.out:
        return _write_trace_file(args.out, spans)
    return 0


def cmd_stats(args) -> int:
    """Pretty-print a stats snapshot produced by ``serve --stats-json``."""
    from repro.service import format_stats

    try:
        with open(args.file, "r", encoding="utf-8") as fh:
            stats = json.load(fh)
    except OSError as error:
        print(f"cannot read stats file: {error}", file=sys.stderr)
        return 2
    print(format_stats(stats))
    return 0


def cmd_experiment(args) -> int:
    name = args.name
    if name in ("fig8", "fig9"):
        from repro.experiments.overhead import (
            format_fig8,
            format_fig9,
            measure_overheads,
        )

        summary = measure_overheads(_selected(args))
        print(format_fig8(summary) if name == "fig8" else format_fig9(summary))
    elif name == "fig10":
        from repro.experiments.partition import format_fig10, measure_partition_variants

        print(format_fig10(measure_partition_variants(_selected(args))))
    elif name in ("fig11", "fig12"):
        from repro.experiments.recompile import (
            format_fig11,
            format_fig12,
            measure_recompile_times,
        )

        summary = measure_recompile_times(_selected(args))
        print(format_fig11(summary) if name == "fig11" else format_fig12(summary))
    elif name == "fig3":
        from repro.buildsim.buildcost import measure_build

        program = get_program(args.programs[0] if args.programs else "libxml2")
        breakdown = measure_build(program.name, program.source)
        for stage, fraction in breakdown.fractions().items():
            print(f"{stage:>16}: {fraction * 100:6.2f}%")
        print(f"{'total':>16}: {breakdown.total_ms:8.1f} ms")
    elif name == "headline":
        from repro.experiments.recompile import measure_headline_recompile

        result = measure_headline_recompile(_selected(args))
        print(f"recompilations: {result.count}, mean {result.mean_ms:.1f} ms "
              f"(paper: 82 ms)")
    else:
        print(f"unknown experiment {name!r}", file=sys.stderr)
        return 2
    return 0


def _selected(args):
    if getattr(args, "programs", None):
        return [get_program(n) for n in args.programs]
    return None


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Odin (PLDI 2022) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmark targets").set_defaults(fn=cmd_list)

    p_run = sub.add_parser("run", help="compile and run a target")
    p_run.add_argument("program")
    p_run.add_argument("--opt", type=int, default=2, choices=(0, 2))
    p_run.add_argument("--seed", type=int, default=0)
    p_run.set_defaults(fn=cmd_run)

    p_part = sub.add_parser("partition", help="show a target's fragments")
    p_part.add_argument("program")
    p_part.add_argument(
        "--strategy", default="odin", choices=("odin", "one", "max")
    )
    p_part.set_defaults(fn=cmd_partition)

    p_fuzz = sub.add_parser("fuzz", help="coverage-guided campaign")
    p_fuzz.add_argument("program")
    p_fuzz.add_argument("--executions", type=int, default=1000)
    p_fuzz.add_argument("--prune-interval", type=int, default=250)
    p_fuzz.add_argument("--seed", type=int, default=1)
    p_fuzz.add_argument(
        "--service", action="store_true",
        help="route on-the-fly rebuilds through the recompilation service",
    )
    p_fuzz.add_argument("--workers", type=int, default=2)
    p_fuzz.add_argument(
        "--mode", default="thread", choices=("serial", "thread", "process")
    )
    p_fuzz.add_argument(
        "--trace-out", default=None,
        help="write the campaign's rebuild span trees as Chrome trace JSON",
    )
    p_fuzz.set_defaults(fn=cmd_fuzz)

    p_selffuzz = sub.add_parser(
        "selffuzz",
        help="differential fuzzing of the -O2 pipeline (toolchain on itself)",
    )
    p_selffuzz.add_argument("--seed", type=int, default=0)
    p_selffuzz.add_argument("-n", "--count", type=int, default=100,
                            help="number of programs to generate")
    p_selffuzz.add_argument(
        "--styles", default=None,
        help="composition-style mix, e.g. 'inline-chain=2,diamond' "
             "(default: every style, equal weight)",
    )
    p_selffuzz.add_argument(
        "--minimize", action="store_true",
        help="auto-minimize every failing program to a 1-minimal reproducer",
    )
    p_selffuzz.add_argument(
        "--no-sanitize", action="store_true",
        help="skip the probe-integrity sanitizer leg",
    )
    p_selffuzz.add_argument(
        "--report-json", default=None, metavar="PATH",
        help="write the campaign report (per-style/per-pass tallies) as JSON",
    )
    p_selffuzz.add_argument(
        "--corpus", default=None, metavar="DIR",
        help="write (minimized) reproducers for every failure into DIR",
    )
    p_selffuzz.add_argument("-v", "--verbose", action="store_true")
    p_selffuzz.set_defaults(fn=cmd_selffuzz)

    p_check = sub.add_parser(
        "check", help="differential rebuild oracle + fault/invariant suites"
    )
    p_check.add_argument(
        "programs", nargs="*",
        help=f"targets to check (default: {' '.join(DEFAULT_CHECK_PROGRAMS)})",
    )
    p_check.add_argument("--schedules", type=int, default=25)
    p_check.add_argument("--seed", type=int, default=1)
    p_check.add_argument("--max-steps", type=int, default=6)
    p_check.add_argument("--max-inputs", type=int, default=4,
                         help="corpus inputs per behaviour comparison")
    p_check.add_argument(
        "--service", action="store_true",
        help="drive the incremental side through the recompilation service",
    )
    p_check.add_argument("--workers", type=int, default=1)
    p_check.add_argument(
        "--mode", default="serial", choices=("serial", "thread", "process")
    )
    p_check.add_argument(
        "--tiers", action="store_true",
        help="replay schedules through patch-only/memo-only/full engines "
             "and assert object-byte, image and behaviour equivalence",
    )
    p_check.add_argument("--no-prune", action="store_true",
                         help="exclude prune steps from generated schedules")
    p_check.add_argument("--no-faults", action="store_true",
                         help="skip the persistent-cache fault suite")
    p_check.add_argument(
        "--no-variants", action="store_true",
        help="skip the variant clean-dispatch equivalence suite",
    )
    p_check.set_defaults(fn=cmd_check)

    p_partisan = sub.add_parser(
        "partisan",
        help="run-time partitioned sanitization under an overhead budget",
    )
    p_partisan.add_argument(
        "programs", nargs="*",
        help=f"targets to run (default: {' '.join(DEFAULT_PARTISAN_PROGRAMS)})",
    )
    p_partisan.add_argument("--budget", type=float, default=0.25,
                            help="target fractional slowdown over clean")
    p_partisan.add_argument("--executions", type=int, default=720)
    p_partisan.add_argument("--seed", type=int, default=1)
    p_partisan.add_argument(
        "--mode", default="per-call", choices=("per-call", "per-execution"),
        help="variant selection granularity (PartiSan's two policies)",
    )
    p_partisan.add_argument("--window", type=int, default=60,
                            help="executions per controller window")
    p_partisan.add_argument("--dispatch-tax", type=int, default=0,
                            help="cycles charged per dispatched call")
    p_partisan.add_argument("--max-inputs", type=int, default=4,
                            help="seed-corpus inputs cycled through")
    p_partisan.add_argument("--windows", action="store_true",
                            help="print every controller window")
    p_partisan.add_argument("--strict", action="store_true",
                            help="fail if the controller did not converge")
    p_partisan.add_argument("--no-check", action="store_true",
                            help="skip the clean-dispatch equivalence check")
    p_partisan.add_argument("--report-json", default=None,
                            help="write the machine-readable report here")
    p_partisan.add_argument("--trace-out", default=None,
                            help="export build/deinstrument span trees here")
    p_partisan.set_defaults(fn=cmd_partisan)

    p_profile = sub.add_parser(
        "profile",
        help="budgeted call-path profiling through the patch tier",
    )
    p_profile.add_argument(
        "programs", nargs="*",
        help=f"targets to profile (default: {' '.join(DEFAULT_PROFILE_PROGRAMS)})",
    )
    p_profile.add_argument("--budget", type=float, default=0.25,
                           help="target fractional slowdown over clean")
    p_profile.add_argument("--executions", type=int, default=300)
    p_profile.add_argument("--seed", type=int, default=1)
    p_profile.add_argument("--window", type=int, default=20,
                           help="executions per controller window")
    p_profile.add_argument("--max-inputs", type=int, default=4,
                           help="seed-corpus inputs cycled through")
    p_profile.add_argument("--top", type=int, default=8,
                           help="flat-profile and edge rows to print")
    p_profile.add_argument("--windows", action="store_true",
                           help="print every controller window")
    p_profile.add_argument("--strict", action="store_true",
                           help="fail unless converged with patch-only toggles")
    p_profile.add_argument("--report-json", default=None,
                           help="write the machine-readable report here")
    p_profile.add_argument("--trace-out", default=None,
                           help="export the call-path span tree here")
    p_profile.set_defaults(fn=cmd_profile)

    p_chaos = sub.add_parser(
        "chaos", help="seeded fault injection against the live service"
    )
    p_chaos.add_argument(
        "programs", nargs="*",
        help=f"targets to stress (default: {' '.join(DEFAULT_CHAOS_PROGRAMS)})",
    )
    p_chaos.add_argument("--schedules", type=int, default=3)
    p_chaos.add_argument("--seed", type=int, default=1)
    p_chaos.add_argument("--min-faults", type=int, default=1)
    p_chaos.add_argument("--max-faults", type=int, default=3)
    p_chaos.add_argument("--max-steps", type=int, default=5)
    p_chaos.add_argument("--max-inputs", type=int, default=4,
                         help="corpus inputs per behaviour comparison")
    p_chaos.add_argument("--workers", type=int, default=2)
    p_chaos.add_argument(
        "--mode", default="process", choices=("serial", "thread", "process")
    )
    p_chaos.add_argument("--report-json", default=None,
                         help="write the machine-readable chaos report here")
    p_chaos.set_defaults(fn=cmd_chaos)

    p_cluster = sub.add_parser(
        "cluster",
        help="sharded multi-tenant chaos sweep with failover recovery oracle",
    )
    p_cluster.add_argument(
        "programs", nargs="*",
        help=f"targets to serve (default: {' '.join(DEFAULT_CLUSTER_PROGRAMS)})",
    )
    p_cluster.add_argument("--schedules", type=int, default=2)
    p_cluster.add_argument("--seed", type=int, default=1)
    p_cluster.add_argument("--shards", type=int, default=3)
    p_cluster.add_argument("--tenants", type=int, default=8)
    p_cluster.add_argument("--max-inputs", type=int, default=3,
                           help="corpus inputs per behaviour comparison")
    p_cluster.add_argument("--reply-timeout", type=float, default=4.0,
                           help="per-request result() deadline in seconds")
    p_cluster.add_argument("--report-json", default=None,
                           help="write the machine-readable cluster report here")
    p_cluster.set_defaults(fn=cmd_cluster)

    p_lint = sub.add_parser(
        "lint", help="static lint suite + probe-integrity-sanitized build"
    )
    p_lint.add_argument(
        "programs", nargs="*", help="targets to lint (default: all)"
    )
    p_lint.add_argument("--opt", type=int, default=2, choices=(0, 2),
                        help="optimization level for the sanitized build")
    p_lint.add_argument("--no-sanitize", action="store_true",
                        help="lint only; skip the sanitized instrumented build")
    p_lint.add_argument("--notes", action="store_true",
                        help="also print note-severity lint findings")
    p_lint.add_argument("--strict", action="store_true",
                        help="treat warnings as fatal too")
    p_lint.set_defaults(fn=cmd_lint)

    p_serve = sub.add_parser(
        "serve", help="run the recompilation service under a client workload"
    )
    p_serve.add_argument("program")
    p_serve.add_argument("--clients", type=int, default=4)
    p_serve.add_argument("--flips", type=int, default=8)
    p_serve.add_argument("--workers", type=int, default=2)
    p_serve.add_argument(
        "--mode", default="thread", choices=("serial", "thread", "process")
    )
    p_serve.add_argument("--cache-dir", default=None)
    p_serve.add_argument("--seed", type=int, default=1)
    p_serve.add_argument("--stats-json", default=None)
    p_serve.add_argument(
        "--trace-out", default=None,
        help="write the workload's span trees as Chrome trace JSON",
    )
    p_serve.set_defaults(fn=cmd_serve)

    p_stats = sub.add_parser(
        "stats", help="pretty-print a stats snapshot from serve --stats-json"
    )
    p_stats.add_argument("file", nargs="?", default="service-stats.json")
    p_stats.set_defaults(fn=cmd_stats)

    p_trace = sub.add_parser(
        "trace", help="span-tree trace of a build + one on-the-fly rebuild"
    )
    p_trace.add_argument("program")
    p_trace.add_argument("--out", default=None,
                         help="write Chrome trace_event JSON here")
    p_trace.add_argument("--flips", type=int, default=4,
                         help="probes to flip for the traced rebuild")
    p_trace.add_argument("--depth", type=int, default=3,
                         help="flame summary depth")
    p_trace.add_argument(
        "--service", action="store_true",
        help="trace through the recompilation service dispatch path",
    )
    p_trace.add_argument("--workers", type=int, default=2)
    p_trace.add_argument(
        "--mode", default="thread", choices=("serial", "thread", "process")
    )
    p_trace.set_defaults(fn=cmd_trace)

    p_exp = sub.add_parser("experiment", help="regenerate a paper figure")
    p_exp.add_argument(
        "name",
        choices=("fig3", "fig8", "fig9", "fig10", "fig11", "fig12", "headline"),
    )
    p_exp.add_argument("programs", nargs="*", help="restrict to these targets")
    p_exp.set_defaults(fn=cmd_experiment)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_arg_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
