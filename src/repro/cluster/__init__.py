"""Fault-tolerant sharded multi-tenant compile cluster.

A consistent-hash router (:mod:`repro.cluster.router`) fronts N
:class:`~repro.service.server.RecompilationService` shards
(:mod:`repro.cluster.shard`) behind one shared content-addressed cache
tier, with per-tenant weighted admission (:mod:`repro.cluster.tenants`)
and health-checked failover that migrates a dead shard's targets and
lets in-flight clients resubmit idempotently
(:mod:`repro.cluster.client`).
"""

from repro.cluster.client import ClusterClient
from repro.cluster.ring import ConsistentHashRing, RingError, content_route_key
from repro.cluster.router import ClusterError, CompileCluster
from repro.cluster.shard import (
    SHARD_DOWN,
    SHARD_SUSPECT,
    SHARD_UP,
    RouterPartitionError,
    Shard,
    ShardDownError,
)
from repro.cluster.tenants import (
    TENANT_TIERS,
    TIER_BULK,
    TIER_INTERACTIVE,
    TenantAccountant,
    TenantQuotaError,
    TenantSpec,
)

__all__ = [
    "ClusterClient",
    "ClusterError",
    "CompileCluster",
    "ConsistentHashRing",
    "RingError",
    "RouterPartitionError",
    "SHARD_DOWN",
    "SHARD_SUSPECT",
    "SHARD_UP",
    "Shard",
    "ShardDownError",
    "TENANT_TIERS",
    "TIER_BULK",
    "TIER_INTERACTIVE",
    "TenantAccountant",
    "TenantQuotaError",
    "TenantSpec",
    "content_route_key",
]
