"""Tenant-side handle on a cluster target: admission, routing, failover.

A :class:`ClusterClient` is the cluster analogue of
:class:`repro.service.client.ServiceClient`: probe-op helpers plus a
``rebuild()`` that drives one logical request to completion across
shard failures.  The request loop:

1. **admission** — the weighted tenant quota runs first; an over-quota
   submit sheds with :class:`TenantQuotaError` (``retry_after_s`` hint)
   without ever touching a shard;
2. **route + submit** — the request carries the tenant id and a
   deterministic *resubmit token*, and goes to the target's current
   home shard;
3. **bounded wait** — ``Job.result`` waits are always bounded
   (satellite of this PR); an expired wait either means the shard is
   wedged (→ failover + resubmit) or the request was genuinely shed
   (→ :class:`DeadlineExpiredError` surfaces to the campaign);
4. **failover + idempotent resubmit** — a dead/unreachable shard is
   reported to the router (one data-path failure + one missed
   heartbeat condemns it); once the target has migrated, the *same*
   token is resubmitted on the new home.  Probe ops are state-setting
   and the router's ledger refuses double-acknowledgement, so a reply
   that raced the crash cannot be double-counted and a replayed batch
   converges to the same probe state.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.service.client import RebuildReport
from repro.service.jobs import (
    OP_DISABLE,
    OP_ENABLE,
    OP_MARK_CHANGED,
    OP_REMOVE,
    CompileRequest,
    DeadlineExpiredError,
    ProbeOp,
    QueueFullError,
    ServiceReply,
)
from repro.service.server import ServiceError
from repro.cluster.router import ClusterError, CompileCluster
from repro.cluster.shard import RouterPartitionError, ShardDownError

__all__ = ["ClusterClient"]


class ClusterClient:
    """One tenant's client for one registered cluster target."""

    def __init__(self, cluster: CompileCluster, tenant_id: str, name: str,
                 client_id: str = "anon"):
        self.cluster = cluster
        self.tenant_id = tenant_id
        self.name = name
        self.client_id = client_id

    # -- op helpers (mirror ServiceClient) ------------------------------------

    def enable(self, *probe_ids: int) -> Tuple[ProbeOp, ...]:
        return tuple(ProbeOp(OP_ENABLE, pid) for pid in probe_ids)

    def disable(self, *probe_ids: int) -> Tuple[ProbeOp, ...]:
        return tuple(ProbeOp(OP_DISABLE, pid) for pid in probe_ids)

    def remove(self, *probe_ids: int) -> Tuple[ProbeOp, ...]:
        return tuple(ProbeOp(OP_REMOVE, pid) for pid in probe_ids)

    def mark_changed(self, *probe_ids: int) -> Tuple[ProbeOp, ...]:
        return tuple(ProbeOp(OP_MARK_CHANGED, pid) for pid in probe_ids)

    # -- request loop ---------------------------------------------------------

    def rebuild(self, ops: Tuple[ProbeOp, ...] = (), *,
                timeout: Optional[float] = None,
                deadline_s: Optional[float] = None) -> ServiceReply:
        """Drive one logical request to a reply, surviving failovers.

        Raises :class:`TenantQuotaError` when shed by admission,
        :class:`DeadlineExpiredError` when genuinely shed/expired on a
        healthy shard, :class:`ClusterError` when the routing budget is
        exhausted.
        """
        cluster = self.cluster
        entry = cluster.target(self.tenant_id, self.name)
        ops = tuple(ops)
        # Admission before routing: shed traffic never costs a shard
        # anything.  The retry hint prefers the home shard's breaker.
        home = cluster.shards[entry.shard_id]
        cluster.tenants.admit(
            self.tenant_id, retry_after_s=home.breaker.retry_after_s() or None
        )
        token = cluster.next_token(entry, ops)
        wait = cluster.reply_timeout_s if timeout is None else timeout
        attempts = 0
        last_error: Optional[BaseException] = None
        while attempts < cluster.max_route_attempts:
            attempts += 1
            entry = cluster.target(self.tenant_id, self.name)
            shard = cluster.shards[entry.shard_id]
            request = CompileRequest(
                target=entry.key,
                ops=ops,
                client_id=self.client_id,
                deadline_s=deadline_s,
                tenant_id=self.tenant_id,
                resubmit_token=token,
            )
            try:
                job = shard.submit(request)
            except (ShardDownError, RouterPartitionError) as error:
                last_error = error
                self._note_retry(entry.shard_id, resubmit=attempts > 1)
                continue
            except QueueFullError:
                raise
            except ServiceError as error:
                # A fenced shard's service answers "closed"; treat it as
                # shard death.  A breaker-open ServiceError on a healthy
                # shard is real backpressure — surface it.
                if shard.fenced or shard.killed:
                    last_error = error
                    self._note_retry(entry.shard_id, resubmit=attempts > 1)
                    continue
                raise
            try:
                reply = job.result(wait)
            except DeadlineExpiredError as error:
                # Wedged shard (hang/crash mid-wait) or genuine shed?
                # Ask the router: one failed heartbeat on top of this
                # data-path failure condemns the shard.
                if cluster.note_suspect(entry.shard_id):
                    last_error = error
                    cluster.metrics.inc("resubmits")
                    cluster.tenants.note_resubmit(self.tenant_id)
                    continue
                cluster.tenants.note_deadline_expired(self.tenant_id)
                raise
            except (ShardDownError, RouterPartitionError, ServiceError) as error:
                # The job was answered with a shard-death error (killed
                # queue drain, fencing close, breaker trip on a dying
                # shard): resubmit if the router agrees the shard is gone.
                if cluster.note_suspect(entry.shard_id):
                    last_error = error
                    self._note_retry(entry.shard_id, resubmit=True, probe=False)
                    continue
                raise
            cluster.acknowledge(entry, token, ops)
            cluster.tenants.note_reply(self.tenant_id)
            return reply
        raise ClusterError(
            f"request {token!r} exhausted {cluster.max_route_attempts} "
            f"routing attempts"
        ) from last_error

    def _note_retry(self, shard_id: str, *, resubmit: bool,
                    probe: bool = True) -> None:
        cluster = self.cluster
        if probe:
            cluster.note_suspect(shard_id)
        if resubmit:
            cluster.metrics.inc("resubmits")
            cluster.tenants.note_resubmit(self.tenant_id)

    def rebuild_report(self, ops: Tuple[ProbeOp, ...] = (), *,
                       timeout: Optional[float] = None) -> RebuildReport:
        """``rebuild`` + unwrap, for instrumentation-tool ``rebuild_fn``."""
        reply = self.rebuild(ops, timeout=timeout)
        return reply.report if reply.report is not None else RebuildReport()
