"""Consistent-hash ring: content keys -> shard ids.

The cluster routes *work*, not tenants: the routing key of a target is
the content key of its (printed, canonical) module IR, so two tenants
fuzzing the same program land on the same shard and share that shard's
engine-side caches on top of the cluster-wide content-addressed tier.

Classic Karger-style ring with virtual nodes: each shard owns
``virtual_nodes`` points on a 64-bit circle (sha256 of
``"{shard}#{replica}"``), and a key routes to the first point at or
clockwise of its own hash.  Properties the cluster depends on:

* **deterministic** — routing is a pure function of (ring membership,
  key); replaying a seeded chaos schedule reroutes identically;
* **minimal disruption** — removing a shard remaps only the keys that
  were homed on it; every other key keeps its shard, so a failover
  migrates exactly the dead shard's targets and nothing else.
"""

from __future__ import annotations

import bisect
import hashlib
import threading
from typing import Dict, Iterable, List, Tuple

from repro.errors import ReproError

__all__ = ["ConsistentHashRing", "RingError", "content_route_key"]


class RingError(ReproError):
    """Routing against an empty or inconsistent ring."""


def _point(label: str) -> int:
    """A label's position on the 64-bit circle."""
    return int.from_bytes(hashlib.sha256(label.encode()).digest()[:8], "big")


def content_route_key(ir_text: str) -> str:
    """Routing key of a target: digest of its canonical printed IR.

    Tenant-agnostic by construction — the tenant id is deliberately not
    hashed in, so identical programs from different tenants co-locate.
    """
    return hashlib.sha256(ir_text.encode()).hexdigest()


class ConsistentHashRing:
    """Thread-safe consistent-hash ring over shard ids."""

    def __init__(self, nodes: Iterable[str] = (), *, virtual_nodes: int = 32):
        if virtual_nodes < 1:
            raise ValueError("virtual_nodes must be >= 1")
        self.virtual_nodes = virtual_nodes
        self._lock = threading.Lock()
        self._points: List[int] = []          # sorted circle positions
        self._owners: Dict[int, str] = {}     # position -> shard id
        self._nodes: List[str] = []
        for node in nodes:
            self.add(node)

    def __contains__(self, node: str) -> bool:
        with self._lock:
            return node in self._nodes

    def __len__(self) -> int:
        with self._lock:
            return len(self._nodes)

    @property
    def nodes(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(self._nodes)

    def add(self, node: str) -> None:
        with self._lock:
            if node in self._nodes:
                raise RingError(f"shard {node!r} is already on the ring")
            for replica in range(self.virtual_nodes):
                point = _point(f"{node}#{replica}")
                # A 64-bit collision between distinct labels is beyond
                # unlikely; first owner keeps the point if it happens.
                if point in self._owners:
                    continue
                self._owners[point] = node
                bisect.insort(self._points, point)
            self._nodes.append(node)

    def remove(self, node: str) -> None:
        """Take a shard off the ring; its hash range reroutes clockwise."""
        with self._lock:
            if node not in self._nodes:
                raise RingError(f"shard {node!r} is not on the ring")
            self._nodes.remove(node)
            dead = [p for p, owner in self._owners.items() if owner == node]
            for point in dead:
                del self._owners[point]
                index = bisect.bisect_left(self._points, point)
                del self._points[index]

    def route(self, key: str) -> str:
        """The shard owning *key*: first virtual node clockwise of it."""
        with self._lock:
            if not self._points:
                raise RingError("cannot route on an empty ring")
            index = bisect.bisect_right(self._points, _point(key))
            if index == len(self._points):  # wrap around the circle
                index = 0
            return self._owners[self._points[index]]

    def spread(self, keys: Iterable[str]) -> Dict[str, int]:
        """How many of *keys* each shard owns (diagnostics)."""
        out: Dict[str, int] = {}
        for key in keys:
            owner = self.route(key)
            out[owner] = out.get(owner, 0) + 1
        return out

    def stats(self) -> dict:
        with self._lock:
            return {
                "nodes": list(self._nodes),
                "virtual_nodes": self.virtual_nodes,
                "points": len(self._points),
            }
