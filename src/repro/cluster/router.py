"""The compile cluster: consistent-hash router over N recompile shards.

One :class:`CompileCluster` fronts ``shards`` independent
:class:`RecompilationService` instances behind a consistent-hash ring
keyed on **fragment content keys**: a target's routing key is the
digest of its canonical printed module IR, so two tenants fuzzing the
same program land on the same shard (and a failover reroutes them to
the same surviving shard together).  All shards mount *one* shared
content-addressed object cache and *one* shared pass-memo cache, so a
compile done for any tenant on any shard is a hit for every other
tenant — and a migrated target's post-failover rebuild is mostly cache
hits rather than fresh compiles.

Failover protocol (everything deterministic given the fault sequence):

1. A shard is *suspected* when a heartbeat misses or a data-path call
   fails with a shard error; heartbeat misses feed the per-shard
   circuit breaker.
2. A shard is *condemned* when its data path failed **and** a follow-up
   heartbeat also missed, or when ``heartbeat_miss_threshold``
   consecutive heartbeats missed (the pure-monitoring path for
   partitions that never heal).
3. Failover: the shard is fenced (service closed — the in-process stand
   in for lease revocation), removed from the ring (its hash range
   reroutes clockwise; every other key keeps its home), and each of its
   targets is **migrated**: the pristine module IR snapshot taken at
   registration is re-parsed on the takeover shard, the target's
   instrumentation callable re-runs (probe ids are deterministic module
   order, so they align), the per-target ledger of *acknowledged* ops
   replays onto the fresh PatchManager, and an initial build runs —
   served almost entirely from the shared cache tier.
4. In-flight jobs that died with the shard are resubmitted by their
   waiting :class:`~repro.cluster.client.ClusterClient` under the same
   resubmit token.  Probe ops are state-setting, so replay after ledger
   recovery is idempotent: the final probe state — and therefore the
   final linked image — is identical to an uninterrupted run, which the
   chaos recovery oracle checks by fingerprint.

Admission (:mod:`repro.cluster.tenants`) runs before routing: every
submit passes the weighted sliding-window quota, and the accountant is
flipped to *degraded* whenever a shard breaker is open or the cluster
is running with fewer shards than it started with — bulk tenants are
throttled before interactive ones ever feel the capacity loss.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.engine import Odin
from repro.errors import ReproError, ScheduleError
from repro.ir.module import Module
from repro.ir.parser import parse_module
from repro.ir.printer import print_module
from repro.obs.metrics import MetricsRegistry
from repro.service.cache import CodeCache, InMemoryCodeCache, PassMemoCache, PersistentCodeCache
from repro.service.jobs import (
    OP_DISABLE,
    OP_ENABLE,
    OP_MARK_CHANGED,
    OP_REMOVE,
    ProbeOp,
)
from repro.service.resilience import BREAKER_OPEN
from repro.service.server import RecompilationService
from repro.cluster.ring import ConsistentHashRing, content_route_key
from repro.cluster.shard import Shard, ShardDownError
from repro.cluster.tenants import TenantAccountant, TenantSpec

__all__ = ["CompileCluster", "ClusterError"]


class ClusterError(ReproError):
    """Cluster-level routing/registration failure."""


@dataclass
class _ClusterTarget:
    """Router-side record of one tenant's registered target.

    Holds everything needed to rebuild the target from scratch on
    another shard: the pristine IR snapshot, the instrumentation
    callable, and the ledger of acknowledged op batches.
    """

    key: str                      # service-scoped name: "tenant:name"
    tenant_id: str
    name: str
    route_key: str                # content key of the printed module IR
    ir_text: str                  # pristine module snapshot (pre-engine)
    module_name: str
    instrument: Optional[Callable[[Odin], object]]
    odin_kwargs: dict
    shard_id: str
    engine: Odin
    tool: object = None
    seq: int = 0                  # resubmit-token sequence
    ledger: List[Tuple[str, Tuple[ProbeOp, ...]]] = field(default_factory=list)
    acked: set = field(default_factory=set)
    migrations: int = 0


class CompileCluster:
    """Fault-tolerant sharded multi-tenant recompilation cluster."""

    def __init__(
        self,
        shards: int = 3,
        *,
        workers: int = 1,
        worker_mode: str = "serial",
        cache: Optional[CodeCache] = None,
        cache_dir: Optional[str] = None,
        cache_max_bytes: int = 64 * 1024 * 1024,
        pass_memo: bool = True,
        virtual_nodes: int = 32,
        heartbeat_miss_threshold: int = 3,
        quota_window: int = 64,
        degraded_bulk_factor: float = 0.25,
        reply_timeout_s: float = 8.0,
        max_route_attempts: int = 4,
        service_kwargs: Optional[dict] = None,
    ):
        if shards < 1:
            raise ClusterError("a cluster needs at least one shard")
        if cache is not None and cache_dir is not None:
            raise ClusterError("pass either cache or cache_dir, not both")
        # The shared cache tier: ONE object cache + ONE pass memo,
        # mounted by every shard.  Content keys are tenant-agnostic, so
        # identical work from different tenants/shards hits.
        if cache is None:
            cache = (
                PersistentCodeCache(cache_dir, max_bytes=cache_max_bytes)
                if cache_dir is not None
                else InMemoryCodeCache(max_bytes=cache_max_bytes)
            )
        self.cache = cache
        self.pass_memo = PassMemoCache() if pass_memo else None
        self.metrics = MetricsRegistry()
        self.heartbeat_miss_threshold = heartbeat_miss_threshold
        self.reply_timeout_s = reply_timeout_s
        self.max_route_attempts = max_route_attempts
        self.tenants = TenantAccountant(
            window=quota_window, degraded_bulk_factor=degraded_bulk_factor
        )
        kwargs = dict(service_kwargs or {})
        kwargs.setdefault("workers", workers)
        kwargs.setdefault("worker_mode", worker_mode)
        self.shards: Dict[str, Shard] = {}
        for index in range(shards):
            shard_id = f"shard-{index}"
            service = RecompilationService(
                cache=self.cache,
                pass_memo=self.pass_memo if self.pass_memo is not None else False,
                **kwargs,
            )
            self.shards[shard_id] = Shard(shard_id, service)
        self.initial_shards = shards
        self.ring = ConsistentHashRing(
            sorted(self.shards), virtual_nodes=virtual_nodes
        )
        self._lock = threading.RLock()
        self._targets: Dict[str, _ClusterTarget] = {}
        # route_key -> tenants that have built it (cross-tenant hit
        # attribution: a warm build for a key some *other* tenant
        # already built counts its cache hits as cross-tenant).
        self._route_builders: Dict[str, set] = {}

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "CompileCluster":
        for shard in self.shards.values():
            if not shard.fenced and not shard.killed:
                shard.service.start()
        return self

    def stop(self) -> None:
        for shard in self.shards.values():
            if not shard.fenced and not shard.killed:
                shard.service.stop()

    def close(self) -> None:
        for shard in self.shards.values():
            if shard.fenced:
                continue
            try:
                shard.service.close()
            except Exception:
                pass
        flush = getattr(self.cache, "flush", None)
        if flush is not None:
            flush()

    def __enter__(self) -> "CompileCluster":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- registration ---------------------------------------------------------

    def register_tenant(self, spec: TenantSpec) -> None:
        self.tenants.register(spec)

    def register_target(
        self,
        tenant_id: str,
        name: str,
        module: Module,
        *,
        instrument: Optional[Callable[[Odin], object]] = None,
        build: bool = True,
        **odin_kwargs,
    ) -> Odin:
        """Register + instrument + build one tenant target.

        The module is snapshotted (printed) *before* the engine touches
        it: the snapshot is both the routing key (content key — same
        program, same shard, regardless of tenant) and the recovery
        image a failover re-parses on the takeover shard.
        ``instrument`` runs against the engine and must be
        re-runnable — it is invoked again after every migration.
        """
        self.tenants.spec(tenant_id)  # must be registered
        key = f"{tenant_id}:{name}"
        with self._lock:
            if key in self._targets:
                raise ClusterError(f"target {key!r} is already registered")
        ir_text = print_module(module)
        route_key = content_route_key(ir_text)
        shard_id = self.ring.route(route_key)
        shard = self.shards[shard_id]
        engine = shard.service.register_target(key, module, **odin_kwargs)
        entry = _ClusterTarget(
            key=key,
            tenant_id=tenant_id,
            name=name,
            route_key=route_key,
            ir_text=ir_text,
            module_name=module.name,
            instrument=instrument,
            odin_kwargs=dict(odin_kwargs),
            shard_id=shard_id,
            engine=engine,
        )
        if instrument is not None:
            entry.tool = instrument(engine)
        with self._lock:
            self._targets[key] = entry
        self.metrics.set_gauge("targets", len(self._targets))
        if build:
            self._build_accounted(entry, shard)
        return engine

    def _build_accounted(self, entry: _ClusterTarget, shard: Shard) -> None:
        """Run a target's initial build, attributing cross-tenant hits."""
        hits_before = self.cache.hits
        shard.service.build(entry.key)
        delta = self.cache.hits - hits_before
        with self._lock:
            builders = self._route_builders.setdefault(entry.route_key, set())
            warmed_by_other = any(t != entry.tenant_id for t in builders)
            builders.add(entry.tenant_id)
        if delta and warmed_by_other:
            self.metrics.inc("cross_tenant_cache_hits", delta)

    # -- lookups --------------------------------------------------------------

    def target(self, tenant_id: str, name: str) -> _ClusterTarget:
        with self._lock:
            try:
                return self._targets[f"{tenant_id}:{name}"]
            except KeyError:
                raise ClusterError(
                    f"unknown target {name!r} for tenant {tenant_id!r}"
                ) from None

    def engine(self, tenant_id: str, name: str) -> Odin:
        return self.target(tenant_id, name).engine

    def tool(self, tenant_id: str, name: str):
        return self.target(tenant_id, name).tool

    def shard_of(self, tenant_id: str, name: str) -> str:
        return self.target(tenant_id, name).shard_id

    def client(self, tenant_id: str, name: str,
               client_id: str = "anon") -> "ClusterClient":
        from repro.cluster.client import ClusterClient

        self.target(tenant_id, name)  # validate early
        return ClusterClient(self, tenant_id, name, client_id)

    @property
    def live_shards(self) -> List[str]:
        return [sid for sid, shard in self.shards.items()
                if shard.state != "down"]

    @property
    def degraded(self) -> bool:
        """Reduced capacity: a shard lost, or a shard breaker open."""
        lost = len(self.ring) < self.initial_shards
        tripped = any(
            shard.breaker.state == BREAKER_OPEN
            for sid, shard in self.shards.items()
            if sid in self.ring
        )
        return lost or tripped

    def _refresh_degraded(self) -> None:
        degraded = self.degraded
        self.tenants.set_degraded(degraded)
        self.metrics.set_gauge("degraded", 1 if degraded else 0)

    # -- tokens + ledger -------------------------------------------------------

    def next_token(self, entry: _ClusterTarget,
                   ops: Tuple[ProbeOp, ...]) -> str:
        """Deterministic resubmit token for one logical client request."""
        with self._lock:
            entry.seq += 1
            seq = entry.seq
        digest = hashlib.sha256(
            f"{entry.key}|{seq}|{[(op.kind, op.probe_id) for op in ops]}".encode()
        ).hexdigest()[:16]
        return f"{entry.key}#{seq}#{digest}"

    def acknowledge(self, entry: _ClusterTarget, token: str,
                    ops: Tuple[ProbeOp, ...]) -> None:
        """Record a replied batch in the target's recovery ledger.

        Idempotent under resubmit tokens: a resubmitted request that
        already acked (reply raced the failover) is not double-recorded.
        """
        with self._lock:
            if token in entry.acked:
                return
            entry.acked.add(token)
            if ops:
                entry.ledger.append((token, tuple(ops)))

    # -- health + failover -----------------------------------------------------

    def check_health_once(self) -> List[str]:
        """One heartbeat round; returns the shard ids failed over."""
        failed = []
        for sid in list(self.ring.nodes):
            shard = self.shards[sid]
            healthy = shard.heartbeat()
            if not healthy and (
                shard.consecutive_misses >= self.heartbeat_miss_threshold
                or shard.killed or shard.fenced
            ):
                self._failover(sid)
                failed.append(sid)
        self._refresh_degraded()
        return failed

    def note_suspect(self, shard_id: str) -> bool:
        """Data-path failure on *shard_id*: probe it, maybe fail over.

        Called by clients whose submit or result wait just failed.  The
        data-path failure plus one missed heartbeat is enough evidence
        to condemn (two independent signals); a heartbeat that succeeds
        (e.g. a healed partition) just resets the suspicion.  Returns
        True when the shard was failed over (now or previously).
        """
        shard = self.shards[shard_id]
        if shard_id not in self.ring:
            return True  # already failed over by someone else
        healthy = shard.heartbeat()
        if healthy:
            self._refresh_degraded()
            return False
        self._failover(shard_id)
        self._refresh_degraded()
        return True

    def _failover(self, shard_id: str) -> None:
        """Fence the shard, reroute its range, migrate its targets."""
        with self._lock:
            if shard_id not in self.ring:
                return  # concurrent caller won the race
            if len(self.ring) <= 1:
                raise ClusterError(
                    f"cannot fail over {shard_id!r}: no surviving shard"
                )
            shard = self.shards[shard_id]
            self.ring.remove(shard_id)
            abandoned = shard.fence()
            if abandoned:
                self.metrics.inc("failover_abandoned_jobs", abandoned)
            victims = [
                entry for entry in self._targets.values()
                if entry.shard_id == shard_id
            ]
            for entry in victims:
                self._migrate(entry)
            self.metrics.inc("failovers")
            self.metrics.set_gauge("live_shards", len(self.ring))

    def _migrate(self, entry: _ClusterTarget) -> None:
        """Rebuild one target on its new ring home from the IR snapshot.

        The fresh engine re-instruments (probe ids are deterministic
        module order, so they line up with the ledger), replays every
        *acknowledged* op batch in order, and rebuilds — the shared
        cache tier turns almost all of it into hits.  Unacknowledged
        in-flight ops are deliberately NOT replayed: their clients hold
        the resubmit token and will re-drive them through the new shard.
        """
        new_sid = self.ring.route(entry.route_key)
        shard = self.shards[new_sid]
        module = parse_module(entry.ir_text, entry.module_name)
        engine = shard.service.register_target(
            entry.key, module, **entry.odin_kwargs
        )
        tool = None
        if entry.instrument is not None:
            tool = entry.instrument(engine)
        for _token, ops in entry.ledger:
            for op in ops:
                self._replay_op(engine, tool, op)
        shard.service.build(entry.key)
        entry.shard_id = new_sid
        entry.engine = engine
        entry.tool = tool
        entry.migrations += 1
        self.metrics.inc("targets_migrated")

    @staticmethod
    def _replay_op(engine: Odin, tool, op: ProbeOp) -> None:
        manager = engine.manager
        try:
            probe = manager.get_probe(op.probe_id)
        except ScheduleError:
            return  # removed by an earlier ledger entry
        if op.kind == OP_ENABLE:
            manager.enable(probe)
        elif op.kind == OP_DISABLE:
            manager.disable(probe)
        elif op.kind == OP_REMOVE:
            manager.remove(probe)
            probes = getattr(tool, "probes", None)
            if isinstance(probes, dict):
                probes.pop(op.probe_id, None)
        elif op.kind == OP_MARK_CHANGED:
            manager.mark_changed(probe)

    # -- stepping (deterministic tests / chaos) --------------------------------

    def process_once(self) -> int:
        """Step every live shard's dispatcher once; returns jobs served."""
        served = 0
        for sid in list(self.ring.nodes):
            shard = self.shards[sid]
            if shard.state == "down" or shard.hung:
                continue
            served += shard.service.process_once(timeout=0.0)
        return served

    # -- export ---------------------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            targets = {
                key: {
                    "tenant": entry.tenant_id,
                    "shard": entry.shard_id,
                    "route_key": entry.route_key[:12],
                    "migrations": entry.migrations,
                    "acked_batches": len(entry.acked),
                }
                for key, entry in sorted(self._targets.items())
            }
        snapshot = self.metrics.stats()
        snapshot["cluster"] = {
            "shards": len(self.shards),
            "live_shards": len(self.ring),
            "degraded": self.degraded,
            "targets": targets,
        }
        snapshot["ring"] = self.ring.stats()
        snapshot["shards"] = {
            sid: shard.stats() for sid, shard in sorted(self.shards.items())
        }
        snapshot["tenants"] = self.tenants.stats()
        snapshot["shared_cache"] = self.cache.stats()
        if self.pass_memo is not None:
            snapshot["pass_memo"] = self.pass_memo.stats()
        return snapshot
