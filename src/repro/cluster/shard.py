"""One cluster shard: a supervised RecompilationService + health state.

The shard wraps a :class:`RecompilationService` with the pieces the
router needs to treat it as a fallible network peer:

* a **per-shard circuit breaker** driven by heartbeats and data-path
  failures — once it opens the router stops routing new work there and
  starts failover;
* **fault hooks** (``kill`` / ``hang`` / ``partition``) used by the
  chaos harness to model the three cluster failure modes: an abrupt
  crash (submits fail fast with :class:`ShardDownError`, queued jobs
  are answered with it, like a connection reset), a wedged dispatcher
  (submits still enqueue but nothing replies — clients hit their
  ``result()`` deadline), and a router-side partition (the router
  cannot reach the shard at all: submits raise
  :class:`RouterPartitionError` and heartbeats miss, but the shard
  itself keeps serving whatever it already holds);
* **fencing**: before the router migrates a shard's targets it fences
  the shard — in-process this closes the underlying service (answering
  stragglers with an error) and refuses all further submits.  It stands
  in for the lease/epoch revocation a networked deployment would use to
  stop a deposed shard from serving stale state.

Everything observable is deterministic given the fault sequence; the
only clocks involved are the breaker's (injectable) and the service's
poll interval.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.errors import ReproError
from repro.service.jobs import CompileRequest, Job
from repro.service.resilience import BREAKER_OPEN, CircuitBreaker
from repro.service.server import RecompilationService

__all__ = [
    "Shard",
    "ShardDownError",
    "RouterPartitionError",
    "SHARD_UP",
    "SHARD_SUSPECT",
    "SHARD_DOWN",
]

SHARD_UP = "up"
SHARD_SUSPECT = "suspect"
SHARD_DOWN = "down"


class ShardDownError(ReproError):
    """The shard crashed or is fenced; resubmit on a surviving shard."""


class RouterPartitionError(ReproError):
    """The router cannot reach the shard; the shard itself may be fine."""


class Shard:
    """A routable, health-checked compile shard."""

    def __init__(self, shard_id: str, service: RecompilationService, *,
                 breaker: Optional[CircuitBreaker] = None):
        self.shard_id = shard_id
        self.service = service
        # Separate from the service's own (engine-failure) breaker: this
        # one models reachability/liveness of the shard as a peer.
        self.breaker = breaker or CircuitBreaker(
            failure_threshold=3, reset_timeout_s=1.0
        )
        self._lock = threading.Lock()
        self._killed = False
        self._hung = False
        self._partitioned = False
        self._fenced = False
        self.heartbeats = 0
        self.heartbeat_misses = 0        # lifetime
        self.consecutive_misses = 0

    # -- state ----------------------------------------------------------------

    @property
    def killed(self) -> bool:
        with self._lock:
            return self._killed

    @property
    def hung(self) -> bool:
        with self._lock:
            return self._hung

    @property
    def partitioned(self) -> bool:
        with self._lock:
            return self._partitioned

    @property
    def fenced(self) -> bool:
        with self._lock:
            return self._fenced

    @property
    def state(self) -> str:
        with self._lock:
            if self._killed or self._fenced:
                return SHARD_DOWN
            if self._hung or self._partitioned or self.breaker.state == BREAKER_OPEN:
                return SHARD_SUSPECT
            return SHARD_UP

    @property
    def routable(self) -> bool:
        return self.state == SHARD_UP

    # -- data path ------------------------------------------------------------

    def submit(self, request: CompileRequest) -> Job:
        """Submit through the router's view of the shard.

        A partitioned shard is unreachable (the request never arrives);
        a killed/fenced shard resets the connection; a *hung* shard
        accepts the request — its queue is alive — but the dispatcher
        never answers, so the caller's ``result()`` deadline fires.
        """
        with self._lock:
            if self._partitioned:
                raise RouterPartitionError(
                    f"shard {self.shard_id!r} is unreachable from the router"
                )
            if self._killed or self._fenced:
                raise ShardDownError(f"shard {self.shard_id!r} is down")
        return self.service.submit(request)

    # -- health ---------------------------------------------------------------

    def heartbeat(self) -> bool:
        """One health probe; feeds the shard breaker.  True = healthy."""
        with self._lock:
            alive = not (
                self._killed or self._hung or self._partitioned or self._fenced
            )
            # A shard whose dispatcher thread died (without a fault flag)
            # is just as dead as a killed one.
            if alive and self.service._dispatcher is not None:
                alive = self.service._dispatcher.is_alive()
            self.heartbeats += 1
            if alive:
                self.consecutive_misses = 0
                self.breaker.record_success()
            else:
                self.heartbeat_misses += 1
                self.consecutive_misses += 1
                self.breaker.record_failure()
            return alive

    # -- chaos fault hooks -----------------------------------------------------

    def kill(self) -> int:
        """Abrupt crash: stop serving and reset every queued connection.

        Returns how many queued jobs were answered with
        :class:`ShardDownError`.  Jobs whose batch was already executing
        may still receive their reply — exactly like a response that was
        on the wire when the peer died.
        """
        with self._lock:
            self._killed = True
        # stop() joins the dispatcher: once kill() returns, nothing is
        # serving — a batch already executing may still answer (a reply
        # on the wire), but no *new* batch can be picked up.
        self.service.stop(drain=False, drain_timeout_s=2.0)
        errored = 0
        for job in self.service.queue.drain_remaining():
            job.set_error(ShardDownError(
                f"shard {self.shard_id!r} died before this job was dispatched"
            ))
            errored += 1
        return errored

    def hang(self) -> None:
        """Wedge the dispatcher: submits still enqueue, nothing replies."""
        with self._lock:
            self._hung = True
        self.service.stop(drain=False, drain_timeout_s=2.0)

    def partition(self) -> None:
        """Cut the router<->shard link; the shard itself keeps running."""
        with self._lock:
            self._partitioned = True

    def heal_partition(self) -> None:
        """Restore the link (only meaningful if not yet failed over)."""
        with self._lock:
            self._partitioned = False
            self.consecutive_misses = 0

    def fence(self) -> int:
        """Depose the shard before migrating its targets elsewhere.

        Closes the underlying service so every straggling waiter gets an
        error instead of an eternal wait; all future submits fail with
        :class:`ShardDownError`.  Returns jobs abandoned by the close.
        """
        with self._lock:
            if self._fenced:
                return 0
            self._fenced = True
        # close() is safe on a killed/hung service: the dispatcher is
        # already stopped and drain_remaining answers the leftovers.
        try:
            abandoned = self.service.stop(drain=False)
        except Exception:
            abandoned = 0
        self.service.close()
        return abandoned

    # -- export ---------------------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            return {
                "state": self.state_unlocked(),
                "killed": self._killed,
                "hung": self._hung,
                "partitioned": self._partitioned,
                "fenced": self._fenced,
                "heartbeats": self.heartbeats,
                "heartbeat_misses": self.heartbeat_misses,
                "consecutive_misses": self.consecutive_misses,
                "breaker": self.breaker.stats(),
            }

    def state_unlocked(self) -> str:
        if self._killed or self._fenced:
            return SHARD_DOWN
        if self._hung or self._partitioned or self.breaker.state == BREAKER_OPEN:
            return SHARD_SUSPECT
        return SHARD_UP
