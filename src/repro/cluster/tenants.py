"""Per-tenant fairness: weighted admission quotas over a sliding window.

PartiSan-style budget control applied to multi-tenancy: instead of one
global deadline-shed knob, every submit first passes a cluster-level
admission check.  The accountant keeps a sliding window of the most
recent admission *attempts* (admitted or shed, all tenants) and grants
each tenant a slice of it proportional to its weight — but shares are
computed over the tenants *active in the window*, so a lone tenant on an
idle cluster is never throttled (work-conserving), while under
contention a heavy and a light tenant shed in inverse proportion to
their weights.

Degraded mode (a shard breaker opened, or a shard was lost and the
cluster is running with reduced capacity) multiplies *bulk* tenants'
allowance by ``degraded_bulk_factor`` before interactive tenants feel
anything; allowances never drop below one slot, so no tenant is ever
starved outright.

Everything is counted, nothing is timed: admission is a pure function
of the window contents, so seeded chaos schedules replay bit-identically.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional, Tuple

from repro.errors import ReproError

__all__ = [
    "TIER_INTERACTIVE",
    "TIER_BULK",
    "TENANT_TIERS",
    "TenantSpec",
    "TenantQuotaError",
    "TenantAccountant",
]

TIER_INTERACTIVE = "interactive"
TIER_BULK = "bulk"
TENANT_TIERS = (TIER_INTERACTIVE, TIER_BULK)


class TenantQuotaError(ReproError):
    """Submit shed by the admission controller; retry after the hint."""

    def __init__(self, message: str, *, tenant_id: str = "",
                 retry_after_s: Optional[float] = None):
        super().__init__(message)
        self.tenant_id = tenant_id
        self.retry_after_s = retry_after_s


@dataclass(frozen=True)
class TenantSpec:
    """Identity + scheduling class of one tenant."""

    tenant_id: str
    weight: float = 1.0
    tier: str = TIER_INTERACTIVE

    def __post_init__(self):
        if not self.tenant_id:
            raise ValueError("tenant_id must be non-empty")
        if self.weight <= 0:
            raise ValueError(f"tenant weight must be > 0, got {self.weight}")
        if self.tier not in TENANT_TIERS:
            raise ValueError(
                f"tier must be one of {TENANT_TIERS}, got {self.tier!r}"
            )


@dataclass
class _TenantCounters:
    admitted: int = 0
    shed_quota: int = 0
    shed_deadline: int = 0
    replies: int = 0
    resubmits: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "admitted": self.admitted,
            "shed_quota": self.shed_quota,
            "shed_deadline": self.shed_deadline,
            "replies": self.replies,
            "resubmits": self.resubmits,
        }


@dataclass
class _TenantState:
    spec: TenantSpec
    counters: _TenantCounters = field(default_factory=_TenantCounters)


class TenantAccountant:
    """Weighted fair admission + per-tenant campaign accounting."""

    # Shed hint when the caller has no breaker-derived delay to offer:
    # roughly one window turnover at interactive submit rates.
    DEFAULT_RETRY_AFTER_S = 0.05

    def __init__(self, *, window: int = 64,
                 degraded_bulk_factor: float = 0.25):
        if window < 1:
            raise ValueError("window must be >= 1")
        if not 0 < degraded_bulk_factor <= 1:
            raise ValueError("degraded_bulk_factor must be in (0, 1]")
        self.window_size = window
        self.degraded_bulk_factor = degraded_bulk_factor
        self._lock = threading.Lock()
        self._tenants: Dict[str, _TenantState] = {}
        self._window: Deque[str] = deque(maxlen=window)
        self._degraded = False

    # -- registration ---------------------------------------------------------

    def register(self, spec: TenantSpec) -> None:
        with self._lock:
            if spec.tenant_id in self._tenants:
                raise ReproError(f"tenant {spec.tenant_id!r} already registered")
            self._tenants[spec.tenant_id] = _TenantState(spec)

    def spec(self, tenant_id: str) -> TenantSpec:
        with self._lock:
            return self._state(tenant_id).spec

    @property
    def tenant_ids(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._tenants))

    # -- degraded mode --------------------------------------------------------

    @property
    def degraded(self) -> bool:
        with self._lock:
            return self._degraded

    def set_degraded(self, value: bool) -> None:
        with self._lock:
            self._degraded = bool(value)

    # -- admission ------------------------------------------------------------

    def _state(self, tenant_id: str) -> _TenantState:
        state = self._tenants.get(tenant_id)
        if state is None:
            raise ReproError(f"unknown tenant {tenant_id!r}")
        return state

    def _allowance_locked(self, tenant_id: str) -> int:
        """Window slots *tenant_id* may hold, given current contention."""
        state = self._state(tenant_id)
        active = {tid for tid in self._window}
        active.add(tenant_id)
        total_weight = sum(
            self._tenants[tid].spec.weight for tid in active
            if tid in self._tenants
        )
        share = state.spec.weight / total_weight if total_weight else 1.0
        allowance = max(1, math.ceil(share * self.window_size))
        if self._degraded and state.spec.tier == TIER_BULK:
            allowance = max(1, math.floor(allowance * self.degraded_bulk_factor))
        return allowance

    def allowance(self, tenant_id: str) -> int:
        with self._lock:
            return self._allowance_locked(tenant_id)

    def admit(self, tenant_id: str, *,
              retry_after_s: Optional[float] = None) -> None:
        """Admit one submit or raise :class:`TenantQuotaError`.

        Every attempt — admitted or shed — enters the sliding window, so
        a tenant hammering past its quota keeps displacing history and
        stays throttled until it backs off.
        """
        with self._lock:
            state = self._state(tenant_id)
            allowance = self._allowance_locked(tenant_id)
            # Count *after* appending: the bounded window evicts the
            # oldest attempt, so a tenant at 100% share (alone on the
            # cluster) holds exactly window_size slots and is admitted.
            self._window.append(tenant_id)
            held = sum(1 for tid in self._window if tid == tenant_id)
            if held > allowance:
                state.counters.shed_quota += 1
                hint = retry_after_s
                if hint is None:
                    hint = self.DEFAULT_RETRY_AFTER_S
                raise TenantQuotaError(
                    f"tenant {tenant_id!r} over quota "
                    f"({held}>{allowance} window slots"
                    + (", degraded" if self._degraded else "")
                    + ")",
                    tenant_id=tenant_id,
                    retry_after_s=hint,
                )
            state.counters.admitted += 1

    # -- campaign accounting --------------------------------------------------

    def note_reply(self, tenant_id: str) -> None:
        with self._lock:
            self._state(tenant_id).counters.replies += 1

    def note_deadline_expired(self, tenant_id: str) -> None:
        with self._lock:
            self._state(tenant_id).counters.shed_deadline += 1

    def note_resubmit(self, tenant_id: str) -> None:
        with self._lock:
            self._state(tenant_id).counters.resubmits += 1

    # -- export ---------------------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            return {
                "window": self.window_size,
                "window_depth": len(self._window),
                "degraded": self._degraded,
                "degraded_bulk_factor": self.degraded_bulk_factor,
                "tenants": {
                    tid: {
                        "weight": state.spec.weight,
                        "tier": state.spec.tier,
                        "allowance": self._allowance_locked(tid),
                        **state.counters.to_dict(),
                    }
                    for tid, state in sorted(self._tenants.items())
                },
            }
