"""repro.core — the Odin on-demand instrumentation framework.

This package is the paper's primary contribution:

* :class:`Probe` / :class:`PatchManager` — dynamic probe lifecycle (§4)
* :func:`partition` — trial-guided program partitioning (§3.2, Alg. 1)
* :class:`Scheduler` — recompilation scheduling (§3.3, Alg. 2)
* :class:`Odin` — the engine tying it together with the machine-code cache
"""

from repro.core.engine import Odin, RebuildReport
from repro.core.manager import PatchManager
from repro.core.partition import (
    CLASS_BOND,
    CLASS_COPY_ON_USE,
    CLASS_FIXED,
    Fragment,
    FragmentDefinition,
    STRATEGY_MAX,
    STRATEGY_ODIN,
    STRATEGY_ONE,
    apply_fragment_linkage,
    partition,
)
from repro.core.probe import BlockProbe, InstructionProbe, Probe
from repro.core.scheduler import Scheduler
from repro.core.variants import (
    VARIANT_LABELS,
    VARIANTS,
    make_variant,
    odin,
    odin_max_partition,
    odin_one_partition,
)

__all__ = [
    "Odin", "RebuildReport", "PatchManager", "Scheduler",
    "Probe", "BlockProbe", "InstructionProbe",
    "Fragment", "FragmentDefinition", "partition", "apply_fragment_linkage",
    "CLASS_BOND", "CLASS_COPY_ON_USE", "CLASS_FIXED",
    "STRATEGY_ODIN", "STRATEGY_ONE", "STRATEGY_MAX",
    "VARIANTS", "VARIANT_LABELS", "make_variant",
    "odin", "odin_one_partition", "odin_max_partition",
]
