"""The Odin engine: partition -> build -> (patch -> schedule -> rebuild)*.

§3.1's four phases map to this module:

1. **Partition** — at construction, over the *unoptimized* whole-program
   IR (instrument-first is what guarantees correctness, §2.2).
2. **Schedule** — ``PatchManager.schedule()`` (Algorithm 2).
3. **Split** — ``Scheduler.rebuild()`` splits the instrumented temporary
   IR back into per-fragment modules.
4. **Generate code** — each fragment module is optimized with the full O2
   pipeline *after* instrumentation, lowered to an object file, stored in
   the machine-code cache, and the whole cache is relinked.

The engine never mutates the original module: every rebuild works on
extracted clones, which is how instrumentation changes are reverted — the
paper's "functional approach" (§4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from repro.backend.isel import lower_module
from repro.backend.machine import ObjectFile
from repro.core.manager import PatchManager
from repro.core.partition import (
    Fragment,
    FragmentDefinition,
    STRATEGY_ODIN,
    apply_fragment_linkage,
    partition,
)
from repro.errors import PartitionError
from repro.ir.clone import extract_module
from repro.ir.module import Module
from repro.ir.verifier import verify_module
from repro.linker.linker import Executable, link
from repro.opt.pipeline import optimize
from repro.utils.clock import SimClock

if False:  # pragma: no cover - typing only
    from repro.core.scheduler import Scheduler


@dataclass
class RebuildReport:
    """Timing and scope of one on-the-fly recompilation."""

    fragment_ids: List[int] = field(default_factory=list)
    fragment_compile_ms: Dict[int, float] = field(default_factory=dict)
    link_ms: float = 0.0
    probes_applied: int = 0
    cache_reused: int = 0

    @property
    def total_compile_ms(self) -> float:
        return sum(self.fragment_compile_ms.values())

    @property
    def worst_fragment_ms(self) -> float:
        return max(self.fragment_compile_ms.values(), default=0.0)

    @property
    def total_ms(self) -> float:
        return self.total_compile_ms + self.link_ms


class Odin:
    """On-demand instrumentation engine over one target program."""

    def __init__(
        self,
        module: Module,
        *,
        strategy: str = STRATEGY_ODIN,
        preserve: Iterable[str] = ("main",),
        opt_level: int = 2,
        verify: bool = True,
    ):
        if verify:
            verify_module(module)
        self.module = module          # original, unoptimized whole-program IR
        self.opt_level = opt_level
        self.verify = verify
        self.preserve = tuple(preserve)
        self.fragdef: FragmentDefinition = partition(module, strategy, preserve)
        self.manager = PatchManager(self)
        self.cache: Dict[int, ObjectFile] = {}
        self.executable: Optional[Executable] = None
        self.clock = SimClock()
        self.history: List[RebuildReport] = []

    # -- builds -----------------------------------------------------------------

    def initial_build(
        self, patch: Optional[Callable[["Scheduler"], None]] = None
    ) -> RebuildReport:
        """Compile every fragment (with current probes) and link."""
        self.manager._dirty_symbols.update(self.fragdef.owner.keys())
        return self.rebuild(patch)

    def rebuild(
        self, patch: Optional[Callable[["Scheduler"], None]] = None
    ) -> RebuildReport:
        """Schedule, patch (default: apply scheduled probes), and rebuild."""
        scheduler = self.manager.schedule()
        if patch is not None:
            patch(scheduler)
        else:
            scheduler.apply_probes()
        return scheduler.rebuild()

    def rebuild_if_needed(
        self, patch: Optional[Callable[["Scheduler"], None]] = None
    ) -> Optional[RebuildReport]:
        """Rebuild only when probe state changed since the last build."""
        if not self.manager.has_pending_changes:
            return None
        return self.rebuild(patch)

    # -- internals ------------------------------------------------------------------

    def _rebuild_from(self, scheduler: "Scheduler") -> RebuildReport:
        """Split the instrumented temporary IR, compile fragments, relink."""
        report = RebuildReport(probes_applied=len(scheduler.active_probes))
        temp = scheduler.temp_module

        for fragment in scheduler.changed_fragments:
            frag_module = self._split_fragment(temp, fragment)
            obj = self._compile_fragment(frag_module)
            self.cache[fragment.id] = obj
            report.fragment_ids.append(fragment.id)
            report.fragment_compile_ms[fragment.id] = obj.compile_ms
            self.clock.advance(obj.compile_ms, "compile")

        report.cache_reused = len(self.fragdef.fragments) - len(report.fragment_ids)
        if len(self.cache) != len(self.fragdef.fragments):
            missing = [
                f.id for f in self.fragdef.fragments if f.id not in self.cache
            ]
            raise PartitionError(
                f"cannot link: fragments {missing} were never compiled "
                f"(run initial_build first)"
            )

        objects = [self.cache[f.id] for f in self.fragdef.fragments]
        self.executable = link(objects)
        report.link_ms = self.executable.link_ms
        self.clock.advance(report.link_ms, "link")
        self.history.append(report)
        return report

    def _split_fragment(self, temp: Module, fragment: Fragment) -> Module:
        """Extract one fragment's (instrumented) module from the temp IR."""
        frag_module = extract_module(
            temp,
            [s for s in fragment.symbols],
            copy_on_use=self.fragdef.copy_on_use,
            name=f"{self.module.name}.frag{fragment.id}",
        )
        apply_fragment_linkage(frag_module, self.fragdef)
        return frag_module

    def _compile_fragment(self, frag_module: Module) -> ObjectFile:
        """Optimize (post-instrumentation) and lower one fragment."""
        from repro.backend.costmodel import compile_cost_ms

        # The middle end pays for the *unoptimized* input it receives.
        pre_opt_cost = compile_cost_ms(frag_module)
        optimize(frag_module, self.opt_level)
        if self.verify:
            verify_module(frag_module)
        obj = lower_module(frag_module)
        if self.verify:
            verify_module(frag_module)  # lowering must not break the IR
        obj.compile_ms = pre_opt_cost
        return obj

    # -- introspection ------------------------------------------------------------------

    @property
    def num_fragments(self) -> int:
        return self.fragdef.num_fragments

    def describe_partition(self) -> str:
        """Human-readable partition summary (Figure 6 style)."""
        lines = [f"strategy={self.fragdef.strategy} fragments={self.num_fragments}"]
        for fragment in self.fragdef.fragments:
            syms = ", ".join(fragment.symbols)
            lines.append(f"  #{fragment.id}: {syms}")
        if self.fragdef.copy_on_use:
            lines.append(f"  copy-on-use: {', '.join(sorted(self.fragdef.copy_on_use))}")
        exported = sorted(self.fragdef.exported)
        lines.append(f"  exported: {', '.join(exported) if exported else '(none)'}")
        return "\n".join(lines)
