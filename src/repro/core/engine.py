"""The Odin engine: partition -> build -> (patch -> schedule -> rebuild)*.

§3.1's four phases map to this module:

1. **Partition** — at construction, over the *unoptimized* whole-program
   IR (instrument-first is what guarantees correctness, §2.2).
2. **Schedule** — ``PatchManager.schedule()`` (Algorithm 2).
3. **Split** — ``Scheduler.rebuild()`` splits the instrumented temporary
   IR back into per-fragment modules.
4. **Generate code** — each fragment module is optimized with the full O2
   pipeline *after* instrumentation, lowered to an object file, stored in
   the machine-code cache, and the whole cache is relinked.

The engine never mutates the original module: every rebuild works on
extracted clones, which is how instrumentation changes are reverted — the
paper's "functional approach" (§4).

Fragment compilation is factored into the pure, module-level
:func:`compile_fragment` so the recompilation service
(:mod:`repro.service`) can run it on worker pools; the engine accepts a
pluggable content-addressed *object cache*, a *fragment compiler* and a
*link cache* for that path.  With the defaults (no caches, inline serial
compiler) behaviour and every reported number are identical to the
original single-threaded engine.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Tuple

from repro.backend.isel import lower_module
from repro.backend.machine import ObjectFile
from repro.backend.patching import toggle_object
from repro.core.manager import PatchManager
from repro.core.partition import (
    Fragment,
    FragmentDefinition,
    STRATEGY_ODIN,
    apply_fragment_linkage,
    partition,
)
from repro.errors import PartitionError
from repro.ir.clone import extract_module
from repro.ir.module import Module
from repro.ir.printer import print_module
from repro.ir.verifier import verify_module
from repro.linker.linker import Executable, link, patch_image
from repro.obs.tracer import (
    CAT_FRAGMENT,
    CAT_PASS,
    CAT_PHASE,
    CAT_REBUILD,
    Span,
    Tracer,
)
from repro.opt.pipeline import optimize
from repro.utils.clock import SimClock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.scheduler import Scheduler
    from repro.linker.cache import LinkCache


# Rebuild tiers, cheapest path last.  Every fragment of a rebuild is
# tagged with how it was serviced; a report's overall tier is the most
# expensive tier any of its fragments took.
TIER_FULL = "full"    # optimize + isel (nothing reusable)
TIER_MEMO = "memo"    # optimization memoized; isel only
TIER_CACHE = "cache"  # finished object served from the content cache
TIER_PATCH = "patch"  # probe sites toggled in the cached master object
TIER_NOOP = "noop"    # probe-state diff was empty; nothing rebuilt

_TIER_RANK = (TIER_FULL, TIER_MEMO, TIER_CACHE, TIER_PATCH, TIER_NOOP)


# -- pure fragment compilation ---------------------------------------------------


def compile_fragment(
    frag_module: Module, opt_level: int = 2, verify: bool = True,
    sanitize: bool = False, canonicalize: bool = True, memo=None,
) -> ObjectFile:
    """Optimize (post-instrumentation) and lower one fragment module.

    Pure, so it can run on any worker — the engine's inline path, a
    thread pool, or a forked process.

    ``canonicalize`` (the default) first round-trips the module through
    its printed text, making the object bytes a function of the
    *canonical IR* alone.  Without it, optimizer-generated names leak
    construction history: name uniquification counters differ between a
    module extracted from a large parent and the same module re-parsed
    from text, so a process-pool compile (which ships printed IR) could
    yield different bytes than an inline compile of equivalent IR —
    exactly the divergence the differential oracle exists to catch.
    Pass ``canonicalize=False`` only when the module already came from
    :func:`repro.ir.parser.parse_module` on canonical text.

    ``sanitize`` runs the probe-integrity sanitizer between optimization
    passes (debug builds); its findings ride back on the object file as
    ``obj.sanitizer_diagnostics``.

    ``memo`` is an optional pass-memoization cache (anything with
    ``get(key)``/``put(key, entry)`` over :class:`repro.opt.memo.MemoEntry`
    payloads, e.g. :class:`repro.service.cache.PassMemoCache`).  On a hit
    the middle end is skipped entirely: the memoized optimized IR is
    re-parsed and lowered, charging only the backend share of the cost
    model (``stage_breakdown["memo_hit"]`` marks such objects).
    """
    from repro.backend.costmodel import compile_cost_ms, middle_end_cost_ms

    real_start = time.perf_counter()
    if canonicalize:
        from repro.ir.parser import parse_module

        frag_module = parse_module(print_module(frag_module), frag_module.name)
    # The middle end pays for the *unoptimized* input it receives.
    pre_opt_cost = compile_cost_ms(frag_module)
    opt_model_ms = middle_end_cost_ms(frag_module)

    key = None
    if memo is not None:
        from repro.opt.memo import memo_key

        key = memo_key(print_module(frag_module), opt_level, sanitize)
        entry = memo.get(key)
        if entry is not None:
            return _replay_memo_entry(
                entry, frag_module.name, verify, sanitize,
                isel_ms=pre_opt_cost - opt_model_ms, real_start=real_start,
            )

    ctx = optimize(frag_module, opt_level, sanitize_each=sanitize)
    if verify:
        verify_module(frag_module)
    if key is not None:
        from repro.opt.memo import MemoEntry

        # Snapshot before lowering: isel's critical-edge splitting
        # mutates the CFG, and replays must lower exactly this IR.
        memo.put(key, MemoEntry(
            print_module(frag_module),
            tuple(ctx.diagnostics) if sanitize else (),
        ))
    obj = lower_module(frag_module)
    if verify:
        verify_module(frag_module)  # lowering must not break the IR
    obj.compile_ms = pre_opt_cost
    # Observability: how this compile's simulated cost decomposes into
    # optimize (split across passes by charged work) and isel/regalloc.
    # Plain dict so the breakdown survives the process-pool pickle.
    obj.stage_breakdown = {
        "optimize_ms": opt_model_ms,
        "isel_ms": pre_opt_cost - opt_model_ms,
        "passes": _allocate_pass_ms(opt_model_ms, ctx.pass_timings),
        "real_ms": (time.perf_counter() - real_start) * 1000.0,
    }
    if sanitize:
        obj.sanitizer_diagnostics = list(ctx.diagnostics)
    return obj


def _replay_memo_entry(
    entry, name: str, verify: bool, sanitize: bool, *,
    isel_ms: float, real_start: float,
) -> ObjectFile:
    """Lower a memoized optimized-IR snapshot: the tier-2 fast path."""
    from repro.ir.parser import parse_module

    replay = parse_module(entry.ir_text, name)
    if verify:
        verify_module(replay)
    obj = lower_module(replay)
    obj.compile_ms = isel_ms
    obj.stage_breakdown = {
        "optimize_ms": 0.0,
        "isel_ms": isel_ms,
        "passes": [],
        "memo_hit": True,
        "real_ms": (time.perf_counter() - real_start) * 1000.0,
    }
    if sanitize:
        obj.sanitizer_diagnostics = list(entry.diagnostics)
    return obj


def _allocate_pass_ms(opt_ms: float, timings) -> List[Tuple[str, float, float]]:
    """Split a fragment's simulated optimize cost across its passes.

    Each pass gets a share proportional to the work it charged; the last
    pass takes the exact residual so the shares always sum to *opt_ms*.
    Returns ``[(pass name, sim_ms, real_ms), ...]`` in execution order.
    """
    if not timings:
        return []
    total_work = sum(t.work for t in timings)
    out: List[Tuple[str, float, float]] = []
    allocated = 0.0
    for i, t in enumerate(timings):
        if i == len(timings) - 1:
            share = opt_ms - allocated
        elif total_work:
            share = opt_ms * (t.work / total_work)
        else:
            share = opt_ms / len(timings)
        # Never overshoot: keeps every share (including the final
        # residual) non-negative despite float rounding, while the shares
        # still sum to opt_ms exactly.
        share = min(share, opt_ms - allocated)
        allocated += share
        out.append((t.pass_name, share, t.real_ms))
    return out


def compile_fragment_text(
    ir_text: str, opt_level: int = 2, verify: bool = True,
    sanitize: bool = False, name: str = "parsed",
) -> ObjectFile:
    """Process-pool entry point: parse shipped IR text, then compile.

    Fragment modules hold interned types and parent links that do not
    pickle, so cross-process workers receive the *printed* IR — the same
    canonical text content addressing hashes — and re-parse it.

    ``name`` must be the original module's name: the printed IR does not
    carry it, yet it becomes ``ObjectFile.name`` and is part of the
    object's canonical bytes — dropping it made process-pool objects
    fingerprint differently from serial ones.
    """
    from repro.ir.parser import parse_module

    return compile_fragment(
        parse_module(ir_text, name), opt_level, verify, sanitize,
        # The text shipped here *is* the canonical form; skip the
        # redundant second round trip.
        canonicalize=False,
    )


def fragment_content_key(
    frag_module: Module, opt_level: int, probe_signature: str = "",
    variant: str = "",
) -> str:
    """Content address of one fragment compile: hash(IR + probes + opt + variant).

    The printed IR already embeds applied probes (they are real calls in
    the instrumented fragment), but the probe signature is hashed too so
    logically distinct probe states can never collide even if a probe
    scheme emits no IR.

    ``variant`` is the engine's variant label (run-time partitioned
    sanitization keeps several instrumentation families of every fragment
    co-resident): it is hashed into the key so two families can share one
    content-addressed cache without ever serving each other's objects,
    even at moments when their instrumented IR happens to coincide.
    """
    h = hashlib.sha256()
    h.update(print_module(frag_module).encode())
    h.update(
        f"\n;; probes={probe_signature} opt={opt_level} variant={variant}\n".encode()
    )
    return h.hexdigest()


def object_fingerprint(obj: ObjectFile) -> str:
    """Digest of an object's canonical bytes (timing metadata excluded).

    Two fragments with equal fingerprints link into identical code; the
    ``repro check`` oracle uses this to assert incremental rebuilds are
    byte-equivalent to from-scratch builds.
    """
    return hashlib.sha256(obj.canonical_bytes()).hexdigest()


def compile_makespan(costs: Iterable[float], workers: int) -> float:
    """Simulated wall-clock of compiling *costs* on *workers* lanes.

    Longest-processing-time greedy assignment — deterministic, and the
    schedule a work-stealing pool converges to.  With one worker this is
    exactly the serial sum, added in *input* order: float addition is
    not associative, so summing in LPT order could drift an ULP away
    from the serial engine's per-fragment clock (and from
    :func:`assign_lanes`'s serial prefix sums), breaking the exact
    span-tiling invariants the trace export asserts.
    """
    if workers <= 1:
        total = 0.0
        for cost in costs:
            total += cost
        return total
    loads = [0.0] * workers
    for cost in sorted(costs, reverse=True):
        loads[loads.index(min(loads))] += cost
    return max(loads) if loads else 0.0


def assign_lanes(
    costs: List[float], workers: int
) -> Tuple[List[int], List[float]]:
    """Lane index and lane-relative start offset for each compile cost.

    Replays exactly the LPT schedule :func:`compile_makespan` prices
    (same stable descending-cost order, same least-loaded placement, same
    float addition order), so the resulting per-fragment spans tile the
    compile stage without gaps and the busiest lane ends at the makespan.
    With one worker the fragments simply run back-to-back in input order,
    matching how the serial engine advances the clock.
    """
    lanes = [0] * len(costs)
    starts = [0.0] * len(costs)
    if workers <= 1:
        cursor = 0.0
        for i, cost in enumerate(costs):
            starts[i] = cursor
            cursor += cost
        return lanes, starts
    loads = [0.0] * workers
    for i in sorted(range(len(costs)), key=lambda i: -costs[i]):
        lane = loads.index(min(loads))
        lanes[i] = lane
        starts[i] = loads[lane]
        loads[lane] += costs[i]
    return lanes, starts


@dataclass
class RebuildReport:
    """Timing and scope of one on-the-fly recompilation."""

    fragment_ids: List[int] = field(default_factory=list)
    fragment_compile_ms: Dict[int, float] = field(default_factory=dict)
    link_ms: float = 0.0
    probes_applied: int = 0
    cache_reused: int = 0
    # Content-addressed code-cache hits among the recompiled fragments
    # (their compile was skipped; they charge 0 ms).
    cache_hits: int = 0
    # Tier accounting: fragment id -> tier it was serviced at, plus
    # counts of the fast paths taken this rebuild.
    fragment_tiers: Dict[int, str] = field(default_factory=dict)
    # Probe families behind each fragment's rebuild: for compiled
    # fragments the families applied into the master, for patch-tier
    # fragments the families whose toggles drove the patch.
    fragment_families: Dict[int, Tuple[str, ...]] = field(default_factory=dict)
    # Fragments serviced by stage-1 probe patching (sites toggled in the
    # cached master object; no optimize, no isel).
    patched: int = 0
    # Fragments whose middle end was skipped via pass memoization.
    memo_hits: int = 0
    # Cache hits whose entry was planted by speculative precompilation.
    speculative_hits: int = 0
    # Whether the final link was satisfied from the executable cache.
    link_reused: bool = False
    # Compile lanes used; >1 only on the service's worker-pool path.
    workers: int = 1
    # Simulated wall-clock of the compile stage: equals total_compile_ms
    # for one worker, the parallel makespan for a pool.
    compile_wall_ms: float = 0.0
    # fragment id -> canonical-bytes digest of the object produced by this
    # rebuild; only filled when the engine runs with
    # ``record_fingerprints=True`` (the repro check oracle does).
    object_fingerprints: Dict[int, str] = field(default_factory=dict)
    # Probe-integrity findings from this rebuild's fragment compiles;
    # only filled when the engine runs with ``sanitize=True``.
    sanitizer_diagnostics: List = field(default_factory=list)
    # Observability: the rebuild's span tree (schedule -> extract ->
    # instrument -> compile(per-fragment, per-pass) -> link), with dual
    # simulated + real timestamps.  Stage spans sum to ``wall_ms``.
    trace: Optional[Span] = field(default=None, repr=False, compare=False)

    @property
    def total_compile_ms(self) -> float:
        return sum(self.fragment_compile_ms.values())

    @property
    def worst_fragment_ms(self) -> float:
        return max(self.fragment_compile_ms.values(), default=0.0)

    @property
    def total_ms(self) -> float:
        return self.total_compile_ms + self.link_ms

    @property
    def wall_ms(self) -> float:
        """Elapsed (simulated) time of this rebuild under `workers` lanes."""
        return self.compile_wall_ms + self.link_ms

    @property
    def tier(self) -> str:
        """The most expensive tier any fragment of this rebuild took."""
        tiers = set(self.fragment_tiers.values())
        for tier in _TIER_RANK:
            if tier in tiers:
                return tier
        return TIER_NOOP


class InlineFragmentCompiler:
    """Default compiler: serial, in-process — the original engine path."""

    workers = 1

    def __init__(self, sanitize: bool = False, memo=None):
        self.sanitize = sanitize
        self.memo = memo

    def compile_batch(
        self, modules: List[Module], opt_level: int, verify: bool
    ) -> List[ObjectFile]:
        return [
            compile_fragment(m, opt_level, verify, self.sanitize, memo=self.memo)
            for m in modules
        ]


class Odin:
    """On-demand instrumentation engine over one target program."""

    def __init__(
        self,
        module: Module,
        *,
        strategy: str = STRATEGY_ODIN,
        preserve: Iterable[str] = ("main",),
        opt_level: int = 2,
        verify: bool = True,
        object_cache=None,
        compiler=None,
        link_cache: Optional["LinkCache"] = None,
        record_fingerprints: bool = False,
        sanitize: bool = False,
        tracer: Optional[Tracer] = None,
        variant_label: str = "",
        enable_patching: bool = True,
        pass_memo=None,
    ):
        if verify:
            verify_module(module)
        self.module = module          # original, unoptimized whole-program IR
        self.opt_level = opt_level
        self.verify = verify
        # Debug builds: run the probe-integrity sanitizer inside every
        # fragment compile; findings accumulate on the engine and on each
        # RebuildReport.  (A custom `compiler` must opt in itself.)
        self.sanitize = sanitize
        self.sanitizer_diagnostics: List = []
        self.preserve = tuple(preserve)
        self.fragdef: FragmentDefinition = partition(module, strategy, preserve)
        self.manager = PatchManager(self)
        self.cache: Dict[int, ObjectFile] = {}
        # Pluggable service-path collaborators.  `object_cache` is any
        # mapping-like with get(key)/put(key, obj) (see repro.service.cache),
        # `compiler` anything with compile_batch(...) and a `workers` count.
        self.object_cache = object_cache
        # Tier-2 pass memoization, handed to the default compiler.  A
        # custom `compiler` (service worker pools) receives its memo via
        # `make_compiler(..., memo=...)` instead.
        self.pass_memo = pass_memo
        self.compiler = compiler or InlineFragmentCompiler(
            sanitize=sanitize, memo=pass_memo
        )
        self.link_cache = link_cache
        # Variant family this engine compiles (run-time partitioned
        # sanitization, e.g. "clean"/"coverage"/"sanitized").  The label
        # becomes a dimension of both the fragment content keys and the
        # link-cache key, so co-resident families sharing caches never
        # alias each other's objects or images.
        self.variant_label = variant_label
        self.record_fingerprints = record_fingerprints
        # Fragment id -> content key of the object currently in `cache`
        # (only tracked when content addressing is on).  For fragments
        # holding patchable sites the key carries an `|off=` suffix with
        # the disabled site set, so the link-cache key distinguishes
        # toggle states of one master.
        self._frag_keys: Dict[int, str] = {}
        # Stage-1 patching state.  Sites-always-compiled: `_masters`
        # holds each fragment's object with *every* patchable probe site
        # compiled in; `cache` holds the toggle of that master matching
        # the current enable/disable state; `_site_sets` records which
        # patchable site ids the master carries (a mismatch with the live
        # probe set forces a full recompile); `_master_keys` the master's
        # content key.
        self.enable_patching = enable_patching
        self._masters: Dict[int, ObjectFile] = {}
        self._site_sets: Dict[int, frozenset] = {}
        self._master_keys: Dict[int, str] = {}
        # Content keys planted by speculative precompilation; a later
        # cache hit on one counts as a speculative hit.
        self.speculative_keys: set = set()
        self.executable: Optional[Executable] = None
        self.clock = SimClock()
        self.history: List[RebuildReport] = []
        # Observability: every rebuild records its span tree here.  A
        # service passes one shared tracer to all of its targets so
        # rebuild trees nest under the dispatch spans.
        self.tracer = tracer if tracer is not None else Tracer()

    # -- builds -----------------------------------------------------------------

    def initial_build(
        self, patch: Optional[Callable[["Scheduler"], None]] = None
    ) -> RebuildReport:
        """Compile every fragment (with current probes) and link."""
        self.manager.mark_symbols_dirty(self.fragdef.owner.keys())
        return self.rebuild(patch)

    def rebuild(
        self, patch: Optional[Callable[["Scheduler"], None]] = None
    ) -> RebuildReport:
        """Schedule, patch (default: apply scheduled probes), and rebuild."""
        scheduler = self.manager.schedule()
        if patch is not None:
            patch(scheduler)
        else:
            scheduler.apply_probes()
        return scheduler.rebuild()

    def rebuild_if_needed(
        self, patch: Optional[Callable[["Scheduler"], None]] = None
    ) -> Optional[RebuildReport]:
        """Rebuild only when probe state changed since the last build.

        A pending diff that cancelled out (probe added then removed, or
        toggled back to its baseline before any rebuild) is a true no-op:
        the compiled state already matches, so it answers with a
        zero-cost report carrying an empty span tree instead of paying
        schedule/extract/link for nothing.
        """
        if not self.manager.has_pending_changes:
            return None
        if patch is None and not self.manager.has_effective_changes():
            return self._noop_rebuild()
        return self.rebuild(patch)

    def _noop_rebuild(self) -> RebuildReport:
        """Zero-cost report for an empty probe-state diff."""
        report = RebuildReport()
        report.workers = self.compiler.workers
        report.trace = Span(
            "rebuild",
            cat=CAT_REBUILD,
            sim_start_ms=self.clock.now_ms,
            sim_ms=0.0,
            real_ms=0.0,
            args={
                "target": self.module.name,
                "workers": report.workers,
                "fragments": 0,
                "probes_applied": 0,
                "tier": TIER_NOOP,
            },
        )
        self.tracer.record(report.trace)
        self.history.append(report)
        self.manager.clear_dirty()
        return report

    # -- internals ------------------------------------------------------------------

    def _rebuild_from(self, scheduler: "Scheduler") -> RebuildReport:
        """Split the instrumented temporary IR, compile fragments, relink.

        Every fragment is serviced at one of the tiers: stage-1 *patch*
        (toggle probe sites in the cached master), content-cache *hit*,
        *memo* (middle end skipped) or *full* compile.  One unified cost
        vector — patch cost, 0 for cache hits, the (possibly memo-reduced)
        compile cost for the rest — prices the makespan, the lane replay
        in the span tree, and the serial clock, so fast-path fragments can
        never skew ``compile_wall_ms``.
        """
        from repro.backend.costmodel import probe_patch_cost_ms

        report = RebuildReport(probes_applied=len(scheduler.active_probes))
        report.workers = self.compiler.workers
        temp = scheduler.temp_module
        sim0 = self.clock.now_ms
        rebuild_real_start = time.perf_counter()

        # Tier "patch": flip sites in cached masters — no extract, no
        # optimize, no isel.  `entries` accumulates one
        # [fragment, cost, tier, object] row per serviced fragment.
        patch_real_start = time.perf_counter()
        entries: List[list] = []
        for fragment in scheduler.patched_fragments:
            master = self._masters[fragment.id]
            disabled = scheduler.patch_disabled[fragment.id]
            self.cache[fragment.id] = toggle_object(master, disabled)
            master_key = self._master_keys.get(fragment.id)
            if master_key is not None:
                self._frag_keys[fragment.id] = self._toggled_key(
                    master_key, disabled
                )
            cost = probe_patch_cost_ms(scheduler.patch_touched[fragment.id])
            report.fragment_families[fragment.id] = tuple(
                sorted(scheduler.patch_families.get(fragment.id, ()))
            )
            entries.append([fragment, cost, TIER_PATCH, master])
        patch_real_ms = (time.perf_counter() - patch_real_start) * 1000.0

        # Split every changed fragment up front and probe the content
        # cache; the remaining misses form one batch for the compiler
        # (which may fan it out across workers).  Compiled objects are
        # *masters*: every patchable site is in (sites-always-compiled),
        # and the current enable state is realized by toggling below.
        split_real_ms = 0.0
        pending = []  # [fragment, frag_module, content_key, master|None]
        for fragment in scheduler.changed_fragments:
            split_start = time.perf_counter()
            frag_module = self._split_fragment(temp, fragment)
            split_real_ms += (time.perf_counter() - split_start) * 1000.0
            key = master = None
            if self.object_cache is not None:
                key = fragment_content_key(
                    frag_module,
                    self.opt_level,
                    self._probe_signature(scheduler, fragment),
                    self.variant_label,
                )
                master = self.object_cache.get(key)
            pending.append([fragment, frag_module, key, master])

        misses = [entry for entry in pending if entry[3] is None]
        compile_real_start = time.perf_counter()
        if misses:
            compiled = self.compiler.compile_batch(
                [entry[1] for entry in misses], self.opt_level, self.verify
            )
            for entry, obj in zip(misses, compiled):
                entry[3] = obj
                report.sanitizer_diagnostics.extend(
                    getattr(obj, "sanitizer_diagnostics", ())
                )
                if self.object_cache is not None:
                    self.object_cache.put(entry[2], obj)
            self.sanitizer_diagnostics.extend(report.sanitizer_diagnostics)
        compile_real_ms = (time.perf_counter() - compile_real_start) * 1000.0

        miss_ids = {id(entry) for entry in misses}
        for entry in pending:
            fragment, _frag_module, key, master = entry
            disabled = scheduler.patchable_disabled(fragment)
            self.cache[fragment.id] = toggle_object(master, disabled)
            self._masters[fragment.id] = master
            self._site_sets[fragment.id] = scheduler.patchable_sites(fragment)
            if key is not None:
                self._master_keys[fragment.id] = key
                self._frag_keys[fragment.id] = self._toggled_key(key, disabled)
            if id(entry) in miss_ids:
                breakdown = getattr(master, "stage_breakdown", None)
                memo_hit = bool(breakdown and breakdown.get("memo_hit"))
                tier = TIER_MEMO if memo_hit else TIER_FULL
                cost = master.compile_ms
            else:
                # Content-cache hit: no compilation happened, charge 0.
                tier = TIER_CACHE
                cost = 0.0
                report.cache_hits += 1
                if key in self.speculative_keys:
                    report.speculative_hits += 1
            entries.append([fragment, cost, tier, master])

        # Unified accounting over the one cost vector.
        for fragment, cost, tier, _obj in entries:
            report.fragment_ids.append(fragment.id)
            report.fragment_compile_ms[fragment.id] = cost
            report.fragment_tiers[fragment.id] = tier
            if fragment.id not in report.fragment_families:
                report.fragment_families[fragment.id] = (
                    self._fragment_families(scheduler, fragment)
                )
            if tier == TIER_PATCH:
                report.patched += 1
            elif tier == TIER_MEMO:
                report.memo_hits += 1
            if self.record_fingerprints:
                report.object_fingerprints[fragment.id] = object_fingerprint(
                    self.cache[fragment.id]
                )
            if report.workers == 1:
                # Original serial behaviour: the clock moves per
                # fragment, in schedule order (zero-cost tiers move it
                # by nothing).
                self.clock.advance(cost, "compile")

        report.compile_wall_ms = compile_makespan(
            [cost for _f, cost, _t, _o in entries], report.workers
        )
        if report.workers > 1:
            # A pool's elapsed time is its makespan, not the lane sum.
            self.clock.advance(report.compile_wall_ms, "compile")

        report.cache_reused = len(self.fragdef.fragments) - len(report.fragment_ids)
        if len(self.cache) != len(self.fragdef.fragments):
            missing = [
                f.id for f in self.fragdef.fragments if f.id not in self.cache
            ]
            raise PartitionError(
                f"cannot link: fragments {missing} were never compiled "
                f"(run initial_build first)"
            )

        link_real_start = time.perf_counter()
        patch_only = bool(entries) and all(
            tier == TIER_PATCH for _f, _c, tier, _o in entries
        )
        self._link(report, patch_only=patch_only, rebuilt_any=bool(entries))
        link_real_ms = (time.perf_counter() - link_real_start) * 1000.0

        report.trace = self._build_rebuild_trace(
            scheduler, report, entries, sim0,
            split_real_ms=split_real_ms,
            patch_real_ms=patch_real_ms,
            compile_real_ms=compile_real_ms,
            link_real_ms=link_real_ms,
            rebuild_real_ms=(time.perf_counter() - rebuild_real_start) * 1000.0,
        )
        self.tracer.record(report.trace)
        self.history.append(report)
        return report

    @staticmethod
    def _toggled_key(master_key: str, disabled: frozenset) -> str:
        """Content key of a toggle state of one master object."""
        if not disabled:
            return master_key
        return master_key + "|off=" + ",".join(map(str, sorted(disabled)))

    def _build_rebuild_trace(
        self,
        scheduler: "Scheduler",
        report: RebuildReport,
        entries: List[list],
        sim0: float,
        *,
        split_real_ms: float,
        patch_real_ms: float,
        compile_real_ms: float,
        link_real_ms: float,
        rebuild_real_ms: float,
    ) -> Span:
        """Assemble the rebuild's span tree from the deterministic model.

        Simulated positions are synthetic but exact: fragment spans tile
        their LPT lanes inside the compile stage, optimize + isel tile
        each fragment, and per-pass spans tile optimize — so every layer
        sums to the one above it and the stage layer sums to
        ``report.wall_ms``.  Real durations are what this process
        actually measured for the same work.

        The lane replay runs over the *same* unified cost vector that
        priced the makespan — patched fragments at their patch cost,
        cache hits at zero — so fast-path spans interleave with full
        compiles without breaking the tiling invariants.  Every fragment
        span (and the root) carries its ``tier``.
        """
        root = Span(
            "rebuild",
            cat=CAT_REBUILD,
            sim_start_ms=sim0,
            sim_ms=report.wall_ms,
            real_ms=rebuild_real_ms,
            args={
                "target": self.module.name,
                "workers": report.workers,
                "fragments": len(report.fragment_ids),
                "probes_applied": report.probes_applied,
                "tier": report.tier,
            },
        )
        root.add(Span(
            "schedule",
            sim_start_ms=sim0,
            real_ms=scheduler.schedule_real_ms,
            args={
                "changed_fragments": len(scheduler.changed_fragments),
                "patched_fragments": len(scheduler.patched_fragments),
            },
        ))
        root.add(Span(
            "extract",
            sim_start_ms=sim0,
            real_ms=scheduler.extract_real_ms + split_real_ms,
        ))
        root.add(Span(
            "instrument",
            sim_start_ms=sim0,
            real_ms=scheduler.instrument_real_ms,
            args={"active_probes": len(scheduler.active_probes)},
        ))
        compile_span = root.add(Span(
            "compile",
            sim_start_ms=sim0,
            sim_ms=report.compile_wall_ms,
            real_ms=patch_real_ms + compile_real_ms,
            args={
                "workers": report.workers,
                "cache_hits": report.cache_hits,
                "patched": report.patched,
                "memo_hits": report.memo_hits,
                "compiled": len(report.fragment_ids)
                - report.cache_hits
                - report.patched,
            },
        ))

        lanes, starts = assign_lanes(
            [cost for _f, cost, _t, _o in entries], report.workers
        )
        for (fragment, cost, tier, obj), lane, lane_offset in zip(
            entries, lanes, starts
        ):
            frag_start = sim0 + lane_offset
            if tier == TIER_CACHE:
                compile_span.add(Span(
                    f"fragment#{fragment.id}",
                    cat=CAT_FRAGMENT,
                    sim_start_ms=frag_start,
                    lane=lane,
                    args={"cache_hit": True, "tier": tier},
                ))
                continue
            if tier == TIER_PATCH:
                compile_span.add(Span(
                    f"fragment#{fragment.id}",
                    cat=CAT_FRAGMENT,
                    sim_start_ms=frag_start,
                    sim_ms=cost,
                    lane=lane,
                    args={
                        "tier": tier,
                        "sites_touched": scheduler.patch_touched[fragment.id],
                    },
                ))
                continue
            breakdown = getattr(obj, "stage_breakdown", None)
            frag_span = compile_span.add(Span(
                f"fragment#{fragment.id}",
                cat=CAT_FRAGMENT,
                sim_start_ms=frag_start,
                sim_ms=cost,
                real_ms=breakdown["real_ms"] if breakdown else 0.0,
                lane=lane,
                args={"symbols": len(fragment.symbols), "tier": tier},
            ))
            if breakdown is None:
                continue  # custom compiler without stage attribution
            opt_span = frag_span.add(Span(
                "optimize",
                cat=CAT_PHASE,
                sim_start_ms=frag_start,
                sim_ms=breakdown["optimize_ms"],
                lane=lane,
            ))
            cursor = frag_start
            for pass_name, pass_sim_ms, pass_real_ms in breakdown["passes"]:
                opt_span.add(Span(
                    pass_name,
                    cat=CAT_PASS,
                    sim_start_ms=cursor,
                    sim_ms=pass_sim_ms,
                    real_ms=pass_real_ms,
                    lane=lane,
                ))
                cursor += pass_sim_ms
            frag_span.add(Span(
                "isel",
                cat=CAT_PHASE,
                sim_start_ms=frag_start + breakdown["optimize_ms"],
                sim_ms=breakdown["isel_ms"],
                lane=lane,
            ))

        root.add(Span(
            "link",
            sim_start_ms=sim0 + report.compile_wall_ms,
            sim_ms=report.link_ms,
            real_ms=link_real_ms,
            args={"link_reused": report.link_reused},
        ))
        return root

    def _link(
        self,
        report: RebuildReport,
        *,
        patch_only: bool = False,
        rebuilt_any: bool = True,
    ) -> None:
        """Produce the executable: reuse, patch the image, or relink.

        The ladder, cheapest rung first: a rebuild that produced no new
        objects keeps the current executable as-is; a known toggle state
        comes straight from the executable cache; a rebuild serviced
        entirely at the patch tier splices the toggled objects into the
        existing image (:func:`repro.linker.linker.patch_image`) instead
        of paying the full link; everything else relinks from the object
        cache.
        """
        if not rebuilt_any and self.executable is not None:
            report.link_reused = True
            report.link_ms = 0.0
            return

        link_key = None
        if self.link_cache is not None and len(self._frag_keys) == len(
            self.fragdef.fragments
        ):
            # The variant label leads the key: families sharing one
            # LinkCache can never reuse each other's image.
            link_key = (f"variant={self.variant_label}",) + tuple(
                self._frag_keys[f.id] for f in self.fragdef.fragments
            )
            cached = self.link_cache.get(link_key)
            if cached is not None:
                self.executable = cached
                report.link_reused = True
                report.link_ms = 0.0
                return

        if patch_only and self.executable is not None:
            patched_objects = {
                self.cache[fid].name: self.cache[fid]
                for fid, tier in report.fragment_tiers.items()
                if tier == TIER_PATCH
            }
            self.executable = patch_image(self.executable, patched_objects)
            report.link_ms = self.executable.link_ms
            self.clock.advance(report.link_ms, "link")
            if link_key is not None:
                self.link_cache.put(link_key, self.executable)
            return

        objects = [self.cache[f.id] for f in self.fragdef.fragments]
        self.executable = link(objects)
        report.link_ms = self.executable.link_ms
        self.clock.advance(report.link_ms, "link")
        if link_key is not None:
            self.link_cache.put(link_key, self.executable)

    def _probe_signature(self, scheduler: "Scheduler", fragment: Fragment) -> str:
        """Canonical description of the probe state compiled into *fragment*.

        Signs the *applied* set — active probes plus disabled patchable
        ones — because that is what the master object physically carries
        (sites-always-compiled); the enable/disable state lives in the
        toggle suffix of the link key, not here.
        """
        symbols = set(fragment.symbols)
        parts = sorted(
            f"{p.family or '-'}/{type(p).__name__}#{p.id}"
            for p in scheduler.applied_probes
            if p.target_symbol() in symbols
        )
        return ",".join(parts)

    def _fragment_families(
        self, scheduler: "Scheduler", fragment: Fragment
    ) -> Tuple[str, ...]:
        """Families of the probes applied into *fragment* this rebuild."""
        symbols = set(fragment.symbols)
        return tuple(sorted({
            p.family
            for p in scheduler.applied_probes
            if p.family and p.target_symbol() in symbols
        }))

    def _split_fragment(self, temp: Module, fragment: Fragment) -> Module:
        """Extract one fragment's (instrumented) module from the temp IR."""
        frag_module = extract_module(
            temp,
            [s for s in fragment.symbols],
            copy_on_use=self.fragdef.copy_on_use,
            name=f"{self.module.name}.frag{fragment.id}",
        )
        apply_fragment_linkage(frag_module, self.fragdef)
        return frag_module

    def _compile_fragment(self, frag_module: Module) -> ObjectFile:
        """Optimize (post-instrumentation) and lower one fragment."""
        return compile_fragment(frag_module, self.opt_level, self.verify)

    # -- static analysis ------------------------------------------------------------

    def lint(self, checks: Optional[Iterable[str]] = None) -> List:
        """Run the IR lint suite over the original whole-program module.

        Returns :class:`repro.analysis.diagnostics.Diagnostic` records;
        pair with ``sanitize=True`` builds for the full static layer.
        """
        from repro.analysis.lints import run_lints

        return run_lints(self.module, checks)

    # -- equivalence hooks (repro check) ----------------------------------------------

    def object_fingerprints(self) -> Dict[int, str]:
        """Canonical digest of every currently linked fragment object."""
        return {fid: object_fingerprint(obj) for fid, obj in self.cache.items()}

    def executable_fingerprint(self) -> Optional[str]:
        """Canonical digest of the current executable (None before build)."""
        return None if self.executable is None else self.executable.fingerprint()

    # -- introspection ------------------------------------------------------------------

    @property
    def num_fragments(self) -> int:
        return self.fragdef.num_fragments

    def describe_partition(self) -> str:
        """Human-readable partition summary (Figure 6 style)."""
        lines = [f"strategy={self.fragdef.strategy} fragments={self.num_fragments}"]
        for fragment in self.fragdef.fragments:
            syms = ", ".join(fragment.symbols)
            lines.append(f"  #{fragment.id}: {syms}")
        if self.fragdef.copy_on_use:
            lines.append(f"  copy-on-use: {', '.join(sorted(self.fragdef.copy_on_use))}")
        exported = sorted(self.fragdef.exported)
        lines.append(f"  exported: {', '.join(exported) if exported else '(none)'}")
        return "\n".join(lines)
