"""PatchManager: dynamic probe add/remove/change (§4).

    probe = manager.add(CovProbe(fn, block))   # probes can be added
    manager.remove(probe)                      # probes can be removed
    probe.payload = ...; manager.mark_changed(probe)  # and changed

Every mutation records the probe as *dirty*; ``schedule()`` runs
Algorithm 2 over the dirty set and returns a :class:`Scheduler` that the
fuzzer's patch logic drives to rebuild the executable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, TypeVar

from repro.core.probe import Probe
from repro.errors import ScheduleError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import Odin
    from repro.core.scheduler import Scheduler

P = TypeVar("P", bound=Probe)


class PatchManager:
    """Owns all probes and tracks which changed since the last rebuild."""

    def __init__(self, engine: "Odin"):
        self.engine = engine
        self._probes: Dict[int, Probe] = {}
        self._next_id = 0
        # Dirty tracking: probe ids and (for removed probes) their symbols.
        self._dirty_probe_ids: set = set()
        self._dirty_symbols: set = set()

    # -- collection protocol ----------------------------------------------------

    def __iter__(self) -> Iterator[Probe]:
        return iter(list(self._probes.values()))

    def __len__(self) -> int:
        return len(self._probes)

    def get_probe(self, probe_id: int) -> Probe:
        try:
            return self._probes[probe_id]
        except KeyError:
            raise ScheduleError(f"no probe with id {probe_id}") from None

    def probes_for_symbol(self, symbol: str) -> List[Probe]:
        return [p for p in self._probes.values() if p.target_symbol() == symbol]

    # -- mutation ------------------------------------------------------------------

    def add(self, probe: P) -> P:
        """Register a probe; it will be applied on the next rebuild."""
        if probe.id >= 0:
            raise ScheduleError(f"probe {probe!r} is already registered")
        probe.validate_target(self.engine.module)
        probe.id = self._next_id
        self._next_id += 1
        self._probes[probe.id] = probe
        self._mark(probe)
        return probe

    def remove(self, probe: Probe) -> None:
        """Unregister a probe; its symbol is recompiled without it."""
        if self._probes.pop(probe.id, None) is None:
            raise ScheduleError(f"probe {probe!r} is not registered")
        self._mark(probe)
        probe.id = -1

    def mark_changed(self, probe: Probe) -> None:
        """Record that the probe's logic/state changed (§4: probes can be
        queried and their logic changed)."""
        if probe.id not in self._probes:
            raise ScheduleError(f"probe {probe!r} is not registered")
        self._mark(probe)

    def disable(self, probe: Probe) -> None:
        """Keep the probe object but stop instrumenting with it."""
        if probe.enabled:
            probe.enabled = False
            self._mark(probe)

    def enable(self, probe: Probe) -> None:
        if not probe.enabled:
            probe.enabled = True
            self._mark(probe)

    def _mark(self, probe: Probe) -> None:
        self._dirty_probe_ids.add(probe.id)
        self._dirty_symbols.add(probe.target_symbol())

    # -- scheduling --------------------------------------------------------------------

    @property
    def has_pending_changes(self) -> bool:
        return bool(self._dirty_symbols)

    def dirty_symbols(self) -> set:
        return set(self._dirty_symbols)

    def schedule(self) -> "Scheduler":
        """Run Algorithm 2 and return the scheduler for this rebuild."""
        from repro.core.scheduler import Scheduler

        return Scheduler(self.engine, self)

    def clear_dirty(self) -> None:
        self._dirty_probe_ids.clear()
        self._dirty_symbols.clear()
