"""PatchManager: dynamic probe add/remove/change (§4).

    probe = manager.add(CovProbe(fn, block))   # probes can be added
    manager.remove(probe)                      # probes can be removed
    probe.payload = ...; manager.mark_changed(probe)  # and changed

Every mutation records the probe as *dirty*; ``schedule()`` runs
Algorithm 2 over the dirty set and returns a :class:`Scheduler` that the
fuzzer's patch logic drives to rebuild the executable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, TypeVar

from repro.core.probe import Probe
from repro.errors import ScheduleError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import Odin
    from repro.core.scheduler import Scheduler

P = TypeVar("P", bound=Probe)

# Dirty-record kinds: what happened to a probe since the last rebuild.
REC_ADDED = "added"
REC_REMOVED = "removed"
REC_CHANGED = "changed"
REC_TOGGLED = "toggled"
# An add that was removed again (or a toggle that round-tripped) before
# any rebuild: the probe state matches what is already compiled.
REC_CANCELLED = "cancelled"


@dataclass
class DirtyRecord:
    """One probe's pending mutation, classified for the tiered rebuild.

    The scheduler uses these to decide per fragment whether the stage-1
    patch path applies: a fragment whose dirt consists purely of
    enable/disable flips of *patchable* probes (and cancelled no-ops) can
    be serviced by toggling sites in the cached master object.
    """

    probe: Probe
    symbol: str
    kind: str
    # Enabled state when the record was created — i.e. the state the
    # currently cached objects were toggled to.  A TOGGLED record whose
    # probe is back at its baseline is effectively cancelled.
    baseline_enabled: bool = True

    def effective_kind(self) -> str:
        if self.kind == REC_TOGGLED and self.probe.enabled == self.baseline_enabled:
            return REC_CANCELLED
        return self.kind


class PatchManager:
    """Owns all probes and tracks which changed since the last rebuild."""

    def __init__(self, engine: "Odin"):
        self.engine = engine
        self._probes: Dict[int, Probe] = {}
        self._next_id = 0
        # Dirty tracking: probe ids and (for removed probes) their symbols.
        self._dirty_probe_ids: set = set()
        self._dirty_symbols: set = set()
        # Classified dirt: probe id -> DirtyRecord.  Symbols marked dirty
        # with no probe-level explanation (initial build, direct pokes)
        # are *external* dirt and always take the full recompile path.
        # External dirt is tracked explicitly: a symbol can carry both a
        # probe record *and* external dirt (initial build over a symbol
        # whose probe was added then removed), and inferring externality
        # from record coverage would hide the external half.
        self._dirty_records: Dict[int, DirtyRecord] = {}
        self._external_dirty: set = set()

    # -- collection protocol ----------------------------------------------------

    def __iter__(self) -> Iterator[Probe]:
        return iter(list(self._probes.values()))

    def __len__(self) -> int:
        return len(self._probes)

    def get_probe(self, probe_id: int) -> Probe:
        try:
            return self._probes[probe_id]
        except KeyError:
            raise ScheduleError(f"no probe with id {probe_id}") from None

    def probes_for_symbol(self, symbol: str) -> List[Probe]:
        return [p for p in self._probes.values() if p.target_symbol() == symbol]

    # -- mutation ------------------------------------------------------------------

    def add(self, probe: P) -> P:
        """Register a probe; it will be applied on the next rebuild."""
        if probe.id >= 0:
            raise ScheduleError(f"probe {probe!r} is already registered")
        probe.validate_target(self.engine.module)
        probe.id = self._next_id
        self._next_id += 1
        self._probes[probe.id] = probe
        self._mark(probe)
        self._dirty_records[probe.id] = DirtyRecord(
            probe, probe.target_symbol(), REC_ADDED, probe.enabled
        )
        return probe

    def remove(self, probe: Probe) -> None:
        """Unregister a probe; its symbol is recompiled without it."""
        if self._probes.pop(probe.id, None) is None:
            raise ScheduleError(f"probe {probe!r} is not registered")
        self._mark(probe)
        record = self._dirty_records.get(probe.id)
        if record is not None and record.kind == REC_ADDED:
            # Added and removed within one dirty cycle: a no-op for the
            # compiled state, but the symbol stays dirty so schedulers
            # that bypass classification behave as before.
            record.kind = REC_CANCELLED
        else:
            self._dirty_records[probe.id] = DirtyRecord(
                probe, probe.target_symbol(), REC_REMOVED, probe.enabled
            )
        probe.id = -1

    def mark_changed(self, probe: Probe) -> None:
        """Record that the probe's logic/state changed (§4: probes can be
        queried and their logic changed)."""
        if probe.id not in self._probes:
            raise ScheduleError(f"probe {probe!r} is not registered")
        self._mark(probe)
        record = self._dirty_records.get(probe.id)
        if record is None or record.kind != REC_ADDED:
            # A changed probe's instrumentation may differ: full path.
            self._dirty_records[probe.id] = DirtyRecord(
                probe, probe.target_symbol(), REC_CHANGED, probe.enabled
            )

    def disable(self, probe: Probe) -> None:
        """Keep the probe object but stop instrumenting with it."""
        # Like mark_changed: toggling a probe that was never added (or
        # was removed, id == -1) would record dirt keyed at a bogus id
        # and silently corrupt the dirty set.
        if probe.id not in self._probes:
            raise ScheduleError(f"probe {probe!r} is not registered")
        if probe.enabled:
            probe.enabled = False
            self._note_toggle(probe, baseline=True)

    def enable(self, probe: Probe) -> None:
        if probe.id not in self._probes:
            raise ScheduleError(f"probe {probe!r} is not registered")
        if not probe.enabled:
            probe.enabled = True
            self._note_toggle(probe, baseline=False)

    def _note_toggle(self, probe: Probe, baseline: bool) -> None:
        self._mark(probe)
        # An existing added/changed/toggled record already captures the
        # stronger mutation (records carry the live probe, so its current
        # enabled state is always visible to the scheduler).
        if probe.id not in self._dirty_records:
            self._dirty_records[probe.id] = DirtyRecord(
                probe, probe.target_symbol(), REC_TOGGLED, baseline
            )

    def _mark(self, probe: Probe) -> None:
        self._dirty_probe_ids.add(probe.id)
        self._dirty_symbols.add(probe.target_symbol())

    def mark_symbols_dirty(self, symbols) -> None:
        """Mark symbols dirty with no probe-level explanation.

        External dirt always takes the full recompile path; the initial
        build uses this to force every fragment through compilation.
        """
        symbols = set(symbols)
        self._dirty_symbols.update(symbols)
        self._external_dirty.update(symbols)

    # -- scheduling --------------------------------------------------------------------

    @property
    def has_pending_changes(self) -> bool:
        return bool(self._dirty_symbols)

    def dirty_symbols(self) -> set:
        return set(self._dirty_symbols)

    def dirty_records(self) -> Dict[int, DirtyRecord]:
        return dict(self._dirty_records)

    def external_dirty_symbols(self) -> set:
        """Dirty symbols carrying dirt no probe-level record explains.

        The explicit set (``mark_symbols_dirty``) is the authority; the
        record-coverage inference is kept as a backstop for dirty symbols
        that somehow gained neither a record nor an external mark.
        """
        covered = {rec.symbol for rec in self._dirty_records.values()}
        inferred = {s for s in self._dirty_symbols if s not in covered}
        return (self._external_dirty & self._dirty_symbols) | inferred

    def has_effective_changes(self) -> bool:
        """Whether the pending dirt actually differs from the built state.

        False when every record cancelled out (probe added then removed,
        or toggled back to its baseline) and no external dirt exists —
        the compiled objects already reflect the current probe state, so
        ``rebuild_if_needed`` can answer with a zero-cost no-op.
        """
        if self.external_dirty_symbols():
            return True
        return any(
            rec.effective_kind() != REC_CANCELLED
            for rec in self._dirty_records.values()
        )

    def schedule(self) -> "Scheduler":
        """Run Algorithm 2 and return the scheduler for this rebuild."""
        from repro.core.scheduler import Scheduler

        return Scheduler(self.engine, self)

    def clear_dirty(self) -> None:
        self._dirty_probe_ids.clear()
        self._dirty_symbols.clear()
        self._dirty_records.clear()
        self._external_dirty.clear()
