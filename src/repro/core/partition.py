"""Program partitioning (§3.2, Figure 6, Algorithm 1).

Before fuzzing starts, Odin surveys the target program and produces a
:class:`FragmentDefinition` that balances recompilation speed against
optimization quality:

1. **Classify symbols** — a trial optimization run logs requirements:
   ``bond`` pairs (dead-arg-elim / inlining need callee and caller
   together) and ``copy_on_use`` constants (local optimization needs the
   referenced constant's bytes).  Everything else is ``fixed``.
   Non-clonable ``copy_on_use`` candidates (non-const, or exported)
   degrade to bonds with their users, per the paper.

2. **Create fragments** (Algorithm 1) — union-find clusters: innate
   constraints (alias symbols must live with their aliasee) for
   correctness, bond pairs for optimization; remaining fixed symbols get
   singleton fragments.

3. **Add missing symbols** — done lazily at extraction time
   (:func:`repro.ir.clone.extract_module_ex` imports declarations and
   clones copy-on-use symbols recursively).

4. **Internalize** — a symbol referenced only inside its own fragment is
   internal there; anything referenced cross-fragment (or preserved,
   e.g. ``main``) is exported with a stable ABI.

Strategies: ``odin`` (the paper's scheme), ``one`` (Odin-OnePartition)
and ``max`` (Odin-MaxPartition) from Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import PartitionError
from repro.ir.module import Function, Module
from repro.ir.values import GlobalAlias, GlobalValue, GlobalVariable
from repro.opt.pass_manager import REQ_BOND, REQ_COPY_ON_USE, Requirement
from repro.opt.pipeline import trial_optimize
from repro.utils.unionfind import UnionFind

CLASS_BOND = "bond"
CLASS_COPY_ON_USE = "copy_on_use"
CLASS_FIXED = "fixed"

STRATEGY_ODIN = "odin"
STRATEGY_ONE = "one"
STRATEGY_MAX = "max"


@dataclass
class Fragment:
    """One recompilation unit: a set of symbols defined together."""

    id: int
    symbols: Tuple[str, ...]

    def __contains__(self, symbol: str) -> bool:
        return symbol in self.symbols


@dataclass
class FragmentDefinition:
    """The partition scheme: "the boundary between fragments" (§3.1)."""

    strategy: str
    fragments: List[Fragment] = field(default_factory=list)
    copy_on_use: Set[str] = field(default_factory=set)
    classification: Dict[str, str] = field(default_factory=dict)
    # symbol -> owning fragment id (copy-on-use symbols have no owner).
    owner: Dict[str, int] = field(default_factory=dict)
    # symbols that must stay exported in their fragment.
    exported: Set[str] = field(default_factory=set)

    def fragment_of(self, symbol: str) -> Fragment:
        try:
            return self.fragments[self.owner[symbol]]
        except KeyError:
            raise PartitionError(f"symbol @{symbol} is not owned by any fragment") from None

    def fragments_containing(self, symbol: str) -> List[Fragment]:
        """All fragments that will *define* the symbol after extraction.

        A copy-on-use symbol is cloned into every fragment referencing it;
        owned symbols live in exactly one fragment.
        """
        if symbol in self.owner:
            return [self.fragments[self.owner[symbol]]]
        return [f for f in self.fragments if symbol in self._referenced_by(f)]

    # Cache of fragment -> referenced copy-on-use symbols, filled lazily by
    # the engine (needs the module); default to empty.
    _references: Dict[int, Set[str]] = None

    def _referenced_by(self, fragment: Fragment) -> Set[str]:
        if self._references is None:
            return set()
        return self._references.get(fragment.id, set())

    @property
    def num_fragments(self) -> int:
        return len(self.fragments)


def partition(
    module: Module,
    strategy: str = STRATEGY_ODIN,
    preserve: Iterable[str] = ("main",),
    requirements: Optional[List[Requirement]] = None,
) -> FragmentDefinition:
    """Produce a fragment definition for *module*.

    *requirements* may be supplied (e.g. precomputed) — otherwise a trial
    optimization run collects them for the ``odin`` strategy.
    """
    preserve = set(preserve)
    definitions = [s for s in module.symbols.values() if not s.is_declaration()]
    names = [s.name for s in definitions]

    if strategy == STRATEGY_ONE:
        return _finalize(
            module, STRATEGY_ONE, [names] if names else [], set(), {}, preserve
        )

    if strategy == STRATEGY_MAX:
        clusters = _cluster(module, definitions, bonds=[])
        return _finalize(module, STRATEGY_MAX, clusters, set(), {}, preserve)

    if strategy != STRATEGY_ODIN:
        raise PartitionError(f"unknown partition strategy {strategy!r}")

    if requirements is None:
        requirements = trial_optimize(module)

    classification: Dict[str, str] = {name: CLASS_FIXED for name in names}
    bonds: List[Tuple[str, str]] = []
    copy_on_use: Set[str] = set()

    for req in requirements:
        if req.subject not in classification:
            continue  # requirement about a symbol synthesized during trial
        if req.kind == REQ_BOND:
            classification[req.subject] = CLASS_BOND
            if req.peer in classification:
                bonds.append((req.subject, req.peer))
        elif req.kind == REQ_COPY_ON_USE:
            symbol = module.get(req.subject)
            if _clonable(symbol):
                classification[req.subject] = CLASS_COPY_ON_USE
                copy_on_use.add(req.subject)
            else:
                # Semantically non-clonable: bond with its users (§3.2).
                classification[req.subject] = CLASS_BOND
                if req.peer in classification:
                    bonds.append((req.subject, req.peer))

    # Copy-on-use symbols are cloned at extraction; they own no fragment.
    clustered = [s for s in definitions if s.name not in copy_on_use]
    clusters = _cluster(module, clustered, bonds)
    return _finalize(module, STRATEGY_ODIN, clusters, copy_on_use, classification, preserve)


def _clonable(symbol: GlobalValue) -> bool:
    """A symbol may be cloned into fragments only if duplicating it cannot
    change program semantics: immutable data, not address-compared across
    fragments in any way we support (our IR has no global-address equality
    constants), and not exported."""
    return (
        isinstance(symbol, GlobalVariable)
        and symbol.is_const
        and symbol.is_internal
        and not symbol.is_declaration()
    )


def _cluster(
    module: Module,
    definitions: List[GlobalValue],
    bonds: List[Tuple[str, str]],
) -> List[List[str]]:
    """Algorithm 1: union-find over innate constraints and bonds."""
    uf = UnionFind(s.name for s in definitions)

    # Innate constraints: an alias must be defined with its aliasee (§2.3).
    for symbol in definitions:
        if isinstance(symbol, GlobalAlias):
            uf.union(symbol.name, symbol.aliasee.name)

    # Bonds: interprocedural optimization pairs.
    for subject, peer in bonds:
        uf.union(subject, peer)

    return uf.clusters()


def _finalize(
    module: Module,
    strategy: str,
    clusters: List[List[str]],
    copy_on_use: Set[str],
    classification: Dict[str, str],
    preserve: Set[str],
) -> FragmentDefinition:
    fragdef = FragmentDefinition(strategy=strategy)
    fragdef.copy_on_use = copy_on_use
    fragdef.classification = classification
    # Canonical fragment numbering: order clusters by their (sorted)
    # symbol names, not by symbol-table insertion order.  A module that
    # was printed and re-parsed (process workers, cluster failover
    # snapshots) groups symbols by kind, so insertion order is not
    # stable across a round-trip — fragment ids must not depend on it,
    # or a migrated engine's per-fragment fingerprints stop lining up
    # with a from-scratch build of the same program.
    for cluster in sorted(tuple(sorted(c)) for c in clusters):
        fragment = Fragment(len(fragdef.fragments), cluster)
        fragdef.fragments.append(fragment)
        for name in fragment.symbols:
            fragdef.owner[name] = fragment.id

    fragdef.exported = _exported_symbols(module, fragdef, preserve)
    fragdef._references = _copy_on_use_references(module, fragdef)
    return fragdef


def _exported_symbols(
    module: Module, fragdef: FragmentDefinition, preserve: Set[str]
) -> Set[str]:
    """Internalization (§3.2 step 4): a symbol stays exported iff it is
    preserved or referenced from a different fragment."""
    exported: Set[str] = set(p for p in preserve if p in module.symbols)
    for fn in module.defined_functions():
        from_frag = fragdef.owner.get(fn.name)
        for ref in fn.referenced_globals():
            if ref.is_declaration() and ref.name not in fragdef.owner:
                continue  # external import (libc etc.)
            if ref.name in fragdef.copy_on_use:
                continue  # cloned locally, never linked across
            to_frag = fragdef.owner.get(ref.name)
            if to_frag is None or to_frag != from_frag:
                exported.add(ref.name)
    for alias in module.aliases():
        if alias.is_declaration():
            continue
        from_frag = fragdef.owner.get(alias.name)
        to_frag = fragdef.owner.get(alias.aliasee.name)
        if to_frag is not None and to_frag != from_frag:
            exported.add(alias.aliasee.name)
    return exported


def _copy_on_use_references(
    module: Module, fragdef: FragmentDefinition
) -> Dict[int, Set[str]]:
    """fragment id -> copy-on-use symbols its members reference."""
    refs: Dict[int, Set[str]] = {}
    if not fragdef.copy_on_use:
        return refs
    for fn in module.defined_functions():
        frag = fragdef.owner.get(fn.name)
        if frag is None:
            continue
        for ref in fn.referenced_globals():
            if ref.name in fragdef.copy_on_use:
                refs.setdefault(frag, set()).add(ref.name)
    return refs


def apply_fragment_linkage(fragment_module: Module, fragdef: FragmentDefinition) -> None:
    """Set linkage inside an extracted fragment per the internalization
    decision: exported symbols become external (stable ABI), everything
    else defined here becomes internal (full IPO freedom)."""
    for symbol in fragment_module.symbols.values():
        if symbol.is_declaration():
            continue
        if symbol.name in fragdef.exported:
            symbol.linkage = "external"
        else:
            symbol.linkage = "internal"
