"""Probes: the unit of on-demand instrumentation (§4).

A probe targets one symbol of the *original* (unoptimized) IR and knows
how to instrument the temporary IR the scheduler hands out.  Probes are
plain Python objects, so "probe-specific information can be stored here
freely" (§4) — hit counts, solved flags, pointers back into the IR,
whatever the fuzzing algorithm wants to annotate.

Lifecycle: ``PatchManager.add`` / ``remove`` / ``mark_changed`` record the
probe as *dirty*; the next ``schedule()`` figures out the minimal set of
fragments to recompile (Algorithm 2) and every probe that must be
(re)applied to them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import ScheduleError
from repro.ir.builder import IRBuilder
from repro.ir.instructions import Instruction, PhiInst
from repro.ir.module import BasicBlock, Function

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.scheduler import Scheduler


class Probe:
    """Base probe.  Subclasses implement targeting and patch logic."""

    #: Stage-1 patchability (Algorithm 2 fast path).  A patchable probe's
    #: instrumentation lowers to a single self-contained ``probe``
    #: machine instruction that defines no value the surrounding code can
    #: use (no dst register, no operands) — so enabling/disabling it can
    #: never change an optimization or register-allocation decision, and
    #: the engine may realize the flip by deleting/keeping the site in
    #: the cached object file instead of recompiling the fragment.
    #: Schemes whose instrumentation feeds values back into the program
    #: (CmpLog operand logging, ASan/UBSan checks on computed addresses)
    #: must leave this False.
    patchable: bool = False

    #: Probe family this probe belongs to ("cov", "ubsan", "asan",
    #: "cmplog", "prof", ...).  The tag flows into fragment content keys
    #: (two families with identical IR never alias each other's cached
    #: objects) and into ``RebuildReport.fragment_families``, so rebuild
    #: reports say *which* instrumentation scheme drove each fragment.
    family: str = ""

    def __init__(self):
        self.id: int = -1          # assigned by the PatchManager
        self.enabled: bool = True  # disabled probes are not applied

    def target_symbol(self) -> str:
        """Name of the (original-IR) function this probe patches."""
        raise NotImplementedError

    def validate_target(self, module) -> None:
        """Raise :class:`ScheduleError` unless the probe targets *module*.

        The base check is by name; anchored probes also verify object
        identity so a probe built against a *different* module instance
        (whose clones the scheduler could never map) is rejected early.
        """
        name = self.target_symbol()
        if name not in module.symbols:
            raise ScheduleError(f"probe targets unknown symbol @{name}")

    def apply(self, sched: "Scheduler") -> None:
        """Instrument the scheduler's temporary IR for this probe.

        Called only when the probe is enabled and its fragment is being
        recompiled.  Use ``sched.map(...)`` to translate original-IR
        objects into the temporary IR, then emit code with
        :class:`~repro.ir.builder.IRBuilder` as in static instrumentation.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover
        state = "on" if self.enabled else "off"
        return f"<{type(self).__name__} #{self.id} @{self.target_symbol()} {state}>"


class BlockProbe(Probe):
    """A probe anchored at the head of one basic block.

    The workhorse for coverage instrumentation: ``instrument`` is called
    with a builder positioned before the block's first non-phi
    instruction in the temporary IR.
    """

    def __init__(self, function: Function, block: BasicBlock):
        super().__init__()
        if block.parent is not function:
            raise ScheduleError(
                f"block {block.name} does not belong to @{function.name}"
            )
        self.function = function
        self.block = block

    def target_symbol(self) -> str:
        return self.function.name

    def validate_target(self, module) -> None:
        super().validate_target(module)
        if module.get_or_none(self.function.name) is not self.function:
            raise ScheduleError(
                f"probe targets unknown symbol: @{self.function.name} belongs "
                f"to a different module instance"
            )

    def apply(self, sched: "Scheduler") -> None:
        block = sched.map_block(self.block)
        anchor = self._first_non_phi(block)
        builder = IRBuilder.before(anchor)
        self.instrument(builder, sched)

    def instrument(self, builder: IRBuilder, sched: "Scheduler") -> None:
        raise NotImplementedError

    @staticmethod
    def _first_non_phi(block: BasicBlock) -> Instruction:
        for inst in block.instructions:
            if not isinstance(inst, PhiInst):
                return inst
        raise ScheduleError(f"block {block.name} has no instructions")


class InstructionProbe(Probe):
    """A probe anchored before one instruction (e.g. a comparison)."""

    def __init__(self, instruction: Instruction):
        super().__init__()
        if instruction.function is None:
            raise ScheduleError("instruction probe target is detached")
        self.instruction = instruction

    def target_symbol(self) -> str:
        return self.instruction.function.name

    def validate_target(self, module) -> None:
        super().validate_target(module)
        fn = self.instruction.function
        if module.get_or_none(fn.name) is not fn:
            raise ScheduleError(
                f"probe targets unknown symbol: @{fn.name} belongs to a "
                f"different module instance"
            )

    def apply(self, sched: "Scheduler") -> None:
        inst = sched.map(self.instruction)
        builder = IRBuilder.before(inst)
        self.instrument(builder, inst, sched)

    def instrument(self, builder: IRBuilder, mapped: Instruction, sched: "Scheduler") -> None:
        raise NotImplementedError
