"""ProbeSet: one tool's probe registry over the shared PatchManager.

Every probe-family tool (coverage, UBSan/ASan, CmpLog, profiling) used
to keep its own ``Dict[int, Probe]`` next to the :class:`PatchManager`
and re-implement the same loops over it: register-and-remember, flip a
symbol's probes, map runtime counters back onto probe annotations.
:class:`ProbeSet` owns those loops once, so coverage, sanitizers and
profiling are three uniform clients of one scheduler rather than
coverage being special-cased.

The set is deliberately dict-compatible (iteration yields ids,
``tool.probes[pid]``, ``.pop``, ``.get``, ``.values()``, ``.items()``,
``len``, ``in``): every existing caller that treated ``tool.probes`` as
a plain dict keeps working.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Set, TypeVar

from repro.core.probe import Probe

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.manager import PatchManager

P = TypeVar("P", bound=Probe)


@dataclass
class SyncOutcome:
    """Result of one counter sync: what landed, what could not."""

    #: Events accumulated onto a registered probe's annotation.
    attributed: int = 0
    #: Events whose probe id is no longer in the set (pruned/removed
    #: between the counting and the sync).  Callers fold these into a
    #: lifetime tally instead of silently dropping them.
    unattributed: int = 0


class ProbeSet:
    """Dict-like ``{probe id -> Probe}`` bound to a :class:`PatchManager`.

    All mutations that must be visible to the scheduler (register,
    discard, enable/disable) go through the manager, so probe-state diffs
    recorded here and dirt records stay in lockstep.
    """

    def __init__(self, manager: "PatchManager", family: str = ""):
        self.manager = manager
        #: Family tag of probes this set holds (informational; the
        #: authoritative tag lives on each probe class).
        self.family = family
        self._probes: Dict[int, Probe] = {}

    # -- registration ---------------------------------------------------------

    def register(self, probe: P) -> P:
        """Add *probe* to the manager and remember it here."""
        probe = self.manager.add(probe)
        self._probes[probe.id] = probe
        return probe

    def adopt(self, probe: P) -> P:
        """Track an already-registered probe."""
        if probe.id < 0:
            raise ValueError(f"probe {probe!r} is not registered")
        self._probes[probe.id] = probe
        return probe

    def discard(self, probe_id: int) -> Optional[Probe]:
        """Forget a probe and unregister it from the manager (if still
        registered).  Returns the probe, or None if unknown."""
        probe = self._probes.pop(probe_id, None)
        if probe is not None and probe.id >= 0:
            self.manager.remove(probe)
        return probe

    # -- dict protocol --------------------------------------------------------

    def __iter__(self) -> Iterator[int]:
        return iter(self._probes)

    def __len__(self) -> int:
        return len(self._probes)

    def __contains__(self, probe_id: object) -> bool:
        return probe_id in self._probes

    def __getitem__(self, probe_id: int) -> Probe:
        return self._probes[probe_id]

    def __setitem__(self, probe_id: int, probe: Probe) -> None:
        self._probes[probe_id] = probe

    def get(self, probe_id: int, default=None):
        return self._probes.get(probe_id, default)

    def pop(self, probe_id: int, *default):
        return self._probes.pop(probe_id, *default)

    def keys(self):
        return self._probes.keys()

    def values(self):
        return self._probes.values()

    def items(self):
        return self._probes.items()

    # -- probe-state queries ----------------------------------------------------

    def for_symbol(self, symbol: str) -> List[Probe]:
        return [
            p for p in self._probes.values() if p.target_symbol() == symbol
        ]

    def symbols(self) -> Set[str]:
        return {p.target_symbol() for p in self._probes.values()}

    def enabled_state(self) -> Dict[int, bool]:
        """Snapshot of every probe's enabled flag (probe-state diffs)."""
        return {pid: p.enabled for pid, p in self._probes.items()}

    # -- probe-state mutation ----------------------------------------------------

    def set_symbol_enabled(self, symbol: str, enabled: bool) -> int:
        """Flip every probe of this set targeting *symbol*; returns how
        many changed state.  Probes that lost their registration out of
        band (id reset to -1) are skipped — the manager would reject the
        toggle."""
        changed = 0
        for probe in list(self._probes.values()):
            if probe.target_symbol() != symbol or probe.enabled == enabled:
                continue
            if probe.id < 0:
                continue
            if enabled:
                self.manager.enable(probe)
            else:
                self.manager.disable(probe)
            changed += 1
        return changed

    def apply_state(self, desired: Dict[int, bool]) -> int:
        """Drive the set's enabled flags to *desired* (a probe-state
        diff); ids absent from the set are ignored.  Returns flips."""
        changed = 0
        for pid, want in desired.items():
            probe = self._probes.get(pid)
            if probe is None or probe.enabled == want or probe.id < 0:
                continue
            if want:
                self.manager.enable(probe)
            else:
                self.manager.disable(probe)
            changed += 1
        return changed

    # -- profile sync ------------------------------------------------------------

    def sync_counts(self, counts: Dict[int, int], attr: str) -> SyncOutcome:
        """Accumulate runtime counters onto probe annotations.

        Counters whose probe id is no longer in the set are *not*
        silently dropped: they are tallied into
        :attr:`SyncOutcome.unattributed` so lifetime totals survive
        concurrent pruning/de-instrumentation.
        """
        outcome = SyncOutcome()
        for pid, count in counts.items():
            probe = self._probes.get(pid)
            if probe is None:
                outcome.unattributed += count
                continue
            setattr(probe, attr, getattr(probe, attr, 0) + count)
            outcome.attributed += count
        return outcome
