"""Scheduling recompilation (§3.3, Algorithm 2, Figure 7).

Three-stage propagation:

1. *probes -> symbols*: every dirty probe marks its target symbol changed;
2. *symbols -> fragments*: a fragment containing any changed symbol is
   recompiled whole, so all of its symbols join the changed set;
3. *fragments -> probes* (back propagation): recompiling a fragment wipes
   its previous instrumentation, so every **active** probe targeting any
   symbol in it must be re-applied — not only the dirty ones.  This runs
   once, not to convergence: it only adds unchanged probes whose
   fragments' caches are still valid for reuse.

Then a temporary IR is extracted that defines every changed symbol;
after the user's patch logic instruments it (``apply_probes`` or manual
iteration over ``active_probes`` with ``map()``), ``rebuild()`` splits it
back into per-fragment modules, optimizes, lowers, and relinks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Set

from repro.core.partition import Fragment, apply_fragment_linkage
from repro.core.probe import Probe
from repro.errors import ScheduleError
from repro.ir.clone import extract_module_ex
from repro.ir.instructions import Instruction
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.types import FunctionType
from repro.ir.values import Value

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import Odin, RebuildReport
    from repro.core.manager import PatchManager


class Scheduler:
    """One scheduled recompilation: temporary IR + the probes to apply."""

    def __init__(self, engine: "Odin", manager: "PatchManager"):
        self.engine = engine
        self.manager = manager
        schedule_start = time.perf_counter()

        fragdef = engine.fragdef
        # Stage 1: probes -> symbols.
        changed_symbols: Set[str] = manager.dirty_symbols()

        # Stage 2: symbols -> fragments.
        self.changed_fragments: List[Fragment] = []
        for fragment in fragdef.fragments:
            if any(s in changed_symbols for s in fragment.symbols):
                self.changed_fragments.append(fragment)
                changed_symbols.update(fragment.symbols)
        self.changed_symbols = changed_symbols

        # Stage 3: fragments -> probes (back propagation).
        self.active_probes: List[Probe] = [
            p
            for p in manager
            if p.enabled and p.target_symbol() in changed_symbols
        ]

        # Observability: real durations of schedule / extract / instrument,
        # consumed by the engine when it builds the rebuild span tree.
        self.schedule_real_ms = (time.perf_counter() - schedule_start) * 1000.0
        self.instrument_real_ms = 0.0

        # Temporary IR covering all changed symbols (Figure 7).
        extract_start = time.perf_counter()
        if changed_symbols:
            self._temp, self._vmap = extract_module_ex(
                engine.module,
                sorted(changed_symbols),
                copy_on_use=fragdef.copy_on_use,
                name=f"{engine.module.name}.patch",
            )
        else:
            self._temp, self._vmap = Module(f"{engine.module.name}.patch"), None
        self.extract_real_ms = (time.perf_counter() - extract_start) * 1000.0
        self._rebuilt = False

    # -- the user-facing mapping API (§4) ------------------------------------------

    @property
    def temp_module(self) -> Module:
        """The temporary IR the patch logic instruments."""
        return self._temp

    def map(self, original: Value) -> Value:
        """Translate an original-IR value into the temporary IR."""
        if self._vmap is None:
            raise ScheduleError("nothing was scheduled; the mapping is empty")
        return self._vmap.get(original)

    def map_block(self, original: BasicBlock) -> BasicBlock:
        if self._vmap is None:
            raise ScheduleError("nothing was scheduled; the mapping is empty")
        return self._vmap.get_block(original)

    def lookup_function(self, name: str) -> Function:
        """Find a function in the temporary IR by name (runtime hooks)."""
        symbol = self._temp.get(name)
        if not isinstance(symbol, Function):
            raise ScheduleError(f"@{name} is not a function")
        return symbol

    def declare_runtime(self, name: str, function_type: FunctionType) -> Function:
        """Get-or-declare an external runtime function in the temporary IR."""
        return self._temp.declare_function(name, function_type)

    # -- driving the rebuild ---------------------------------------------------------

    def apply_probes(self) -> int:
        """Apply every scheduled probe to the temporary IR; returns count."""
        start = time.perf_counter()
        for probe in self.active_probes:
            probe.apply(self)
        self.instrument_real_ms += (time.perf_counter() - start) * 1000.0
        return len(self.active_probes)

    def rebuild(self) -> "RebuildReport":
        """Split, optimize, codegen and relink (Figure 7 right half)."""
        if self._rebuilt:
            raise ScheduleError("this scheduler has already been rebuilt")
        self._rebuilt = True
        report = self.engine._rebuild_from(self)
        self.manager.clear_dirty()
        return report
