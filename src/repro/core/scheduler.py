"""Scheduling recompilation (§3.3, Algorithm 2, Figure 7).

Three-stage propagation:

1. *probes -> symbols*: every dirty probe marks its target symbol changed;
2. *symbols -> fragments*: a fragment containing any changed symbol is
   recompiled whole, so all of its symbols join the changed set;
3. *fragments -> probes* (back propagation): recompiling a fragment wipes
   its previous instrumentation, so every **active** probe targeting any
   symbol in it must be re-applied — not only the dirty ones.  This runs
   once, not to convergence: it only adds unchanged probes whose
   fragments' caches are still valid for reuse.

Then a temporary IR is extracted that defines every changed symbol;
after the user's patch logic instruments it (``apply_probes`` or manual
iteration over ``active_probes`` with ``map()``), ``rebuild()`` splits it
back into per-fragment modules, optimizes, lowers, and relinks.

**Stage-1 classification (the tiered fast path).**  Before stage 2, each
dirty fragment's probe-level dirt records are examined: when the engine
has patching enabled and every record on the fragment is either a
cancelled no-op or an enable/disable flip of a *patchable* probe — and
the engine holds a master object whose compiled-in site set still matches
— the fragment is diverted to ``patched_fragments`` and excluded from
extraction/recompilation entirely.  The engine services those by deleting
or restoring probe sites in the cached master (`repro.backend.patching`).
Fragments whose dirt cancelled out completely are skipped outright.
External dirt (symbols marked without a probe record) always forces the
full path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Set

from repro.core.partition import Fragment, apply_fragment_linkage
from repro.core.probe import Probe
from repro.errors import ScheduleError
from repro.ir.clone import extract_module_ex
from repro.ir.instructions import Instruction
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.types import FunctionType
from repro.ir.values import Value

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import Odin, RebuildReport
    from repro.core.manager import PatchManager


class Scheduler:
    """One scheduled recompilation: temporary IR + the probes to apply."""

    def __init__(self, engine: "Odin", manager: "PatchManager"):
        self.engine = engine
        self.manager = manager
        schedule_start = time.perf_counter()

        fragdef = engine.fragdef
        # Stage 1: probes -> symbols.
        changed_symbols: Set[str] = manager.dirty_symbols()

        # Stage-1 fast-path classification: divert pure patchable-toggle
        # fragments to the patch tier and drop their symbols from the
        # recompile set.  `patch_disabled` holds the full disabled site
        # set the master must be toggled to; `patch_touched` the number of
        # sites this rebuild actually flips (the cost driver).
        self.patched_fragments: List[Fragment] = []
        self.patch_disabled: Dict[int, frozenset] = {}
        self.patch_touched: Dict[int, int] = {}
        # Probe families whose toggles drove each patched fragment —
        # rebuild reports attribute patch-tier work to its scheme.
        self.patch_families: Dict[int, frozenset] = {}
        self.skipped_fragments: List[Fragment] = []
        if changed_symbols:
            self._classify_fast_path(changed_symbols)

        # Stage 2: symbols -> fragments.
        self.changed_fragments: List[Fragment] = []
        for fragment in fragdef.fragments:
            if any(s in changed_symbols for s in fragment.symbols):
                self.changed_fragments.append(fragment)
                changed_symbols.update(fragment.symbols)
        self.changed_symbols = changed_symbols

        # Stage 3: fragments -> probes (back propagation).
        self.active_probes: List[Probe] = [
            p
            for p in manager
            if p.enabled and p.target_symbol() in changed_symbols
        ]
        # What actually gets instrumented into the temporary IR: active
        # probes plus *disabled patchable* ones.  Sites-always-compiled —
        # every tier realizes enable/disable by toggling sites in the
        # compiled master, so the master must carry every patchable site
        # regardless of its current state.
        self.applied_probes: List[Probe] = [
            p
            for p in manager
            if p.target_symbol() in changed_symbols
            and (p.enabled or p.patchable)
        ]

        # Observability: real durations of schedule / extract / instrument,
        # consumed by the engine when it builds the rebuild span tree.
        self.schedule_real_ms = (time.perf_counter() - schedule_start) * 1000.0
        self.instrument_real_ms = 0.0

        # Temporary IR covering all changed symbols (Figure 7).
        extract_start = time.perf_counter()
        if changed_symbols:
            self._temp, self._vmap = extract_module_ex(
                engine.module,
                sorted(changed_symbols),
                copy_on_use=fragdef.copy_on_use,
                name=f"{engine.module.name}.patch",
            )
        else:
            self._temp, self._vmap = Module(f"{engine.module.name}.patch"), None
        self.extract_real_ms = (time.perf_counter() - extract_start) * 1000.0
        self._rebuilt = False

    # -- stage-1 classification (tiered fast path) -----------------------------------

    def _classify_fast_path(self, changed_symbols: Set[str]) -> None:
        """Divert patch-eligible fragments; mutates *changed_symbols*."""
        from repro.core.manager import REC_CANCELLED, REC_TOGGLED

        manager = self.manager
        engine = self.engine
        if not engine.enable_patching:
            return
        external = manager.external_dirty_symbols()
        records_by_symbol: Dict[str, List] = {}
        for record in manager.dirty_records().values():
            records_by_symbol.setdefault(record.symbol, []).append(record)

        for fragment in engine.fragdef.fragments:
            symbols = set(fragment.symbols)
            frag_dirty = [s for s in symbols if s in changed_symbols]
            if not frag_dirty:
                continue
            touched = 0
            families: set = set()
            blocked = False
            for symbol in frag_dirty:
                if symbol in external:
                    blocked = True
                    break
                for record in records_by_symbol.get(symbol, ()):
                    kind = record.effective_kind()
                    if kind == REC_CANCELLED:
                        continue
                    if kind == REC_TOGGLED and record.probe.patchable:
                        touched += 1
                        if record.probe.family:
                            families.add(record.probe.family)
                    else:
                        blocked = True
                        break
                if blocked:
                    break
            if blocked:
                continue
            if touched == 0:
                # Every record on the fragment cancelled out: the cached
                # object already reflects the probe state.  Nothing to do
                # — but only if a cached object exists to vouch for it; a
                # never-compiled fragment must take the full path.
                if fragment.id not in engine.cache:
                    continue
                changed_symbols.difference_update(frag_dirty)
                self.skipped_fragments.append(fragment)
                continue
            # Patch eligibility needs a master whose compiled-in site set
            # still matches the live patchable probes (a prior remove/add
            # would have changed the set and forced a full recompile).
            sites = frozenset(
                p.id
                for p in manager
                if p.patchable and p.target_symbol() in symbols
            )
            if sites != engine._site_sets.get(fragment.id):
                continue
            changed_symbols.difference_update(frag_dirty)
            self.patched_fragments.append(fragment)
            self.patch_disabled[fragment.id] = frozenset(
                p.id
                for p in manager
                if p.patchable and not p.enabled and p.target_symbol() in symbols
            )
            self.patch_touched[fragment.id] = touched
            self.patch_families[fragment.id] = frozenset(families)

    def patchable_sites(self, fragment: Fragment) -> frozenset:
        """Ids of all patchable probes targeting *fragment* (any state)."""
        symbols = set(fragment.symbols)
        return frozenset(
            p.id
            for p in self.manager
            if p.patchable and p.target_symbol() in symbols
        )

    def patchable_disabled(self, fragment: Fragment) -> frozenset:
        """Ids of currently *disabled* patchable probes on *fragment*."""
        symbols = set(fragment.symbols)
        return frozenset(
            p.id
            for p in self.manager
            if p.patchable and not p.enabled and p.target_symbol() in symbols
        )

    # -- the user-facing mapping API (§4) ------------------------------------------

    @property
    def temp_module(self) -> Module:
        """The temporary IR the patch logic instruments."""
        return self._temp

    def map(self, original: Value) -> Value:
        """Translate an original-IR value into the temporary IR."""
        if self._vmap is None:
            raise ScheduleError("nothing was scheduled; the mapping is empty")
        return self._vmap.get(original)

    def map_block(self, original: BasicBlock) -> BasicBlock:
        if self._vmap is None:
            raise ScheduleError("nothing was scheduled; the mapping is empty")
        return self._vmap.get_block(original)

    def lookup_function(self, name: str) -> Function:
        """Find a function in the temporary IR by name (runtime hooks)."""
        symbol = self._temp.get(name)
        if not isinstance(symbol, Function):
            raise ScheduleError(f"@{name} is not a function")
        return symbol

    def declare_runtime(self, name: str, function_type: FunctionType) -> Function:
        """Get-or-declare an external runtime function in the temporary IR."""
        return self._temp.declare_function(name, function_type)

    # -- driving the rebuild ---------------------------------------------------------

    def apply_probes(self) -> int:
        """Apply every scheduled probe to the temporary IR; returns count.

        Applies ``applied_probes``: the active set plus disabled patchable
        probes, whose sites are compiled in unconditionally and stripped
        from the object afterwards (sites-always-compiled; see
        :mod:`repro.backend.patching`).
        """
        start = time.perf_counter()
        for probe in self.applied_probes:
            probe.apply(self)
        self.instrument_real_ms += (time.perf_counter() - start) * 1000.0
        return len(self.applied_probes)

    def rebuild(self) -> "RebuildReport":
        """Split, optimize, codegen and relink (Figure 7 right half)."""
        if self._rebuilt:
            raise ScheduleError("this scheduler has already been rebuilt")
        self._rebuilt = True
        report = self.engine._rebuild_from(self)
        self.manager.clear_dirty()
        return report
