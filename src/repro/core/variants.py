"""Partition-scheme variants (Table 1).

=================== =============== ======================
Variant             Code fragments  Feature
=================== =============== ======================
Odin (original)     trial-guided    balanced
Odin-OnePartition   1               better optimization
Odin-MaxPartition   max possible    faster recompilation
=================== =============== ======================
"""

from __future__ import annotations

from typing import Iterable

from repro.core.engine import Odin
from repro.core.partition import STRATEGY_MAX, STRATEGY_ODIN, STRATEGY_ONE
from repro.ir.module import Module

VARIANTS = (STRATEGY_ODIN, STRATEGY_ONE, STRATEGY_MAX)

VARIANT_LABELS = {
    STRATEGY_ODIN: "Odin",
    STRATEGY_ONE: "Odin-OnePartition",
    STRATEGY_MAX: "Odin-MaxPartition",
}


def odin(module: Module, preserve: Iterable[str] = ("main",), **kwargs) -> Odin:
    """The original Odin partition scheme (trial-optimization guided)."""
    return Odin(module, strategy=STRATEGY_ODIN, preserve=preserve, **kwargs)


def odin_one_partition(module: Module, preserve: Iterable[str] = ("main",), **kwargs) -> Odin:
    """Whole program in one fragment: best optimization, slowest recompile."""
    return Odin(module, strategy=STRATEGY_ONE, preserve=preserve, **kwargs)


def odin_max_partition(module: Module, preserve: Iterable[str] = ("main",), **kwargs) -> Odin:
    """One fragment per symbol (innate constraints permitting): fastest
    recompile, worst optimization."""
    return Odin(module, strategy=STRATEGY_MAX, preserve=preserve, **kwargs)


def make_variant(variant: str, module: Module, **kwargs) -> Odin:
    """Instantiate an engine by variant name from :data:`VARIANTS`."""
    return Odin(module, strategy=variant, **kwargs)
