"""Exception hierarchy for the repro package.

Every subsystem raises a subclass of :class:`ReproError` so callers can
catch failures from the whole toolchain with a single handler while still
being able to distinguish frontend errors from, say, linker errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro toolchain."""


class IRError(ReproError):
    """Malformed IR construction or manipulation."""


class IRTypeError(IRError):
    """An IR operation was applied to operands of the wrong type."""


class IRParseError(IRError):
    """The textual IR parser rejected its input."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"line {line}:{column}: {message}"
        super().__init__(message)


class VerifierError(IRError):
    """The IR verifier found a structural violation."""


class FrontendError(ReproError):
    """MiniC compilation failed."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"line {line}:{column}: {message}"
        super().__init__(message)


class OptError(ReproError):
    """An optimization pass failed an internal invariant."""


class BackendError(ReproError):
    """Instruction selection or register allocation failed."""


class LinkError(ReproError):
    """Symbol resolution or relocation failed."""


class VMError(ReproError):
    """The virtual machine trapped."""


class VMTrap(VMError):
    """The guest program aborted (e.g. a sanitizer probe fired)."""

    def __init__(self, message: str, kind: str = "abort"):
        self.kind = kind
        super().__init__(message)


class PartitionError(ReproError):
    """The partitioner produced or was given an inconsistent scheme."""


class ScheduleError(ReproError):
    """Probe scheduling failed (e.g. probe targets an unknown symbol)."""


class FuzzError(ReproError):
    """The fuzzing harness failed."""
