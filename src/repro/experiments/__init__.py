"""repro.experiments — the evaluation harness (one module per figure)."""

from repro.experiments.overhead import (
    OverheadSummary,
    ProgramOverheads,
    format_fig8,
    format_fig9,
    measure_overheads,
)
from repro.experiments.partition import (
    PartitionSummary,
    format_fig10,
    format_table1,
    measure_partition_variants,
)
from repro.experiments.recompile import (
    HeadlineResult,
    RecompileSummary,
    format_fig11,
    format_fig12,
    measure_headline_recompile,
    measure_recompile_times,
)
from repro.experiments.runners import (
    ALL_TOOLS,
    TOOL_DRCOV,
    TOOL_LIBINST,
    TOOL_ODINCOV,
    TOOL_ODINCOV_NOPRUNE,
    TOOL_SANCOV,
)

__all__ = [
    "measure_overheads", "OverheadSummary", "ProgramOverheads",
    "format_fig8", "format_fig9",
    "measure_partition_variants", "PartitionSummary", "format_fig10",
    "format_table1",
    "measure_recompile_times", "RecompileSummary", "format_fig11",
    "format_fig12", "measure_headline_recompile", "HeadlineResult",
    "ALL_TOOLS", "TOOL_ODINCOV", "TOOL_SANCOV", "TOOL_ODINCOV_NOPRUNE",
    "TOOL_DRCOV", "TOOL_LIBINST",
]
