"""Figures 8 & 9: normalized execution duration of instrumented programs.

Fig. 8 plots, per program, the instrumented/baseline duration ratio for
OdinCov, SanCov, OdinCov-NoPrune, DrCov and libInst.  Fig. 9 pools all
programs.  §5.1's headline numbers derive from the same data:

* median overheads: OdinCov ~3.48%, SanCov ~15%, DrCov ~63%, libInst ~1920%
* OdinCov-NoPrune ~23% slower than SanCov on average
* pruning improves OdinCov over OdinCov-NoPrune by ~22%
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.experiments.runners import (
    ALL_TOOLS,
    geometric_mean,
    measure_baseline_cycles,
    measure_tool_cycles,
    median,
)
from repro.programs.registry import TargetProgram, all_programs


@dataclass
class ProgramOverheads:
    """One row of Figure 8."""

    program: str
    baseline_cycles: int
    tool_cycles: Dict[str, int] = field(default_factory=dict)

    def normalized(self, tool: str) -> float:
        """Instrumented duration / baseline duration (1.0 = no overhead)."""
        return self.tool_cycles[tool] / self.baseline_cycles

    def overhead(self, tool: str) -> float:
        """Fractional overhead (0.15 = 15% slower)."""
        return self.normalized(tool) - 1.0


@dataclass
class OverheadSummary:
    """Figure 9 + the §5.1 aggregate claims."""

    rows: List[ProgramOverheads]
    tools: List[str]

    def median_overhead(self, tool: str) -> float:
        return median([row.overhead(tool) for row in self.rows])

    def mean_normalized(self, tool: str) -> float:
        return geometric_mean([row.normalized(tool) for row in self.rows])

    def overhead_ratio(self, tool_a: str, tool_b: str) -> float:
        """How many times larger tool_a's median overhead is than tool_b's."""
        b = self.median_overhead(tool_b)
        return self.median_overhead(tool_a) / b if b else float("inf")


def measure_overheads(
    programs: Optional[List[TargetProgram]] = None,
    tools: Optional[List[str]] = None,
    seed: int = 0,
) -> OverheadSummary:
    """Run the Fig. 8/9 experiment."""
    programs = programs if programs is not None else all_programs()
    tools = list(tools) if tools is not None else list(ALL_TOOLS)
    rows: List[ProgramOverheads] = []
    for program in programs:
        seeds = program.seeds(seed)
        row = ProgramOverheads(
            program=program.name,
            baseline_cycles=measure_baseline_cycles(program, seeds),
        )
        for tool in tools:
            row.tool_cycles[tool] = measure_tool_cycles(program, tool, seeds)
        rows.append(row)
    return OverheadSummary(rows=rows, tools=tools)


def format_fig8(summary: OverheadSummary) -> str:
    """Figure 8 as a text table (normalized execution duration)."""
    header = f"{'program':>10} | " + " | ".join(f"{t:>15}" for t in summary.tools)
    lines = [header, "-" * len(header)]
    for row in summary.rows:
        cells = " | ".join(f"{row.normalized(t):>14.3f}x" for t in summary.tools)
        lines.append(f"{row.program:>10} | {cells}")
    return "\n".join(lines)


def format_fig9(summary: OverheadSummary) -> str:
    """Figure 9 as a text table (pooled median/mean overheads)."""
    lines = [f"{'tool':>16} | {'median overhead':>16} | {'geomean duration':>17}"]
    lines.append("-" * len(lines[0]))
    for tool in summary.tools:
        lines.append(
            f"{tool:>16} | {summary.median_overhead(tool)*100:>15.2f}% "
            f"| {summary.mean_normalized(tool):>16.3f}x"
        )
    return "\n".join(lines)
