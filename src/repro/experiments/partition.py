"""Figure 10 & Table 1: execution duration of partition-scheme variants.

Non-instrumented programs compiled through each partition scheme
(Odin-OnePartition / Odin / Odin-MaxPartition), normalized to the
compiler's original output.  Expected shape (§5.2): OnePartition ~1.12%,
Odin ~1.43%, MaxPartition ~55.77% average overhead, with MaxPartition's
damage concentrated in IPO-dependent programs (harfbuzz worst, libjpeg
best).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.partition import STRATEGY_MAX, STRATEGY_ODIN, STRATEGY_ONE
from repro.core.variants import VARIANT_LABELS
from repro.experiments.runners import (
    build_odin_engine,
    measure_baseline_cycles,
    replay_cycles,
)
from repro.fuzz.executor import PlainExecutor
from repro.programs.registry import TargetProgram, all_programs

ALL_VARIANTS = (STRATEGY_ONE, STRATEGY_ODIN, STRATEGY_MAX)


@dataclass
class PartitionRow:
    """One program's Figure 10 bars plus fragment statistics."""

    program: str
    baseline_cycles: int
    variant_cycles: Dict[str, int] = field(default_factory=dict)
    num_fragments: Dict[str, int] = field(default_factory=dict)

    def normalized(self, variant: str) -> float:
        return self.variant_cycles[variant] / self.baseline_cycles

    def overhead(self, variant: str) -> float:
        return self.normalized(variant) - 1.0


@dataclass
class PartitionSummary:
    rows: List[PartitionRow]

    def mean_overhead(self, variant: str) -> float:
        return sum(r.overhead(variant) for r in self.rows) / len(self.rows)

    def worst_program(self, variant: str) -> PartitionRow:
        return max(self.rows, key=lambda r: r.overhead(variant))

    def best_program(self, variant: str) -> PartitionRow:
        return min(self.rows, key=lambda r: r.overhead(variant))


def measure_partition_variants(
    programs: Optional[List[TargetProgram]] = None,
    variants=ALL_VARIANTS,
    seed: int = 0,
) -> PartitionSummary:
    """Run the Fig. 10 experiment (no instrumentation anywhere)."""
    programs = programs if programs is not None else all_programs()
    rows: List[PartitionRow] = []
    for program in programs:
        seeds = program.seeds(seed)
        row = PartitionRow(
            program=program.name,
            baseline_cycles=measure_baseline_cycles(program, seeds),
        )
        for variant in variants:
            engine = build_odin_engine(program, strategy=variant)
            engine.initial_build()  # no probes registered
            executor = PlainExecutor(engine.executable)
            row.variant_cycles[variant] = replay_cycles(executor, seeds)
            row.num_fragments[variant] = engine.num_fragments
        rows.append(row)
    return PartitionSummary(rows=rows)


def format_table1() -> str:
    """Table 1: the variant descriptions."""
    lines = [
        f"{'Variant':>20} | {'Code Fragments':>16} | Feature",
        "-" * 60,
        f"{'Odin (Original)':>20} | {'trial-guided':>16} | balanced",
        f"{'Odin-OnePartition':>20} | {'1':>16} | Better Optimization",
        f"{'Odin-MaxPartition':>20} | {'max possible':>16} | Faster Recompilation",
    ]
    return "\n".join(lines)


def format_fig10(summary: PartitionSummary) -> str:
    header = (
        f"{'program':>10} | "
        + " | ".join(f"{VARIANT_LABELS[v]:>18}" for v in ALL_VARIANTS)
        + " | fragments (one/odin/max)"
    )
    lines = [header, "-" * len(header)]
    for row in summary.rows:
        cells = " | ".join(f"{row.normalized(v):>17.3f}x" for v in ALL_VARIANTS)
        frags = "/".join(str(row.num_fragments[v]) for v in ALL_VARIANTS)
        lines.append(f"{row.program:>10} | {cells} | {frags}")
    lines.append("-" * len(header))
    means = " | ".join(
        f"{summary.mean_overhead(v)*100:>16.2f}% " for v in ALL_VARIANTS
    )
    lines.append(f"{'mean ovh':>10} | {means} |")
    return "\n".join(lines)
