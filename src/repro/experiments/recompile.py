"""Figures 11 & 12 and the §5.3 recompilation-latency headline.

* Fig. 11 — average per-fragment recompile time, normalized to compiling
  the whole program (Odin-OnePartition).  Expected shape: Odin saves
  ~97.9% on average; json is the worst ratio (tiny program), sqlite the
  best (huge program); MaxPartition fragments compile ~6.5x faster than
  Odin's.

* Fig. 12 — worst-case recompile duration in absolute time, link cost
  stacked on top.  Expected shape: sqlite's giant interpreter fragment
  dominates; linking averages ~tens of ms.

* §5.3 headline — "the recompilation only takes 82 ms on average":
  average end-to-end rebuild time across the on-the-fly recompilations of
  a pruning coverage campaign.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.partition import STRATEGY_MAX, STRATEGY_ODIN, STRATEGY_ONE
from repro.core.variants import VARIANT_LABELS
from repro.experiments.runners import build_odin_engine, deploy_odincov
from repro.programs.registry import TargetProgram, all_programs

ALL_VARIANTS = (STRATEGY_ONE, STRATEGY_ODIN, STRATEGY_MAX)


@dataclass
class RecompileRow:
    """Per-program fragment compile-time statistics for one variant."""

    program: str
    variant: str
    num_fragments: int
    fragment_ms: List[float]
    link_ms: float

    @property
    def total_ms(self) -> float:
        return sum(self.fragment_ms)

    @property
    def average_ms(self) -> float:
        return self.total_ms / len(self.fragment_ms) if self.fragment_ms else 0.0

    @property
    def worst_ms(self) -> float:
        return max(self.fragment_ms, default=0.0)


@dataclass
class RecompileSummary:
    rows: List[RecompileRow]

    def row(self, program: str, variant: str) -> RecompileRow:
        for r in self.rows:
            if r.program == program and r.variant == variant:
                return r
        raise KeyError((program, variant))

    def normalized_average(self, program: str, variant: str) -> float:
        """Fig. 11 metric: avg fragment time / whole-program compile time."""
        whole = self.row(program, STRATEGY_ONE).total_ms
        return self.row(program, variant).average_ms / whole

    def programs(self) -> List[str]:
        seen: List[str] = []
        for r in self.rows:
            if r.program not in seen:
                seen.append(r.program)
        return seen

    def mean_savings(self, variant: str = STRATEGY_ODIN) -> float:
        """Average fraction of whole-program compile time saved (Fig. 11)."""
        ratios = [self.normalized_average(p, variant) for p in self.programs()]
        return 1.0 - sum(ratios) / len(ratios)


def measure_recompile_times(
    programs: Optional[List[TargetProgram]] = None,
    variants=ALL_VARIANTS,
) -> RecompileSummary:
    """Compile every fragment of every variant; collect simulated times."""
    programs = programs if programs is not None else all_programs()
    rows: List[RecompileRow] = []
    for program in programs:
        for variant in variants:
            engine = build_odin_engine(program, strategy=variant)
            report = engine.initial_build()
            rows.append(
                RecompileRow(
                    program=program.name,
                    variant=variant,
                    num_fragments=engine.num_fragments,
                    fragment_ms=sorted(report.fragment_compile_ms.values()),
                    link_ms=report.link_ms,
                )
            )
    return RecompileSummary(rows=rows)


@dataclass
class HeadlineResult:
    """§5.3: mean on-the-fly recompilation latency across a campaign."""

    rebuild_ms: List[float] = field(default_factory=list)

    @property
    def mean_ms(self) -> float:
        return sum(self.rebuild_ms) / len(self.rebuild_ms) if self.rebuild_ms else 0.0

    @property
    def count(self) -> int:
        return len(self.rebuild_ms)


def measure_headline_recompile(
    programs: Optional[List[TargetProgram]] = None, seed: int = 0
) -> HeadlineResult:
    """Average rebuild latency over per-program pruning campaigns.

    Each program's coverage probes are pruned in several waves (one per
    seed batch), each wave triggering one on-the-fly recompilation —
    approximating the steady drip of probe changes during fuzzing.
    """
    programs = programs if programs is not None else all_programs()
    result = HeadlineResult()
    for program in programs:
        seeds = program.seeds(seed)
        setup = deploy_odincov(program, prune=False)
        setup.tool.prune = True  # prune manually in waves below
        batch = max(1, len(seeds) // 3)
        for start in range(0, len(seeds), batch):
            for data in seeds[start : start + batch]:
                setup.executor.execute(data)
            report = setup.executor.prune()
            if report.rebuild is not None:
                result.rebuild_ms.append(report.rebuild.total_ms)
    return result


def format_fig11(summary: RecompileSummary) -> str:
    header = (
        f"{'program':>10} | "
        + " | ".join(f"{VARIANT_LABELS[v]:>18}" for v in ALL_VARIANTS)
        + " |  (avg fragment / whole-program compile)"
    )
    lines = [header, "-" * len(header)]
    for program in summary.programs():
        cells = " | ".join(
            f"{summary.normalized_average(program, v)*100:>17.2f}%"
            for v in ALL_VARIANTS
        )
        lines.append(f"{program:>10} | {cells} |")
    return "\n".join(lines)


def format_fig12(summary: RecompileSummary) -> str:
    header = (
        f"{'program':>10} | "
        + " | ".join(f"{VARIANT_LABELS[v]:>22}" for v in ALL_VARIANTS)
        + " |  worst fragment + link (ms)"
    )
    lines = [header, "-" * len(header)]
    for program in summary.programs():
        cells = []
        for variant in ALL_VARIANTS:
            row = summary.row(program, variant)
            cells.append(f"{row.worst_ms:>13.1f} + {row.link_ms:>5.1f}")
        lines.append(f"{program:>10} | " + " | ".join(c.rjust(22) for c in cells) + " |")
    return "\n".join(lines)
