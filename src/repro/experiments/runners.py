"""Shared measurement machinery for the evaluation harness.

The §5 protocol: "We replay the seed files collected during a 24-hour
fuzzing campaign.  By replaying the seed files, we can avoid randomness
caused by fuzzing."  Every figure's numbers come from replaying each
program's seed corpus and comparing simulated cycle counts against the
non-instrumented baseline build.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.engine import Odin, RebuildReport
from repro.core.partition import STRATEGY_ODIN
from repro.fuzz.executor import (
    DrCovExecutor,
    Executor,
    LibInstExecutor,
    OdinCovExecutor,
    PlainExecutor,
    SanCovExecutor,
)
from repro.instrument.coverage import OdinCov
from repro.instrument.sancov import build_sancov
from repro.programs.registry import TargetProgram
from repro.toolchain import build_module

PRESERVED = ("main", "run_input")

# Tool names, in the paper's figure order.
TOOL_ODINCOV = "OdinCov"
TOOL_SANCOV = "SanCov"
TOOL_ODINCOV_NOPRUNE = "OdinCov-NoPrune"
TOOL_DRCOV = "DrCov"
TOOL_LIBINST = "libInst"
ALL_TOOLS = (TOOL_ODINCOV, TOOL_SANCOV, TOOL_ODINCOV_NOPRUNE, TOOL_DRCOV, TOOL_LIBINST)


def replay_cycles(executor: Executor, seeds: List[bytes]) -> int:
    """Cycles to execute every seed once (the measurement pass)."""
    before = executor.total_cycles
    for seed in seeds:
        executor.execute(seed)
    return executor.total_cycles - before


def build_baseline(program: TargetProgram):
    """The compiler's original, non-instrumented O2 output.

    Like a production fuzzing build (-flto of a self-contained target),
    everything except the entry points is internalized, so the baseline
    enjoys the same whole-program optimization Odin's fragments do.
    """
    module = program.compile()
    from repro.opt.pipeline import optimize
    from repro.ir.verifier import verify_module
    from repro.backend.isel import lower_module
    from repro.linker.linker import link
    from repro.toolchain import BuildResult

    optimize(module, 2, internalize=True)
    verify_module(module)
    obj = lower_module(module)
    exe = link([obj])
    return BuildResult(module, exe, obj.compile_ms, exe.link_ms)


def build_odin_engine(
    program: TargetProgram, strategy: str = STRATEGY_ODIN, **kwargs
) -> Odin:
    return Odin(program.compile(), strategy=strategy, preserve=PRESERVED, **kwargs)


@dataclass
class OdinCovSetup:
    """An OdinCov deployment over one target."""

    tool: OdinCov
    executor: OdinCovExecutor
    initial_build: RebuildReport
    prune_rebuilds: List[RebuildReport] = field(default_factory=list)


def deploy_odincov(
    program: TargetProgram, *, prune: bool, seeds: Optional[List[bytes]] = None
) -> OdinCovSetup:
    """Build OdinCov; when pruning, warm it up on the seeds and prune.

    The warm-up replay plays the role of the preceding fuzzing campaign:
    every probe the corpus covers has served its purpose and is removed
    via on-the-fly recompilation before measurement (Untracer-style).
    """
    engine = build_odin_engine(program)
    tool = OdinCov(engine, prune=prune)
    tool.add_all_block_probes()
    initial = tool.build()
    setup = OdinCovSetup(tool, OdinCovExecutor(tool), initial)
    if prune:
        warm_seeds = seeds if seeds is not None else program.seeds()
        for seed in warm_seeds:
            setup.executor.execute(seed)
        report = setup.executor.prune()
        if report.rebuild is not None:
            setup.prune_rebuilds.append(report.rebuild)
    return setup


def measure_tool_cycles(
    program: TargetProgram, tool_name: str, seeds: List[bytes]
) -> int:
    """Replay cycles for one tool on one program."""
    if tool_name == TOOL_ODINCOV:
        setup = deploy_odincov(program, prune=True, seeds=seeds)
        return replay_cycles(setup.executor, seeds)
    if tool_name == TOOL_ODINCOV_NOPRUNE:
        setup = deploy_odincov(program, prune=False)
        return replay_cycles(setup.executor, seeds)
    if tool_name == TOOL_SANCOV:
        san = build_sancov(program.compile())
        return replay_cycles(SanCovExecutor(san), seeds)
    if tool_name == TOOL_DRCOV:
        base = build_baseline(program)
        executor = DrCovExecutor(base.executable)
        # Warm the code cache: block translation is a one-time cost.
        replay_cycles(executor, seeds)
        return replay_cycles(executor, seeds)
    if tool_name == TOOL_LIBINST:
        base = build_baseline(program)
        return replay_cycles(LibInstExecutor(base.executable), seeds)
    raise ValueError(f"unknown tool {tool_name!r}")


def measure_baseline_cycles(program: TargetProgram, seeds: List[bytes]) -> int:
    base = build_baseline(program)
    return replay_cycles(PlainExecutor(base.executable), seeds)


def geometric_mean(values: List[float]) -> float:
    if not values:
        return 0.0
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))


def median(values: List[float]) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2
