"""repro.frontend — MiniC (a C subset) compiled to the repro IR."""

from repro.frontend.codegen import compile_source, compile_unit
from repro.frontend.ctypes import (
    CArray,
    CFunction,
    CInt,
    CPointer,
    CType,
    CVoid,
    CHAR,
    INT,
    LONG,
    UCHAR,
    UINT,
    ULONG,
    VOID_T,
)
from repro.frontend.lexer import Token, tokenize
from repro.frontend.parser import parse

__all__ = [
    "compile_source", "compile_unit", "parse", "tokenize", "Token",
    "CArray", "CFunction", "CInt", "CPointer", "CType", "CVoid",
    "CHAR", "INT", "LONG", "UCHAR", "UINT", "ULONG", "VOID_T",
]
