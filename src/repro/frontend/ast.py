"""Abstract syntax tree for MiniC.

Plain dataclasses; semantic analysis and IR generation live in
:mod:`repro.frontend.codegen`.  Every node carries a source line for
diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.frontend.ctypes import CFunction, CType


# -- expressions ----------------------------------------------------------


@dataclass
class Expr:
    line: int = 0


@dataclass
class IntLit(Expr):
    value: int = 0
    suffix: str = ""  # '', 'u', 'l', 'ul'...


@dataclass
class StringLit(Expr):
    data: bytes = b""


@dataclass
class Ident(Expr):
    name: str = ""


@dataclass
class Unary(Expr):
    op: str = ""  # - ! ~ * & ++ --
    operand: Optional[Expr] = None
    postfix: bool = False  # for ++/--


@dataclass
class Binary(Expr):
    op: str = ""
    lhs: Optional[Expr] = None
    rhs: Optional[Expr] = None


@dataclass
class Assign(Expr):
    op: str = "="  # = += -= *= /= %= &= |= ^= <<= >>=
    target: Optional[Expr] = None
    value: Optional[Expr] = None


@dataclass
class Ternary(Expr):
    cond: Optional[Expr] = None
    if_true: Optional[Expr] = None
    if_false: Optional[Expr] = None


@dataclass
class Call(Expr):
    callee: Optional[Expr] = None
    args: List[Expr] = field(default_factory=list)


@dataclass
class Index(Expr):
    base: Optional[Expr] = None
    index: Optional[Expr] = None


@dataclass
class Cast(Expr):
    ctype: Optional[CType] = None
    operand: Optional[Expr] = None


@dataclass
class SizeofType(Expr):
    ctype: Optional[CType] = None


# -- statements ----------------------------------------------------------


@dataclass
class Stmt:
    line: int = 0


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None


@dataclass
class Declarator:
    name: str = ""
    ctype: Optional[CType] = None
    init: Optional[Expr] = None
    init_list: Optional[List[Expr]] = None  # array initializer { ... }


@dataclass
class DeclStmt(Stmt):
    decls: List[Declarator] = field(default_factory=list)


@dataclass
class Block(Stmt):
    stmts: List[Stmt] = field(default_factory=list)


@dataclass
class If(Stmt):
    cond: Optional[Expr] = None
    then: Optional[Stmt] = None
    orelse: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class DoWhile(Stmt):
    body: Optional[Stmt] = None
    cond: Optional[Expr] = None


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None  # DeclStmt or ExprStmt or None
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class SwitchCase:
    values: List[int] = field(default_factory=list)  # empty => default
    stmts: List[Stmt] = field(default_factory=list)
    line: int = 0


@dataclass
class Switch(Stmt):
    scrutinee: Optional[Expr] = None
    cases: List[SwitchCase] = field(default_factory=list)


# -- top level --------------------------------------------------------------


@dataclass
class TopLevel:
    line: int = 0


@dataclass
class FuncDef(TopLevel):
    name: str = ""
    ctype: Optional[CFunction] = None
    param_names: List[str] = field(default_factory=list)
    body: Optional[Block] = None
    static: bool = False


@dataclass
class FuncDecl(TopLevel):
    name: str = ""
    ctype: Optional[CFunction] = None
    static: bool = False


@dataclass
class GlobalDecl(TopLevel):
    name: str = ""
    ctype: Optional[CType] = None
    init: Optional[Expr] = None
    init_list: Optional[List[Expr]] = None
    static: bool = False
    const: bool = False


@dataclass
class TranslationUnit:
    items: List[TopLevel] = field(default_factory=list)
    name: str = "unit"
