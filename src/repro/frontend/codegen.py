"""IR generation for MiniC.

Produces clang -O0 style IR: every local variable is an ``alloca`` in the
entry block with explicit loads/stores, so ``mem2reg`` (the first O2 pass)
has real work to do and the O0/O2 differential tests exercise the whole
pipeline.

Design notes:

* Expression results are (CType, ir.Value) pairs; comparisons produce
  ``i1`` transiently and are widened only when used as integers.
* ``char *p = "str"`` style pointer globals are not supported because
  global initializers are pure data (no data relocations in the linker);
  target programs use char arrays instead.
* Direct calls require a visible prototype; indirect calls go through
  values of function-pointer type.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import FrontendError
from repro.frontend import ast
from repro.frontend.ctypes import (
    CArray,
    CFunction,
    CInt,
    CPointer,
    CType,
    INT,
    LONG,
    ULONG,
    VOID_T,
    integer_promote,
    usual_arithmetic_conversion,
)
from repro.ir.builder import IRBuilder
from repro.ir.instructions import AllocaInst
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.types import FunctionType, I1, I32, I64, I8, IntType, PTR
from repro.ir.values import (
    ConstantArray,
    ConstantData,
    ConstantInt,
    GlobalVariable,
    NullPtr,
    UndefValue,
    Value,
)

TypedValue = Tuple[CType, Value]

_ARITH_ASSIGN = {
    "+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
    "&=": "&", "|=": "|", "^=": "^", "<<=": "<<", ">>=": ">>",
}


def compile_unit(unit: ast.TranslationUnit) -> Module:
    """Compile a parsed translation unit to an IR module."""
    return _CodeGen(unit).generate()


def compile_source(source: str, name: str = "unit") -> Module:
    """Convenience: parse and compile MiniC source."""
    from repro.frontend.parser import parse

    return compile_unit(parse(source, name))


class _Scope:
    """Lexical scope mapping names to (ctype, address) pairs."""

    def __init__(self, parent: Optional["_Scope"] = None):
        self.parent = parent
        self.vars: Dict[str, Tuple[CType, Value]] = {}

    def lookup(self, name: str) -> Optional[Tuple[CType, Value]]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.vars:
                return scope.vars[name]
            scope = scope.parent
        return None

    def define(self, name: str, ctype: CType, address: Value) -> None:
        if name in self.vars:
            raise FrontendError(f"redefinition of {name!r}")
        self.vars[name] = (ctype, address)


class _CodeGen:
    def __init__(self, unit: ast.TranslationUnit):
        self.unit = unit
        self.module = Module(unit.name)
        self.global_types: Dict[str, CType] = {}
        self.func_types: Dict[str, CFunction] = {}
        self._string_cache: Dict[bytes, GlobalVariable] = {}
        self._string_counter = 0
        # Per-function state.
        self.fn: Optional[Function] = None
        self.builder: Optional[IRBuilder] = None
        self.scope: Optional[_Scope] = None
        self.return_ctype: CType = VOID_T
        self._alloca_count = 0
        self._break_targets: List[BasicBlock] = []
        self._continue_targets: List[BasicBlock] = []

    # ================= top level =================

    def generate(self) -> Module:
        # Pass 1: declare every function and global so order doesn't matter.
        for item in self.unit.items:
            if isinstance(item, (ast.FuncDef, ast.FuncDecl)):
                self._declare_function(item)
            elif isinstance(item, ast.GlobalDecl):
                self._declare_global(item)
        # Pass 2: generate bodies.
        for item in self.unit.items:
            if isinstance(item, ast.FuncDef):
                self._gen_function(item)
        return self.module

    def _declare_function(self, item) -> None:
        existing = self.func_types.get(item.name)
        if existing is not None:
            if existing != item.ctype:
                raise FrontendError(
                    f"conflicting declaration of {item.name!r}", item.line
                )
            return
        self.func_types[item.name] = item.ctype
        linkage = "internal" if item.static else "external"
        names = item.param_names if isinstance(item, ast.FuncDef) else ()
        self.module.add(
            Function(item.name, item.ctype.ir_type(), names, linkage)
        )

    def _declare_global(self, item: ast.GlobalDecl) -> None:
        if item.name in self.global_types:
            raise FrontendError(f"redefinition of global {item.name!r}", item.line)
        ctype = item.ctype
        init = self._global_initializer(item)
        self.global_types[item.name] = ctype
        self.module.add(
            GlobalVariable(
                item.name,
                ctype.ir_type(),
                init,
                is_const=item.const,
                linkage="internal" if item.static else "external",
            )
        )

    def _global_initializer(self, item: ast.GlobalDecl):
        ctype = item.ctype
        if item.init_list is not None:
            if not isinstance(ctype, CArray) or not ctype.element.is_integer():
                raise FrontendError(
                    f"array initializer for non-array {item.name!r}", item.line
                )
            values = [self._const_int_expr(e) for e in item.init_list]
            if len(values) > ctype.count:
                raise FrontendError(f"too many initializers for {item.name!r}", item.line)
            values += [0] * (ctype.count - len(values))
            return ConstantArray(ctype.element.ir_type(), values)
        if item.init is not None:
            if isinstance(item.init, ast.StringLit):
                if not (isinstance(ctype, CArray) and ctype.element.is_integer()
                        and ctype.element.bits == 8):
                    raise FrontendError(
                        f"string initializer needs char array for {item.name!r}",
                        item.line,
                    )
                data = item.init.data
                if len(data) > ctype.count:
                    raise FrontendError(
                        f"string too long for {item.name!r}", item.line
                    )
                return ConstantData(data + b"\x00" * (ctype.count - len(data)))
            if ctype.is_integer():
                return ConstantInt(ctype.ir_type(), self._const_int_expr(item.init))
            if ctype.is_pointer():
                value = self._const_int_expr(item.init)
                if value != 0:
                    raise FrontendError(
                        f"pointer global {item.name!r} may only be null", item.line
                    )
                return NullPtr()
            raise FrontendError(f"bad initializer for {item.name!r}", item.line)
        # Zero-initialize definitions (tentative definitions are definitions).
        if ctype.is_integer():
            return ConstantInt(ctype.ir_type(), 0)
        if ctype.is_pointer():
            return NullPtr()
        if isinstance(ctype, CArray):
            # Zero fill regardless of element type/rank (raw bytes).
            return ConstantData(b"\x00" * ctype.size)
        raise FrontendError(f"cannot zero-initialize {item.name!r}", item.line)

    def _const_int_expr(self, expr: ast.Expr) -> int:
        """Evaluate a constant integer expression for an initializer."""
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.Unary) and expr.op == "-":
            return -self._const_int_expr(expr.operand)
        if isinstance(expr, ast.Unary) and expr.op == "~":
            return ~self._const_int_expr(expr.operand)
        if isinstance(expr, ast.Binary):
            a = self._const_int_expr(expr.lhs)
            b = self._const_int_expr(expr.rhs)
            ops = {
                "+": lambda: a + b, "-": lambda: a - b, "*": lambda: a * b,
                "/": lambda: a // b if b else 0, "%": lambda: a % b if b else 0,
                "<<": lambda: a << b, ">>": lambda: a >> b,
                "&": lambda: a & b, "|": lambda: a | b, "^": lambda: a ^ b,
            }
            if expr.op in ops:
                return ops[expr.op]()
        if isinstance(expr, ast.SizeofType):
            return expr.ctype.size
        raise FrontendError("initializer is not a constant expression", expr.line)

    # ================== functions ==================

    def _gen_function(self, item: ast.FuncDef) -> None:
        fn = self.module.get(item.name)
        assert isinstance(fn, Function)
        self.fn = fn
        self.return_ctype = item.ctype.ret
        self._alloca_count = 0
        self._break_targets = []
        self._continue_targets = []
        entry = fn.add_block("entry")
        self.builder = IRBuilder.at_end(entry)
        self.scope = _Scope()

        # Spill parameters to stack slots (clang -O0 style).
        for arg, pname, ptype in zip(fn.args, item.param_names, item.ctype.params):
            slot = self._new_alloca(ptype, pname)
            self.builder.store(arg, slot)
            self.scope.define(pname, ptype, slot)

        self._gen_block(item.body)

        # Implicit return.
        if self._current_block().terminator is None:
            if self.return_ctype.is_void():
                self.builder.ret()
            elif self.return_ctype.is_integer():
                self.builder.ret(ConstantInt(self.return_ctype.ir_type(), 0))
            else:
                self.builder.ret(NullPtr())

    def _current_block(self) -> BasicBlock:
        return self.builder.block

    def _ensure_open_block(self) -> None:
        """After a terminator, route further code into a fresh dead block."""
        if self._current_block().terminator is not None:
            self.builder.position_at_end(self.fn.add_block("dead"))

    def _new_alloca(self, ctype: CType, name: str) -> Value:
        inst = AllocaInst(ctype.ir_type() if not ctype.is_array() else ctype.ir_type())
        entry = self.fn.entry
        inst.parent = entry
        inst.name = self.fn.uniquify_value_name(name or "slot")
        entry.instructions.insert(self._alloca_count, inst)
        self._alloca_count += 1
        return inst

    # ================== statements ==================

    def _gen_statement(self, stmt: ast.Stmt) -> None:
        self._ensure_open_block()
        if isinstance(stmt, ast.Block):
            self._gen_block(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._gen_expr(stmt.expr)
        elif isinstance(stmt, ast.DeclStmt):
            self._gen_decl(stmt)
        elif isinstance(stmt, ast.If):
            self._gen_if(stmt)
        elif isinstance(stmt, ast.While):
            self._gen_while(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self._gen_do_while(stmt)
        elif isinstance(stmt, ast.For):
            self._gen_for(stmt)
        elif isinstance(stmt, ast.Switch):
            self._gen_switch(stmt)
        elif isinstance(stmt, ast.Return):
            self._gen_return(stmt)
        elif isinstance(stmt, ast.Break):
            if not self._break_targets:
                raise FrontendError("break outside loop/switch", stmt.line)
            self.builder.br(self._break_targets[-1])
        elif isinstance(stmt, ast.Continue):
            if not self._continue_targets:
                raise FrontendError("continue outside loop", stmt.line)
            self.builder.br(self._continue_targets[-1])
        else:  # pragma: no cover
            raise FrontendError(f"unhandled statement {type(stmt).__name__}", stmt.line)

    def _gen_block(self, block: ast.Block) -> None:
        self.scope = _Scope(self.scope)
        for stmt in block.stmts:
            self._gen_statement(stmt)
        self.scope = self.scope.parent

    def _gen_decl(self, stmt: ast.DeclStmt) -> None:
        for decl in stmt.decls:
            slot = self._new_alloca(decl.ctype, decl.name)
            self.scope.define(decl.name, decl.ctype, slot)
            if decl.init is not None:
                if isinstance(decl.init, ast.StringLit) and decl.ctype.is_array():
                    self._store_string_into_array(decl, slot, stmt.line)
                    continue
                ctype, value = self._gen_expr(decl.init)
                value = self._convert(ctype, value, decl.ctype, stmt.line)
                self.builder.store(value, slot)
            elif decl.init_list is not None:
                if not isinstance(decl.ctype, CArray):
                    raise FrontendError(
                        f"initializer list for non-array {decl.name!r}", stmt.line
                    )
                elem = decl.ctype.element
                for i, expr in enumerate(decl.init_list):
                    ctype, value = self._gen_expr(expr)
                    value = self._convert(ctype, value, elem, stmt.line)
                    ptr = self.builder.gep(
                        elem.ir_type(), slot, ConstantInt(I64, i)
                    )
                    self.builder.store(value, ptr)

    def _store_string_into_array(self, decl, slot: Value, line: int) -> None:
        data = decl.init.data
        ctype = decl.ctype
        if not (ctype.element.is_integer() and ctype.element.bits == 8):
            raise FrontendError("string initializer needs a char array", line)
        if len(data) > ctype.count:
            raise FrontendError("string too long for array", line)
        for i, byte in enumerate(data):
            ptr = self.builder.gep(I8, slot, ConstantInt(I64, i))
            self.builder.store(ConstantInt(I8, byte), ptr)

    def _gen_if(self, stmt: ast.If) -> None:
        cond = self._gen_condition(stmt.cond)
        then_block = self.fn.add_block("if.then")
        end_block = self.fn.add_block("if.end")
        else_block = self.fn.add_block("if.else") if stmt.orelse else end_block
        self.builder.condbr(cond, then_block, else_block)

        self.builder.position_at_end(then_block)
        self._gen_statement(stmt.then)
        if self._current_block().terminator is None:
            self.builder.br(end_block)

        if stmt.orelse is not None:
            self.builder.position_at_end(else_block)
            self._gen_statement(stmt.orelse)
            if self._current_block().terminator is None:
                self.builder.br(end_block)
        self.builder.position_at_end(end_block)

    def _gen_while(self, stmt: ast.While) -> None:
        header = self.fn.add_block("while.cond")
        body = self.fn.add_block("while.body")
        end = self.fn.add_block("while.end")
        self.builder.br(header)
        self.builder.position_at_end(header)
        cond = self._gen_condition(stmt.cond)
        self.builder.condbr(cond, body, end)
        self.builder.position_at_end(body)
        self._push_loop(end, header)
        self._gen_statement(stmt.body)
        self._pop_loop()
        if self._current_block().terminator is None:
            self.builder.br(header)
        self.builder.position_at_end(end)

    def _gen_do_while(self, stmt: ast.DoWhile) -> None:
        body = self.fn.add_block("do.body")
        cond_block = self.fn.add_block("do.cond")
        end = self.fn.add_block("do.end")
        self.builder.br(body)
        self.builder.position_at_end(body)
        self._push_loop(end, cond_block)
        self._gen_statement(stmt.body)
        self._pop_loop()
        if self._current_block().terminator is None:
            self.builder.br(cond_block)
        self.builder.position_at_end(cond_block)
        cond = self._gen_condition(stmt.cond)
        self.builder.condbr(cond, body, end)
        self.builder.position_at_end(end)

    def _gen_for(self, stmt: ast.For) -> None:
        self.scope = _Scope(self.scope)
        if stmt.init is not None:
            self._gen_statement(stmt.init)
        header = self.fn.add_block("for.cond")
        body = self.fn.add_block("for.body")
        step_block = self.fn.add_block("for.step")
        end = self.fn.add_block("for.end")
        self.builder.br(header)
        self.builder.position_at_end(header)
        if stmt.cond is not None:
            cond = self._gen_condition(stmt.cond)
            self.builder.condbr(cond, body, end)
        else:
            self.builder.br(body)
        self.builder.position_at_end(body)
        self._push_loop(end, step_block)
        self._gen_statement(stmt.body)
        self._pop_loop()
        if self._current_block().terminator is None:
            self.builder.br(step_block)
        self.builder.position_at_end(step_block)
        if stmt.step is not None:
            self._gen_expr(stmt.step)
        self.builder.br(header)
        self.builder.position_at_end(end)
        self.scope = self.scope.parent

    def _gen_switch(self, stmt: ast.Switch) -> None:
        ctype, scrutinee = self._gen_expr(stmt.scrutinee)
        if not ctype.is_integer():
            raise FrontendError("switch needs an integer expression", stmt.line)
        ctype_p = integer_promote(ctype)
        scrutinee = self._convert(ctype, scrutinee, ctype_p, stmt.line)
        end = self.fn.add_block("switch.end")

        case_blocks: List[BasicBlock] = [
            self.fn.add_block(f"switch.case{i}") for i in range(len(stmt.cases))
        ]
        default_block = end
        for case, block in zip(stmt.cases, case_blocks):
            if not case.values:
                default_block = block

        switch_inst = self.builder.switch(scrutinee, default_block)
        ir_type: IntType = ctype_p.ir_type()
        for case, block in zip(stmt.cases, case_blocks):
            for value in case.values:
                switch_inst.add_case(ConstantInt(ir_type, value), block)

        self._break_targets.append(end)
        for i, (case, block) in enumerate(zip(stmt.cases, case_blocks)):
            self.builder.position_at_end(block)
            for sub in case.stmts:
                self._gen_statement(sub)
            if self._current_block().terminator is None:
                # Fall through to the next case body, or exit.
                target = case_blocks[i + 1] if i + 1 < len(case_blocks) else end
                self.builder.br(target)
        self._break_targets.pop()
        self.builder.position_at_end(end)

    def _gen_return(self, stmt: ast.Return) -> None:
        if stmt.value is None:
            if not self.return_ctype.is_void():
                raise FrontendError("non-void function must return a value", stmt.line)
            self.builder.ret()
            return
        ctype, value = self._gen_expr(stmt.value)
        value = self._convert(ctype, value, self.return_ctype, stmt.line)
        self.builder.ret(value)

    def _push_loop(self, break_target: BasicBlock, continue_target: BasicBlock) -> None:
        self._break_targets.append(break_target)
        self._continue_targets.append(continue_target)

    def _pop_loop(self) -> None:
        self._break_targets.pop()
        self._continue_targets.pop()

    # ================== expressions ==================

    def _gen_expr(self, expr: ast.Expr) -> TypedValue:
        """Generate an rvalue."""
        if isinstance(expr, ast.IntLit):
            return self._gen_int_literal(expr)
        if isinstance(expr, ast.StringLit):
            return CPointer(CInt(8)), self._string_global(expr.data)
        if isinstance(expr, ast.Ident):
            return self._gen_ident_rvalue(expr)
        if isinstance(expr, ast.Unary):
            return self._gen_unary(expr)
        if isinstance(expr, ast.Binary):
            if expr.op in ("&&", "||"):
                return INT, self.builder.zext(self._gen_condition(expr), I32)
            if expr.op in ("==", "!=", "<", "<=", ">", ">="):
                return INT, self.builder.zext(self._gen_condition(expr), I32)
            return self._gen_arith(expr)
        if isinstance(expr, ast.Assign):
            return self._gen_assign(expr)
        if isinstance(expr, ast.Ternary):
            return self._gen_ternary(expr)
        if isinstance(expr, ast.Call):
            return self._gen_call(expr)
        if isinstance(expr, ast.Index):
            ctype, addr = self._gen_lvalue(expr)
            return self._load(ctype, addr)
        if isinstance(expr, ast.Cast):
            ctype, value = self._gen_expr(expr.operand)
            return expr.ctype, self._convert(ctype, value, expr.ctype, expr.line)
        if isinstance(expr, ast.SizeofType):
            return ULONG, ConstantInt(I64, expr.ctype.size)
        raise FrontendError(f"unhandled expression {type(expr).__name__}", expr.line)

    def _gen_int_literal(self, expr: ast.IntLit) -> TypedValue:
        suffix = expr.suffix
        unsigned = "u" in suffix
        long_ = "l" in suffix or not (-(2**31) <= expr.value < 2**31)
        bits = 64 if long_ else 32
        ctype = CInt(bits, not unsigned)
        return ctype, ConstantInt(ctype.ir_type(), expr.value)

    def _gen_ident_rvalue(self, expr: ast.Ident) -> TypedValue:
        fn = self.module.get_or_none(expr.name)
        if expr.name in self.func_types and isinstance(fn, Function):
            return CPointer(self.func_types[expr.name]), fn
        ctype, addr = self._gen_lvalue(expr)
        if isinstance(ctype, CArray):
            return ctype.decay(), addr  # arrays decay to pointers
        return self._load(ctype, addr)

    def _load(self, ctype: CType, addr: Value) -> TypedValue:
        if isinstance(ctype, CArray):
            return ctype.decay(), addr
        return ctype, self.builder.load(ctype.ir_type(), addr)

    def _gen_lvalue(self, expr: ast.Expr) -> TypedValue:
        """Generate the address of an lvalue; returns (value ctype, address)."""
        if isinstance(expr, ast.Ident):
            hit = self.scope.lookup(expr.name)
            if hit is not None:
                return hit
            if expr.name in self.global_types:
                return self.global_types[expr.name], self.module.get(expr.name)
            raise FrontendError(f"use of undeclared identifier {expr.name!r}", expr.line)
        if isinstance(expr, ast.Index):
            base_ctype, base = self._gen_expr(expr.base)
            if isinstance(base_ctype, CArray):
                base_ctype = base_ctype.decay()
            if not isinstance(base_ctype, CPointer):
                raise FrontendError("subscripted value is not a pointer", expr.line)
            ictype, index = self._gen_expr(expr.index)
            if not ictype.is_integer():
                raise FrontendError("array index must be an integer", expr.line)
            index = self.builder.int_cast(index, I64, ictype.signed)
            elem = base_ctype.pointee
            addr = self.builder.gep(elem.ir_type(), base, index)
            return elem, addr
        if isinstance(expr, ast.Unary) and expr.op == "*":
            ctype, value = self._gen_expr(expr.operand)
            if isinstance(ctype, CArray):
                ctype = ctype.decay()
            if not isinstance(ctype, CPointer):
                raise FrontendError("cannot dereference a non-pointer", expr.line)
            return ctype.pointee, value
        raise FrontendError("expression is not an lvalue", expr.line)

    # -- unary -----------------------------------------------------------------

    def _gen_unary(self, expr: ast.Unary) -> TypedValue:
        op = expr.op
        if op == "&":
            ctype, addr = self._gen_lvalue(expr.operand)
            return CPointer(ctype), addr
        if op == "*":
            ctype, addr = self._gen_lvalue(expr)
            return self._load(ctype, addr)
        if op == "!":
            cond = self._gen_condition(expr.operand)
            inverted = self.builder.xor(cond, ConstantInt(I1, 1))
            return INT, self.builder.zext(inverted, I32)
        if op in ("++", "--"):
            return self._gen_incdec(expr)
        ctype, value = self._gen_expr(expr.operand)
        if not ctype.is_integer():
            raise FrontendError(f"unary {op} needs an integer", expr.line)
        ctype = integer_promote(ctype)
        value = self._convert_int(value, ctype)
        ir_type = ctype.ir_type()
        if op == "-":
            return ctype, self.builder.sub(ConstantInt(ir_type, 0), value)
        if op == "~":
            return ctype, self.builder.xor(value, ConstantInt(ir_type, -1))
        raise FrontendError(f"unhandled unary {op}", expr.line)

    def _gen_incdec(self, expr: ast.Unary) -> TypedValue:
        ctype, addr = self._gen_lvalue(expr.operand)
        _, old = self._load(ctype, addr)
        if ctype.is_integer():
            one = ConstantInt(ctype.ir_type(), 1)
            new = (
                self.builder.add(old, one)
                if expr.op == "++"
                else self.builder.sub(old, one)
            )
        elif isinstance(ctype, CPointer):
            delta = 1 if expr.op == "++" else -1
            new = self.builder.gep(
                ctype.pointee.ir_type(), old, ConstantInt(I64, delta)
            )
        else:
            raise FrontendError(f"cannot {expr.op} this type", expr.line)
        self.builder.store(new, addr)
        return ctype, old if expr.postfix else new

    # -- binary arithmetic -----------------------------------------------------------

    def _gen_arith(self, expr: ast.Binary) -> TypedValue:
        lct, lhs = self._gen_expr(expr.lhs)
        rct, rhs = self._gen_expr(expr.rhs)
        op = expr.op

        if isinstance(lct, CArray):
            lct = lct.decay()
        if isinstance(rct, CArray):
            rct = rct.decay()

        # Pointer arithmetic.
        if isinstance(lct, CPointer) and rct.is_integer() and op in ("+", "-"):
            index = self.builder.int_cast(rhs, I64, rct.signed)
            if op == "-":
                index = self.builder.sub(ConstantInt(I64, 0), index)
            return lct, self.builder.gep(lct.pointee.ir_type(), lhs, index)
        if lct.is_integer() and isinstance(rct, CPointer) and op == "+":
            index = self.builder.int_cast(lhs, I64, lct.signed)
            return rct, self.builder.gep(rct.pointee.ir_type(), rhs, index)
        if isinstance(lct, CPointer) and isinstance(rct, CPointer) and op == "-":
            li = self.builder.ptrtoint(lhs, I64)
            ri = self.builder.ptrtoint(rhs, I64)
            diff = self.builder.sub(li, ri)
            size = lct.pointee.size
            if size > 1:
                diff = self.builder.sdiv(diff, ConstantInt(I64, size))
            return LONG, diff

        if not (lct.is_integer() and rct.is_integer()):
            raise FrontendError(f"invalid operands to {op}", expr.line)

        common = usual_arithmetic_conversion(lct, rct)
        lhs = self._convert(lct, lhs, common, expr.line)
        rhs = self._convert(rct, rhs, common, expr.line)
        opcode = {
            "+": "add", "-": "sub", "*": "mul",
            "/": "sdiv" if common.signed else "udiv",
            "%": "srem" if common.signed else "urem",
            "&": "and", "|": "or", "^": "xor",
            "<<": "shl",
            ">>": "ashr" if common.signed else "lshr",
        }[op]
        return common, self.builder.binop(opcode, lhs, rhs)

    # -- assignment ---------------------------------------------------------------------

    def _gen_assign(self, expr: ast.Assign) -> TypedValue:
        if expr.op == "=":
            ctype, addr = self._gen_lvalue(expr.target)
            vct, value = self._gen_expr(expr.value)
            value = self._convert(vct, value, ctype, expr.line)
            self.builder.store(value, addr)
            return ctype, value
        # Compound assignment: evaluate address once.
        base_op = _ARITH_ASSIGN[expr.op]
        ctype, addr = self._gen_lvalue(expr.target)
        _, old = self._load(ctype, addr)
        vct, rhs = self._gen_expr(expr.value)
        if isinstance(ctype, CPointer) and base_op in ("+", "-") and vct.is_integer():
            index = self.builder.int_cast(rhs, I64, vct.signed)
            if base_op == "-":
                index = self.builder.sub(ConstantInt(I64, 0), index)
            new = self.builder.gep(ctype.pointee.ir_type(), old, index)
        else:
            if not (ctype.is_integer() and vct.is_integer()):
                raise FrontendError(f"invalid compound assignment {expr.op}", expr.line)
            common = usual_arithmetic_conversion(ctype, vct)
            a = self._convert(ctype, old, common, expr.line)
            b = self._convert(vct, rhs, common, expr.line)
            opcode = {
                "+": "add", "-": "sub", "*": "mul",
                "/": "sdiv" if common.signed else "udiv",
                "%": "srem" if common.signed else "urem",
                "&": "and", "|": "or", "^": "xor",
                "<<": "shl",
                ">>": "ashr" if common.signed else "lshr",
            }[base_op]
            result = self.builder.binop(opcode, a, b)
            new = self._convert(common, result, ctype, expr.line)
        self.builder.store(new, addr)
        return ctype, new

    # -- ternary -----------------------------------------------------------------------------

    def _gen_ternary(self, expr: ast.Ternary) -> TypedValue:
        cond = self._gen_condition(expr.cond)
        then_block = self.fn.add_block("cond.then")
        else_block = self.fn.add_block("cond.else")
        end_block = self.fn.add_block("cond.end")
        self.builder.condbr(cond, then_block, else_block)

        self.builder.position_at_end(then_block)
        tct, tval = self._gen_expr(expr.if_true)
        then_exit = self._current_block()

        self.builder.position_at_end(else_block)
        ect, eval_ = self._gen_expr(expr.if_false)
        else_exit = self._current_block()

        # Unify the arm types.
        if tct.is_integer() and ect.is_integer():
            common: CType = usual_arithmetic_conversion(tct, ect)
        elif isinstance(tct, CArray):
            common = tct.decay()
        elif tct.is_pointer() or ect.is_pointer():
            common = tct if tct.is_pointer() else ect
        elif tct.is_void() and ect.is_void():
            common = VOID_T
        else:
            common = tct

        self.builder.position_at_end(then_exit)
        if not common.is_void():
            tval = self._convert(tct, tval, common, expr.line)
        self.builder.br(end_block)
        self.builder.position_at_end(else_exit)
        if not common.is_void():
            eval_ = self._convert(ect, eval_, common, expr.line)
        self.builder.br(end_block)

        self.builder.position_at_end(end_block)
        if common.is_void():
            return VOID_T, UndefValue(I32)
        phi = self.builder.phi(common.ir_type())
        phi.add_incoming(tval, then_exit)
        phi.add_incoming(eval_, else_exit)
        return common, phi

    # -- calls ------------------------------------------------------------------------------------

    def _gen_call(self, expr: ast.Call) -> TypedValue:
        callee_expr = expr.callee
        if isinstance(callee_expr, ast.Ident) and callee_expr.name in self.func_types:
            ftype = self.func_types[callee_expr.name]
            callee = self.module.get(callee_expr.name)
        elif isinstance(callee_expr, ast.Ident) and callee_expr.name in _BUILTINS:
            ftype = _BUILTINS[callee_expr.name]
            self.func_types[callee_expr.name] = ftype
            existing = self.module.get_or_none(callee_expr.name)
            callee = existing or self.module.add(
                Function(callee_expr.name, ftype.ir_type())
            )
        else:
            cct, callee = self._gen_expr(callee_expr)
            if not (isinstance(cct, CPointer) and isinstance(cct.pointee, CFunction)):
                raise FrontendError("called object is not a function", expr.line)
            ftype = cct.pointee

        fixed = len(ftype.params)
        if len(expr.args) < fixed or (len(expr.args) > fixed and not ftype.vararg):
            raise FrontendError(
                f"wrong number of arguments ({len(expr.args)} for {fixed})", expr.line
            )
        args: List[Value] = []
        for i, arg_expr in enumerate(expr.args):
            act, value = self._gen_expr(arg_expr)
            if i < fixed:
                value = self._convert(act, value, ftype.params[i], expr.line)
            else:
                # Vararg promotion: integers widen to 64 bits (sign-aware),
                # so printf-style consumers see one well-defined width.
                if isinstance(act, CArray):
                    act = act.decay()
                if act.is_integer():
                    promoted = CInt(64, act.signed)
                    value = self._convert(act, value, promoted, expr.line)
            args.append(value)
        result = self.builder.call(callee, args, ftype.ir_type())
        return ftype.ret, result

    # -- conditions -----------------------------------------------------------------------------------

    def _gen_condition(self, expr: ast.Expr) -> Value:
        """Generate an i1 for a branch condition."""
        if isinstance(expr, ast.Binary) and expr.op in ("==", "!=", "<", "<=", ">", ">="):
            return self._gen_comparison(expr)
        if isinstance(expr, ast.Binary) and expr.op in ("&&", "||"):
            return self._gen_logical(expr)
        if isinstance(expr, ast.Unary) and expr.op == "!":
            cond = self._gen_condition(expr.operand)
            return self.builder.xor(cond, ConstantInt(I1, 1))
        ctype, value = self._gen_expr(expr)
        return self._truthy(ctype, value, expr.line)

    def _gen_comparison(self, expr: ast.Binary) -> Value:
        lct, lhs = self._gen_expr(expr.lhs)
        rct, rhs = self._gen_expr(expr.rhs)
        if isinstance(lct, CArray):
            lct = lct.decay()
        if isinstance(rct, CArray):
            rct = rct.decay()
        if lct.is_pointer() and rct.is_pointer():
            signed = False
        elif lct.is_pointer() and rct.is_integer():
            rhs = NullPtr() if isinstance(rhs, ConstantInt) and rhs.value == 0 else \
                self.builder.inttoptr(rhs, PTR)
            signed = False
        elif lct.is_integer() and rct.is_pointer():
            lhs = NullPtr() if isinstance(lhs, ConstantInt) and lhs.value == 0 else \
                self.builder.inttoptr(lhs, PTR)
            signed = False
        elif lct.is_integer() and rct.is_integer():
            common = usual_arithmetic_conversion(lct, rct)
            lhs = self._convert(lct, lhs, common, expr.line)
            rhs = self._convert(rct, rhs, common, expr.line)
            signed = common.signed
        else:
            raise FrontendError(f"invalid comparison operands", expr.line)
        pred = {
            "==": "eq", "!=": "ne",
            "<": "slt" if signed else "ult",
            "<=": "sle" if signed else "ule",
            ">": "sgt" if signed else "ugt",
            ">=": "sge" if signed else "uge",
        }[expr.op]
        return self.builder.icmp(pred, lhs, rhs)

    def _gen_logical(self, expr: ast.Binary) -> Value:
        """Short-circuit && / ||."""
        rhs_block = self.fn.add_block("land.rhs" if expr.op == "&&" else "lor.rhs")
        end_block = self.fn.add_block("land.end" if expr.op == "&&" else "lor.end")
        lhs = self._gen_condition(expr.lhs)
        lhs_exit = self._current_block()
        if expr.op == "&&":
            self.builder.condbr(lhs, rhs_block, end_block)
            short_value = ConstantInt(I1, 0)
        else:
            self.builder.condbr(lhs, end_block, rhs_block)
            short_value = ConstantInt(I1, 1)
        self.builder.position_at_end(rhs_block)
        rhs = self._gen_condition(expr.rhs)
        rhs_exit = self._current_block()
        self.builder.br(end_block)
        self.builder.position_at_end(end_block)
        phi = self.builder.phi(I1)
        phi.add_incoming(short_value, lhs_exit)
        phi.add_incoming(rhs, rhs_exit)
        return phi

    def _truthy(self, ctype: CType, value: Value, line: int) -> Value:
        if ctype.is_integer():
            return self.builder.icmp(
                "ne", value, ConstantInt(ctype.ir_type(), 0)
            )
        if ctype.is_pointer() or isinstance(ctype, CArray):
            if isinstance(ctype, CArray):
                return ConstantInt(I1, 1)
            return self.builder.icmp("ne", value, NullPtr())
        raise FrontendError("expression is not convertible to bool", line)

    # -- conversions -------------------------------------------------------------------------------------

    def _convert(self, from_ct: CType, value: Value, to_ct: CType, line: int) -> Value:
        if isinstance(from_ct, CArray):
            from_ct = from_ct.decay()
        if from_ct == to_ct:
            return value
        if from_ct.is_integer() and to_ct.is_integer():
            return self.builder.int_cast(value, to_ct.ir_type(), from_ct.signed)
        if from_ct.is_pointer() and to_ct.is_pointer():
            return value  # all pointers are opaque
        if from_ct.is_integer() and to_ct.is_pointer():
            if isinstance(value, ConstantInt) and value.value == 0:
                return NullPtr()
            wide = self.builder.int_cast(value, I64, from_ct.signed)
            return self.builder.inttoptr(wide, PTR)
        if from_ct.is_pointer() and to_ct.is_integer():
            wide = self.builder.ptrtoint(value, I64)
            return self.builder.int_cast(wide, to_ct.ir_type(), False)
        if to_ct.is_void():
            return value
        raise FrontendError(f"cannot convert {from_ct} to {to_ct}", line)

    def _convert_int(self, value: Value, ctype: CInt) -> Value:
        if value.type is ctype.ir_type():
            return value
        return self.builder.int_cast(value, ctype.ir_type(), True)

    # -- string literals ------------------------------------------------------------------------------------

    def _string_global(self, data: bytes) -> GlobalVariable:
        cached = self._string_cache.get(data)
        if cached is not None:
            return cached
        name = f".str.{self._string_counter}"
        self._string_counter += 1
        gv = self.module.add(
            GlobalVariable(
                name, ConstantData(data).type, ConstantData(data),
                is_const=True, linkage="internal",
            )
        )
        self._string_cache[data] = gv
        return gv


# Functions callable without a prototype; these resolve to VM runtime
# builtins at link time.
_BUILTINS: Dict[str, CFunction] = {
    "printf": CFunction(INT, (CPointer(CInt(8)),), vararg=True),
    "puts": CFunction(INT, (CPointer(CInt(8)),)),
    "putchar": CFunction(INT, (INT,)),
    "malloc": CFunction(CPointer(CInt(8)), (LONG,)),
    "free": CFunction(VOID_T, (CPointer(CInt(8)),)),
    "memcpy": CFunction(CPointer(CInt(8)), (CPointer(CInt(8)), CPointer(CInt(8)), LONG)),
    "memset": CFunction(CPointer(CInt(8)), (CPointer(CInt(8)), INT, LONG)),
    "strlen": CFunction(LONG, (CPointer(CInt(8)),)),
    "strcmp": CFunction(INT, (CPointer(CInt(8)), CPointer(CInt(8)))),
    "abort": CFunction(VOID_T, ()),
    "exit": CFunction(VOID_T, (INT,)),
}
