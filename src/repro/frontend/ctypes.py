"""C-level types for the MiniC frontend.

MiniC is the C subset the target programs are written in: integer types of
four widths with signedness, pointers, arrays, and functions.  The frontend
lowers these onto the IR's type system (which keeps only width; signedness
lives in the operations chosen during codegen, as in LLVM).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.errors import FrontendError
from repro.ir.types import I16, I32, I64, I8, IntType, PTR, Type, VOID, ArrayType


class CType:
    """Base class for MiniC types."""

    def ir_type(self) -> Type:
        raise NotImplementedError

    @property
    def size(self) -> int:
        return self.ir_type().size

    def is_void(self) -> bool:
        return isinstance(self, CVoid)

    def is_integer(self) -> bool:
        return isinstance(self, CInt)

    def is_pointer(self) -> bool:
        return isinstance(self, CPointer)

    def is_array(self) -> bool:
        return isinstance(self, CArray)

    def is_scalar(self) -> bool:
        return self.is_integer() or self.is_pointer()

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self):
        return ()


class CVoid(CType):
    def ir_type(self) -> Type:
        return VOID

    def __str__(self) -> str:
        return "void"


class CInt(CType):
    """Integer type: width in bits plus signedness."""

    _IR = {8: I8, 16: I16, 32: I32, 64: I64}
    _NAMES = {8: "char", 16: "short", 32: "int", 64: "long"}

    def __init__(self, bits: int, signed: bool = True):
        if bits not in self._IR:
            raise FrontendError(f"unsupported integer width {bits}")
        self.bits = bits
        self.signed = signed

    def ir_type(self) -> IntType:
        return self._IR[self.bits]

    def _key(self):
        return (self.bits, self.signed)

    def __str__(self) -> str:
        base = self._NAMES[self.bits]
        return base if self.signed else f"unsigned {base}"


class CPointer(CType):
    def __init__(self, pointee: CType):
        self.pointee = pointee

    def ir_type(self) -> Type:
        return PTR

    def _key(self):
        return (self.pointee,)

    def __str__(self) -> str:
        return f"{self.pointee}*"


class CArray(CType):
    def __init__(self, element: CType, count: int):
        self.element = element
        self.count = count

    def ir_type(self) -> Type:
        return ArrayType(self.element.ir_type(), self.count)

    def decay(self) -> CPointer:
        """Array-to-pointer decay."""
        return CPointer(self.element)

    def _key(self):
        return (self.element, self.count)

    def __str__(self) -> str:
        return f"{self.element}[{self.count}]"


class CFunction(CType):
    def __init__(self, ret: CType, params: Tuple[CType, ...], vararg: bool = False):
        self.ret = ret
        self.params = tuple(params)
        self.vararg = vararg

    def ir_type(self) -> Type:
        from repro.ir.types import FunctionType

        return FunctionType(
            self.ret.ir_type(),
            tuple(p.ir_type() for p in self.params),
            self.vararg,
        )

    def _key(self):
        return (self.ret, self.params, self.vararg)

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.params)
        if self.vararg:
            params = f"{params}, ..." if params else "..."
        return f"{self.ret} ({params})"


VOID_T = CVoid()
CHAR = CInt(8)
UCHAR = CInt(8, signed=False)
SHORT = CInt(16)
USHORT = CInt(16, signed=False)
INT = CInt(32)
UINT = CInt(32, signed=False)
LONG = CInt(64)
ULONG = CInt(64, signed=False)


def integer_promote(t: CInt) -> CInt:
    """C integer promotion: anything smaller than int becomes int."""
    if t.bits < 32:
        return INT
    return t


def usual_arithmetic_conversion(a: CInt, b: CInt) -> CInt:
    """The usual arithmetic conversions for a binary operator."""
    a, b = integer_promote(a), integer_promote(b)
    if a == b:
        return a
    if a.bits == b.bits:
        return a if not a.signed else b  # unsigned wins at equal rank
    wide, narrow = (a, b) if a.bits > b.bits else (b, a)
    if wide.signed and not narrow.signed and wide.bits > narrow.bits:
        return wide  # signed type can represent all narrower unsigned values
    return CInt(wide.bits, wide.signed)
