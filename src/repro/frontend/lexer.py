"""MiniC lexer.

Token kinds: keywords, identifiers, integer/char constants, string
literals, punctuation/operators.  Comments (``//`` and ``/* */``) are
skipped.  Each token carries line/column for diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import FrontendError

KEYWORDS = {
    "void", "char", "short", "int", "long", "unsigned", "signed",
    "if", "else", "while", "for", "do", "return", "break", "continue",
    "switch", "case", "default", "static", "extern", "const", "sizeof",
}

# Multi-character operators first (longest match wins).
OPERATORS = [
    "<<=", ">>=", "...",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--", "->",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
    "(", ")", "{", "}", "[", "]", ";", ",", "?", ":",
]

_ESCAPES = {
    "n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39, '"': 34,
    "a": 7, "b": 8, "f": 12, "v": 11,
}


@dataclass(frozen=True)
class Token:
    kind: str  # 'keyword' | 'ident' | 'number' | 'char' | 'string' | 'op' | 'eof'
    value: object
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.column})"


def tokenize(source: str) -> List[Token]:
    tokens: List[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def error(message: str) -> FrontendError:
        return FrontendError(message, line, col)

    while i < n:
        ch = source[i]
        # Whitespace.
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        # Comments.
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise error("unterminated block comment")
            for c in source[i : end + 2]:
                if c == "\n":
                    line += 1
                    col = 1
                else:
                    col += 1
            i = end + 2
            continue
        # Identifiers / keywords.
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            word = source[start:i]
            kind = "keyword" if word in KEYWORDS else "ident"
            tokens.append(Token(kind, word, line, col))
            col += i - start
            continue
        # Numbers (decimal and hex).
        if ch.isdigit():
            start = i
            if source.startswith("0x", i) or source.startswith("0X", i):
                i += 2
                while i < n and source[i] in "0123456789abcdefABCDEF":
                    i += 1
                value = int(source[start:i], 16)
            else:
                while i < n and source[i].isdigit():
                    i += 1
                value = int(source[start:i])
            # Optional suffixes (u, l, ul, lu) — parsed, type handled in sema.
            suffix_start = i
            while i < n and source[i] in "uUlL":
                i += 1
            suffix = source[suffix_start:i].lower()
            tokens.append(Token("number", (value, suffix), line, col))
            col += i - start
            continue
        # Character constants.
        if ch == "'":
            j = i + 1
            if j < n and source[j] == "\\":
                if j + 1 >= n or source[j + 1] not in _ESCAPES:
                    raise error("bad escape in character constant")
                value = _ESCAPES[source[j + 1]]
                j += 2
            elif j < n:
                value = ord(source[j])
                j += 1
            else:
                raise error("unterminated character constant")
            if j >= n or source[j] != "'":
                raise error("unterminated character constant")
            tokens.append(Token("char", value, line, col))
            col += j + 1 - i
            i = j + 1
            continue
        # String literals.
        if ch == '"':
            j = i + 1
            data = bytearray()
            while j < n and source[j] != '"':
                if source[j] == "\\":
                    if j + 1 >= n or source[j + 1] not in _ESCAPES:
                        raise error("bad escape in string literal")
                    data.append(_ESCAPES[source[j + 1]])
                    j += 2
                elif source[j] == "\n":
                    raise error("newline in string literal")
                else:
                    data.append(ord(source[j]))
                    j += 1
            if j >= n:
                raise error("unterminated string literal")
            tokens.append(Token("string", bytes(data), line, col))
            col += j + 1 - i
            i = j + 1
            continue
        # Operators / punctuation.
        for op in OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, line, col))
                i += len(op)
                col += len(op)
                break
        else:
            raise error(f"unexpected character {ch!r}")
    tokens.append(Token("eof", None, line, col))
    return tokens
