"""Recursive-descent parser for MiniC.

Grammar summary (subset of C):

    unit        := (funcdef | funcdecl | globaldecl)*
    type        := ['static'] ['const'] ['unsigned'|'signed']
                   ('void'|'char'|'short'|'int'|'long') '*'*
    funcdef     := type ident '(' params ')' block
    globaldecl  := type declarator (',' declarator)* ';'
    statements  := if | while | do-while | for | switch | return | break
                 | continue | block | decl | expr ';'
    expressions := full C operator set minus comma operator and struct access
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import FrontendError
from repro.frontend import ast
from repro.frontend.ctypes import (
    CArray,
    CFunction,
    CInt,
    CPointer,
    CType,
    CVoid,
    INT,
    VOID_T,
)
from repro.frontend.lexer import Token, tokenize

_TYPE_KEYWORDS = {"void", "char", "short", "int", "long", "unsigned", "signed", "const"}

# Binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}


def parse(source: str, name: str = "unit") -> ast.TranslationUnit:
    """Parse MiniC source into a translation unit."""
    return _Parser(tokenize(source)).parse_unit(name)


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing ----------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def next(self) -> Token:
        tok = self.peek()
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def at(self, value: object, kind: Optional[str] = None) -> bool:
        tok = self.peek()
        return tok.value == value and (kind is None or tok.kind == kind)

    def accept(self, value: object) -> bool:
        if self.at(value):
            self.next()
            return True
        return False

    def expect(self, value: object) -> Token:
        tok = self.next()
        if tok.value != value:
            raise FrontendError(f"expected {value!r}, got {tok.value!r}", tok.line, tok.column)
        return tok

    def expect_ident(self) -> str:
        tok = self.next()
        if tok.kind != "ident":
            raise FrontendError(f"expected identifier, got {tok.value!r}", tok.line, tok.column)
        return tok.value

    def error(self, message: str) -> FrontendError:
        tok = self.peek()
        return FrontendError(message, tok.line, tok.column)

    # -- types ---------------------------------------------------------------

    def at_type(self) -> bool:
        tok = self.peek()
        return tok.kind == "keyword" and tok.value in _TYPE_KEYWORDS | {"static", "extern"}

    def parse_type_prefix(self) -> Tuple[CType, bool, bool]:
        """Parse storage class + base type + pointers.

        Returns (type, static, const).
        """
        static = False
        const = False
        while True:
            if self.accept("static"):
                static = True
            elif self.accept("extern"):
                pass  # extern is the default storage for our purposes
            elif self.accept("const"):
                const = True
            else:
                break
        signed: Optional[bool] = None
        if self.accept("unsigned"):
            signed = False
        elif self.accept("signed"):
            signed = True
        base: CType
        if self.accept("void"):
            base = VOID_T
        elif self.accept("char"):
            base = CInt(8, signed if signed is not None else True)
        elif self.accept("short"):
            base = CInt(16, signed if signed is not None else True)
        elif self.accept("long"):
            base = CInt(64, signed if signed is not None else True)
        elif self.accept("int"):
            base = CInt(32, signed if signed is not None else True)
        elif signed is not None:
            base = CInt(32, signed)  # bare 'unsigned'
        else:
            raise self.error("expected a type name")
        if self.accept("const"):
            const = True
        # `const char *p` is a pointer to const — the pointer itself is
        # mutable.  Only a trailing const after the last `*` makes the
        # declared object const.
        pointer_const = False
        has_pointer = False
        while self.accept("*"):
            has_pointer = True
            base = CPointer(base)
            pointer_const = self.accept("const")
        if has_pointer:
            const = pointer_const
        return base, static, const

    # -- top level --------------------------------------------------------------

    def parse_unit(self, name: str) -> ast.TranslationUnit:
        unit = ast.TranslationUnit(name=name)
        while self.peek().kind != "eof":
            unit.items.extend(self.parse_top_level())
        return unit

    def parse_top_level(self) -> List[ast.TopLevel]:
        line = self.peek().line
        base, static, const = self.parse_type_prefix()
        name = self.expect_ident()

        if self.at("("):
            ctype, param_names = self.parse_function_signature(base)
            if self.accept(";"):
                return [ast.FuncDecl(line=line, name=name, ctype=ctype, static=static)]
            body = self.parse_block()
            return [
                ast.FuncDef(
                    line=line, name=name, ctype=ctype,
                    param_names=param_names, body=body, static=static,
                )
            ]

        # Global variable declaration(s).
        items: List[ast.TopLevel] = []
        while True:
            ctype = self.parse_array_suffix(base)
            init: Optional[ast.Expr] = None
            init_list: Optional[List[ast.Expr]] = None
            if self.accept("="):
                if self.at("{"):
                    init_list = self.parse_init_list()
                else:
                    init = self.parse_assignment()
            items.append(
                ast.GlobalDecl(
                    line=line, name=name, ctype=ctype, init=init,
                    init_list=init_list, static=static, const=const,
                )
            )
            if self.accept(","):
                name = self.expect_ident()
                continue
            self.expect(";")
            break
        return items

    def parse_function_signature(self, ret: CType) -> Tuple[CFunction, List[str]]:
        self.expect("(")
        params: List[CType] = []
        names: List[str] = []
        vararg = False
        if self.accept(")"):
            return CFunction(ret, tuple(params)), names
        if self.at("void") and self.peek(1).value == ")":
            self.next()
            self.expect(")")
            return CFunction(ret, tuple(params)), names
        while True:
            if self.accept("..."):
                vararg = True
                break
            ptype, _, _ = self.parse_type_prefix()
            pname = ""
            if self.peek().kind == "ident":
                pname = self.expect_ident()
            # Array parameters decay to pointers.
            while self.accept("["):
                if self.peek().kind == "number":
                    self.next()
                self.expect("]")
                ptype = CPointer(ptype)
            params.append(ptype)
            names.append(pname or f"arg{len(params) - 1}")
            if not self.accept(","):
                break
        self.expect(")")
        return CFunction(ret, tuple(params), vararg), names

    def parse_array_suffix(self, base: CType) -> CType:
        dims: List[int] = []
        while self.accept("["):
            tok = self.next()
            if tok.kind != "number":
                raise FrontendError("array size must be a constant", tok.line, tok.column)
            dims.append(tok.value[0])
            self.expect("]")
        for dim in reversed(dims):
            base = CArray(base, dim)
        return base

    def parse_init_list(self) -> List[ast.Expr]:
        self.expect("{")
        items: List[ast.Expr] = []
        while not self.accept("}"):
            if items:
                self.expect(",")
                if self.accept("}"):
                    break
            items.append(self.parse_assignment())
        return items

    # -- statements -----------------------------------------------------------------

    def parse_block(self) -> ast.Block:
        line = self.peek().line
        self.expect("{")
        block = ast.Block(line=line)
        while not self.accept("}"):
            block.stmts.append(self.parse_statement())
        return block

    def parse_statement(self) -> ast.Stmt:
        tok = self.peek()
        line = tok.line
        if self.at("{"):
            return self.parse_block()
        if self.at_type():
            return self.parse_decl_statement()
        if self.accept("if"):
            self.expect("(")
            cond = self.parse_expression()
            self.expect(")")
            then = self.parse_statement()
            orelse = self.parse_statement() if self.accept("else") else None
            return ast.If(line=line, cond=cond, then=then, orelse=orelse)
        if self.accept("while"):
            self.expect("(")
            cond = self.parse_expression()
            self.expect(")")
            return ast.While(line=line, cond=cond, body=self.parse_statement())
        if self.accept("do"):
            body = self.parse_statement()
            self.expect("while")
            self.expect("(")
            cond = self.parse_expression()
            self.expect(")")
            self.expect(";")
            return ast.DoWhile(line=line, body=body, cond=cond)
        if self.accept("for"):
            self.expect("(")
            init: Optional[ast.Stmt] = None
            if not self.accept(";"):
                if self.at_type():
                    init = self.parse_decl_statement()
                else:
                    init = ast.ExprStmt(line=line, expr=self.parse_expression())
                    self.expect(";")
            cond = None if self.at(";") else self.parse_expression()
            self.expect(";")
            step = None if self.at(")") else self.parse_expression()
            self.expect(")")
            return ast.For(line=line, init=init, cond=cond, step=step,
                           body=self.parse_statement())
        if self.accept("switch"):
            return self.parse_switch(line)
        if self.accept("return"):
            value = None if self.at(";") else self.parse_expression()
            self.expect(";")
            return ast.Return(line=line, value=value)
        if self.accept("break"):
            self.expect(";")
            return ast.Break(line=line)
        if self.accept("continue"):
            self.expect(";")
            return ast.Continue(line=line)
        if self.accept(";"):
            return ast.Block(line=line)  # empty statement
        expr = self.parse_expression()
        self.expect(";")
        return ast.ExprStmt(line=line, expr=expr)

    def parse_decl_statement(self) -> ast.DeclStmt:
        line = self.peek().line
        base, _static, _const = self.parse_type_prefix()
        stmt = ast.DeclStmt(line=line)
        while True:
            name = self.expect_ident()
            ctype = self.parse_array_suffix(base)
            decl = ast.Declarator(name=name, ctype=ctype)
            if self.accept("="):
                if self.at("{"):
                    decl.init_list = self.parse_init_list()
                else:
                    decl.init = self.parse_assignment()
            stmt.decls.append(decl)
            if not self.accept(","):
                break
        self.expect(";")
        return stmt

    def parse_switch(self, line: int) -> ast.Switch:
        self.expect("(")
        scrutinee = self.parse_expression()
        self.expect(")")
        self.expect("{")
        switch = ast.Switch(line=line, scrutinee=scrutinee)
        current: Optional[ast.SwitchCase] = None
        while not self.accept("}"):
            tok = self.peek()
            if self.accept("case"):
                values = [self.parse_constant_int()]
                self.expect(":")
                # Collapse consecutive case labels onto one case body.
                while self.at("case"):
                    self.next()
                    values.append(self.parse_constant_int())
                    self.expect(":")
                current = ast.SwitchCase(values=values, line=tok.line)
                switch.cases.append(current)
                continue
            if self.accept("default"):
                self.expect(":")
                current = ast.SwitchCase(values=[], line=tok.line)
                switch.cases.append(current)
                continue
            if current is None:
                raise self.error("statement before first case label")
            current.stmts.append(self.parse_statement())
        return switch

    def parse_constant_int(self) -> int:
        negative = self.accept("-")
        tok = self.next()
        if tok.kind == "number":
            value = tok.value[0]
        elif tok.kind == "char":
            value = tok.value
        else:
            raise FrontendError("expected integer constant", tok.line, tok.column)
        return -value if negative else value

    # -- expressions ------------------------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        return self.parse_assignment()

    def parse_assignment(self) -> ast.Expr:
        lhs = self.parse_ternary()
        tok = self.peek()
        if tok.kind == "op" and tok.value in _ASSIGN_OPS:
            self.next()
            rhs = self.parse_assignment()
            return ast.Assign(line=tok.line, op=tok.value, target=lhs, value=rhs)
        return lhs

    def parse_ternary(self) -> ast.Expr:
        cond = self.parse_binary(1)
        if self.at("?"):
            tok = self.next()
            if_true = self.parse_expression()
            self.expect(":")
            if_false = self.parse_ternary()
            return ast.Ternary(line=tok.line, cond=cond, if_true=if_true, if_false=if_false)
        return cond

    def parse_binary(self, min_prec: int) -> ast.Expr:
        lhs = self.parse_unary()
        while True:
            tok = self.peek()
            prec = _PRECEDENCE.get(tok.value) if tok.kind == "op" else None
            if prec is None or prec < min_prec:
                return lhs
            self.next()
            rhs = self.parse_binary(prec + 1)
            lhs = ast.Binary(line=tok.line, op=tok.value, lhs=lhs, rhs=rhs)

    def parse_unary(self) -> ast.Expr:
        tok = self.peek()
        if tok.kind == "op" and tok.value in ("-", "!", "~", "*", "&"):
            self.next()
            return ast.Unary(line=tok.line, op=tok.value, operand=self.parse_unary())
        if tok.kind == "op" and tok.value in ("++", "--"):
            self.next()
            return ast.Unary(line=tok.line, op=tok.value, operand=self.parse_unary())
        if tok.value == "sizeof" and tok.kind == "keyword":
            self.next()
            self.expect("(")
            if self.at_type():
                ctype, _, _ = self.parse_type_prefix()
                ctype = self.parse_array_suffix(ctype)
                self.expect(")")
                return ast.SizeofType(line=tok.line, ctype=ctype)
            expr = self.parse_expression()
            self.expect(")")
            # sizeof(expr) is resolved in codegen from the expression type.
            return ast.SizeofType(line=tok.line, ctype=None) if expr is None else \
                ast.SizeofType(line=tok.line, ctype=self._sizeof_placeholder(expr))
        # Cast: '(' type ')' unary
        if tok.value == "(" and self._is_cast():
            self.next()
            ctype, _, _ = self.parse_type_prefix()
            self.expect(")")
            return ast.Cast(line=tok.line, ctype=ctype, operand=self.parse_unary())
        return self.parse_postfix()

    def _sizeof_placeholder(self, expr: ast.Expr) -> Optional[CType]:
        # Only sizeof(type) is supported; sizeof(expr) would need sema here.
        raise self.error("sizeof(expression) is not supported; use sizeof(type)")

    def _is_cast(self) -> bool:
        tok = self.peek(1)
        return tok.kind == "keyword" and tok.value in _TYPE_KEYWORDS

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            tok = self.peek()
            if self.accept("["):
                index = self.parse_expression()
                self.expect("]")
                expr = ast.Index(line=tok.line, base=expr, index=index)
            elif self.accept("("):
                args: List[ast.Expr] = []
                while not self.accept(")"):
                    if args:
                        self.expect(",")
                    args.append(self.parse_assignment())
                expr = ast.Call(line=tok.line, callee=expr, args=args)
            elif tok.kind == "op" and tok.value in ("++", "--"):
                self.next()
                expr = ast.Unary(line=tok.line, op=tok.value, operand=expr, postfix=True)
            else:
                return expr

    def parse_primary(self) -> ast.Expr:
        tok = self.next()
        if tok.kind == "number":
            value, suffix = tok.value
            return ast.IntLit(line=tok.line, value=value, suffix=suffix)
        if tok.kind == "char":
            return ast.IntLit(line=tok.line, value=tok.value, suffix="")
        if tok.kind == "string":
            return ast.StringLit(line=tok.line, data=tok.value + b"\x00")
        if tok.kind == "ident":
            return ast.Ident(line=tok.line, name=tok.value)
        if tok.value == "(":
            expr = self.parse_expression()
            self.expect(")")
            return expr
        raise FrontendError(f"unexpected token {tok.value!r}", tok.line, tok.column)
