"""MiniC AST pretty-printer: the inverse of :mod:`repro.frontend.parser`.

``print_unit(parse(src))`` re-parses to an equivalent translation unit,
which is what the selffuzz auto-minimizer relies on: it deletes AST
statements and re-emits compilable source after every reduction.  The
printer is deliberately canonical — one statement per line, every body
braced, fully parenthesised expressions — so printing is a stable
fixpoint: ``print_unit(parse(print_unit(u))) == print_unit(u)``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.frontend import ast
from repro.frontend.ctypes import (
    CArray,
    CFunction,
    CInt,
    CPointer,
    CType,
    CVoid,
)

_INDENT = "    "


def type_prefix(ctype: CType) -> str:
    """The declaration prefix of *ctype* (arrays print via suffixes)."""
    if isinstance(ctype, CVoid):
        return "void"
    if isinstance(ctype, CInt):
        return str(ctype)
    if isinstance(ctype, CPointer):
        return f"{type_prefix(ctype.pointee)} *"
    if isinstance(ctype, CArray):
        return type_prefix(ctype.element)
    raise ValueError(f"cannot print type {ctype!r}")


def type_suffix(ctype: CType) -> str:
    """Array dimension suffixes, outermost first."""
    dims: List[str] = []
    while isinstance(ctype, CArray):
        dims.append(f"[{ctype.count}]")
        ctype = ctype.element
    return "".join(dims)


def print_expr(expr: ast.Expr) -> str:
    """One expression, fully parenthesised."""
    if isinstance(expr, ast.IntLit):
        return f"{expr.value}{expr.suffix}"
    if isinstance(expr, ast.StringLit):
        data = expr.data[:-1] if expr.data.endswith(b"\x00") else expr.data
        out = []
        for byte in data:
            ch = chr(byte)
            if ch == '"':
                out.append('\\"')
            elif ch == "\\":
                out.append("\\\\")
            elif ch == "\n":
                out.append("\\n")
            elif ch == "\t":
                out.append("\\t")
            elif ch == "\r":
                out.append("\\r")
            elif byte == 0:
                out.append("\\0")
            elif 32 <= byte < 127:
                out.append(ch)
            else:
                # The MiniC lexer has no \xNN escape; such literals
                # cannot round-trip through source.
                raise ValueError(f"unprintable byte {byte:#x} in string literal")
        return '"' + "".join(out) + '"'
    if isinstance(expr, ast.Ident):
        return expr.name
    if isinstance(expr, ast.Unary):
        inner = print_expr(expr.operand)
        if expr.op in ("++", "--"):
            return f"({inner}{expr.op})" if expr.postfix else f"({expr.op}{inner})"
        return f"({expr.op}{inner})"
    if isinstance(expr, ast.Binary):
        return f"({print_expr(expr.lhs)} {expr.op} {print_expr(expr.rhs)})"
    if isinstance(expr, ast.Assign):
        return f"({print_expr(expr.target)} {expr.op} {print_expr(expr.value)})"
    if isinstance(expr, ast.Ternary):
        return (
            f"({print_expr(expr.cond)} ? {print_expr(expr.if_true)}"
            f" : {print_expr(expr.if_false)})"
        )
    if isinstance(expr, ast.Call):
        args = ", ".join(print_expr(a) for a in expr.args)
        return f"{print_expr(expr.callee)}({args})"
    if isinstance(expr, ast.Index):
        return f"{print_expr(expr.base)}[{print_expr(expr.index)}]"
    if isinstance(expr, ast.Cast):
        return f"(({type_prefix(expr.ctype)}){print_expr(expr.operand)})"
    if isinstance(expr, ast.SizeofType):
        return f"sizeof({type_prefix(expr.ctype)}{type_suffix(expr.ctype)})"
    raise ValueError(f"cannot print expression {expr!r}")


def _declarator(decl: ast.Declarator) -> str:
    text = f"{decl.name}{type_suffix(decl.ctype)}"
    if decl.init is not None:
        text += f" = {print_expr(decl.init)}"
    elif decl.init_list is not None:
        items = ", ".join(print_expr(e) for e in decl.init_list)
        text += " = {" + items + "}"
    return text


def _print_stmt(stmt: ast.Stmt, depth: int, lines: List[str]) -> None:
    pad = _INDENT * depth
    if isinstance(stmt, ast.Block):
        lines.append(f"{pad}{{")
        for child in stmt.stmts:
            _print_stmt(child, depth + 1, lines)
        lines.append(f"{pad}}}")
    elif isinstance(stmt, ast.DeclStmt):
        if not stmt.decls:
            return  # minimizer may have emptied it
        # A DeclStmt shares one base type; arrays differ only in suffix.
        base = stmt.decls[0].ctype
        while isinstance(base, CArray):
            base = base.element
        decls = ", ".join(_declarator(d) for d in stmt.decls)
        lines.append(f"{pad}{type_prefix(base)} {decls};")
    elif isinstance(stmt, ast.ExprStmt):
        lines.append(f"{pad}{print_expr(stmt.expr)};")
    elif isinstance(stmt, ast.If):
        lines.append(f"{pad}if ({print_expr(stmt.cond)})")
        _print_braced(stmt.then, depth, lines)
        if stmt.orelse is not None:
            lines.append(f"{pad}else")
            _print_braced(stmt.orelse, depth, lines)
    elif isinstance(stmt, ast.While):
        lines.append(f"{pad}while ({print_expr(stmt.cond)})")
        _print_braced(stmt.body, depth, lines)
    elif isinstance(stmt, ast.DoWhile):
        lines.append(f"{pad}do")
        _print_braced(stmt.body, depth, lines)
        lines.append(f"{pad}while ({print_expr(stmt.cond)});")
    elif isinstance(stmt, ast.For):
        init = ""
        if isinstance(stmt.init, ast.DeclStmt):
            buf: List[str] = []
            _print_stmt(stmt.init, 0, buf)
            init = buf[0].rstrip(";") if buf else ""
        elif isinstance(stmt.init, ast.ExprStmt):
            init = print_expr(stmt.init.expr)
        cond = print_expr(stmt.cond) if stmt.cond is not None else ""
        step = print_expr(stmt.step) if stmt.step is not None else ""
        lines.append(f"{pad}for ({init}; {cond}; {step})")
        _print_braced(stmt.body, depth, lines)
    elif isinstance(stmt, ast.Switch):
        lines.append(f"{pad}switch ({print_expr(stmt.scrutinee)}) {{")
        for case in stmt.cases:
            if case.values:
                for value in case.values:
                    lines.append(f"{pad}case {value}:")
            else:
                lines.append(f"{pad}default:")
            for child in case.stmts:
                _print_stmt(child, depth + 1, lines)
        lines.append(f"{pad}}}")
    elif isinstance(stmt, ast.Return):
        if stmt.value is None:
            lines.append(f"{pad}return;")
        else:
            lines.append(f"{pad}return {print_expr(stmt.value)};")
    elif isinstance(stmt, ast.Break):
        lines.append(f"{pad}break;")
    elif isinstance(stmt, ast.Continue):
        lines.append(f"{pad}continue;")
    else:
        raise ValueError(f"cannot print statement {stmt!r}")


def _print_braced(stmt: Optional[ast.Stmt], depth: int, lines: List[str]) -> None:
    """Print a control-flow body, always braced (canonical form)."""
    if isinstance(stmt, ast.Block):
        _print_stmt(stmt, depth, lines)
    else:
        pad = _INDENT * depth
        lines.append(f"{pad}{{")
        if stmt is not None:
            _print_stmt(stmt, depth + 1, lines)
        lines.append(f"{pad}}}")


def _signature(item) -> str:
    ctype: CFunction = item.ctype
    static = "static " if item.static else ""
    names = list(getattr(item, "param_names", []) or [])
    params = []
    for index, ptype in enumerate(ctype.params):
        pname = names[index] if index < len(names) else f"arg{index}"
        params.append(f"{type_prefix(ptype)} {pname}".rstrip())
    if ctype.vararg:
        params.append("...")
    inner = ", ".join(params) if params else "void"
    return f"{static}{type_prefix(ctype.ret)} {item.name}({inner})"


def print_unit(unit: ast.TranslationUnit) -> str:
    """Re-emit a translation unit as canonical MiniC source."""
    lines: List[str] = []
    for item in unit.items:
        if isinstance(item, ast.FuncDecl):
            lines.append(f"{_signature(item)};")
        elif isinstance(item, ast.FuncDef):
            lines.append(_signature(item))
            _print_stmt(item.body, 0, lines)
            lines.append("")
        elif isinstance(item, ast.GlobalDecl):
            static = "static " if item.static else ""
            const = "const " if item.const else ""
            text = f"{static}{const}{type_prefix(item.ctype)} " \
                   f"{item.name}{type_suffix(item.ctype)}"
            if item.init is not None:
                text += f" = {print_expr(item.init)}"
            elif item.init_list is not None:
                items = ", ".join(print_expr(e) for e in item.init_list)
                text += " = {" + items + "}"
            lines.append(text + ";")
        else:
            raise ValueError(f"cannot print top-level item {item!r}")
    return "\n".join(lines).rstrip("\n") + "\n"
