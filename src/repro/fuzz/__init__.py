"""repro.fuzz — coverage-guided fuzzing substrate (AFL++-style)."""

from repro.fuzz.corpus import Corpus, CorpusEntry
from repro.fuzz.executor import (
    DrCovExecutor,
    ExecOutcome,
    Executor,
    LibInstExecutor,
    OdinCovExecutor,
    PlainExecutor,
    SanCovExecutor,
)
from repro.fuzz.fuzzer import CmpLogFuzzer, Fuzzer, FuzzStats
from repro.fuzz.i2s import solve_comparisons, substitution_candidates
from repro.fuzz.mutator import Mutator

__all__ = [
    "Corpus", "CorpusEntry", "Mutator",
    "ExecOutcome", "Executor", "PlainExecutor", "OdinCovExecutor",
    "SanCovExecutor", "DrCovExecutor", "LibInstExecutor",
    "Fuzzer", "CmpLogFuzzer", "FuzzStats",
    "solve_comparisons", "substitution_candidates",
]
