"""Corpus management for coverage-guided fuzzing.

A corpus entry keeps the input bytes plus bookkeeping (which probe ids it
covers, discovery time, energy).  The corpus grows when an execution
reaches coverage not seen before — AFL-style "interesting input"
retention.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set

from repro.utils.rng import DeterministicRNG


@dataclass
class CorpusEntry:
    data: bytes
    coverage: FrozenSet[int]
    found_at_exec: int = 0
    # Scheduling multiplier for pick(): an entry with energy N is N times
    # as likely to be selected as its base weight alone.  Defaults to 1
    # (neutral); tools can boost entries they want mutated more.
    energy: int = 1

    def __len__(self) -> int:
        return len(self.data)


class Corpus:
    """Seed corpus with global coverage tracking."""

    def __init__(self, seeds: Iterable[bytes] = ()):  # noqa: B008
        self.entries: List[CorpusEntry] = []
        self.global_coverage: Set[int] = set()
        self._pending: List[bytes] = list(seeds)

    def pending_seeds(self) -> List[bytes]:
        """Initial seeds not yet executed/triaged."""
        out, self._pending = self._pending, []
        return out

    def consider(
        self, data: bytes, coverage: Set[int], exec_index: int
    ) -> Optional[CorpusEntry]:
        """Add *data* if it contributes new coverage; returns the entry."""
        new = coverage - self.global_coverage
        if not new and self.entries:
            return None
        self.global_coverage |= coverage
        entry = CorpusEntry(
            data=data, coverage=frozenset(coverage), found_at_exec=exec_index
        )
        self.entries.append(entry)
        return entry

    def pick(self, rng: DeterministicRNG) -> CorpusEntry:
        if not self.entries:
            raise IndexError("corpus is empty")
        # Favour small and recent entries lightly, scaled by each entry's
        # energy multiplier (AFL-ish scheduling).
        weights = []
        for i, entry in enumerate(self.entries):
            w = 3 if len(entry.data) < 64 else 1
            w += 1 if i >= len(self.entries) - 4 else 0
            weights.append(w * max(1, entry.energy))
        total = sum(weights)
        roll = rng.randint(1, total)
        acc = 0
        for entry, w in zip(self.entries, weights):
            acc += w
            if roll <= acc:
                return entry
        return self.entries[-1]

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def coverage_count(self) -> int:
        return len(self.global_coverage)
