"""Executors: run one input against an instrumented target.

An executor hides which instrumentation stack produced the binary so the
fuzzing loop (and the benchmark harness) can drive OdinCov, the
SanitizerCoverage analogue, or the binary-instrumentation baselines
uniformly.  Simulated cycle counts accumulate in ``total_cycles`` — the
quantity every figure normalizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set, Tuple

from repro.baselines.dbi import DrCov
from repro.baselines.rewriter import LibInst
from repro.errors import FuzzError
from repro.instrument.coverage import OdinCov
from repro.instrument.sancov import SanCovBuild
from repro.linker.linker import Executable
from repro.vm.interpreter import ExecutionResult, VM

ENTRY = "run_input"


@dataclass
class ExecOutcome:
    result: ExecutionResult
    coverage: Set[int]


class Executor:
    """Base: execute inputs, track totals."""

    def __init__(self):
        self.executions = 0
        self.total_cycles = 0

    def execute(self, data: bytes) -> ExecOutcome:
        raise NotImplementedError

    def _run_vm(self, vm: VM, data: bytes) -> ExecutionResult:
        vm.reset()
        addr = vm.alloc(max(len(data), 1) + 1)
        vm.write_bytes(addr, data)
        result = vm.run(ENTRY, (addr, len(data)), reset=False)
        self.executions += 1
        self.total_cycles += result.cycles
        return result


class PlainExecutor(Executor):
    """Uninstrumented binary: the baseline duration in every figure."""

    def __init__(self, executable: Executable):
        super().__init__()
        self.vm = VM(executable)

    def execute(self, data: bytes) -> ExecOutcome:
        return ExecOutcome(self._run_vm(self.vm, data), set())


class OdinCovExecutor(Executor):
    """OdinCov (optionally pruning) over an Odin engine."""

    def __init__(self, tool: OdinCov, extra_runtime=None):
        super().__init__()
        self.tool = tool
        self.extra_runtime = extra_runtime
        if tool.engine.executable is None:
            raise FuzzError("OdinCov engine has no executable; call build() first")
        self._vm = tool.make_vm(extra_runtime)
        self._exe = tool.engine.executable

    def _refresh_vm(self) -> None:
        if self.tool.engine.executable is not self._exe:
            self._exe = self.tool.engine.executable
            self._vm = self.tool.make_vm(self.extra_runtime)

    def execute(self, data: bytes) -> ExecOutcome:
        self._refresh_vm()
        before = dict(self.tool.runtime.counters)
        result = self._run_vm(self._vm, data)
        covered = {
            pid
            for pid, hits in self.tool.runtime.counters.items()
            if hits > before.get(pid, 0)
        }
        return ExecOutcome(result, covered)

    def prune(self):
        """Untracer-style pruning + on-the-fly rebuild."""
        report = self.tool.prune_covered()
        self._refresh_vm()
        return report


class SanCovExecutor(Executor):
    """SanitizerCoverage-style static instrumentation."""

    def __init__(self, build: SanCovBuild):
        super().__init__()
        from repro.instrument.coverage import CoverageRuntime

        self.build = build
        self.runtime = CoverageRuntime()
        self.vm = VM(build.executable, probe_runtime=self.runtime)

    def execute(self, data: bytes) -> ExecOutcome:
        before = dict(self.runtime.counters)
        result = self._run_vm(self.vm, data)
        covered = {
            pid
            for pid, hits in self.runtime.counters.items()
            if hits > before.get(pid, 0)
        }
        return ExecOutcome(result, covered)


class BlockHookExecutor(Executor):
    """Shared logic for the binary-instrumentation baselines."""

    def __init__(self, tool):
        super().__init__()
        self.tool = tool
        self.vm = tool.make_vm()

    def execute(self, data: bytes) -> ExecOutcome:
        # Report only this execution's newly covered blocks (as block
        # identity hashes); the tool's cumulative set would make every
        # input look like it covers everything ever covered.
        before = set(self.tool.coverage)
        result = self._run_vm(self.vm, data)
        covered = {hash(key) & 0x7FFFFFFF for key in self.tool.coverage - before}
        return ExecOutcome(result, covered)


class DrCovExecutor(BlockHookExecutor):
    def __init__(self, executable: Executable):
        super().__init__(DrCov(executable))


class LibInstExecutor(BlockHookExecutor):
    def __init__(self, executable: Executable):
        super().__init__(LibInst(executable))
