"""The coverage-guided fuzzing loop.

AFL-style: pick a corpus entry, mutate, execute, keep inputs reaching new
coverage.  Two Odin-specific hooks reproduce the paper's workflow:

* ``prune_interval`` — every N executions the fuzzer asks the OdinCov
  executor to prune covered probes and recompile on the fly (Untracer/
  Zeror-style, but compiler-based);
* ``cmplog`` — when a comparison roadblock stalls progress, recorded
  operand pairs are run through input-to-state substitution, and solved
  comparisons' probes are removed (§2.1: AFL++ considers a comparison no
  roadblock once both outcomes were taken).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.engine import RebuildReport
from repro.errors import FuzzError
from repro.fuzz.corpus import Corpus
from repro.fuzz.executor import Executor, OdinCovExecutor
from repro.fuzz.i2s import solve_comparisons
from repro.fuzz.mutator import Mutator
from repro.utils.rng import DeterministicRNG


@dataclass
class FuzzStats:
    executions: int = 0
    total_cycles: int = 0
    corpus_size: int = 0
    coverage: int = 0
    crashes: int = 0
    prunes: int = 0
    rebuilds: int = 0
    # Elapsed (simulated) rebuild time: the latency a fuzzer actually
    # waits.  On a worker pool this is the makespan, not the lane-sum.
    rebuild_ms: float = 0.0
    # Lane-sum of the same rebuilds: total compile work across workers.
    rebuild_cpu_ms: float = 0.0
    solved_comparisons: int = 0
    crash_inputs: List[bytes] = field(default_factory=list)


class Fuzzer:
    """Coverage-guided fuzzing over any :class:`Executor`."""

    def __init__(
        self,
        executor: Executor,
        seeds: List[bytes],
        *,
        seed: int = 1,
        prune_interval: int = 0,
        keep_crashes: bool = True,
        speculator=None,
    ):
        self.executor = executor
        self.corpus = Corpus(seeds)
        self.rng = DeterministicRNG(seed)
        self.mutator = Mutator(self.rng.fork())
        self.prune_interval = prune_interval
        self.keep_crashes = keep_crashes
        # Optional ProbeStateSpeculator: fed fresh corpus/coverage signal
        # after every prune so the service can precompile the next prune
        # state in its idle lanes (the fuzzer never blocks on it).
        self.speculator = speculator
        self.stats = FuzzStats()

    # -- driving --------------------------------------------------------------

    def run(self, executions: int) -> FuzzStats:
        """Run the loop for *executions* mutated inputs (plus seed triage)."""
        for seed in self.corpus.pending_seeds():
            self._execute_and_consider(seed)
        if not self.corpus.entries:
            raise FuzzError(
                f"no usable seeds: all {self.stats.crashes} seed inputs "
                f"crashed during triage; provide at least one seed that "
                f"executes without trapping"
            )
        for _ in range(executions):
            entry = self.corpus.pick(self.rng)
            splice = self.corpus.pick(self.rng).data if len(self.corpus) > 1 else None
            data = self.mutator.mutate(entry.data, splice)
            self._execute_and_consider(data)
            if (
                self.prune_interval
                and isinstance(self.executor, OdinCovExecutor)
                # The executor's live counter, not stats.executions: the
                # latter only syncs after the loop, so reading it here
                # made the prune fire on every single iteration.
                and self.executor.executions % self.prune_interval == 0
            ):
                self.stats.prunes += 1
                report = self.executor.prune()
                if report.rebuild is not None:
                    self._note_rebuild(report.rebuild)
                if self.speculator is not None:
                    self.speculator.observe_corpus(
                        self.corpus, runtime=self.executor.tool.runtime
                    )
        self._sync_stats()
        return self.stats

    def replay(self, inputs: List[bytes]) -> FuzzStats:
        """Execute fixed inputs without mutation (the §5 replay protocol)."""
        for data in inputs:
            self._execute_and_consider(data)
        self._sync_stats()
        return self.stats

    # -- internals ---------------------------------------------------------------

    def _execute_and_consider(self, data: bytes) -> None:
        outcome = self.executor.execute(data)
        if outcome.result.trap is not None and self.keep_crashes:
            self.stats.crashes += 1
            if len(self.stats.crash_inputs) < 16:
                self.stats.crash_inputs.append(data)
            return
        self.corpus.consider(data, outcome.coverage, self.executor.executions)

    def _note_rebuild(self, report: RebuildReport) -> None:
        self.stats.rebuilds += 1
        self.stats.rebuild_ms += report.wall_ms
        self.stats.rebuild_cpu_ms += report.total_ms

    def _sync_stats(self) -> None:
        self.stats.executions = self.executor.executions
        self.stats.total_cycles = self.executor.total_cycles
        self.stats.corpus_size = len(self.corpus)
        self.stats.coverage = self.corpus.coverage_count


class CmpLogFuzzer(Fuzzer):
    """Fuzzer with CmpLog probes and input-to-state solving.

    The executor must be an :class:`OdinCovExecutor` whose engine also has
    CmpLog probes registered (see :func:`repro.instrument.add_cmp_probes`);
    *cmplog_runtime* collects operand pairs during execution.
    """

    def __init__(self, executor, seeds, cmplog_runtime, cmp_probes, **kwargs):
        super().__init__(executor, seeds, **kwargs)
        self.cmplog_runtime = cmplog_runtime
        self.cmp_probes = {p.id: p for p in cmp_probes}

    def solve_roadblocks(self, max_candidates: int = 64) -> int:
        """Run input-to-state over the corpus; remove solved cmp probes."""
        solved = 0
        pairs_by_probe = dict(self.cmplog_runtime.pairs)
        for probe_id, pairs in pairs_by_probe.items():
            probe = self.cmp_probes.get(probe_id)
            if probe is None or probe.solved:
                continue
            progressed = False
            for entry in list(self.corpus.entries):
                for cand in solve_comparisons(entry.data, pairs, limit_total=8):
                    outcome = self.executor.execute(cand)
                    added = self.corpus.consider(
                        cand, outcome.coverage, self.executor.executions
                    )
                    if added is not None:
                        progressed = True
                if progressed:
                    break
            if progressed:
                probe.solved = True
                probe.last_observed = pairs[-1]
                solved += 1
                # Solved comparisons are no longer roadblocks: drop the probe.
                if probe.id >= 0:
                    self.executor.tool.engine.manager.remove(probe)
                    self.cmp_probes.pop(probe_id, None)
        if solved:
            report = self.executor.tool.engine.rebuild()
            self._note_rebuild(report)
            self.executor._refresh_vm()
            self.stats.solved_comparisons += solved
        self._sync_stats()
        return solved
