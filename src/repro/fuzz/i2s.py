"""Input-to-state correspondence (RedQueen-style comparison solving).

§2.1/§2.2: the CmpLog scheme records comparison operands; "the algorithm
assumes that the collected comparison operands are direct copies of the
original input".  Given a recorded pair (observed, wanted), we search the
input for the observed operand's byte pattern (several widths and both
endiannesses) and substitute the wanted operand's bytes — producing
candidate inputs that flip the comparison.

Because Odin instruments before optimization, the observed values really
are input copies; this module is also used by the Figure 2 correctness
experiment to show the optimized-IR variant's shifted operands break it.
"""

from __future__ import annotations

from typing import List, Set, Tuple


def _encodings(value: int) -> List[bytes]:
    """Candidate byte encodings of an operand value, widest first.

    Wide matches are tried first: they pin down more of the input, and a
    narrow pattern (especially 0x00) often matches everywhere, drowning
    the interesting substitution in noise.
    """
    out: List[bytes] = []
    for width in (8, 4, 2, 1):
        if value < (1 << (8 * width)):
            out.append(value.to_bytes(width, "little"))
            if width > 1:
                out.append(value.to_bytes(width, "big"))
    return out


def substitution_candidates(
    data: bytes, observed: int, wanted: int, limit: int = 8
) -> List[bytes]:
    """Inputs with occurrences of *observed* replaced by *wanted*."""
    candidates: List[bytes] = []
    seen: Set[bytes] = set()
    for pattern in _encodings(observed):
        width = len(pattern)
        replacement = (wanted & ((1 << (8 * width)) - 1)).to_bytes(width, "little")
        start = 0
        while len(candidates) < limit:
            idx = data.find(pattern, start)
            if idx < 0:
                break
            cand = data[:idx] + replacement + data[idx + len(pattern):]
            if cand not in seen:
                seen.add(cand)
                candidates.append(cand)
            start = idx + 1
    return candidates


def solve_comparisons(
    data: bytes,
    pairs: List[Tuple[int, int]],
    limit_per_pair: int = 4,
    limit_total: int = 64,
) -> List[bytes]:
    """Candidate inputs derived from recorded comparison pairs.

    For each (lhs, rhs) pair both directions are tried: make lhs equal
    rhs, and rhs equal lhs.
    """
    out: List[bytes] = []
    seen: Set[bytes] = set()
    for lhs, rhs in pairs:
        if lhs == rhs:
            continue
        for observed, wanted in ((lhs, rhs), (rhs, lhs)):
            for cand in substitution_candidates(data, observed, wanted, limit_per_pair):
                if cand not in seen and cand != data:
                    seen.add(cand)
                    out.append(cand)
                    if len(out) >= limit_total:
                        return out
    return out
