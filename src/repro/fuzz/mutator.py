"""Input mutation strategies (AFL-style havoc subset, deterministic RNG)."""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.utils.rng import DeterministicRNG

INTERESTING_BYTES = [0, 1, 0x7F, 0x80, 0xFF, ord("0"), ord("<"), ord("{")]
INTERESTING_WORDS = [0, 1, 255, 256, 0x7FFF, 0xFFFF]


def bitflip(data: bytes, rng: DeterministicRNG) -> bytes:
    if not data:
        return b"\x00"
    out = bytearray(data)
    pos = rng.randint(0, len(out) - 1)
    out[pos] ^= 1 << rng.randint(0, 7)
    return bytes(out)


def byte_set(data: bytes, rng: DeterministicRNG) -> bytes:
    if not data:
        return bytes([rng.choice(INTERESTING_BYTES)])
    out = bytearray(data)
    out[rng.randint(0, len(out) - 1)] = rng.choice(INTERESTING_BYTES)
    return bytes(out)


def byte_random(data: bytes, rng: DeterministicRNG) -> bytes:
    if not data:
        return rng.bytes(1)
    out = bytearray(data)
    out[rng.randint(0, len(out) - 1)] = rng.randint(0, 255)
    return bytes(out)


def word_set(data: bytes, rng: DeterministicRNG) -> bytes:
    if len(data) < 2:
        return byte_set(data, rng)
    out = bytearray(data)
    pos = rng.randint(0, len(out) - 2)
    value = rng.choice(INTERESTING_WORDS)
    out[pos] = value & 0xFF
    out[pos + 1] = (value >> 8) & 0xFF
    return bytes(out)


def insert_bytes(data: bytes, rng: DeterministicRNG) -> bytes:
    pos = rng.randint(0, len(data))
    chunk = rng.bytes(rng.randint(1, 4))
    return data[:pos] + chunk + data[pos:]


def delete_bytes(data: bytes, rng: DeterministicRNG) -> bytes:
    if len(data) < 2:
        return data
    pos = rng.randint(0, len(data) - 2)
    n = rng.randint(1, min(4, len(data) - pos - 1))
    return data[:pos] + data[pos + n:]


def duplicate_block(data: bytes, rng: DeterministicRNG) -> bytes:
    if not data:
        return data
    pos = rng.randint(0, len(data) - 1)
    n = rng.randint(1, min(8, len(data) - pos))
    return data[:pos + n] + data[pos : pos + n] + data[pos + n:]


MUTATIONS: List[Callable[[bytes, DeterministicRNG], bytes]] = [
    bitflip, byte_set, byte_random, word_set,
    insert_bytes, delete_bytes, duplicate_block,
]

MAX_INPUT_SIZE = 4096


class Mutator:
    """Stacked havoc mutation with optional splicing."""

    def __init__(self, rng: DeterministicRNG, max_size: int = MAX_INPUT_SIZE):
        self.rng = rng
        self.max_size = max_size

    def mutate(self, data: bytes, splice_with: Optional[bytes] = None) -> bytes:
        out = data
        if splice_with is not None and self.rng.chance(0.2) and splice_with:
            cut_a = self.rng.randint(0, len(out))
            cut_b = self.rng.randint(0, len(splice_with) - 1)
            out = out[:cut_a] + splice_with[cut_b:]
        for _ in range(self.rng.randint(1, 4)):
            out = self.rng.choice(MUTATIONS)(out, self.rng)
        return out[: self.max_size]
