"""repro.instrument — instrumentation schemes built on Odin + the late
static SanitizerCoverage analogue."""

from repro.instrument.asan import ASanRuntime, ASanTool, MemAccessProbe
from repro.instrument.base import SanitizerTool
from repro.instrument.cmplog import (
    CmpLogRuntime,
    CmpProbe,
    add_cmp_probes,
)
from repro.instrument.coverage import (
    CoverageRuntime,
    CovProbe,
    OdinCov,
    PruneReport,
)
from repro.instrument.sancov import SanCovBuild, build_sancov, instrument_sancov
from repro.instrument.ubsan import OverflowProbe, UBSanRuntime, UBSanTool

__all__ = [
    "ASanRuntime", "ASanTool", "MemAccessProbe",
    "CmpLogRuntime", "CmpProbe", "add_cmp_probes",
    "CoverageRuntime", "CovProbe", "OdinCov", "PruneReport",
    "SanCovBuild", "SanitizerTool", "build_sancov", "instrument_sancov",
    "OverflowProbe", "UBSanRuntime", "UBSanTool",
]
