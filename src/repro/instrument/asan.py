"""ASan-lite probes: memory-access checks with ASAP-style hot pruning (§7).

AddressSanitizer's essence for this VM: every load/store gets a probe that
validates the accessed range at runtime (the VM knows its own memory map,
standing in for shadow memory).  The §7 future-work twist reproduced here
is online ASAP: "bugs are commonly located in cold checks; to reduce the
overhead of hot checks, ASAP first profiles to locate the hot checks and
then removes them with a rebuild... With Odin, hot checks discovered in
fuzzing can also be removed" — no separate profiling build needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.core.engine import Odin, RebuildReport
from repro.core.probe import InstructionProbe
from repro.errors import VMTrap
from repro.instrument.base import SanitizerTool
from repro.ir.builder import IRBuilder
from repro.ir.instructions import Instruction, LoadInst, StoreInst
from repro.ir.types import FunctionType, I64, PTR, VOID
from repro.ir.values import ConstantInt
from repro.vm.interpreter import ProbeRuntime, VM

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.scheduler import Scheduler

ASAN_RUNTIME = "__asan_check"
_ASAN_FN_TYPE = FunctionType(VOID, (I64, PTR, I64))


class MemAccessProbe(InstructionProbe):
    """Validates the address range of one load or store."""

    family = "asan"

    def __init__(self, inst: Instruction):
        if not isinstance(inst, (LoadInst, StoreInst)):
            raise TypeError("MemAccessProbe targets a load or store")
        super().__init__(inst)
        self.hits = 0  # profile annotation (drives ASAP pruning)

    def instrument(
        self, builder: IRBuilder, mapped: Instruction, sched: "Scheduler"
    ) -> None:
        runtime = sched.declare_runtime(ASAN_RUNTIME, _ASAN_FN_TYPE)
        if isinstance(mapped, LoadInst):
            pointer = mapped.pointer
            size = mapped.type.size
        else:
            pointer = mapped.pointer
            size = mapped.value.type.size
        builder.call(
            runtime,
            [ConstantInt(I64, self.id), pointer, ConstantInt(I64, size)],
            _ASAN_FN_TYPE,
        )


class ASanRuntime(ProbeRuntime):
    """Range-checks accesses against the VM memory map; counts per probe.

    ``trap=False`` turns the runtime into a recording sanitizer: a
    violation is appended to :attr:`violations` and execution continues —
    the always-on "production traffic" mode of run-time partitioned
    sanitization, where a finding is logged rather than fatal.
    """

    def __init__(self, trap: bool = True):
        self.trap = trap
        self.hit_counts: Dict[int, int] = {}
        self.violation: Optional[int] = None
        self.violations: List[int] = []

    def on_probe(self, kind: str, probe_id: int, args: Tuple[int, ...], vm: VM) -> None:
        if kind != "asan" or len(args) < 2:
            return
        self.hit_counts[probe_id] = self.hit_counts.get(probe_id, 0) + 1
        addr, size = args[0], args[1]
        valid = (
            vm.exe.data_base <= addr
            and addr + size <= vm.mem_size
            and (addr + size <= vm.heap_ptr or addr >= vm.stack_ptr)
        )
        if not valid:
            self.violation = probe_id
            self.violations.append(probe_id)
            if self.trap:
                raise VMTrap(
                    f"asan: invalid access of {size} bytes at {addr:#x} "
                    f"(probe {probe_id})",
                    "asan",
                )

    def clear_counts(self) -> None:
        self.hit_counts.clear()


class ASanTool(SanitizerTool):
    """ASan-lite with online hot-check pruning."""

    family = "asan"

    def __init__(self, engine: Odin, *, trap: bool = True):
        super().__init__(engine, ASanRuntime(trap=trap))

    def add_all_access_probes(self) -> int:
        count = 0
        for fn in self.engine.module.defined_functions():
            for inst in fn.instructions():
                if isinstance(inst, (LoadInst, StoreInst)):
                    self.register(MemAccessProbe(inst))
                    count += 1
        return count

    # build()/make_vm()/sync_profiles() come from SanitizerTool.

    def profile_counts(self) -> Dict[int, int]:
        return dict(self.runtime.hit_counts)

    def clear_profile_counts(self) -> None:
        self.runtime.clear_counts()

    def prune_hot_checks(self, hot_fraction: float = 0.2) -> Optional[RebuildReport]:
        """Remove the hottest *hot_fraction* of checks (ASAP, but online).

        *hot_fraction* must lie in ``(0, 1]``: 0 used to silently degrade
        to "prune one probe" via ``max(1, 0)``, and negative values
        sliced the ranking from the tail — pruning the *coldest* checks.
        """
        if not 0.0 < hot_fraction <= 1.0:
            raise ValueError(
                f"hot_fraction must be in (0, 1], got {hot_fraction!r}"
            )
        self.sync_profiles()
        ranked = sorted(
            self.probes.values(), key=lambda p: p.hits, reverse=True
        )
        cutoff = max(1, int(len(ranked) * hot_fraction))
        hot = [p for p in ranked[:cutoff] if p.hits > 0]
        if not hot:
            return None
        for probe in hot:
            self.probes.pop(probe.id, None)
            self.engine.manager.remove(probe)
        return self.engine.rebuild()
