"""Shared scaffolding for probe-family tools.

Every instrumentation scheme in :mod:`repro.instrument` wraps an
:class:`~repro.core.engine.Odin` engine with the same furniture: a probe
registry, an initial instrumented build, a VM factory that installs the
scheme's probe runtime, and a profile-sync loop mapping runtime counters
back onto probe annotations (§1: profiles are first-class probe state).
That used to be copy-pasted per tool; :class:`SanitizerTool` owns it
once, so variant families (run-time partitioned sanitization,
:mod:`repro.variants`) can enumerate probe tools uniformly — build any
tool, fan its runtime into a composite, flip its probes per symbol —
without knowing which sanitizer they are holding.

Subclasses provide probe installation (``add_all_*``) and override the
two profile hooks:

* :meth:`profile_counts` — counters accumulated since the last sync,
  keyed by probe id;
* :meth:`clear_profile_counts` — reset those runtime counters.
"""

from __future__ import annotations

from typing import Dict, Optional, TypeVar

from repro.core.engine import Odin, RebuildReport
from repro.core.probe import Probe
from repro.core.probeset import ProbeSet, SyncOutcome
from repro.vm.interpreter import ProbeRuntime, VM

P = TypeVar("P", bound=Probe)


class SanitizerTool:
    """Base tool: engine + runtime + probes + the shared loops."""

    #: Probe annotation attribute the profile-sync loop accumulates into.
    profile_attr = "hits"

    #: Probe family this tool installs (mirrors its probes' ``family``).
    family = ""

    def __init__(self, engine: Odin, runtime: ProbeRuntime):
        self.engine = engine
        self.runtime = runtime
        self.probes: ProbeSet = ProbeSet(engine.manager, family=self.family)
        #: Lifetime tally of counter events whose probe was gone by sync
        #: time (pruned or de-instrumented mid-window); surfaced by the
        #: profiling report instead of silently vanishing.
        self.unattributed = 0

    def register(self, probe: P) -> P:
        """Register *probe* with the engine and track it in this tool."""
        return self.probes.register(probe)

    # -- builds -----------------------------------------------------------------

    def build(self) -> RebuildReport:
        """Initial instrumented build."""
        return self.engine.initial_build()

    def make_vm(self, extra_runtime: Optional[ProbeRuntime] = None, **kwargs) -> VM:
        """VM over the current executable with this tool's runtime
        installed; *extra_runtime* (e.g. a CmpLog collector) is fanned in
        next to it."""
        from repro.vm.interpreter import CompositeProbeRuntime

        runtime = self.runtime
        if extra_runtime is not None:
            runtime = CompositeProbeRuntime(self.runtime, extra_runtime)
        return VM(self.engine.executable, probe_runtime=runtime, **kwargs)

    # -- profiles ---------------------------------------------------------------

    def profile_counts(self) -> Dict[int, int]:
        """Runtime counters since the last sync (probe id -> count)."""
        return {}

    def clear_profile_counts(self) -> None:
        """Reset the runtime counters consumed by :meth:`sync_profiles`."""

    def sync_profiles(self, clear: bool = True) -> SyncOutcome:
        """Accumulate runtime counters onto probe annotations.

        With ``clear`` (the default) the runtime counters are reset so
        the next sync sees only new activity; pass ``clear=False`` when
        the caller still needs the raw counters (e.g. coverage pruning
        reads the covered set after syncing).

        Counters whose probe id is no longer registered (pruned or
        removed between counting and sync) are folded into the lifetime
        :attr:`unattributed` tally rather than discarded.
        """
        outcome = self.probes.sync_counts(
            self.profile_counts(), self.profile_attr
        )
        self.unattributed += outcome.unattributed
        if clear:
            self.clear_profile_counts()
        return outcome

    # -- probe state ------------------------------------------------------------

    def set_symbol_probes_enabled(self, symbol: str, enabled: bool) -> int:
        """Enable/disable every *registered* probe of this tool targeting
        *symbol*; returns how many probes changed state.

        The budget controllers de-instrument hot functions with this:
        flipping the probes off marks their fragment dirty, and the next
        ``rebuild_if_needed()`` recompiles just that fragment — at the
        stage-1 patch tier when the probes are patchable.
        """
        return self.probes.set_symbol_enabled(symbol, enabled)
