"""CmpLog probes: record comparison operands for input-to-state solving.

The AFL++ "CmpLog" scheme from the paper's §2.1 case study.  Each probe
targets one ``icmp`` of the *original* IR and records both operand values
at runtime.  Because Odin instruments before optimization, the recorded
values are direct copies of what the source compared — the prerequisite of
the input-to-state correspondence algorithm (RedQueen) that optimized-IR
instrumentation breaks (Figure 2's ``chr - 'a'`` shift).

The probe pins its operands with ``freeze`` so value rewrites cannot fold
the observation away even inside the instrumented fragment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Set, Tuple

from repro.core.probe import InstructionProbe
from repro.ir.builder import IRBuilder
from repro.ir.instructions import IcmpInst, Instruction
from repro.ir.types import FunctionType, I64, VOID
from repro.ir.values import ConstantInt
from repro.vm.interpreter import ProbeRuntime, VM

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.scheduler import Scheduler

CMPLOG_RUNTIME = "__cmplog_hit"
_CMPLOG_FN_TYPE = FunctionType(VOID, (I64, I64, I64))

# Cap recorded pairs per probe per execution batch (the real CmpLog map is
# bounded too).
MAX_PAIRS_PER_PROBE = 32


class CmpProbe(InstructionProbe):
    """Records the operands of one comparison (paper §4's ``CmpProbe``)."""

    family = "cmplog"

    def __init__(self, the_cmp: IcmpInst):
        if not isinstance(the_cmp, IcmpInst):
            raise TypeError("CmpProbe targets an icmp instruction")
        super().__init__(the_cmp)
        self.the_cmp = the_cmp
        self.solved = False            # fuzzer annotation: both outcomes seen
        self.last_observed: Tuple[int, int] = (0, 0)

    def instrument(
        self, builder: IRBuilder, mapped: Instruction, sched: "Scheduler"
    ) -> None:
        runtime = sched.declare_runtime(CMPLOG_RUNTIME, _CMPLOG_FN_TYPE)
        lhs, rhs = mapped.operands[0], mapped.operands[1]
        args = []
        for op in (lhs, rhs):
            pinned = builder.freeze(op) if not isinstance(op, ConstantInt) else op
            if op.type.is_pointer():
                wide = builder.ptrtoint(pinned, I64)
            elif op.type.is_integer() and op.type.bits < 64:
                wide = builder.zext(pinned, I64)
            else:
                wide = pinned
            args.append(wide)
        builder.call(
            runtime, [ConstantInt(I64, self.id), args[0], args[1]], _CMPLOG_FN_TYPE
        )


class CmpLogRuntime(ProbeRuntime):
    """Collects (probe id -> operand pairs) during execution."""

    def __init__(self):
        self.pairs: Dict[int, List[Tuple[int, int]]] = {}

    def on_probe(self, kind: str, probe_id: int, args: Tuple[int, ...], vm: VM) -> None:
        if kind != "cmplog" or len(args) < 2:
            return
        bucket = self.pairs.setdefault(probe_id, [])
        if len(bucket) < MAX_PAIRS_PER_PROBE:
            pair = (args[0], args[1])
            if pair not in bucket:
                bucket.append(pair)

    def clear(self) -> None:
        self.pairs.clear()


def add_cmp_probes(engine, functions: Set[str] = None) -> List[CmpProbe]:
    """Attach a CmpProbe to every non-constant comparison in the program
    (or only in *functions* if given)."""
    probes: List[CmpProbe] = []
    for fn in engine.module.defined_functions():
        if functions is not None and fn.name not in functions:
            continue
        for inst in fn.instructions():
            if isinstance(inst, IcmpInst):
                if isinstance(inst.lhs, ConstantInt) and isinstance(inst.rhs, ConstantInt):
                    continue
                probes.append(engine.manager.add(CmpProbe(inst)))
    return probes
