"""OdinCov: basic-block hit-count coverage with runtime probe pruning.

The paper's demonstration tool (§5): "we implement OdinCov to record the
hit count for each basic block and prune unused probes at runtime like
Untracer does.  We also implement OdinCov-NoPrune, a weakened version of
OdinCov without runtime probe pruning."

The probe logic really is tiny — mirroring the paper's 33-lines-of-code
claim — because the framework handles fragments, scheduling and mapping:

* :class:`CovProbe.instrument` emits one runtime call;
* :meth:`OdinCov.prune_covered` removes probes whose counter fired and
  triggers one on-the-fly recompilation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.core.engine import Odin, RebuildReport
from repro.core.probe import BlockProbe
from repro.instrument.base import SanitizerTool
from repro.ir.builder import IRBuilder
from repro.ir.types import FunctionType, I64, VOID
from repro.ir.values import ConstantInt
from repro.vm.interpreter import ProbeRuntime, VM

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.scheduler import Scheduler

ODIN_COV_RUNTIME = "__odin_cov_hit"
_COV_FN_TYPE = FunctionType(VOID, (I64,))


def _is_forwarding_block(block) -> bool:
    """A block holding only an unconditional branch."""
    from repro.ir.instructions import BranchInst

    if len(block.instructions) != 1:
        return False
    term = block.instructions[0]
    return isinstance(term, BranchInst) and not term.is_conditional


class CovProbe(BlockProbe):
    """Hit-count probe for one basic block.

    Coverage probes are stage-1 *patchable*: the counter call lowers to
    one register-free ``probe`` instruction, so enable/disable flips are
    serviced by patching the cached object instead of recompiling.
    """

    patchable = True
    family = "cov"

    def __init__(self, function, block):
        super().__init__(function, block)
        self.hits = 0  # probe-specific annotation, updated from profiles

    def instrument(self, builder: IRBuilder, sched: "Scheduler") -> None:
        runtime = sched.declare_runtime(ODIN_COV_RUNTIME, _COV_FN_TYPE)
        builder.call(runtime, [ConstantInt(I64, self.id)], _COV_FN_TYPE)


class CoverageRuntime(ProbeRuntime):
    """VM-side counter table: probe id -> hit count."""

    def __init__(self):
        self.counters: Dict[int, int] = {}

    def on_probe(self, kind: str, probe_id: int, args: Tuple[int, ...], vm: VM) -> None:
        if kind == "cov":
            self.counters[probe_id] = self.counters.get(probe_id, 0) + 1

    def covered_ids(self) -> List[int]:
        return [pid for pid, hits in self.counters.items() if hits > 0]

    def clear(self) -> None:
        self.counters.clear()


@dataclass
class PruneReport:
    """Outcome of one pruning pass."""

    pruned: int = 0
    remaining: int = 0
    rebuild: Optional[RebuildReport] = None


class OdinCov(SanitizerTool):
    """Coverage tool over an :class:`Odin` engine.

    ``prune=False`` gives OdinCov-NoPrune: probes stay in forever.
    """

    family = "cov"

    def __init__(self, engine: Odin, *, prune: bool = True, rebuild_fn=None):
        super().__init__(engine, CoverageRuntime())
        self.prune = prune
        # How on-the-fly recompiles run: directly on the engine (default)
        # or through a recompilation-service client
        # (``rebuild_fn=client.rebuild_report``), which batches this
        # tool's rebuilds with every other client's.
        self._rebuild = rebuild_fn if rebuild_fn is not None else engine.rebuild

    # -- setup -----------------------------------------------------------------

    def add_all_block_probes(self) -> int:
        """One probe per basic block of every defined function.

        Pure forwarding blocks (a lone unconditional branch) are skipped:
        executing one implies executing its successor, so a probe there
        duplicates the successor's probe — the same instrumentation-point
        selection real coverage passes make.
        """
        count = 0
        for fn in self.engine.module.defined_functions():
            for block in fn.blocks:
                if _is_forwarding_block(block):
                    continue
                self.register(CovProbe(fn, block))
                count += 1
        return count

    # -- the on-demand part -------------------------------------------------------
    # build() and make_vm() come from SanitizerTool; the profile hooks
    # below plug the coverage counters into its shared sync loop.

    def profile_counts(self) -> Dict[int, int]:
        return dict(self.runtime.counters)

    def clear_profile_counts(self) -> None:
        self.runtime.clear()

    def sync_hit_counts(self) -> None:
        """Map runtime counters back onto probe annotations (§1: first-class
        profiling support).  Leaves the raw counters in place — pruning
        still needs the covered set after syncing."""
        self.sync_profiles(clear=False)

    def prune_covered(self) -> PruneReport:
        """Remove probes whose block was covered; recompile on the fly.

        OdinCov-NoPrune keeps every probe, but the hit counts still sync:
        callers rely on ``prune_covered`` being the one cadence point
        where runtime counters land on ``CovProbe.hits`` regardless of
        pruning mode.  The NoPrune sync *clears* the runtime counters —
        leaving them would double-count on the next call.
        """
        report = PruneReport()
        if not self.prune:
            self.sync_profiles(clear=True)
            report.remaining = len(self.probes)
            return report
        self.sync_hit_counts()
        for pid in self.runtime.covered_ids():
            probe = self.probes.pop(pid, None)
            if probe is not None and probe.id >= 0:
                self.engine.manager.remove(probe)
                report.pruned += 1
        self.runtime.clear()
        report.remaining = len(self.probes)
        if report.pruned:
            report.rebuild = self._rebuild()
        return report
