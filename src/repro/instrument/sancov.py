"""SanitizerCoverage analogue: late static coverage instrumentation.

The industry design point the paper compares against (§5): "as an
industry-standard instrumentation tool, SanitizerCoverage compromises
instrumentation correctness for speed.  The pass is placed at the very
end of the optimization pipeline, since early instrumentation may break
optimizations."

So this pass:

* optimizes the module FIRST with the full O2 pipeline,
* then inserts one 8-bit-counter-style probe per *optimized* basic block,
* and lowers straight to machine code — probes are never re-optimized
  and never removed.

Fast (no optimization inhibited) but semantically distorted: blocks that
were folded away (Figure 2) can never be distinguished by its feedback.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.backend.isel import lower_module
from repro.ir.builder import IRBuilder
from repro.ir.instructions import PhiInst
from repro.ir.module import Module
from repro.ir.types import FunctionType, I64, VOID
from repro.ir.values import ConstantInt
from repro.linker.linker import Executable, link
from repro.opt.pipeline import optimize

SANCOV_RUNTIME = "__sancov_hit"
_COV_FN_TYPE = FunctionType(VOID, (I64,))


@dataclass
class SanCovBuild:
    """A SanitizerCoverage-instrumented build."""

    executable: Executable
    # probe id -> (function name, block name) in the *optimized* IR
    probe_sites: Dict[int, Tuple[str, str]] = field(default_factory=dict)
    compile_ms: float = 0.0

    @property
    def num_probes(self) -> int:
        return len(self.probe_sites)


def instrument_sancov(module: Module) -> Dict[int, Tuple[str, str]]:
    """Insert a coverage probe at the head of every (optimized) block.

    Mutates *module*; returns probe id -> site mapping.
    """
    runtime = module.declare_function(SANCOV_RUNTIME, _COV_FN_TYPE)
    sites: Dict[int, Tuple[str, str]] = {}
    next_id = 0
    for fn in module.defined_functions():
        for block in fn.blocks:
            anchor = next(
                (i for i in block.instructions if not isinstance(i, PhiInst)), None
            )
            if anchor is None:
                continue
            builder = IRBuilder.before(anchor)
            builder.call(runtime, [ConstantInt(I64, next_id)], _COV_FN_TYPE)
            sites[next_id] = (fn.name, block.name)
            next_id += 1
    return sites


def build_sancov(module: Module, opt_level: int = 2) -> SanCovBuild:
    """Optimize-then-instrument build (mutates *module*)."""
    optimize(module, opt_level)
    sites = instrument_sancov(module)
    obj = lower_module(module)
    exe = link([obj])
    return SanCovBuild(executable=exe, probe_sites=sites, compile_ms=obj.compile_ms)
