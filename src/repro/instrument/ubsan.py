"""UBSan-lite probes: signed-overflow checks with on-demand removal (§7).

The paper's future-work case: "Because of its high false-positive rate,
most programs terminate even on well-formed inputs.  With Odin, UBSan can
be used with fuzzing easily: a faulty probe can be removed immediately
once triggered, allowing the whole fuzz campaign to continue."

Each probe guards one signed ``add``/``sub``/``mul``: it computes the
would-be wide result, compares against the narrow result, and calls the
check runtime with the overflow condition.  The runtime traps when the
condition holds; :class:`UBSanTool` then removes that probe and rebuilds,
so the campaign continues.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.analysis.dataflow import compute_value_ranges, may_overflow
from repro.core.engine import Odin, RebuildReport
from repro.core.probe import InstructionProbe
from repro.errors import VMTrap
from repro.instrument.base import SanitizerTool
from repro.ir.builder import IRBuilder
from repro.ir.instructions import BinaryInst, Instruction
from repro.ir.types import FunctionType, I1, I64, VOID
from repro.ir.values import ConstantInt
from repro.vm.interpreter import ProbeRuntime, VM

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.scheduler import Scheduler

UBSAN_RUNTIME = "__ubsan_check"
_UBSAN_FN_TYPE = FunctionType(VOID, (I64, I1))

_CHECKED_OPCODES = ("add", "sub", "mul")


class OverflowProbe(InstructionProbe):
    """Checks one signed arithmetic instruction for overflow."""

    family = "ubsan"

    def __init__(self, inst: BinaryInst):
        if not (isinstance(inst, BinaryInst) and inst.opcode in _CHECKED_OPCODES):
            raise TypeError("OverflowProbe targets add/sub/mul")
        super().__init__(inst)
        self.triggered = False  # fuzzer annotation
        self.hits = 0           # overflow fires synced from the runtime

    def instrument(
        self, builder: IRBuilder, mapped: Instruction, sched: "Scheduler"
    ) -> None:
        runtime = sched.declare_runtime(UBSAN_RUNTIME, _UBSAN_FN_TYPE)
        bits = mapped.type.bits
        if bits >= 64:
            return  # widening check needs a wider type than we have
        lhs, rhs = mapped.operands[0], mapped.operands[1]
        wide_l = builder.sext(lhs, I64) if not isinstance(lhs, ConstantInt) else \
            ConstantInt(I64, lhs.signed)
        wide_r = builder.sext(rhs, I64) if not isinstance(rhs, ConstantInt) else \
            ConstantInt(I64, rhs.signed)
        wide = builder.binop(mapped.opcode, wide_l, wide_r)
        lo = ConstantInt(I64, -(1 << (bits - 1)))
        hi = ConstantInt(I64, (1 << (bits - 1)) - 1)
        too_small = builder.icmp("slt", wide, lo)
        too_big = builder.icmp("sgt", wide, hi)
        overflow = builder.or_(too_small, too_big)
        builder.call(runtime, [ConstantInt(I64, self.id), overflow], _UBSAN_FN_TYPE)


class UBSanRuntime(ProbeRuntime):
    """Traps on the first overflow; records which probe fired.

    ``trap=False`` records fires without aborting — the always-on
    recording mode run-time partitioned sanitization uses, where the
    paper's "high false-positive rate" must not kill production traffic.
    """

    def __init__(self, trap: bool = True):
        self.trap = trap
        self.fired: Optional[int] = None
        self.fire_counts: Dict[int, int] = {}

    def on_probe(self, kind: str, probe_id: int, args: Tuple[int, ...], vm: VM) -> None:
        if kind != "ubsan" or not args:
            return
        if args[0]:
            self.fired = probe_id
            self.fire_counts[probe_id] = self.fire_counts.get(probe_id, 0) + 1
            if self.trap:
                raise VMTrap(f"ubsan: signed overflow at probe {probe_id}", "ubsan")

    def clear(self) -> None:
        self.fired = None

    def clear_counts(self) -> None:
        self.fire_counts.clear()


class UBSanTool(SanitizerTool):
    """UBSan with Odin-style on-demand probe removal."""

    family = "ubsan"

    def __init__(self, engine: Odin, *, trap: bool = True):
        super().__init__(engine, UBSanRuntime(trap=trap))
        self.removed: List[int] = []
        self.pruned = 0  # probes statically discharged by guided placement

    def add_all_overflow_probes(self, *, guided: bool = False) -> int:
        """Probe every narrow signed add/sub/mul.

        With ``guided=True`` the signed value-range analysis
        (:mod:`repro.analysis.dataflow`) decides placement: instructions
        whose operand ranges prove the result fits its type are skipped
        and counted in :attr:`pruned` — the PartiSan idea of sanitizing
        selectively, settled statically instead of by runtime variants.
        """
        count = 0
        self.pruned = 0
        for fn in self.engine.module.defined_functions():
            ranges = compute_value_ranges(fn) if guided else None
            for inst in fn.instructions():
                if (
                    isinstance(inst, BinaryInst)
                    and inst.opcode in _CHECKED_OPCODES
                    and inst.type.bits < 64
                ):
                    if guided and not may_overflow(inst, ranges):
                        self.pruned += 1
                        continue
                    self.register(OverflowProbe(inst))
                    count += 1
        return count

    # build()/make_vm()/sync_profiles() come from SanitizerTool.

    def profile_counts(self) -> Dict[int, int]:
        return dict(self.runtime.fire_counts)

    def clear_profile_counts(self) -> None:
        self.runtime.clear_counts()

    def remove_fired_probe(self) -> Optional[RebuildReport]:
        """Drop the probe that trapped and recompile on the fly."""
        fired = self.runtime.fired
        if fired is None:
            return None
        probe = self.probes.pop(fired, None)
        self.runtime.clear()
        if probe is None:
            return None
        probe.triggered = True
        self.removed.append(fired)
        self.engine.manager.remove(probe)
        return self.engine.rebuild()
