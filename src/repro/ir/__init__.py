"""repro.ir — the typed SSA intermediate representation.

Public surface:

* types: I1 ... I64, PTR, VOID, ArrayType, FunctionType
* values: ConstantInt, ConstantData, GlobalVariable, GlobalAlias
* structure: Module, Function, BasicBlock
* construction: IRBuilder, build_function
* text: parse_module, print_module
* surgery: clone_module, extract_module
* checking: verify_module
"""

from repro.ir.analysis import (
    bottom_up_sccs,
    call_graph,
    compute_dominators,
    find_loops,
    predecessor_map,
    reachable_blocks,
)
from repro.ir.builder import IRBuilder, build_function, split_block
from repro.ir.clone import ClonedModule, ValueMap, clone_module, extract_module
from repro.ir.instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    FreezeInst,
    GepInst,
    IcmpInst,
    Instruction,
    LoadInst,
    PhiInst,
    RetInst,
    SelectInst,
    StoreInst,
    SwitchInst,
    UnreachableInst,
)
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.parser import parse_module
from repro.ir.printer import print_function, print_module
from repro.ir.types import (
    ArrayType,
    FunctionType,
    I1,
    I16,
    I32,
    I64,
    I8,
    IntType,
    PTR,
    Type,
    VOID,
)
from repro.ir.values import (
    Argument,
    Constant,
    ConstantArray,
    ConstantData,
    ConstantInt,
    GlobalAlias,
    GlobalValue,
    GlobalVariable,
    NullPtr,
    UndefValue,
    Value,
)
from repro.ir.verifier import verify_function, verify_module

__all__ = [
    "ArrayType", "FunctionType", "I1", "I8", "I16", "I32", "I64", "IntType",
    "PTR", "Type", "VOID",
    "Argument", "Constant", "ConstantArray", "ConstantData", "ConstantInt",
    "GlobalAlias", "GlobalValue", "GlobalVariable", "NullPtr", "UndefValue",
    "Value",
    "AllocaInst", "BinaryInst", "BranchInst", "CallInst", "CastInst",
    "FreezeInst", "GepInst", "IcmpInst", "Instruction", "LoadInst", "PhiInst",
    "RetInst", "SelectInst", "StoreInst", "SwitchInst", "UnreachableInst",
    "BasicBlock", "Function", "Module",
    "IRBuilder", "build_function", "split_block",
    "parse_module", "print_function", "print_module",
    "ClonedModule", "ValueMap", "clone_module", "extract_module",
    "verify_function", "verify_module",
    "bottom_up_sccs", "call_graph", "compute_dominators", "find_loops",
    "predecessor_map", "reachable_blocks",
]
