"""Control-flow analyses: reachability, dominators, natural loops, call graph.

These are the "sophisticated online static analysis" building blocks the
paper says Odin's whole-program-IR design enables (§1), and they also feed
the optimizer (simplifycfg, loop unroll) and the verifier.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.ir.instructions import BranchInst, CallInst, SwitchInst
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.values import ConstantInt


def reachable_blocks(fn: Function) -> List[BasicBlock]:
    """Blocks reachable from the entry, in reverse-postorder."""
    seen: Set[int] = set()
    order: List[BasicBlock] = []

    def visit(block: BasicBlock) -> None:
        if id(block) in seen:
            return
        seen.add(id(block))
        for succ in block.successors():
            visit(succ)
        order.append(block)

    visit(fn.entry)
    order.reverse()
    return order


def feasible_successors(block: BasicBlock) -> List[BasicBlock]:
    """Successors that can actually be taken: a conditional branch or a
    switch on a constant scrutinee only ever follows its decided edge."""
    term = block.terminator
    if term is None:
        return []
    if (
        isinstance(term, BranchInst)
        and term.is_conditional
        and isinstance(term.cond, ConstantInt)
    ):
        return [term.targets[0] if term.cond.value else term.targets[1]]
    if isinstance(term, SwitchInst) and isinstance(term.value, ConstantInt):
        for const, target in term.cases:
            if const.value == term.value.value:
                return [target]
        return [term.default]
    return term.successors()


def executable_blocks(fn: Function) -> List[BasicBlock]:
    """Blocks reachable from the entry along *feasible* edges only.

    A strict refinement of :func:`reachable_blocks`: the never-taken arm
    of a constant-folded branch is reachable by CFG edges but can never
    execute.  The probe-integrity sanitizer keys on this — deleting a
    probe there is a legitimate optimization, not a distortion.
    """
    seen: Set[int] = set()
    order: List[BasicBlock] = []

    def visit(block: BasicBlock) -> None:
        if id(block) in seen:
            return
        seen.add(id(block))
        for succ in feasible_successors(block):
            visit(succ)
        order.append(block)

    visit(fn.entry)
    order.reverse()
    return order


def predecessor_map(fn: Function) -> Dict[BasicBlock, List[BasicBlock]]:
    preds: Dict[BasicBlock, List[BasicBlock]] = {b: [] for b in fn.blocks}
    for block in fn.blocks:
        for succ in block.successors():
            preds[succ].append(block)
    return preds


def compute_dominators(fn: Function) -> Dict[BasicBlock, Optional[BasicBlock]]:
    """Immediate dominators via the classic Cooper-Harvey-Kennedy iteration.

    Returns ``{block: idom}`` for reachable blocks; the entry maps to None.
    """
    rpo = reachable_blocks(fn)
    index = {id(b): i for i, b in enumerate(rpo)}
    preds = predecessor_map(fn)

    idom: Dict[BasicBlock, Optional[BasicBlock]] = {fn.entry: None}

    def intersect(a: BasicBlock, b: BasicBlock) -> BasicBlock:
        while a is not b:
            while index[id(a)] > index[id(b)]:
                a = idom[a]
            while index[id(b)] > index[id(a)]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for block in rpo[1:]:
            candidates = [p for p in preds[block] if p in idom]
            if not candidates:
                continue
            new_idom = candidates[0]
            for p in candidates[1:]:
                new_idom = intersect(new_idom, p)
            if idom.get(block) is not new_idom:
                idom[block] = new_idom
                changed = True
    return idom


def dominates(
    idom: Dict[BasicBlock, Optional[BasicBlock]], a: BasicBlock, b: BasicBlock
) -> bool:
    """Whether *a* dominates *b* under the idom tree."""
    node: Optional[BasicBlock] = b
    while node is not None:
        if node is a:
            return True
        node = idom.get(node)
    return False


class NaturalLoop:
    """A natural loop: header plus the body blocks of one back edge."""

    def __init__(self, header: BasicBlock, blocks: Set[BasicBlock], latch: BasicBlock):
        self.header = header
        self.blocks = blocks
        self.latch = latch

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Loop header={self.header.name} size={len(self.blocks)}>"


def find_loops(fn: Function) -> List[NaturalLoop]:
    """Find natural loops from back edges (latch -> header with header dom latch)."""
    idom = compute_dominators(fn)
    preds = predecessor_map(fn)
    reachable = set(reachable_blocks(fn))
    loops: List[NaturalLoop] = []
    for block in reachable_blocks(fn):
        for succ in block.successors():
            if succ in idom and dominates(idom, succ, block):
                body: Set[BasicBlock] = {succ, block}
                stack = [block]
                while stack:
                    node = stack.pop()
                    if node is succ:
                        continue
                    for pred in preds[node]:
                        # An unreachable predecessor can never execute;
                        # letting it leak into the body would poison
                        # loop-local transforms (e.g. unroll cloning).
                        if pred not in body and pred in reachable:
                            body.add(pred)
                            stack.append(pred)
                loops.append(NaturalLoop(succ, body, block))
    return loops


def call_graph(module: Module) -> Dict[str, Set[str]]:
    """Direct-call graph: caller name -> set of callee names."""
    graph: Dict[str, Set[str]] = {}
    for fn in module.defined_functions():
        callees: Set[str] = set()
        for inst in fn.instructions():
            if isinstance(inst, CallInst):
                name = inst.called_function_name()
                if name is not None:
                    callees.add(name)
        graph[fn.name] = callees
    return graph


def bottom_up_sccs(module: Module) -> List[List[str]]:
    """Strongly-connected components of the call graph in bottom-up order.

    The inliner visits callees before callers, mirroring LLVM's bottom-up
    inlining over call-graph SCCs (§2.2: "the classic Inline pass also
    clones basic blocks, but in a bottom-up fashion along the call graph").
    Tarjan's algorithm, iterative to survive deep graphs.
    """
    graph = call_graph(module)
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = [0]

    def strongconnect(root: str) -> None:
        work: List[Tuple[str, List[str]]] = [(root, list(sorted(graph.get(root, ()))))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children = work[-1]
            advanced = False
            while children:
                child = children.pop(0)
                if child not in graph:
                    continue  # declaration or external
                if child not in index:
                    index[child] = lowlink[child] = counter[0]
                    counter[0] += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, list(sorted(graph.get(child, ())))))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                scc: List[str] = []
                while True:
                    top = stack.pop()
                    on_stack.discard(top)
                    scc.append(top)
                    if top == node:
                        break
                sccs.append(sorted(scc))

    for name in sorted(graph):
        if name not in index:
            strongconnect(name)
    return sccs
