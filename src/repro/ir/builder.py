"""IRBuilder: ergonomic construction of IR, mirroring ``llvm::IRBuilder``.

The paper's user-facing API (§4) instruments by positioning an ``IRBuilder``
at an instruction and emitting calls; this class provides the same workflow:

    builder = IRBuilder.before(the_cmp)
    builder.call(runtime_fn, [a, b])
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.errors import IRError, IRTypeError
from repro.ir.instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    FreezeInst,
    GepInst,
    IcmpInst,
    Instruction,
    LoadInst,
    PhiInst,
    RetInst,
    SelectInst,
    StoreInst,
    SwitchInst,
    UnreachableInst,
)
from repro.ir.module import BasicBlock, Function
from repro.ir.types import FunctionType, IntType, Type
from repro.ir.values import ConstantInt, Value


class IRBuilder:
    """Emits instructions at an insertion point inside a basic block."""

    def __init__(self, block: Optional[BasicBlock] = None):
        self._block = block
        self._anchor: Optional[Instruction] = None  # insert before this

    # -- positioning ----------------------------------------------------------

    @classmethod
    def at_end(cls, block: BasicBlock) -> "IRBuilder":
        builder = cls(block)
        return builder

    @classmethod
    def before(cls, inst: Instruction) -> "IRBuilder":
        if inst.parent is None:
            raise IRError("cannot position builder at a detached instruction")
        builder = cls(inst.parent)
        builder._anchor = inst
        return builder

    def position_at_end(self, block: BasicBlock) -> None:
        self._block = block
        self._anchor = None

    def position_before(self, inst: Instruction) -> None:
        if inst.parent is None:
            raise IRError("cannot position builder at a detached instruction")
        self._block = inst.parent
        self._anchor = inst

    @property
    def block(self) -> BasicBlock:
        if self._block is None:
            raise IRError("builder has no insertion point")
        return self._block

    @property
    def function(self) -> Function:
        fn = self.block.parent
        if fn is None:
            raise IRError("builder block is detached from a function")
        return fn

    def _insert(self, inst: Instruction) -> Instruction:
        if self._anchor is not None:
            return self.block.insert_before(self._anchor, inst)
        return self.block.append(inst)

    # -- constants -------------------------------------------------------------

    @staticmethod
    def const(type_: IntType, value: int) -> ConstantInt:
        return ConstantInt(type_, value)

    # -- arithmetic --------------------------------------------------------------

    def binop(self, opcode: str, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self._insert(BinaryInst(opcode, lhs, rhs, name))

    def add(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("add", lhs, rhs, name)

    def sub(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("sub", lhs, rhs, name)

    def mul(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("mul", lhs, rhs, name)

    def sdiv(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("sdiv", lhs, rhs, name)

    def udiv(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("udiv", lhs, rhs, name)

    def srem(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("srem", lhs, rhs, name)

    def and_(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("and", lhs, rhs, name)

    def or_(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("or", lhs, rhs, name)

    def xor(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("xor", lhs, rhs, name)

    def shl(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("shl", lhs, rhs, name)

    def lshr(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("lshr", lhs, rhs, name)

    def ashr(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("ashr", lhs, rhs, name)

    def icmp(self, predicate: str, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self._insert(IcmpInst(predicate, lhs, rhs, name))

    def select(self, cond: Value, a: Value, b: Value, name: str = "") -> Value:
        return self._insert(SelectInst(cond, a, b, name))

    def freeze(self, value: Value, name: str = "") -> Value:
        return self._insert(FreezeInst(value, name))

    # -- casts ---------------------------------------------------------------------

    def zext(self, value: Value, to_type: Type, name: str = "") -> Value:
        return self._insert(CastInst("zext", value, to_type, name))

    def sext(self, value: Value, to_type: Type, name: str = "") -> Value:
        return self._insert(CastInst("sext", value, to_type, name))

    def trunc(self, value: Value, to_type: Type, name: str = "") -> Value:
        return self._insert(CastInst("trunc", value, to_type, name))

    def int_cast(self, value: Value, to_type: Type, signed: bool, name: str = "") -> Value:
        """Widen, narrow or pass through an integer value to *to_type*."""
        if not (value.type.is_integer() and to_type.is_integer()):
            raise IRTypeError("int_cast needs integer types")
        if value.type is to_type:
            return value
        if to_type.bits > value.type.bits:
            return self.sext(value, to_type, name) if signed else self.zext(value, to_type, name)
        return self.trunc(value, to_type, name)

    def ptrtoint(self, value: Value, to_type: Type, name: str = "") -> Value:
        return self._insert(CastInst("ptrtoint", value, to_type, name))

    def inttoptr(self, value: Value, to_type: Type, name: str = "") -> Value:
        return self._insert(CastInst("inttoptr", value, to_type, name))

    # -- memory ----------------------------------------------------------------------

    def alloca(self, allocated_type: Type, name: str = "") -> Value:
        return self._insert(AllocaInst(allocated_type, name))

    def load(self, loaded_type: Type, pointer: Value, name: str = "") -> Value:
        return self._insert(LoadInst(loaded_type, pointer, name))

    def store(self, value: Value, pointer: Value) -> Instruction:
        return self._insert(StoreInst(value, pointer))

    def gep(self, element_type: Type, base: Value, index: Value, name: str = "") -> Value:
        return self._insert(GepInst(element_type, base, index, name))

    # -- calls ------------------------------------------------------------------------

    def call(
        self,
        callee: Union[Function, Value],
        args: Sequence[Value],
        function_type: Optional[FunctionType] = None,
        name: str = "",
    ) -> Value:
        if function_type is None:
            if not isinstance(callee, Function):
                raise IRTypeError("indirect calls must state their function type")
            function_type = callee.function_type
        return self._insert(CallInst(callee, args, function_type, name))

    # -- control flow ---------------------------------------------------------------------

    def br(self, target: BasicBlock) -> Instruction:
        return self._insert(BranchInst(target))

    def condbr(self, cond: Value, if_true: BasicBlock, if_false: BasicBlock) -> Instruction:
        return self._insert(BranchInst(if_true, cond, if_false))

    def switch(self, value: Value, default: BasicBlock) -> SwitchInst:
        inst = SwitchInst(value, default)
        self._insert(inst)
        return inst

    def ret(self, value: Optional[Value] = None) -> Instruction:
        return self._insert(RetInst(value))

    def unreachable(self) -> Instruction:
        return self._insert(UnreachableInst())

    def phi(self, type_: Type, name: str = "") -> PhiInst:
        """Insert a phi at the *start* of the current block."""
        block = self.block
        inst = PhiInst(type_, name)
        inst.parent = block
        if not inst.type.is_void() and block.parent is not None:
            inst.name = block.parent.uniquify_value_name(inst.name or "phi")
        # Phis must precede all non-phi instructions.
        idx = 0
        while idx < len(block.instructions) and isinstance(block.instructions[idx], PhiInst):
            idx += 1
        block.instructions.insert(idx, inst)
        return inst


def build_function(
    module,
    name: str,
    function_type: FunctionType,
    param_names: Sequence[str] = (),
    linkage: str = "external",
) -> tuple:
    """Create a function with an entry block; return (function, builder, args)."""
    fn = Function(name, function_type, param_names, linkage)
    module.add(fn)
    entry = fn.add_block("entry")
    builder = IRBuilder.at_end(entry)
    return fn, builder, list(fn.args)


def split_block(block: BasicBlock, at: Instruction, new_name: str = "split") -> BasicBlock:
    """Split *block* before *at*; the tail moves to a new block.

    The original block gets an unconditional branch to the new block.
    Phi nodes in successors are retargeted to the new block.
    """
    fn = block.parent
    if fn is None:
        raise IRError("cannot split a detached block")
    idx = block.instructions.index(at)
    tail = block.instructions[idx:]
    block.instructions = block.instructions[:idx]

    new_block = fn.add_block(new_name)
    for inst in tail:
        inst.parent = new_block
        new_block.instructions.append(inst)

    # Successor phis must now see the new block as predecessor.
    for succ in new_block.successors():
        for phi in succ.phis():
            phi.replace_incoming_block(block, new_block)

    IRBuilder.at_end(block).br(new_block)
    return new_block
