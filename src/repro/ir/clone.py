"""Cloning and extraction of IR.

Two operations drive the whole Odin pipeline (§3.3):

* :func:`clone_module` — the scheduler "creates a temporary IR by
  duplicating all changed symbols inside the original IR"; the returned
  :class:`ValueMap` is what the user-facing ``Scheduler.map()`` exposes.

* :func:`extract_module` — fragment extraction: take a set of symbols to
  *define*, import (declare) everything else they reference, and clone
  "Copy-on-use" symbols locally so local optimization keeps its context.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import IRError
from repro.ir.instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    FreezeInst,
    GepInst,
    IcmpInst,
    Instruction,
    LoadInst,
    PhiInst,
    RetInst,
    SelectInst,
    StoreInst,
    SwitchInst,
    UnreachableInst,
)
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.types import FunctionType
from repro.ir.values import (
    Argument,
    Constant,
    GlobalAlias,
    GlobalValue,
    GlobalVariable,
    Value,
)


class ValueMap:
    """Maps original values to their clones (identity-keyed)."""

    def __init__(self):
        self._map: Dict[int, Value] = {}
        self._blocks: Dict[int, BasicBlock] = {}

    def put(self, original: Value, clone: Value) -> None:
        self._map[id(original)] = clone

    def get(self, original: Value) -> Value:
        """Translate *original*.

        Constants map to themselves.  Unmapped globals also map to
        themselves, which is what same-module cloning (inlining, loop
        unrolling) needs; cross-module cloning pre-populates the map with
        clones/declarations for every referenced global, and the module
        verifier catches any reference that slips through.
        """
        hit = self._map.get(id(original))
        if hit is not None:
            return hit
        if isinstance(original, (Constant, GlobalValue)):
            return original
        raise IRError(f"value {original!r} has no clone in this mapping")

    def get_or_none(self, original: Value) -> Optional[Value]:
        return self._map.get(id(original))

    def put_block(self, original: BasicBlock, clone: BasicBlock) -> None:
        self._blocks[id(original)] = clone

    def get_block(self, original: BasicBlock) -> BasicBlock:
        try:
            return self._blocks[id(original)]
        except KeyError:
            raise IRError(f"block {original.name} has no clone in this mapping") from None

    def __contains__(self, original: Value) -> bool:
        return id(original) in self._map


def clone_instruction(inst: Instruction, vmap: ValueMap) -> Instruction:
    """Clone one instruction, translating operands through *vmap*.

    Phi incomings are translated lazily by :func:`clone_function_body`
    because they may reference not-yet-cloned values/blocks.
    """
    op = vmap.get
    if isinstance(inst, BinaryInst):
        return BinaryInst(inst.opcode, op(inst.lhs), op(inst.rhs), inst.name)
    if isinstance(inst, IcmpInst):
        return IcmpInst(inst.predicate, op(inst.lhs), op(inst.rhs), inst.name)
    if isinstance(inst, CastInst):
        return CastInst(inst.opcode, op(inst.value), inst.type, inst.name)
    if isinstance(inst, SelectInst):
        return SelectInst(op(inst.cond), op(inst.if_true), op(inst.if_false), inst.name)
    if isinstance(inst, FreezeInst):
        return FreezeInst(op(inst.value), inst.name)
    if isinstance(inst, AllocaInst):
        return AllocaInst(inst.allocated_type, inst.name)
    if isinstance(inst, LoadInst):
        return LoadInst(inst.type, op(inst.pointer), inst.name)
    if isinstance(inst, StoreInst):
        return StoreInst(op(inst.value), op(inst.pointer))
    if isinstance(inst, GepInst):
        return GepInst(inst.element_type, op(inst.base), op(inst.index), inst.name)
    if isinstance(inst, CallInst):
        return CallInst(
            op(inst.callee), [op(a) for a in inst.args], inst.function_type, inst.name
        )
    if isinstance(inst, PhiInst):
        return PhiInst(inst.type, inst.name)  # incomings filled in later
    if isinstance(inst, BranchInst):
        if inst.is_conditional:
            t, f = inst.targets
            return BranchInst(vmap.get_block(t), op(inst.cond), vmap.get_block(f))
        return BranchInst(vmap.get_block(inst.targets[0]))
    if isinstance(inst, SwitchInst):
        clone = SwitchInst(op(inst.value), vmap.get_block(inst.default))
        for const, block in inst.cases:
            clone.add_case(const, vmap.get_block(block))
        return clone
    if isinstance(inst, RetInst):
        return RetInst(op(inst.value) if inst.value is not None else None)
    if isinstance(inst, UnreachableInst):
        return UnreachableInst()
    raise IRError(f"cannot clone instruction {inst!r}")  # pragma: no cover


def clone_function_body(source: Function, dest: Function, vmap: ValueMap) -> None:
    """Clone *source*'s blocks into the (empty) definition *dest*.

    Blocks are visited in reverse-postorder so every non-phi use sees its
    definition already cloned (a definition dominates its uses, and
    dominators precede dominatees in RPO).  Unreachable blocks are dropped;
    phi incomings from them are filtered out.
    """
    from repro.ir.analysis import reachable_blocks

    if dest.blocks:
        raise IRError(f"@{dest.name} already has a body")
    for arg, new_arg in zip(source.args, dest.args):
        vmap.put(arg, new_arg)
    order = reachable_blocks(source)
    # Create empty blocks first so branches can resolve targets.
    for block in order:
        vmap.put_block(block, dest.add_block(block.name))
    # Clone straight-line code.
    phi_fixups: List[PhiInst] = []
    for block in order:
        new_block = vmap.get_block(block)
        for inst in block.instructions:
            clone = clone_instruction(inst, vmap)
            clone.parent = new_block
            if not clone.type.is_void():
                clone.name = dest.uniquify_value_name(inst.name or "v")
            new_block.instructions.append(clone)
            vmap.put(inst, clone)
            if isinstance(inst, PhiInst):
                phi_fixups.append(inst)
    # Fill phi incomings now that every value has a clone.
    for phi in phi_fixups:
        clone = vmap.get(phi)
        for value, pred in phi.incoming:
            pred_clone = vmap._blocks.get(id(pred))
            if pred_clone is None:
                continue  # incoming edge from an unreachable block
            clone.incoming.append((vmap.get(value), pred_clone))


def _clone_symbol_shell(symbol: GlobalValue, *, as_declaration: bool) -> GlobalValue:
    """Clone a symbol without its body/initializer links resolved."""
    if isinstance(symbol, Function):
        fn = Function(
            symbol.name,
            symbol.function_type,
            [a.name for a in symbol.args],
            symbol.linkage,
        )
        return fn
    if isinstance(symbol, GlobalVariable):
        init = None if as_declaration else symbol.initializer
        return GlobalVariable(
            symbol.name,
            symbol.value_type,
            init,
            is_const=symbol.is_const,
            linkage=symbol.linkage,
        )
    raise IRError(f"cannot clone symbol @{symbol.name} of kind {type(symbol).__name__}")


def declaration_for(symbol: GlobalValue) -> GlobalValue:
    """Build an import (declaration) for *symbol* under its own name.

    Importing an alias declares a symbol of the *aliasee's* kind under the
    alias's name — at the object level an alias is just another name.
    """
    target = symbol.resolve() if isinstance(symbol, GlobalAlias) else symbol
    if isinstance(target, Function):
        decl = Function(symbol.name, target.function_type)
        return decl
    if isinstance(target, GlobalVariable):
        return GlobalVariable(
            symbol.name, target.value_type, None, is_const=target.is_const
        )
    raise IRError(f"cannot declare symbol @{symbol.name}")


def clone_module(module: Module, name: Optional[str] = None) -> "ClonedModule":
    """Deep-copy an entire module; returns the clone plus the value map."""
    dest = Module(name or module.name)
    vmap = ValueMap()
    # Pass 1: create all symbol shells so cross-references resolve.
    for symbol in module.symbols.values():
        if isinstance(symbol, GlobalAlias):
            continue  # created after aliasees exist
        shell = _clone_symbol_shell(symbol, as_declaration=symbol.is_declaration())
        dest.add(shell)
        vmap.put(symbol, shell)
    for symbol in module.symbols.values():
        if isinstance(symbol, GlobalAlias):
            aliasee = vmap.get(symbol.aliasee)
            alias = GlobalAlias(symbol.name, aliasee, symbol.linkage)
            dest.add(alias)
            vmap.put(symbol, alias)
    # Pass 2: clone function bodies.
    for symbol in module.symbols.values():
        if isinstance(symbol, Function) and not symbol.is_declaration():
            clone_function_body(symbol, vmap.get(symbol), vmap)
    return ClonedModule(dest, vmap)


class ClonedModule:
    """Result of :func:`clone_module`: the new module plus the value map."""

    def __init__(self, module: Module, vmap: ValueMap):
        self.module = module
        self.vmap = vmap

    def map(self, original: Value) -> Value:
        """Translate an original-IR value into the cloned module (§4 API)."""
        return self.vmap.get(original)


def extract_module(
    module: Module,
    define: Iterable[str],
    copy_on_use: Iterable[str] = (),
    name: str = "fragment",
) -> Module:
    """Extract a fragment module (see :func:`extract_module_ex`)."""
    return extract_module_ex(module, define, copy_on_use, name)[0]


def extract_module_ex(
    module: Module,
    define: Iterable[str],
    copy_on_use: Iterable[str] = (),
    name: str = "fragment",
) -> "Tuple[Module, ValueMap]":
    """Extract a fragment module.

    * symbols in *define* are cloned as definitions (original linkage kept)
    * symbols in *copy_on_use* referenced (transitively) by the definitions
      are cloned as **internal** definitions — the paper's local cloning,
      "marked internal to prevent conflicts at link time" (§3.2 step 2)
    * every other referenced symbol is imported as a declaration
      (§3.2 step 3: "importing a missing symbol ensures IR correctness")
    """
    define = list(dict.fromkeys(define))
    copy_set: Set[str] = set(copy_on_use)
    dest = Module(name)
    vmap = ValueMap()

    worklist: List[str] = list(define)
    to_define: List[GlobalValue] = []
    defined_names: Set[str] = set()

    # The scan-and-add operation is performed recursively, since a cloned
    # symbol may reference previously-unseen missing symbols (§3.2 step 3).
    while worklist:
        sym_name = worklist.pop(0)
        if sym_name in defined_names:
            continue
        defined_names.add(sym_name)
        symbol = module.get(sym_name)
        to_define.append(symbol)
        for ref in _referenced_symbols(symbol):
            if ref.name in defined_names:
                continue
            if ref.name in copy_set:
                worklist.append(ref.name)

    # Create shells/declarations.
    for symbol in to_define:
        if isinstance(symbol, GlobalAlias):
            continue
        shell = _clone_symbol_shell(symbol, as_declaration=symbol.is_declaration())
        if symbol.name in copy_set and symbol.name not in define:
            shell.linkage = "internal"
        dest.add(shell)
        vmap.put(symbol, shell)
    for symbol in to_define:
        if isinstance(symbol, GlobalAlias):
            aliasee = vmap.get_or_none(symbol.aliasee)
            if aliasee is None:
                raise IRError(
                    f"alias @{symbol.name} extracted without its aliasee "
                    f"@{symbol.aliasee.name} (innate constraint violated)"
                )
            alias = GlobalAlias(symbol.name, aliasee, symbol.linkage)
            dest.add(alias)
            vmap.put(symbol, alias)

    # Imports for everything referenced but not defined here.
    for symbol in to_define:
        for ref in _referenced_symbols(symbol):
            if ref.name in defined_names or ref.name in dest:
                continue
            decl = declaration_for(ref)
            dest.add(decl)
            vmap.put(ref, decl)

    # Clone bodies.
    for symbol in to_define:
        if isinstance(symbol, Function) and not symbol.is_declaration():
            clone_function_body(symbol, vmap.get(symbol), vmap)
    return dest, vmap


def _referenced_symbols(symbol: GlobalValue) -> List[GlobalValue]:
    if isinstance(symbol, Function):
        return symbol.referenced_globals()
    if isinstance(symbol, GlobalAlias):
        return [symbol.aliasee]
    return []
