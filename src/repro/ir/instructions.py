"""Instruction set of the repro IR.

The IR is in SSA form: every instruction that produces a value defines a
fresh virtual register, and ``phi`` nodes merge values at control-flow join
points.  Control-flow targets (basic blocks) are held in dedicated fields
rather than in the generic ``operands`` list; :meth:`Instruction.replace_uses_of`
covers both value operands and phi incomings so rewriting passes have a
single entry point.

Opcode inventory (close to a useful LLVM subset):

======== =======================================================
group    opcodes
======== =======================================================
binary   add sub mul sdiv udiv srem urem and or xor shl lshr ashr
compare  icmp (eq ne slt sle sgt sge ult ule ugt uge)
cast     zext sext trunc ptrtoint inttoptr
memory   alloca load store gep
other    select call phi freeze
control  br condbr switch ret unreachable
======== =======================================================
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.errors import IRError, IRTypeError
from repro.ir.types import (
    FunctionType,
    I1,
    IntType,
    PTR,
    Type,
    VOID,
)
from repro.ir.values import ConstantInt, GlobalValue, Value

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.module import BasicBlock

BINARY_OPCODES = (
    "add", "sub", "mul", "sdiv", "udiv", "srem", "urem",
    "and", "or", "xor", "shl", "lshr", "ashr",
)
ICMP_PREDICATES = ("eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge")
CAST_OPCODES = ("zext", "sext", "trunc", "ptrtoint", "inttoptr")

# Predicate helpers used by instcombine and the interpreter.
SIGNED_PREDICATES = ("slt", "sle", "sgt", "sge")
UNSIGNED_PREDICATES = ("ult", "ule", "ugt", "uge")

SWAPPED_PREDICATE = {
    "eq": "eq", "ne": "ne",
    "slt": "sgt", "sle": "sge", "sgt": "slt", "sge": "sle",
    "ult": "ugt", "ule": "uge", "ugt": "ult", "uge": "ule",
}
INVERTED_PREDICATE = {
    "eq": "ne", "ne": "eq",
    "slt": "sge", "sle": "sgt", "sgt": "sle", "sge": "slt",
    "ult": "uge", "ule": "ugt", "ugt": "ule", "uge": "ult",
}


class Instruction(Value):
    """Base class for all instructions."""

    opcode: str = "?"
    is_terminator = False

    def __init__(self, type_: Type, operands: Sequence[Value], name: str = ""):
        super().__init__(type_, name)
        self.operands: List[Value] = list(operands)
        self.parent: Optional["BasicBlock"] = None

    # -- structural queries -------------------------------------------------

    @property
    def function(self):
        """The function containing this instruction, or None if detached."""
        return self.parent.parent if self.parent is not None else None

    def successors(self) -> List["BasicBlock"]:
        """Control-flow successors (empty for non-terminators)."""
        return []

    def has_side_effects(self) -> bool:
        """Whether the instruction may observably affect program state.

        Calls are conservatively side-effecting: this is exactly the property
        that makes early-inserted probes act as optimization barriers (§2.2).
        """
        return isinstance(self, (StoreInst, CallInst)) or self.is_terminator

    # -- rewriting ----------------------------------------------------------

    def replace_uses_of(self, old: Value, new: Value) -> int:
        """Replace every use of *old* in this instruction with *new*.

        Returns the number of replaced uses.
        """
        count = 0
        for i, op in enumerate(self.operands):
            if op is old:
                self.operands[i] = new
                count += 1
        return count

    def erase(self) -> None:
        """Remove this instruction from its parent block."""
        if self.parent is None:
            raise IRError(f"instruction %{self.name} is not attached to a block")
        self.parent.instructions.remove(self)
        self.parent = None


class BinaryInst(Instruction):
    """Two-operand integer arithmetic/bitwise instruction."""

    def __init__(self, opcode: str, lhs: Value, rhs: Value, name: str = ""):
        if opcode not in BINARY_OPCODES:
            raise IRError(f"unknown binary opcode: {opcode}")
        if not isinstance(lhs.type, IntType) or lhs.type is not rhs.type:
            raise IRTypeError(
                f"binary op {opcode} needs matching integer operands, "
                f"got {lhs.type} and {rhs.type}"
            )
        super().__init__(lhs.type, [lhs, rhs], name)
        self.opcode = opcode

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]

    def is_commutative(self) -> bool:
        return self.opcode in ("add", "mul", "and", "or", "xor")


class IcmpInst(Instruction):
    """Integer/pointer comparison producing an i1."""

    opcode = "icmp"

    def __init__(self, predicate: str, lhs: Value, rhs: Value, name: str = ""):
        if predicate not in ICMP_PREDICATES:
            raise IRError(f"unknown icmp predicate: {predicate}")
        if lhs.type is not rhs.type:
            raise IRTypeError(f"icmp operand types differ: {lhs.type} vs {rhs.type}")
        if not (lhs.type.is_integer() or lhs.type.is_pointer()):
            raise IRTypeError(f"icmp needs integer or pointer operands, got {lhs.type}")
        super().__init__(I1, [lhs, rhs], name)
        self.predicate = predicate

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]


class CastInst(Instruction):
    """Width/representation conversion."""

    def __init__(self, opcode: str, value: Value, to_type: Type, name: str = ""):
        if opcode not in CAST_OPCODES:
            raise IRError(f"unknown cast opcode: {opcode}")
        if opcode in ("zext", "sext"):
            if not (value.type.is_integer() and to_type.is_integer()):
                raise IRTypeError(f"{opcode} needs integer types")
            if to_type.bits <= value.type.bits:
                raise IRTypeError(f"{opcode} must widen: {value.type} -> {to_type}")
        elif opcode == "trunc":
            if not (value.type.is_integer() and to_type.is_integer()):
                raise IRTypeError("trunc needs integer types")
            if to_type.bits >= value.type.bits:
                raise IRTypeError(f"trunc must narrow: {value.type} -> {to_type}")
        elif opcode == "ptrtoint":
            if not (value.type.is_pointer() and to_type.is_integer()):
                raise IRTypeError("ptrtoint needs ptr -> integer")
        elif opcode == "inttoptr":
            if not (value.type.is_integer() and to_type.is_pointer()):
                raise IRTypeError("inttoptr needs integer -> ptr")
        super().__init__(to_type, [value], name)
        self.opcode = opcode

    @property
    def value(self) -> Value:
        return self.operands[0]


class SelectInst(Instruction):
    """``select i1 %c, T %a, T %b`` — branchless conditional."""

    opcode = "select"

    def __init__(self, cond: Value, if_true: Value, if_false: Value, name: str = ""):
        if cond.type is not I1:
            raise IRTypeError(f"select condition must be i1, got {cond.type}")
        if if_true.type is not if_false.type:
            raise IRTypeError(
                f"select arm types differ: {if_true.type} vs {if_false.type}"
            )
        super().__init__(if_true.type, [cond, if_true, if_false], name)

    @property
    def cond(self) -> Value:
        return self.operands[0]

    @property
    def if_true(self) -> Value:
        return self.operands[1]

    @property
    def if_false(self) -> Value:
        return self.operands[2]


class AllocaInst(Instruction):
    """Stack allocation of one object of ``allocated_type``."""

    opcode = "alloca"

    def __init__(self, allocated_type: Type, name: str = ""):
        if allocated_type.is_void() or allocated_type.is_function():
            raise IRTypeError(f"cannot alloca {allocated_type}")
        super().__init__(PTR, [], name)
        self.allocated_type = allocated_type


class LoadInst(Instruction):
    """``load T, ptr %p``."""

    opcode = "load"

    def __init__(self, loaded_type: Type, pointer: Value, name: str = ""):
        if not pointer.type.is_pointer():
            raise IRTypeError(f"load needs a pointer operand, got {pointer.type}")
        if not loaded_type.is_first_class():
            raise IRTypeError(f"cannot load a value of type {loaded_type}")
        super().__init__(loaded_type, [pointer], name)

    @property
    def pointer(self) -> Value:
        return self.operands[0]


class StoreInst(Instruction):
    """``store T %v, ptr %p``."""

    opcode = "store"

    def __init__(self, value: Value, pointer: Value):
        if not pointer.type.is_pointer():
            raise IRTypeError(f"store needs a pointer operand, got {pointer.type}")
        if not value.type.is_first_class():
            raise IRTypeError(f"cannot store a value of type {value.type}")
        super().__init__(VOID, [value, pointer])

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def pointer(self) -> Value:
        return self.operands[1]


class GepInst(Instruction):
    """``gep T, ptr %base, iN %index`` — pointer to ``base + index*sizeof(T)``."""

    opcode = "gep"

    def __init__(self, element_type: Type, base: Value, index: Value, name: str = ""):
        if not base.type.is_pointer():
            raise IRTypeError(f"gep base must be a pointer, got {base.type}")
        if not index.type.is_integer():
            raise IRTypeError(f"gep index must be an integer, got {index.type}")
        super().__init__(PTR, [base, index], name)
        self.element_type = element_type

    @property
    def base(self) -> Value:
        return self.operands[0]

    @property
    def index(self) -> Value:
        return self.operands[1]


class CallInst(Instruction):
    """Direct (callee is a GlobalValue) or indirect function call."""

    opcode = "call"

    def __init__(
        self,
        callee: Value,
        args: Sequence[Value],
        function_type: FunctionType,
        name: str = "",
    ):
        if not callee.type.is_pointer() and not callee.type.is_function():
            # Functions themselves are referenced as pointers; accept both.
            raise IRTypeError(f"callee must be a function or pointer, got {callee.type}")
        args = list(args)
        fixed = len(function_type.params)
        if len(args) < fixed or (len(args) > fixed and not function_type.vararg):
            raise IRTypeError(
                f"call arity mismatch: expected {fixed}"
                f"{'+' if function_type.vararg else ''}, got {len(args)}"
            )
        for i, (arg, pty) in enumerate(zip(args, function_type.params)):
            if arg.type is not pty:
                raise IRTypeError(
                    f"call argument {i} has type {arg.type}, expected {pty}"
                )
        super().__init__(function_type.ret, [callee, *args], name)
        self.function_type = function_type

    @property
    def callee(self) -> Value:
        return self.operands[0]

    @property
    def args(self) -> List[Value]:
        return self.operands[1:]

    def called_function_name(self) -> Optional[str]:
        """Symbol name for direct calls, None for indirect calls."""
        callee = self.callee
        return callee.name if isinstance(callee, GlobalValue) else None

    def set_args(self, args: Sequence[Value]) -> None:
        self.operands[1:] = list(args)


class PhiInst(Instruction):
    """SSA phi node; ``incoming`` is a list of (value, predecessor block)."""

    opcode = "phi"

    def __init__(self, type_: Type, name: str = ""):
        super().__init__(type_, [], name)
        self.incoming: List[Tuple[Value, "BasicBlock"]] = []

    def add_incoming(self, value: Value, block: "BasicBlock") -> None:
        if value.type is not self.type:
            raise IRTypeError(
                f"phi incoming type {value.type} does not match {self.type}"
            )
        self.incoming.append((value, block))

    def incoming_for(self, block: "BasicBlock") -> Value:
        for value, pred in self.incoming:
            if pred is block:
                return value
        raise IRError(f"phi %{self.name} has no incoming for block {block.name}")

    def remove_incoming(self, block: "BasicBlock") -> None:
        self.incoming = [(v, b) for v, b in self.incoming if b is not block]

    def replace_uses_of(self, old: Value, new: Value) -> int:
        count = super().replace_uses_of(old, new)
        for i, (value, block) in enumerate(self.incoming):
            if value is old:
                self.incoming[i] = (new, block)
                count += 1
        return count

    def replace_incoming_block(self, old: "BasicBlock", new: "BasicBlock") -> None:
        self.incoming = [(v, new if b is old else b) for v, b in self.incoming]

    def used_values(self) -> List[Value]:
        return [v for v, _ in self.incoming]


class FreezeInst(Instruction):
    """Identity barrier: stops value-level rewrites across it.

    Used by instrumentation schemes that must observe the *original* value
    (the paper's input-to-state requirement, §2.2).
    """

    opcode = "freeze"

    def __init__(self, value: Value, name: str = ""):
        super().__init__(value.type, [value], name)

    @property
    def value(self) -> Value:
        return self.operands[0]


class BranchInst(Instruction):
    """Unconditional ``br label %t`` or conditional ``condbr i1 %c, %t, %f``."""

    is_terminator = True

    def __init__(
        self,
        target: "BasicBlock",
        cond: Optional[Value] = None,
        if_false: Optional["BasicBlock"] = None,
    ):
        if cond is not None:
            if cond.type is not I1:
                raise IRTypeError(f"branch condition must be i1, got {cond.type}")
            if if_false is None:
                raise IRError("conditional branch needs a false target")
            super().__init__(VOID, [cond])
            self.opcode = "condbr"
        else:
            if if_false is not None:
                raise IRError("unconditional branch has a single target")
            super().__init__(VOID, [])
            self.opcode = "br"
        self.targets: List["BasicBlock"] = [target] if if_false is None else [target, if_false]

    @property
    def is_conditional(self) -> bool:
        return self.opcode == "condbr"

    @property
    def cond(self) -> Optional[Value]:
        return self.operands[0] if self.is_conditional else None

    def successors(self) -> List["BasicBlock"]:
        return list(self.targets)

    def replace_target(self, old: "BasicBlock", new: "BasicBlock") -> None:
        self.targets = [new if t is old else t for t in self.targets]


class SwitchInst(Instruction):
    """``switch iN %v, default %d [ (k1, %b1) (k2, %b2) ... ]``."""

    opcode = "switch"
    is_terminator = True

    def __init__(self, value: Value, default: "BasicBlock"):
        if not value.type.is_integer():
            raise IRTypeError(f"switch needs an integer scrutinee, got {value.type}")
        super().__init__(VOID, [value])
        self.default = default
        self.cases: List[Tuple[ConstantInt, "BasicBlock"]] = []

    @property
    def value(self) -> Value:
        return self.operands[0]

    def add_case(self, const: ConstantInt, block: "BasicBlock") -> None:
        if const.type is not self.value.type:
            raise IRTypeError(
                f"switch case type {const.type} does not match {self.value.type}"
            )
        if any(c.value == const.value for c, _ in self.cases):
            raise IRError(f"duplicate switch case {const.signed}")
        self.cases.append((const, block))

    def successors(self) -> List["BasicBlock"]:
        return [self.default] + [b for _, b in self.cases]

    def replace_target(self, old: "BasicBlock", new: "BasicBlock") -> None:
        if self.default is old:
            self.default = new
        self.cases = [(c, new if b is old else b) for c, b in self.cases]


class RetInst(Instruction):
    """``ret void`` or ``ret T %v``."""

    opcode = "ret"
    is_terminator = True

    def __init__(self, value: Optional[Value] = None):
        super().__init__(VOID, [] if value is None else [value])

    @property
    def value(self) -> Optional[Value]:
        return self.operands[0] if self.operands else None


class UnreachableInst(Instruction):
    """Marks statically unreachable control flow."""

    opcode = "unreachable"
    is_terminator = True

    def __init__(self):
        super().__init__(VOID, [])
