"""Basic blocks, functions and modules.

A :class:`Module` is the translation unit — "the minimal translation unit of
LLVM is a module.  It is lowered to an object file after code generation"
(§2.3).  Odin's fragments are themselves modules extracted from the
whole-program module, so everything the partitioner and scheduler do is
module surgery implemented here and in :mod:`repro.ir.clone`.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set

from repro.errors import IRError
from repro.ir.instructions import CallInst, Instruction, PhiInst
from repro.ir.types import FunctionType, PTR, Type
from repro.ir.values import (
    Argument,
    GlobalAlias,
    GlobalValue,
    GlobalVariable,
    LINKAGE_EXTERNAL,
    Value,
)


class BasicBlock:
    """A straight-line sequence of instructions ending in a terminator."""

    def __init__(self, name: str, parent: Optional["Function"] = None):
        self.name = name
        self.parent = parent
        self.instructions: List[Instruction] = []

    # -- structure ----------------------------------------------------------

    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    def successors(self) -> List["BasicBlock"]:
        term = self.terminator
        return term.successors() if term is not None else []

    def predecessors(self) -> List["BasicBlock"]:
        if self.parent is None:
            return []
        return [b for b in self.parent.blocks if self in b.successors()]

    def phis(self) -> List[PhiInst]:
        return [i for i in self.instructions if isinstance(i, PhiInst)]

    def non_phi_instructions(self) -> List[Instruction]:
        return [i for i in self.instructions if not isinstance(i, PhiInst)]

    # -- mutation -----------------------------------------------------------

    def append(self, inst: Instruction) -> Instruction:
        """Append *inst*, auto-naming it if it produces a value."""
        if self.terminator is not None:
            raise IRError(f"block {self.name} already has a terminator")
        self._attach(inst)
        self.instructions.append(inst)
        return inst

    def insert_before(self, anchor: Instruction, inst: Instruction) -> Instruction:
        idx = self.instructions.index(anchor)
        self._attach(inst)
        self.instructions.insert(idx, inst)
        return inst

    def _attach(self, inst: Instruction) -> None:
        if inst.parent is not None:
            raise IRError(f"instruction %{inst.name} is already attached")
        inst.parent = self
        if not inst.type.is_void() and self.parent is not None:
            inst.name = self.parent.uniquify_value_name(inst.name or "v")

    def __repr__(self) -> str:  # pragma: no cover
        return f"<BasicBlock {self.name} ({len(self.instructions)} insts)>"


class Function(GlobalValue):
    """A function definition or declaration."""

    def __init__(
        self,
        name: str,
        function_type: FunctionType,
        param_names: Sequence[str] = (),
        linkage: str = LINKAGE_EXTERNAL,
    ):
        super().__init__(PTR, name, linkage)
        self.function_type = function_type
        self.blocks: List[BasicBlock] = []
        self.args: List[Argument] = []
        self._value_names: Set[str] = set()
        self._block_names: Set[str] = set()
        self._counter = 0
        for i, pty in enumerate(function_type.params):
            pname = param_names[i] if i < len(param_names) else f"arg{i}"
            pname = self.uniquify_value_name(pname)
            self.args.append(Argument(pty, pname, self, i))

    # -- naming -------------------------------------------------------------

    def uniquify_value_name(self, base: str) -> str:
        name = base
        while not name or name in self._value_names:
            self._counter += 1
            name = f"{base}{self._counter}" if base else str(self._counter)
        self._value_names.add(name)
        return name

    def uniquify_block_name(self, base: str) -> str:
        name = base or "bb"
        while name in self._block_names:
            self._counter += 1
            name = f"{base or 'bb'}{self._counter}"
        self._block_names.add(name)
        return name

    # -- structure ----------------------------------------------------------

    def is_declaration(self) -> bool:
        return not self.blocks

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise IRError(f"function @{self.name} is a declaration")
        return self.blocks[0]

    @property
    def return_type(self) -> Type:
        return self.function_type.ret

    def add_block(self, name: str = "bb") -> BasicBlock:
        block = BasicBlock(self.uniquify_block_name(name), self)
        self.blocks.append(block)
        return block

    def get_block(self, name: str) -> BasicBlock:
        for block in self.blocks:
            if block.name == name:
                return block
        raise IRError(f"no block named {name} in @{self.name}")

    def remove_block(self, block: BasicBlock) -> None:
        self.blocks.remove(block)
        self._block_names.discard(block.name)
        block.parent = None

    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from list(block.instructions)

    # -- rewriting ----------------------------------------------------------

    def replace_all_uses(self, old: Value, new: Value) -> int:
        """Replace every use of *old* inside this function with *new*."""
        count = 0
        for inst in self.instructions():
            count += inst.replace_uses_of(old, new)
        return count

    def users_of(self, value: Value) -> List[Instruction]:
        """All instructions in this function that use *value*."""
        users = []
        for inst in self.instructions():
            ops = list(inst.operands)
            if isinstance(inst, PhiInst):
                ops.extend(inst.used_values())
            if any(op is value for op in ops):
                users.append(inst)
        return users

    # -- statistics (drive the compile-time cost model) ----------------------

    def count_instructions(self) -> int:
        return sum(len(b.instructions) for b in self.blocks)

    def count_blocks(self) -> int:
        return len(self.blocks)

    def referenced_globals(self) -> List[GlobalValue]:
        """Global symbols referenced from this function's body, deduplicated."""
        seen: List[GlobalValue] = []
        for inst in self.instructions():
            ops = list(inst.operands)
            if isinstance(inst, PhiInst):
                ops.extend(inst.used_values())
            for op in ops:
                if isinstance(op, GlobalValue) and op is not self:
                    if all(op is not s for s in seen):
                        seen.append(op)
        return seen

    def __repr__(self) -> str:  # pragma: no cover
        kind = "declare" if self.is_declaration() else "define"
        return f"<Function {kind} @{self.name}>"


class Module:
    """A translation unit: an ordered symbol table of globals."""

    def __init__(self, name: str = "module"):
        self.name = name
        self.symbols: Dict[str, GlobalValue] = {}

    # -- symbol table -------------------------------------------------------

    def add(self, symbol: GlobalValue) -> GlobalValue:
        if symbol.name in self.symbols:
            raise IRError(f"duplicate symbol @{symbol.name} in module {self.name}")
        self.symbols[symbol.name] = symbol
        symbol.module = self
        return symbol

    def get(self, name: str) -> GlobalValue:
        try:
            return self.symbols[name]
        except KeyError:
            raise IRError(f"no symbol @{name} in module {self.name}") from None

    def get_or_none(self, name: str) -> Optional[GlobalValue]:
        return self.symbols.get(name)

    def remove(self, name: str) -> None:
        symbol = self.symbols.pop(name)
        symbol.module = None

    def __contains__(self, name: str) -> bool:
        return name in self.symbols

    # -- typed views ---------------------------------------------------------

    def functions(self) -> List[Function]:
        return [s for s in self.symbols.values() if isinstance(s, Function)]

    def defined_functions(self) -> List[Function]:
        return [f for f in self.functions() if not f.is_declaration()]

    def global_variables(self) -> List[GlobalVariable]:
        return [s for s in self.symbols.values() if isinstance(s, GlobalVariable)]

    def aliases(self) -> List[GlobalAlias]:
        return [s for s in self.symbols.values() if isinstance(s, GlobalAlias)]

    def definitions(self) -> List[GlobalValue]:
        return [s for s in self.symbols.values() if not s.is_declaration()]

    def declarations(self) -> List[GlobalValue]:
        return [s for s in self.symbols.values() if s.is_declaration()]

    # -- convenience constructors --------------------------------------------

    def declare_function(self, name: str, function_type: FunctionType) -> Function:
        """Get-or-create a function declaration."""
        existing = self.get_or_none(name)
        if existing is not None:
            if not isinstance(existing, Function):
                raise IRError(f"@{name} exists and is not a function")
            if existing.function_type is not function_type:
                raise IRError(f"@{name} redeclared with a different type")
            return existing
        return self.add(Function(name, function_type))

    # -- whole-module queries -------------------------------------------------

    def count_instructions(self) -> int:
        return sum(f.count_instructions() for f in self.defined_functions())

    def count_blocks(self) -> int:
        return sum(f.count_blocks() for f in self.defined_functions())

    def callers_of(self, name: str) -> List[Function]:
        """Functions containing a direct call to @name."""
        out = []
        for fn in self.defined_functions():
            for inst in fn.instructions():
                if isinstance(inst, CallInst) and inst.called_function_name() == name:
                    out.append(fn)
                    break
        return out

    def references_to(self, name: str) -> List[Function]:
        """Functions referencing @name in any operand position."""
        target = self.get(name)
        out = []
        for fn in self.defined_functions():
            if any(g is target for g in fn.referenced_globals()):
                out.append(fn)
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Module {self.name} ({len(self.symbols)} symbols)>"
