"""Parser for the textual IR produced by :mod:`repro.ir.printer`.

Exists mainly so tests and case studies can be written in readable IR —
e.g. the paper's Figure 2 ``islower`` example is checked in as IR text and
fed through instcombine/simplifycfg directly.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import IRParseError
from repro.ir.builder import IRBuilder
from repro.ir.instructions import (
    BINARY_OPCODES,
    CAST_OPCODES,
    ICMP_PREDICATES,
    PhiInst,
)
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.types import ArrayType, FunctionType, IntType, Type, VOID, type_by_name
from repro.ir.values import (
    ConstantArray,
    ConstantData,
    ConstantInt,
    GlobalAlias,
    GlobalVariable,
    NullPtr,
    UndefValue,
    Value,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|;[^\n]*)
  | (?P<string>c"(?:[^"\\]|\\[0-9A-Fa-f]{2})*")
  | (?P<gname>@[A-Za-z_.$][\w.$]*)
  | (?P<lname>%[A-Za-z_.$][\w.$]*)
  | (?P<number>-?\d+)
  | (?P<word>[A-Za-z_.][\w.]*)
  | (?P<punct>\.\.\.|[=,(){}\[\]:*])
    """,
    re.VERBOSE,
)


class _Lexer:
    def __init__(self, text: str):
        self.text = text
        self.tokens: List[Tuple[str, str, int]] = []
        pos = 0
        line = 1
        while pos < len(text):
            m = _TOKEN_RE.match(text, pos)
            if m is None:
                raise IRParseError(f"unexpected character {text[pos]!r}", line)
            kind = m.lastgroup
            value = m.group()
            line += value.count("\n")
            if kind != "ws":
                self.tokens.append((kind, value, line))
            pos = m.end()
        self.index = 0

    def peek(self) -> Optional[Tuple[str, str, int]]:
        return self.tokens[self.index] if self.index < len(self.tokens) else None

    def next(self) -> Tuple[str, str, int]:
        tok = self.peek()
        if tok is None:
            raise IRParseError("unexpected end of input")
        self.index += 1
        return tok

    def accept(self, value: str) -> bool:
        tok = self.peek()
        if tok is not None and tok[1] == value:
            self.index += 1
            return True
        return False

    def expect(self, value: str) -> Tuple[str, str, int]:
        tok = self.next()
        if tok[1] != value:
            raise IRParseError(f"expected {value!r}, got {tok[1]!r}", tok[2])
        return tok

    def expect_kind(self, kind: str) -> Tuple[str, str, int]:
        tok = self.next()
        if tok[0] != kind:
            raise IRParseError(f"expected {kind}, got {tok[1]!r}", tok[2])
        return tok

    def at_end(self) -> bool:
        return self.index >= len(self.tokens)


def parse_module(text: str, name: str = "parsed") -> Module:
    """Parse a full module from IR text."""
    return _Parser(text, name).parse()


class _Parser:
    def __init__(self, text: str, name: str):
        self.lex = _Lexer(text)
        self.module = Module(name)
        # Alias fixups: aliasee may be defined later in the file.
        self._alias_fixups: List[Tuple[str, str, str]] = []

    def parse(self) -> Module:
        # Pass A: create every top-level symbol so forward references
        # (e.g. a call to a function declared later) resolve.
        pending_bodies: List[tuple] = []  # (function, body_token_index)
        while not self.lex.at_end():
            kind, value, line = self.lex.peek()
            if value == "define":
                fn = self._parse_define_header()
                self.lex.expect("{")
                pending_bodies.append((fn, self.lex.index))
                self._skip_to_close_brace()
            elif value == "declare":
                self._parse_declare()
            elif kind == "gname":
                self._parse_global_line()
            else:
                raise IRParseError(f"unexpected token {value!r}", line)
        for alias_name, linkage, target in self._alias_fixups:
            aliasee = self.module.get(target)
            self.module.add(GlobalAlias(alias_name, aliasee, linkage))
        # Pass B: parse function bodies.
        for fn, body_index in pending_bodies:
            self.lex.index = body_index
            _FunctionBodyParser(self, fn).parse()
        return self.module

    def _skip_to_close_brace(self) -> None:
        depth = 1
        while depth:
            tok = self.lex.next()
            if tok[1] == "{":
                depth += 1
            elif tok[1] == "}":
                depth -= 1

    # -- types ------------------------------------------------------------

    def _parse_type(self) -> Type:
        tok = self.lex.peek()
        if tok is not None and tok[1] == "[":
            self.lex.next()
            count = int(self.lex.expect_kind("number")[1])
            self.lex.expect("x")
            elem = self._parse_type()
            self.lex.expect("]")
            return ArrayType(elem, count)
        kind, value, line = self.lex.next()
        try:
            return type_by_name(value)
        except Exception:
            raise IRParseError(f"unknown type {value!r}", line) from None

    # -- globals ----------------------------------------------------------

    def _parse_global_line(self) -> None:
        gname = self.lex.expect_kind("gname")[1][1:]
        self.lex.expect("=")
        linkage = "internal" if self.lex.accept("internal") else "external"
        if self.lex.accept("alias"):
            target = self.lex.expect_kind("gname")[1][1:]
            self._alias_fixups.append((gname, linkage, target))
            return
        declared = self.lex.accept("declare")
        if self.lex.accept("const"):
            is_const = True
        else:
            self.lex.expect("global")
            is_const = False
        value_type = self._parse_type()
        if declared:
            self.module.add(
                GlobalVariable(gname, value_type, None, is_const=is_const, linkage=linkage)
            )
            return
        init = self._parse_initializer(value_type)
        self.module.add(
            GlobalVariable(gname, value_type, init, is_const=is_const, linkage=linkage)
        )

    def _parse_initializer(self, value_type: Type):
        tok = self.lex.peek()
        if tok is None:
            raise IRParseError("missing initializer")
        kind, value, line = tok
        if kind == "string":
            self.lex.next()
            return ConstantData(_decode_string(value))
        if kind == "number":
            self.lex.next()
            if not isinstance(value_type, IntType):
                raise IRParseError(f"integer initializer for type {value_type}", line)
            return ConstantInt(value_type, int(value))
        if value == "null":
            self.lex.next()
            return NullPtr()
        if value == "undef":
            self.lex.next()
            return UndefValue(value_type)
        if value == "[":
            self.lex.next()
            values = []
            elem_type = None
            while not self.lex.accept("]"):
                if values:
                    self.lex.expect(",")
                elem_type = self._parse_type()
                values.append(int(self.lex.expect_kind("number")[1]))
            if elem_type is None:
                if not isinstance(value_type, ArrayType):
                    raise IRParseError("empty array initializer needs array type", line)
                elem_type = value_type.element
            return ConstantArray(elem_type, values)
        raise IRParseError(f"bad initializer {value!r}", line)

    # -- functions ----------------------------------------------------------

    def _parse_declare(self) -> None:
        self.lex.expect("declare")
        ret = self._parse_type()
        fname = self.lex.expect_kind("gname")[1][1:]
        params, vararg, _ = self._parse_params(named=False)
        self.module.add(Function(fname, FunctionType(ret, tuple(params), vararg)))

    def _parse_params(self, named: bool) -> Tuple[List[Type], bool, List[str]]:
        self.lex.expect("(")
        params: List[Type] = []
        names: List[str] = []
        vararg = False
        while not self.lex.accept(")"):
            if params or vararg:
                self.lex.expect(",")
            if self.lex.accept("..."):
                vararg = True
                continue
            params.append(self._parse_type())
            if named:
                names.append(self.lex.expect_kind("lname")[1][1:])
        return params, vararg, names

    def _parse_define_header(self) -> Function:
        self.lex.expect("define")
        linkage = "internal" if self.lex.accept("internal") else "external"
        ret = self._parse_type()
        fname = self.lex.expect_kind("gname")[1][1:]
        params, vararg, names = self._parse_params(named=True)
        fn = Function(fname, FunctionType(ret, tuple(params), vararg), names, linkage)
        self.module.add(fn)
        return fn

    def lookup_global(self, name: str, line: int) -> Value:
        sym = self.module.get_or_none(name)
        if sym is None:
            raise IRParseError(f"undefined global @{name}", line)
        return sym


class _FunctionBodyParser:
    def __init__(self, parent: _Parser, fn: Function):
        self.p = parent
        self.lex = parent.lex
        self.fn = fn
        self.values: Dict[str, Value] = {a.name: a for a in fn.args}
        self.blocks: Dict[str, BasicBlock] = {}
        self.fixups: List[Tuple[PhiInst, int, str, int]] = []
        # Non-phi forward references.  SSA only requires that a def
        # *dominate* its uses, not that it precede them in block layout —
        # optimized IR (inlined call bodies, reordered blocks) routinely
        # prints a use before its def.  Undefined operand names become
        # placeholder Values, rewritten to the real def once the whole
        # body has been parsed.
        self.value_fixups: List[Tuple[Value, str, int]] = []

    def _block(self, name: str) -> BasicBlock:
        if name not in self.blocks:
            block = BasicBlock(name, self.fn)
            self.fn._block_names.add(name)
            self.blocks[name] = block
        return self.blocks[name]

    def parse(self) -> None:
        current: Optional[BasicBlock] = None
        while True:
            tok = self.lex.peek()
            if tok is None:
                raise IRParseError("unterminated function body")
            kind, value, line = tok
            if value == "}":
                self.lex.next()
                break
            nxt = (
                self.lex.tokens[self.lex.index + 1]
                if self.lex.index + 1 < len(self.lex.tokens)
                else None
            )
            if kind == "word" and nxt is not None and nxt[1] == ":":
                self.lex.next()
                self.lex.next()
                current = self._block(value)
                if current not in self.fn.blocks:
                    self.fn.blocks.append(current)
                continue
            if current is None:
                raise IRParseError("instruction outside a block", line)
            self._parse_instruction(current)
        # Resolve deferred phi value references.
        for phi, idx, name, line in self.fixups:
            if name not in self.values:
                raise IRParseError(f"undefined value %{name}", line)
            value, block = phi.incoming[idx]
            phi.incoming[idx] = (self.values[name], block)
        # Resolve non-phi forward references: swap each placeholder for
        # the value the name ended up bound to.
        if self.value_fixups:
            unresolved = [
                (name, line)
                for _p, name, line in self.value_fixups
                if name not in self.values
            ]
            if unresolved:
                name, line = unresolved[0]
                raise IRParseError(f"use of undefined value %{name}", line)
            replacements = {
                id(placeholder): self.values[name]
                for placeholder, name, _line in self.value_fixups
            }
            for block in self.fn.blocks:
                for inst in block.instructions:
                    for i, op in enumerate(inst.operands):
                        replacement = replacements.get(id(op))
                        if replacement is not None:
                            inst.operands[i] = replacement
        # Validate all referenced blocks were defined.
        for bname, block in self.blocks.items():
            if block not in self.fn.blocks:
                raise IRParseError(f"undefined block label %{bname}")

    # -- operand parsing ----------------------------------------------------

    def _parse_typed_operand(self) -> Value:
        type_ = self.p._parse_type()
        return self._parse_operand(type_)

    def _parse_operand(self, type_: Type) -> Value:
        kind, value, line = self.lex.next()
        if kind == "number":
            if not isinstance(type_, IntType):
                raise IRParseError(f"integer literal with type {type_}", line)
            return ConstantInt(type_, int(value))
        if kind == "lname":
            name = value[1:]
            if name not in self.values:
                # Forward reference: the defining block prints later.
                placeholder = Value(type_, name)
                self.value_fixups.append((placeholder, name, line))
                return placeholder
            return self.values[name]
        if kind == "gname":
            return self.p.lookup_global(value[1:], line)
        if value == "null":
            return NullPtr()
        if value == "undef":
            return UndefValue(type_)
        if value == "true":
            return ConstantInt(IntType(1), 1)
        if value == "false":
            return ConstantInt(IntType(1), 0)
        raise IRParseError(f"bad operand {value!r}", line)

    def _define(self, name: str, value: Value, line: int) -> None:
        if name in self.values:
            raise IRParseError(f"redefinition of %{name}", line)
        self.values[name] = value
        value.name = name
        self.fn._value_names.add(name)

    # -- instruction parsing --------------------------------------------------

    def _parse_instruction(self, block: BasicBlock) -> None:
        builder = IRBuilder.at_end(block)
        kind, value, line = self.lex.next()

        if kind == "lname":
            result_name = value[1:]
            self.lex.expect("=")
            op = self.lex.next()[1]
            result = self._parse_valued(builder, op, line)
            self._define(result_name, result, line)
            return

        # Void instructions.
        if value == "store":
            val = self._parse_typed_operand()
            self.lex.expect(",")
            ptr = self._parse_typed_operand()
            builder.store(val, ptr)
            return
        if value == "call":
            ret = self.p._parse_type()
            if not ret.is_void():
                raise IRParseError("non-void call must be assigned", line)
            self._parse_call(builder, ret)
            return
        if value == "br":
            if self.lex.accept("label"):
                target = self.lex.expect_kind("lname")[1][1:]
                builder.br(self._block(target))
                return
            cond = self._parse_typed_operand_with_first("i1")
            self.lex.expect(",")
            self.lex.expect("label")
            t = self.lex.expect_kind("lname")[1][1:]
            self.lex.expect(",")
            self.lex.expect("label")
            f = self.lex.expect_kind("lname")[1][1:]
            builder.condbr(cond, self._block(t), self._block(f))
            return
        if value == "switch":
            scrutinee = self._parse_typed_operand()
            self.lex.expect(",")
            self.lex.expect("label")
            default = self.lex.expect_kind("lname")[1][1:]
            sw = builder.switch(scrutinee, self._block(default))
            self.lex.expect("[")
            while not self.lex.accept("]"):
                case_type = self.p._parse_type()
                case_val = int(self.lex.expect_kind("number")[1])
                self.lex.expect(",")
                self.lex.expect("label")
                target = self.lex.expect_kind("lname")[1][1:]
                sw.add_case(ConstantInt(case_type, case_val), self._block(target))
            return
        if value == "ret":
            if self.lex.accept("void"):
                builder.ret()
            else:
                builder.ret(self._parse_typed_operand())
            return
        if value == "unreachable":
            builder.unreachable()
            return
        raise IRParseError(f"unknown instruction {value!r}", line)

    def _parse_typed_operand_with_first(self, _expected: str) -> Value:
        return self._parse_typed_operand()

    def _parse_valued(self, builder: IRBuilder, op: str, line: int) -> Value:
        if op in BINARY_OPCODES:
            type_ = self.p._parse_type()
            lhs = self._parse_operand(type_)
            self.lex.expect(",")
            rhs = self._parse_operand(type_)
            return builder.binop(op, lhs, rhs)
        if op == "icmp":
            pred = self.lex.next()[1]
            if pred not in ICMP_PREDICATES:
                raise IRParseError(f"bad icmp predicate {pred!r}", line)
            type_ = self.p._parse_type()
            lhs = self._parse_operand(type_)
            self.lex.expect(",")
            rhs = self._parse_operand(type_)
            return builder.icmp(pred, lhs, rhs)
        if op in CAST_OPCODES:
            val = self._parse_typed_operand()
            self.lex.expect("to")
            to_type = self.p._parse_type()
            from repro.ir.instructions import CastInst

            inst = CastInst(op, val, to_type)
            builder._insert(inst)
            return inst
        if op == "select":
            cond = self._parse_typed_operand()
            self.lex.expect(",")
            a = self._parse_typed_operand()
            self.lex.expect(",")
            b = self._parse_typed_operand()
            return builder.select(cond, a, b)
        if op == "freeze":
            return builder.freeze(self._parse_typed_operand())
        if op == "alloca":
            return builder.alloca(self.p._parse_type())
        if op == "load":
            loaded = self.p._parse_type()
            self.lex.expect(",")
            ptr = self._parse_typed_operand()
            return builder.load(loaded, ptr)
        if op == "gep":
            elem = self.p._parse_type()
            self.lex.expect(",")
            base = self._parse_typed_operand()
            self.lex.expect(",")
            index = self._parse_typed_operand()
            return builder.gep(elem, base, index)
        if op == "call":
            ret = self.p._parse_type()
            return self._parse_call(builder, ret)
        if op == "phi":
            type_ = self.p._parse_type()
            phi = builder.phi(type_)
            first = True
            while first or self.lex.accept(","):
                first = False
                self.lex.expect("[")
                ktok = self.lex.next()
                self.lex.expect(",")
                bname = self.lex.expect_kind("lname")[1][1:]
                self.lex.expect("]")
                block = self._block(bname)
                if ktok[0] == "number":
                    phi.incoming.append((ConstantInt(type_, int(ktok[1])), block))
                elif ktok[0] == "lname":
                    vname = ktok[1][1:]
                    if vname in self.values:
                        phi.incoming.append((self.values[vname], block))
                    else:
                        phi.incoming.append((UndefValue(type_), block))
                        self.fixups.append((phi, len(phi.incoming) - 1, vname, ktok[2]))
                elif ktok[1] == "true":
                    phi.incoming.append((ConstantInt(IntType(1), 1), block))
                elif ktok[1] == "false":
                    phi.incoming.append((ConstantInt(IntType(1), 0), block))
                elif ktok[1] == "undef":
                    phi.incoming.append((UndefValue(type_), block))
                elif ktok[0] == "gname":
                    phi.incoming.append((self.p.lookup_global(ktok[1][1:], ktok[2]), block))
                else:
                    raise IRParseError(f"bad phi incoming {ktok[1]!r}", ktok[2])
            return phi
        raise IRParseError(f"unknown opcode {op!r}", line)

    def _parse_call(self, builder: IRBuilder, ret: Type) -> Value:
        kind, value, line = self.lex.next()
        if kind == "gname":
            callee = self.p.lookup_global(value[1:], line)
        elif kind == "lname":
            name = value[1:]
            if name not in self.values:
                raise IRParseError(f"use of undefined value %{name}", line)
            callee = self.values[name]
        else:
            raise IRParseError(f"bad callee {value!r}", line)
        self.lex.expect("(")
        args: List[Value] = []
        while not self.lex.accept(")"):
            if args:
                self.lex.expect(",")
            args.append(self._parse_typed_operand())
        if isinstance(callee, Function):
            ftype = callee.function_type
        else:
            ftype = FunctionType(ret, tuple(a.type for a in args))
        return builder.call(callee, args, ftype)


def _decode_string(token: str) -> bytes:
    """Decode a ``c"..."`` token into raw bytes."""
    body = token[2:-1]
    out = bytearray()
    i = 0
    while i < len(body):
        ch = body[i]
        if ch == "\\":
            out.append(int(body[i + 1 : i + 3], 16))
            i += 3
        else:
            out.append(ord(ch))
            i += 1
    return bytes(out)
