"""Textual IR printer.

Produces an LLVM-flavoured rendering accepted back by
:mod:`repro.ir.parser`, so ``parse(print(m))`` round-trips.  Example::

    @str = internal const [6 x i8] c"hello\\00"

    define internal void @foo(i32 %unused) {
    entry:
      %r = call i32 @printf(ptr @str)
      ret void
    }
"""

from __future__ import annotations

from typing import List

from repro.ir.instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    FreezeInst,
    GepInst,
    IcmpInst,
    Instruction,
    LoadInst,
    PhiInst,
    RetInst,
    SelectInst,
    StoreInst,
    SwitchInst,
    UnreachableInst,
)
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.values import (
    Constant,
    GlobalAlias,
    GlobalValue,
    GlobalVariable,
    Value,
)


def _operand(value: Value) -> str:
    """Render an operand with its type prefix."""
    return f"{value.type} {_name(value)}"


def _name(value: Value) -> str:
    """Render an operand without its type."""
    if isinstance(value, (Constant, GlobalValue)):
        return value.ref()
    return f"%{value.name}"


def print_instruction(inst: Instruction) -> str:
    if isinstance(inst, BinaryInst):
        return f"%{inst.name} = {inst.opcode} {inst.type} {_name(inst.lhs)}, {_name(inst.rhs)}"
    if isinstance(inst, IcmpInst):
        return (
            f"%{inst.name} = icmp {inst.predicate} {inst.lhs.type} "
            f"{_name(inst.lhs)}, {_name(inst.rhs)}"
        )
    if isinstance(inst, CastInst):
        return f"%{inst.name} = {inst.opcode} {_operand(inst.value)} to {inst.type}"
    if isinstance(inst, SelectInst):
        return (
            f"%{inst.name} = select {_operand(inst.cond)}, "
            f"{_operand(inst.if_true)}, {_operand(inst.if_false)}"
        )
    if isinstance(inst, FreezeInst):
        return f"%{inst.name} = freeze {_operand(inst.value)}"
    if isinstance(inst, AllocaInst):
        return f"%{inst.name} = alloca {inst.allocated_type}"
    if isinstance(inst, LoadInst):
        return f"%{inst.name} = load {inst.type}, {_operand(inst.pointer)}"
    if isinstance(inst, StoreInst):
        return f"store {_operand(inst.value)}, {_operand(inst.pointer)}"
    if isinstance(inst, GepInst):
        return (
            f"%{inst.name} = gep {inst.element_type}, {_operand(inst.base)}, "
            f"{_operand(inst.index)}"
        )
    if isinstance(inst, CallInst):
        args = ", ".join(_operand(a) for a in inst.args)
        callee = _name(inst.callee)
        if inst.type.is_void():
            return f"call void {callee}({args})"
        return f"%{inst.name} = call {inst.type} {callee}({args})"
    if isinstance(inst, PhiInst):
        inc = ", ".join(f"[ {_name(v)}, %{b.name} ]" for v, b in inst.incoming)
        return f"%{inst.name} = phi {inst.type} {inc}"
    if isinstance(inst, BranchInst):
        if inst.is_conditional:
            t, f = inst.targets
            return f"br i1 {_name(inst.cond)}, label %{t.name}, label %{f.name}"
        return f"br label %{inst.targets[0].name}"
    if isinstance(inst, SwitchInst):
        cases = " ".join(
            f"{c.type} {c.signed}, label %{b.name}" for c, b in inst.cases
        )
        return (
            f"switch {_operand(inst.value)}, label %{inst.default.name} [ {cases} ]"
        )
    if isinstance(inst, RetInst):
        return f"ret {_operand(inst.value)}" if inst.value is not None else "ret void"
    if isinstance(inst, UnreachableInst):
        return "unreachable"
    raise TypeError(f"cannot print instruction {inst!r}")  # pragma: no cover


def print_block(block: BasicBlock) -> str:
    lines = [f"{block.name}:"]
    lines.extend(f"  {print_instruction(i)}" for i in block.instructions)
    return "\n".join(lines)


def print_function(fn: Function) -> str:
    linkage = f"{fn.linkage} " if fn.is_internal else ""
    if fn.is_declaration():
        params = ", ".join(str(p) for p in fn.function_type.params)
        if fn.function_type.vararg:
            params = f"{params}, ..." if params else "..."
        return f"declare {fn.return_type} @{fn.name}({params})"
    params = ", ".join(f"{a.type} %{a.name}" for a in fn.args)
    if fn.function_type.vararg:
        params = f"{params}, ..." if params else "..."
    header = f"{fn.return_type} @{fn.name}({params})"
    body = "\n".join(print_block(b) for b in fn.blocks)
    return f"define {linkage}{header} {{\n{body}\n}}"


def print_global(gv: GlobalVariable) -> str:
    linkage = f"{gv.linkage} " if gv.is_internal else ""
    kind = "const" if gv.is_const else "global"
    if gv.is_declaration():
        return f"@{gv.name} = declare {kind} {gv.value_type}"
    return f"@{gv.name} = {linkage}{kind} {gv.value_type} {gv.initializer.ref()}"


def print_alias(alias: GlobalAlias) -> str:
    linkage = f"{alias.linkage} " if alias.is_internal else ""
    return f"@{alias.name} = {linkage}alias @{alias.aliasee.name}"


def print_module(module: Module) -> str:
    chunks: List[str] = []
    for symbol in module.symbols.values():
        if isinstance(symbol, GlobalVariable):
            chunks.append(print_global(symbol))
    for symbol in module.symbols.values():
        if isinstance(symbol, GlobalAlias):
            chunks.append(print_alias(symbol))
    for symbol in module.symbols.values():
        if isinstance(symbol, Function):
            chunks.append(print_function(symbol))
    return "\n\n".join(chunks) + "\n"
