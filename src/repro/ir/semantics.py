"""Integer semantics shared by constant folding and the virtual machine.

Defining the arithmetic in exactly one place guarantees the optimizer and
the interpreter agree — the property our differential tests (O0 output vs
O2 output on random inputs) rely on.

Values are carried in their *unsigned* representation within the type's
width.  Semantics notes:

* ``sdiv``/``srem`` truncate toward zero (C semantics); division by zero
  raises :class:`ZeroDivisionError` (folders refuse, the VM traps).
* Shift amounts >= bit width are well-defined here (unlike LLVM's poison):
  ``shl``/``lshr`` produce 0 and ``ashr`` produces the sign fill.  A
  deterministic simulator must not have undefined behaviour.
"""

from __future__ import annotations

from repro.ir.types import IntType


def eval_binary(opcode: str, type_: IntType, a: int, b: int) -> int:
    """Evaluate a binary opcode on unsigned representations; returns unsigned."""
    bits = type_.bits
    if opcode == "add":
        return type_.wrap(a + b)
    if opcode == "sub":
        return type_.wrap(a - b)
    if opcode == "mul":
        return type_.wrap(a * b)
    if opcode == "udiv":
        if b == 0:
            raise ZeroDivisionError("udiv by zero")
        return type_.wrap(a // b)
    if opcode == "urem":
        if b == 0:
            raise ZeroDivisionError("urem by zero")
        return type_.wrap(a % b)
    if opcode == "sdiv":
        if b == 0:
            raise ZeroDivisionError("sdiv by zero")
        sa, sb = type_.to_signed(a), type_.to_signed(b)
        q = abs(sa) // abs(sb)
        if (sa < 0) != (sb < 0):
            q = -q
        return type_.wrap(q)
    if opcode == "srem":
        if b == 0:
            raise ZeroDivisionError("srem by zero")
        sa, sb = type_.to_signed(a), type_.to_signed(b)
        r = abs(sa) % abs(sb)
        if sa < 0:
            r = -r
        return type_.wrap(r)
    if opcode == "and":
        return a & b
    if opcode == "or":
        return a | b
    if opcode == "xor":
        return a ^ b
    if opcode == "shl":
        return 0 if b >= bits else type_.wrap(a << b)
    if opcode == "lshr":
        return 0 if b >= bits else a >> b
    if opcode == "ashr":
        sa = type_.to_signed(a)
        if b >= bits:
            return type_.wrap(-1 if sa < 0 else 0)
        return type_.wrap(sa >> b)
    raise ValueError(f"unknown binary opcode {opcode!r}")


def eval_icmp(predicate: str, type_: IntType, a: int, b: int) -> int:
    """Evaluate an icmp on unsigned representations; returns 0 or 1."""
    if predicate == "eq":
        return int(a == b)
    if predicate == "ne":
        return int(a != b)
    if predicate in ("ult", "ule", "ugt", "uge"):
        ua, ub = a, b
        return {
            "ult": int(ua < ub),
            "ule": int(ua <= ub),
            "ugt": int(ua > ub),
            "uge": int(ua >= ub),
        }[predicate]
    sa, sb = type_.to_signed(a), type_.to_signed(b)
    return {
        "slt": int(sa < sb),
        "sle": int(sa <= sb),
        "sgt": int(sa > sb),
        "sge": int(sa >= sb),
    }[predicate]


def eval_cast(opcode: str, from_type: IntType, to_type: IntType, a: int) -> int:
    """Evaluate zext/sext/trunc between integer types."""
    if opcode == "zext":
        return a
    if opcode == "sext":
        return to_type.wrap(from_type.to_signed(a))
    if opcode == "trunc":
        return to_type.wrap(a)
    raise ValueError(f"unknown cast opcode {opcode!r}")
