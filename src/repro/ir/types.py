"""Type system for the repro IR.

The IR is a simplified, typed, SSA-form IR modelled on LLVM:

* integer types ``i1 i8 i16 i32 i64``
* an opaque pointer type ``ptr`` (like modern LLVM, pointers carry no
  pointee type; loads/stores/GEPs state their element type explicitly)
* ``void`` for instructions producing no value
* array types ``[N x T]`` for global data
* function types ``T (T1, T2, ...)``

Types are interned: constructing the same type twice returns the same
object, so equality is identity and types are freely shareable across
modules (the scheduler clones modules but never needs to clone types).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import IRTypeError

POINTER_SIZE = 8  # bytes; the virtual machine is a 64-bit target


class Type:
    """Base class for all IR types."""

    def is_integer(self) -> bool:
        return isinstance(self, IntType)

    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    def is_array(self) -> bool:
        return isinstance(self, ArrayType)

    def is_function(self) -> bool:
        return isinstance(self, FunctionType)

    def is_first_class(self) -> bool:
        """Whether a value of this type can live in a virtual register."""
        return self.is_integer() or self.is_pointer()

    @property
    def size(self) -> int:
        """Size in bytes when stored in memory."""
        raise IRTypeError(f"type {self} has no storage size")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Type {self}>"


class VoidType(Type):
    _instance: "VoidType" = None

    def __new__(cls) -> "VoidType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __str__(self) -> str:
        return "void"


class IntType(Type):
    _cache: Dict[int, "IntType"] = {}

    def __new__(cls, bits: int) -> "IntType":
        if bits not in (1, 8, 16, 32, 64):
            raise IRTypeError(f"unsupported integer width: i{bits}")
        hit = cls._cache.get(bits)
        if hit is None:
            obj = super().__new__(cls)
            obj.bits = bits
            # setdefault keeps interning race-free when fragment compiles
            # run on a thread pool: the first insert wins, every thread
            # sees the same object, and equality stays identity.
            hit = cls._cache.setdefault(bits, obj)
        return hit

    bits: int

    @property
    def size(self) -> int:
        return max(1, self.bits // 8)

    @property
    def umax(self) -> int:
        """Largest value representable when read as unsigned."""
        return (1 << self.bits) - 1

    @property
    def smin(self) -> int:
        return -(1 << (self.bits - 1)) if self.bits > 1 else -1

    @property
    def smax(self) -> int:
        return (1 << (self.bits - 1)) - 1 if self.bits > 1 else 0

    def wrap(self, value: int) -> int:
        """Truncate *value* to this width, unsigned representation."""
        return value & self.umax

    def to_signed(self, value: int) -> int:
        """Reinterpret the unsigned representation *value* as signed."""
        value &= self.umax
        if self.bits > 1 and value > self.smax:
            value -= 1 << self.bits
        elif self.bits == 1 and value == 1:
            return 1  # i1 is treated as 0/1 in both views
        return value

    def __str__(self) -> str:
        return f"i{self.bits}"


class PointerType(Type):
    _instance: "PointerType" = None

    def __new__(cls) -> "PointerType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    @property
    def size(self) -> int:
        return POINTER_SIZE

    def __str__(self) -> str:
        return "ptr"


class ArrayType(Type):
    _cache: Dict[Tuple[Type, int], "ArrayType"] = {}

    def __new__(cls, element: Type, count: int) -> "ArrayType":
        if count < 0:
            raise IRTypeError(f"negative array length: {count}")
        if not (element.is_integer() or element.is_pointer() or element.is_array()):
            raise IRTypeError(f"invalid array element type: {element}")
        key = (element, count)
        hit = cls._cache.get(key)
        if hit is None:
            obj = super().__new__(cls)
            obj.element = element
            obj.count = count
            hit = cls._cache.setdefault(key, obj)  # thread-safe interning
        return hit

    element: Type
    count: int

    @property
    def size(self) -> int:
        return self.element.size * self.count

    def __str__(self) -> str:
        return f"[{self.count} x {self.element}]"


class FunctionType(Type):
    _cache: Dict[tuple, "FunctionType"] = {}

    def __new__(
        cls, ret: Type, params: Tuple[Type, ...] = (), vararg: bool = False
    ) -> "FunctionType":
        params = tuple(params)
        for p in params:
            if not p.is_first_class():
                raise IRTypeError(f"invalid parameter type: {p}")
        if not (ret.is_void() or ret.is_first_class()):
            raise IRTypeError(f"invalid return type: {ret}")
        key = (ret, params, vararg)
        hit = cls._cache.get(key)
        if hit is None:
            obj = super().__new__(cls)
            obj.ret = ret
            obj.params = params
            obj.vararg = vararg
            hit = cls._cache.setdefault(key, obj)  # thread-safe interning
        return hit

    ret: Type
    params: Tuple[Type, ...]
    vararg: bool

    def __str__(self) -> str:
        parts: List[str] = [str(p) for p in self.params]
        if self.vararg:
            parts.append("...")
        return f"{self.ret} ({', '.join(parts)})"


# Convenient singletons, used pervasively.
VOID = VoidType()
I1 = IntType(1)
I8 = IntType(8)
I16 = IntType(16)
I32 = IntType(32)
I64 = IntType(64)
PTR = PointerType()

_BY_NAME = {"void": VOID, "i1": I1, "i8": I8, "i16": I16, "i32": I32, "i64": I64, "ptr": PTR}


def type_by_name(name: str) -> Type:
    """Look up a scalar type by its textual name (``i32``, ``ptr`` ...)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise IRTypeError(f"unknown type name: {name!r}") from None
