"""Value hierarchy for the repro IR.

Mirrors LLVM's ``Value`` lattice closely enough for the paper's machinery:

* :class:`Constant` — integers, byte data, undef, null
* :class:`GlobalValue` — anything that maps to a linker symbol: global
  variables, functions, and alias symbols.  Aliases are included because
  the paper's partitioner treats "alias must be defined with its aliasee"
  as an *innate* partition constraint (§2.3).
* :class:`Argument` — formal function parameters.

Instructions live in :mod:`repro.ir.instructions`; functions, basic blocks
and modules live in :mod:`repro.ir.module`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import IRError, IRTypeError
from repro.ir.types import ArrayType, I8, IntType, PTR, Type

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.module import Function


class Value:
    """Anything that can appear as an instruction operand."""

    def __init__(self, type_: Type, name: str = ""):
        self.type = type_
        self.name = name

    def ref(self) -> str:
        """Short textual reference used when printing operands."""
        return f"%{self.name}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.ref()}: {self.type}>"


class Constant(Value):
    """Base class for immediate values."""

    def ref(self) -> str:
        raise NotImplementedError


class ConstantInt(Constant):
    """An integer immediate, stored in its *unsigned* representation."""

    def __init__(self, type_: IntType, value: int):
        if not isinstance(type_, IntType):
            raise IRTypeError(f"ConstantInt needs an integer type, got {type_}")
        super().__init__(type_)
        self.value = type_.wrap(value)

    @property
    def signed(self) -> int:
        """The value reinterpreted as signed."""
        return self.type.to_signed(self.value)

    def is_zero(self) -> bool:
        return self.value == 0

    def ref(self) -> str:
        return str(self.signed)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ConstantInt)
            and other.type is self.type
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash((self.type, self.value))


class ConstantData(Constant):
    """Raw byte data, used for string literals and data tables."""

    def __init__(self, data: bytes):
        super().__init__(ArrayType(I8, len(data)))
        self.data = bytes(data)

    @classmethod
    def from_string(cls, text: str) -> "ConstantData":
        """C-style string constant: UTF-8 bytes plus a NUL terminator."""
        return cls(text.encode("utf-8") + b"\x00")

    def ref(self) -> str:
        return "c" + _escape_bytes(self.data)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ConstantData) and other.data == self.data

    def __hash__(self) -> int:
        return hash(self.data)


class ConstantArray(Constant):
    """An array of integer constants (e.g. jump tables, opcode tables)."""

    def __init__(self, element_type: IntType, values):
        values = [int(v) for v in values]
        super().__init__(ArrayType(element_type, len(values)))
        self.element_type = element_type
        self.values = [element_type.wrap(v) for v in values]

    def ref(self) -> str:
        inner = ", ".join(f"{self.element_type} {v}" for v in self.values)
        return f"[{inner}]"


class UndefValue(Constant):
    """An unspecified value of a given type."""

    def __init__(self, type_: Type):
        super().__init__(type_)

    def ref(self) -> str:
        return "undef"


class NullPtr(Constant):
    """The null pointer constant."""

    def __init__(self):
        super().__init__(PTR)

    def ref(self) -> str:
        return "null"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, NullPtr)

    def __hash__(self) -> int:
        return hash("nullptr")


# Linkage kinds.  "external" symbols are visible across fragments and keep a
# stable ABI; "internal" symbols may be transformed freely by interprocedural
# optimization (the paper's internalization step, §3.2 step 4).
LINKAGE_EXTERNAL = "external"
LINKAGE_INTERNAL = "internal"
VALID_LINKAGES = (LINKAGE_EXTERNAL, LINKAGE_INTERNAL)


class GlobalValue(Value):
    """A value with a linker symbol: global variable, function, or alias."""

    def __init__(self, type_: Type, name: str, linkage: str = LINKAGE_EXTERNAL):
        if not name:
            raise IRError("global values must be named")
        if linkage not in VALID_LINKAGES:
            raise IRError(f"invalid linkage {linkage!r} for @{name}")
        super().__init__(type_, name)
        self.linkage = linkage
        self.module = None  # set when inserted into a Module

    @property
    def is_internal(self) -> bool:
        return self.linkage == LINKAGE_INTERNAL

    def is_declaration(self) -> bool:
        """True when the symbol is only declared (imported), not defined."""
        raise NotImplementedError

    def ref(self) -> str:
        return f"@{self.name}"


class GlobalVariable(GlobalValue):
    """A global variable.  Its value type is ``value_type``; as an operand it
    is a pointer to its storage (like LLVM)."""

    def __init__(
        self,
        name: str,
        value_type: Type,
        initializer: Optional[Constant] = None,
        *,
        is_const: bool = False,
        linkage: str = LINKAGE_EXTERNAL,
    ):
        super().__init__(PTR, name, linkage)
        self.value_type = value_type
        self.initializer = initializer
        self.is_const = is_const

    def is_declaration(self) -> bool:
        return self.initializer is None

    def __repr__(self) -> str:  # pragma: no cover
        return f"<GlobalVariable @{self.name}: {self.value_type}>"


class GlobalAlias(GlobalValue):
    """An alias symbol: a second name for an existing global.

    §2.3: "the base symbol being aliased to must be defined rather than be
    declared.  Consequently, the base symbol should be compiled altogether
    with the aliased symbol" — this is the canonical innate partition
    constraint the partitioner must honour.
    """

    def __init__(self, name: str, aliasee: GlobalValue, linkage: str = LINKAGE_EXTERNAL):
        if isinstance(aliasee, GlobalAlias):
            raise IRError(f"alias @{name} may not target another alias")
        super().__init__(aliasee.type, name, linkage)
        self.aliasee = aliasee

    def is_declaration(self) -> bool:
        return False

    def resolve(self) -> GlobalValue:
        """Return the aliased definition."""
        return self.aliasee


class Argument(Value):
    """A formal parameter of a function."""

    def __init__(self, type_: Type, name: str, parent: "Function", index: int):
        super().__init__(type_, name)
        self.parent = parent
        self.index = index


def _escape_bytes(data: bytes) -> str:
    """Render bytes the way LLVM renders ``c"..."`` string constants."""
    out = ['"']
    for b in data:
        if 32 <= b < 127 and b not in (34, 92):  # printable, not " or \
            out.append(chr(b))
        else:
            out.append(f"\\{b:02X}")
    out.append('"')
    return "".join(out)
