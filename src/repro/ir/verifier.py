"""IR verifier.

Checks the structural invariants every pass must preserve:

* every block ends in exactly one terminator, which is the last instruction
* phi nodes have exactly one incoming per predecessor and sit at block heads
* every value use is dominated by its definition (SSA)
* operands attached to a function belong to that function
* referenced globals are present in the module ("a well-formed IR cannot
  reference undefined symbols" — §3.2 step 3)
* alias symbols target definitions, not declarations (§2.3)
* phi incoming values carry the phi's result type
* call operand count/types match the called signature, and direct calls
  agree with the callee's declared type (ABI pairs, §2.3)
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.errors import VerifierError
from repro.ir.analysis import compute_dominators
from repro.ir.instructions import CallInst, Instruction, PhiInst
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.values import Argument, Constant, GlobalValue, Value


def verify_module(module: Module) -> None:
    """Raise :class:`VerifierError` on the first violation found."""
    for alias in module.aliases():
        if alias.aliasee.name not in module.symbols:
            raise VerifierError(
                f"alias @{alias.name} targets @{alias.aliasee.name}, "
                f"which is not in the module"
            )
        if alias.aliasee.is_declaration():
            raise VerifierError(
                f"alias @{alias.name} targets declaration @{alias.aliasee.name}; "
                f"the base symbol must be defined (innate constraint)"
            )
    for fn in module.defined_functions():
        verify_function(fn, module)


def verify_function(fn: Function, module: Module = None) -> None:
    if module is None:
        module = fn.module
    if not fn.blocks:
        raise VerifierError(f"@{fn.name}: definition has no blocks")

    block_set = set(id(b) for b in fn.blocks)
    defined: Dict[int, BasicBlock] = {}

    for block in fn.blocks:
        _verify_block_shape(fn, block, block_set)
        for inst in block.instructions:
            defined[id(inst)] = block

    preds: Dict[BasicBlock, List[BasicBlock]] = {b: [] for b in fn.blocks}
    for block in fn.blocks:
        for succ in block.successors():
            preds[succ].append(block)

    _verify_phis(fn, preds)
    _verify_calls(fn)
    _verify_uses(fn, module, defined)
    _verify_dominance(fn, defined)


def _verify_block_shape(fn: Function, block: BasicBlock, block_set: Set[int]) -> None:
    if not block.instructions:
        raise VerifierError(f"@{fn.name}:{block.name}: empty block")
    term = block.instructions[-1]
    if not term.is_terminator:
        raise VerifierError(f"@{fn.name}:{block.name}: missing terminator")
    for inst in block.instructions[:-1]:
        if inst.is_terminator:
            raise VerifierError(
                f"@{fn.name}:{block.name}: terminator {inst.opcode} in block middle"
            )
    seen_non_phi = False
    for inst in block.instructions:
        if inst.parent is not block:
            raise VerifierError(
                f"@{fn.name}:{block.name}: instruction %{inst.name} has wrong parent"
            )
        if isinstance(inst, PhiInst):
            if seen_non_phi:
                raise VerifierError(
                    f"@{fn.name}:{block.name}: phi %{inst.name} after non-phi"
                )
        else:
            seen_non_phi = True
    for succ in term.successors():
        if id(succ) not in block_set:
            raise VerifierError(
                f"@{fn.name}:{block.name}: branch to block {succ.name} "
                f"outside the function"
            )


def _verify_phis(fn: Function, preds: Dict[BasicBlock, List[BasicBlock]]) -> None:
    for block in fn.blocks:
        pred_ids = {id(p) for p in preds[block]}
        for phi in block.phis():
            incoming_ids = [id(b) for _, b in phi.incoming]
            if len(set(incoming_ids)) != len(incoming_ids):
                raise VerifierError(
                    f"@{fn.name}:{block.name}: phi %{phi.name} has duplicate incoming"
                )
            if set(incoming_ids) != pred_ids:
                got = sorted(b.name for _, b in phi.incoming)
                want = sorted(p.name for p in preds[block])
                raise VerifierError(
                    f"@{fn.name}:{block.name}: phi %{phi.name} incoming {got} "
                    f"does not match predecessors {want}"
                )
            for value, pred in phi.incoming:
                if value.type is not phi.type:
                    raise VerifierError(
                        f"@{fn.name}:{block.name}: phi %{phi.name} incoming "
                        f"from {pred.name} has type {value.type}, "
                        f"expected {phi.type}"
                    )


def _verify_calls(fn: Function) -> None:
    for block in fn.blocks:
        for inst in block.instructions:
            if not isinstance(inst, CallInst):
                continue
            ftype = inst.function_type
            args = inst.args
            fixed = len(ftype.params)
            if len(args) < fixed or (len(args) > fixed and not ftype.vararg):
                raise VerifierError(
                    f"@{fn.name}:{block.name}: call %{inst.name or '?'} "
                    f"passes {len(args)} arguments, signature {ftype} "
                    f"expects {fixed}{'+' if ftype.vararg else ''}"
                )
            for i, (arg, pty) in enumerate(zip(args, ftype.params)):
                if arg.type is not pty:
                    raise VerifierError(
                        f"@{fn.name}:{block.name}: call argument {i} has "
                        f"type {arg.type}, signature expects {pty}"
                    )
            callee = inst.callee
            if isinstance(callee, Function) and callee.function_type is not ftype:
                raise VerifierError(
                    f"@{fn.name}:{block.name}: call to @{callee.name} uses "
                    f"signature {ftype}, but the callee is declared "
                    f"{callee.function_type}"
                )


def _all_operands(inst: Instruction) -> List[Value]:
    ops = list(inst.operands)
    if isinstance(inst, PhiInst):
        ops.extend(inst.used_values())
    return ops


def _verify_uses(fn: Function, module: Module, defined: Dict[int, BasicBlock]) -> None:
    args = {id(a) for a in fn.args}
    for block in fn.blocks:
        for inst in block.instructions:
            for op in _all_operands(inst):
                if isinstance(op, Constant):
                    continue
                if isinstance(op, GlobalValue):
                    if module is not None and op.name not in module.symbols:
                        raise VerifierError(
                            f"@{fn.name}: reference to @{op.name}, "
                            f"which is not in the module"
                        )
                    if module is not None and module.symbols[op.name] is not op:
                        raise VerifierError(
                            f"@{fn.name}: reference to stale symbol object @{op.name}"
                        )
                    continue
                if isinstance(op, Argument):
                    if id(op) not in args:
                        raise VerifierError(
                            f"@{fn.name}: use of foreign argument %{op.name}"
                        )
                    continue
                if isinstance(op, Instruction):
                    if id(op) not in defined:
                        raise VerifierError(
                            f"@{fn.name}: use of detached instruction %{op.name}"
                        )
                    continue
                raise VerifierError(f"@{fn.name}: unknown operand kind {op!r}")


def _verify_dominance(fn: Function, defined: Dict[int, BasicBlock]) -> None:
    idom = compute_dominators(fn)

    def dominates(a: BasicBlock, b: BasicBlock) -> bool:
        while b is not None:
            if b is a:
                return True
            b = idom.get(b)
        return False

    for block in fn.blocks:
        if block not in idom and block is not fn.entry:
            continue  # unreachable block: dominance is vacuous
        position = {id(inst): i for i, inst in enumerate(block.instructions)}
        for inst in block.instructions:
            if isinstance(inst, PhiInst):
                for value, pred in inst.incoming:
                    if isinstance(value, Instruction):
                        def_block = defined.get(id(value))
                        if def_block is None or pred not in idom and pred is not fn.entry:
                            continue
                        if not dominates(def_block, pred):
                            raise VerifierError(
                                f"@{fn.name}:{block.name}: phi %{inst.name} incoming "
                                f"%{value.name} does not dominate edge from {pred.name}"
                            )
                continue
            for op in inst.operands:
                if not isinstance(op, Instruction):
                    continue
                def_block = defined.get(id(op))
                if def_block is block:
                    if position[id(op)] >= position[id(inst)]:
                        raise VerifierError(
                            f"@{fn.name}:{block.name}: %{inst.name} uses %{op.name} "
                            f"before its definition"
                        )
                elif not dominates(def_block, block):
                    raise VerifierError(
                        f"@{fn.name}:{block.name}: %{inst.name} uses %{op.name}, "
                        f"whose definition in {def_block.name} does not dominate"
                    )
