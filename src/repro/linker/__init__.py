"""repro.linker — symbol resolution and executable images."""

from repro.linker.linker import (
    DATA_BASE,
    Executable,
    FUNC_BASE,
    LinkedFunction,
    RUNTIME_BUILTINS,
    link,
)
from repro.linker.variants import VariantExecutable, link_variants

__all__ = [
    "DATA_BASE", "FUNC_BASE", "Executable", "LinkedFunction",
    "RUNTIME_BUILTINS", "VariantExecutable", "link", "link_variants",
]
