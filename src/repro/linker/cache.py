"""Executable image cache: skip relinking identical object sets.

The linker already supports Odin's *object* reuse (cached object files
participate in many links, §3.3).  The recompilation service adds one
level above that: when every fragment of a rebuild hits the
content-addressed code cache, the set of objects being linked is
byte-identical to an earlier link — so the executable image itself can
be reused and the link stage skipped entirely.

Keys are tuples of the fragments' content-cache keys in fragment order,
so this cache only engages when the engine runs with a content cache
(it is the content keys that prove the objects are identical).  The
cache is in-memory and bounded; eviction is LRU.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

from repro.linker.linker import Executable

LinkKey = Tuple[str, ...]


class LinkCache:
    """Bounded LRU of linked executables keyed by object content keys."""

    def __init__(self, max_entries: int = 32):
        if max_entries <= 0:
            raise ValueError("LinkCache needs max_entries >= 1")
        self.max_entries = max_entries
        self._entries: "OrderedDict[LinkKey, Executable]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: LinkKey) -> Optional[Executable]:
        exe = self._entries.get(key)
        if exe is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return exe

    def put(self, key: LinkKey, exe: Executable) -> None:
        self._entries[key] = exe
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry *and* the hit/miss counters.

        ``clear()`` starts a new epoch: callers that empty the cache
        (e.g. between benchmark phases) read ``stats()`` expecting it to
        describe the cache *since the clear*, so leaving the previous
        epoch's counters in place made every post-clear snapshot lie.
        Use :meth:`reset_stats` to zero the counters without dropping
        entries.
        """
        self._entries.clear()
        self.reset_stats()

    def reset_stats(self) -> None:
        """Zero the hit/miss counters, keeping the cached entries."""
        self.hits = 0
        self.misses = 0

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
        }
