"""Linker: object files -> executable image.

Responsibilities mirror a real static linker's:

* merge data symbols into one memory image (internal symbols stay
  object-private, exported names must be unique)
* build the function table; resolve direct calls, ``lea`` references and
  aliases per object file
* leave object files untouched so the Odin machine-code cache can reuse
  them across relinks (§3.3: "all cached machine code is then linked to
  an executable")

Resolution is stored in per-object maps instead of patched into the
instructions, which is the moral equivalent of a relocation table and is
what lets one cached object participate in many links.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.backend.costmodel import image_patch_cost_ms, link_cost_ms
from repro.backend.machine import MachineFunction, ObjectFile
from repro.errors import LinkError

DATA_BASE = 0x10000
FUNC_BASE = 0x8000_0000
FUNC_STRIDE = 16

# Builtins provided by the VM runtime; resolvable without a definition.
RUNTIME_BUILTINS = (
    "printf", "puts", "putchar", "malloc", "free", "memcpy", "memset",
    "strlen", "strcmp", "abort", "exit",
)

# Resolution entries: ("data", address) | ("func", index) | ("builtin", name)
Resolution = Tuple[str, object]


@dataclass
class LinkedFunction:
    """A function in the executable: machine code + its resolution map."""

    mf: MachineFunction
    object_name: str
    resolution: Dict[str, Resolution]

    @property
    def name(self) -> str:
        return self.mf.name


@dataclass
class Executable:
    """A fully linked program image."""

    functions: List[LinkedFunction] = field(default_factory=list)
    entry_points: Dict[str, int] = field(default_factory=dict)  # exported fns
    data_image: bytes = b""
    data_base: int = DATA_BASE
    symbol_addresses: Dict[str, int] = field(default_factory=dict)  # exported data
    const_ranges: List[Tuple[int, int]] = field(default_factory=list)
    link_ms: float = 0.0

    @property
    def data_end(self) -> int:
        return self.data_base + len(self.data_image)

    def function_index(self, name: str) -> int:
        try:
            return self.entry_points[name]
        except KeyError:
            raise LinkError(f"no exported function @{name}") from None

    def function_address(self, index: int) -> int:
        return FUNC_BASE + index * FUNC_STRIDE

    def index_from_address(self, address: int) -> int:
        if address < FUNC_BASE or (address - FUNC_BASE) % FUNC_STRIDE:
            raise LinkError(f"bad function address {address:#x}")
        index = (address - FUNC_BASE) // FUNC_STRIDE
        if index >= len(self.functions):
            raise LinkError(f"function address {address:#x} out of range")
        return index

    def canonical_bytes(self) -> bytes:
        """Deterministic serialization of the linked image.

        Everything the VM can observe is included — code, resolution
        maps, data image, entry points — while link timing is not.  Two
        executables with equal canonical bytes behave identically on
        every input, which is the property the ``repro check``
        differential oracle asserts between incremental and from-scratch
        builds.
        """
        parts = []
        for lf in self.functions:
            parts.append(f"func {lf.name} from {lf.object_name}")
            parts.append(lf.mf.canonical_dump())
            for sym in sorted(lf.resolution):
                kind, value = lf.resolution[sym]
                parts.append(f"  {sym} -> {kind}:{value}")
        parts.append(
            "entry " + " ".join(f"{n}:{i}" for n, i in sorted(self.entry_points.items()))
        )
        parts.append(f"data_base {self.data_base}")
        parts.append("data " + self.data_image.hex())
        parts.append(
            "symbols "
            + " ".join(f"{n}:{a}" for n, a in sorted(self.symbol_addresses.items()))
        )
        parts.append(
            "const " + " ".join(f"{a}:{b}" for a, b in sorted(self.const_ranges))
        )
        return "\n".join(parts).encode()

    def fingerprint(self) -> str:
        return hashlib.sha256(self.canonical_bytes()).hexdigest()


def link(objects: List[ObjectFile]) -> Executable:
    """Link *objects* into an executable."""
    exe = Executable()
    image = bytearray()

    # -- pass 1: place data, register functions ------------------------------
    # local_syms[obj_name][sym] -> Resolution; exports[sym] -> Resolution
    local_syms: Dict[str, Dict[str, Resolution]] = {o.name: {} for o in objects}
    exports: Dict[str, Resolution] = {}
    export_origin: Dict[str, str] = {}

    def place_data(obj: ObjectFile, name: str, data: bytes, is_const: bool) -> int:
        # 8-byte alignment for every symbol.
        while len(image) % 8:
            image.append(0)
        addr = DATA_BASE + len(image)
        image.extend(data)
        if is_const:
            exe.const_ranges.append((addr, addr + len(data)))
        return addr

    for obj in objects:
        for name, sym in obj.data.items():
            addr = place_data(obj, name, sym.data, sym.is_const)
            res: Resolution = ("data", addr)
            local_syms[obj.name][name] = res
            if sym.linkage != "internal":
                _export(exports, export_origin, obj.name, name, res)
                exe.symbol_addresses[name] = addr
        for name, mf in obj.functions.items():
            index = len(exe.functions)
            exe.functions.append(LinkedFunction(mf, obj.name, {}))
            res = ("func", index)
            local_syms[obj.name][name] = res
            if mf.linkage != "internal":
                _export(exports, export_origin, obj.name, name, res)
                exe.entry_points[name] = index

    # Aliases resolve to whatever their target resolved to, in-object first.
    for obj in objects:
        for alias, (target, linkage) in obj.aliases.items():
            res = local_syms[obj.name].get(target) or exports.get(target)
            if res is None:
                raise LinkError(
                    f"alias @{alias} in {obj.name} targets undefined @{target}"
                )
            local_syms[obj.name][alias] = res
            if linkage != "internal":
                _export(exports, export_origin, obj.name, alias, res)
                if res[0] == "func":
                    exe.entry_points[alias] = res[1]
                else:
                    exe.symbol_addresses[alias] = res[1]

    # -- pass 2: build per-object resolution maps ------------------------------
    per_object_resolution: Dict[str, Dict[str, Resolution]] = {}
    for obj in objects:
        resolution: Dict[str, Resolution] = dict(local_syms[obj.name])
        for name in _referenced_symbols(obj):
            if name in resolution:
                continue
            hit = exports.get(name)
            if hit is not None:
                resolution[name] = hit
            elif name in RUNTIME_BUILTINS:
                resolution[name] = ("builtin", name)
            else:
                raise LinkError(f"undefined symbol @{name} referenced from {obj.name}")
        per_object_resolution[obj.name] = resolution

    for lf in exe.functions:
        lf.resolution = per_object_resolution[lf.object_name]

    exe.data_image = bytes(image)
    num_symbols = sum(len(o.defined_symbols()) for o in objects)
    code_size = sum(o.code_size for o in objects)
    exe.link_ms = link_cost_ms(num_symbols, code_size)
    return exe


def patch_image(
    exe: Executable, objects_by_name: Dict[str, ObjectFile]
) -> Executable:
    """Splice patched objects into an existing image without relinking.

    Stage-1 probe patching only deletes/restores probe instructions inside
    already-linked functions: the function set, symbol addresses, data
    image and every resolution map are unchanged, so a full symbol
    resolution pass would recompute exactly what *exe* already holds.
    This swaps the machine code of the affected functions (sharing each
    old :class:`LinkedFunction`'s resolution map) and charges the far
    cheaper image-patch cost.

    *exe* is never mutated — cached executables stay valid.
    """
    replaced_functions = 0
    functions: List[LinkedFunction] = []
    for lf in exe.functions:
        obj = objects_by_name.get(lf.object_name)
        if obj is None:
            functions.append(lf)
            continue
        mf = obj.functions.get(lf.name)
        if mf is None:
            raise LinkError(
                f"patched object {obj.name} dropped function @{lf.name}; "
                f"a stage-1 patch cannot change the function set"
            )
        if mf is lf.mf:
            functions.append(lf)
        else:
            functions.append(LinkedFunction(mf, lf.object_name, lf.resolution))
            replaced_functions += 1
    patched = Executable(
        functions=functions,
        entry_points=dict(exe.entry_points),
        data_image=exe.data_image,
        data_base=exe.data_base,
        symbol_addresses=dict(exe.symbol_addresses),
        const_ranges=list(exe.const_ranges),
        link_ms=image_patch_cost_ms(replaced_functions),
    )
    return patched


def _export(
    exports: Dict[str, Resolution],
    origin: Dict[str, str],
    obj_name: str,
    name: str,
    res: Resolution,
) -> None:
    if name in exports:
        raise LinkError(
            f"duplicate exported symbol @{name} "
            f"(defined in {origin[name]} and {obj_name})"
        )
    exports[name] = res
    origin[name] = obj_name


def _referenced_symbols(obj: ObjectFile) -> List[str]:
    names: List[str] = []
    seen = set()
    for mf in obj.functions.values():
        for inst in mf.insts:
            if inst.sym is not None and inst.sym not in seen:
                seen.add(inst.sym)
                names.append(inst.sym)
    for target, _linkage in obj.aliases.values():
        if target not in seen:
            seen.add(target)
            names.append(target)
    return names
