"""Multi-variant executable images: one link, N sanitization families.

Run-time partitioned sanitization (PartiSan, Lettner et al.) keeps
several *variants* of every function co-resident — here a ``clean``
build, a ``coverage`` build and a fully ``sanitized`` build of the same
fragments — and picks among them at run time through a per-function
dispatch table.  Odin's linker makes this cheap: each family is an
ordinary per-fragment link, and :func:`link_variants` merges the family
images into one :class:`VariantExecutable`:

* the **default family's** image provides the data segment, exported
  entry points and symbol addresses — by construction every family
  compiles the *same* fragment modules (instrumentation adds code, never
  data), which :func:`link_variants` verifies byte-for-byte;
* every family's functions are appended to one shared function table,
  with their resolution maps re-based so intra-family direct calls stay
  within the family;
* a **dispatch table** maps ``function name -> family -> merged index``.
  The VM routes every call through it (see ``VM(variant_selector=...)``),
  so the executing variant of each function is a per-execution or
  per-call runtime decision, not a link-time one.

Function addresses (``lea`` + indirect calls) use the merged index
space, so a function pointer taken inside one family still dispatches to
the selected family when called — the dispatch table is keyed by name,
and every variant index of a function resolves to the same name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.backend.costmodel import link_cost_ms
from repro.errors import LinkError
from repro.linker.linker import Executable, LinkedFunction, Resolution


@dataclass
class VariantExecutable(Executable):
    """A linked image holding every sanitization family of the program.

    Behaves exactly like an :class:`Executable` whose function table
    happens to contain each function once per family; the extra state is
    the dispatch metadata the VM's variant selector routes through.
    """

    # Family names in merge order; families[0] is the default the entry
    # points resolve to when no selector is installed.
    families: List[str] = field(default_factory=list)
    # Per merged-function-index: which family the function belongs to.
    family_of: List[str] = field(default_factory=list)
    # function name -> family -> merged function index.
    variant_index: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def default_family(self) -> str:
        return self.families[0] if self.families else ""

    def function_name(self, index: int) -> str:
        return self.functions[index].name

    def dispatch(self, index: int, family: str) -> int:
        """Merged index of *family*'s variant of the function at *index*.

        Unknown families, and functions the requested family does not
        define (optimization can erase a helper from one family but not
        another), fall back to the index as-is — the call stays in the
        family that owns the targeted slot.
        """
        variants = self.variant_index.get(self.functions[index].name)
        if variants is None:
            return index
        return variants.get(family, index)

    def canonical_bytes(self) -> bytes:
        parts = [super().canonical_bytes().decode()]
        parts.append("variant-families " + ",".join(self.families))
        for name in sorted(self.variant_index):
            entry = self.variant_index[name]
            parts.append(
                f"variant {name} "
                + " ".join(f"{fam}:{entry[fam]}" for fam in sorted(entry))
            )
        return "\n".join(parts).encode()


def link_variants(
    family_images: Mapping[str, Executable], default: Optional[str] = None
) -> VariantExecutable:
    """Merge per-family linked images into one multi-variant image.

    *family_images* maps family label -> that family's ordinary link of
    the program's fragments (iteration order is preserved).  *default*
    names the family that backs the exported entry points; it defaults to
    the first family.  Every family must carry an identical data segment
    (instrumentation adds code, never data) — verified here because a
    violation would mean variants are *not* behaviour-interchangeable.

    Function *sets* may differ between families: per-fragment
    optimization can inline a helper out of existence in the clean build
    while probes keep it alive in an instrumented one.  Each family's
    functions are appended wholesale; a name missing from the selected
    family simply falls back to the caller's current family at dispatch
    time (``VariantExecutable.dispatch``), which is sound because any
    call to it originates inside a family that does define it.
    """
    if not family_images:
        raise LinkError("link_variants needs at least one family image")
    order = list(family_images)
    if default is None:
        default = order[0]
    if default not in family_images:
        raise LinkError(f"default family {default!r} has no image")
    order.remove(default)
    order.insert(0, default)

    base = family_images[default]
    exe = VariantExecutable(
        entry_points=dict(base.entry_points),
        data_image=base.data_image,
        data_base=base.data_base,
        symbol_addresses=dict(base.symbol_addresses),
        const_ranges=list(base.const_ranges),
        families=order,
    )

    for family in order:
        image = family_images[family]
        if image.data_image != base.data_image or (
            image.data_base != base.data_base
        ):
            raise LinkError(
                f"variant family {family!r} has a different data segment "
                f"than {default!r}; instrumentation must not touch data"
            )
        offset = len(exe.functions)
        remapped: Dict[int, Dict[str, Resolution]] = {}
        for lf in image.functions:
            resolution = remapped.get(id(lf.resolution))
            if resolution is None:
                resolution = _rebase_resolution(lf.resolution, offset)
                remapped[id(lf.resolution)] = resolution
            index = len(exe.functions)
            exe.functions.append(
                LinkedFunction(lf.mf, f"{lf.object_name}#{family}", resolution)
            )
            exe.family_of.append(family)
            exe.variant_index.setdefault(lf.name, {})[family] = index

    # Building the dispatch table is the only work beyond the family
    # links (which were each priced normally); charge it like a link
    # over the dispatch entries.
    exe.link_ms = link_cost_ms(len(exe.functions) - len(base.functions), 0)
    return exe


def _rebase_resolution(
    resolution: Dict[str, Resolution], offset: int
) -> Dict[str, Resolution]:
    """Shift a family-local resolution map into the merged index space.

    Only ``("func", index)`` entries move; data addresses and builtins
    are family-independent.  Intra-family calls therefore resolve to the
    same family's functions — the dispatch table (not static resolution)
    is what lets execution cross families.
    """
    if offset == 0:
        return dict(resolution)
    return {
        sym: (("func", value + offset) if kind == "func" else (kind, value))
        for sym, (kind, value) in resolution.items()
    }
