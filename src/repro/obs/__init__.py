"""Pipeline-wide observability: spans, metrics, trace export.

One coherent layer replaces the ad-hoc timing code that used to be
scattered across the engine, the fuzzer and the service:

* :mod:`repro.obs.tracer` — hierarchical :class:`Span` trees with **dual
  timestamps** (deterministic simulated-clock milliseconds next to real
  ``perf_counter`` milliseconds), produced by a thread-safe
  :class:`Tracer` that every rebuild writes into.  A rebuild decomposes
  into ``schedule -> extract -> instrument -> compile(per-fragment,
  per-pass) -> link``.
* :mod:`repro.obs.metrics` — the shared :class:`MetricsRegistry`
  (counters, gauges, latency percentiles with a deterministic
  whole-lifetime reservoir).  ``repro.service.metrics`` re-exports it as
  ``ServiceMetrics`` for backward compatibility.
* :mod:`repro.obs.trace` — Chrome ``trace_event`` JSON export (load the
  file in ``chrome://tracing`` / Perfetto) plus a text flame summary;
  surfaced as ``repro trace <program>`` and ``--trace-out`` on
  ``repro fuzz`` / ``repro serve``.
"""

from repro.obs.metrics import (
    LatencyStat,
    MetricsRegistry,
    ServiceMetrics,
    format_stats,
)
from repro.obs.trace import (
    flame_summary,
    pass_totals,
    stage_totals,
    to_trace_events,
    trace_json,
    validate_trace_events,
    write_trace,
)
from repro.obs.tracer import Span, Tracer

__all__ = [
    "LatencyStat",
    "MetricsRegistry",
    "ServiceMetrics",
    "Span",
    "Tracer",
    "flame_summary",
    "format_stats",
    "pass_totals",
    "stage_totals",
    "to_trace_events",
    "trace_json",
    "validate_trace_events",
    "write_trace",
]
