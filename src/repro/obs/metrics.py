"""Shared metrics registry: counters, gauges and latency percentiles.

Inference-server style: every stage of the request path records into one
shared :class:`MetricsRegistry`, and ``stats()`` snapshots the whole
thing as one JSON-serializable dict — the payload behind the
``repro serve --stats-json`` endpoint and ``repro stats``.

Thread-safe; all components of a stack (engine stages, queue,
dispatcher, workers, caches) share one registry.  ``ServiceMetrics`` is
kept as an alias for backward compatibility (the registry started life
in ``repro.service.metrics``).

Latency reservoirs are **deterministic and lifetime-representative**: a
stride-doubling systematic sample.  The first ``MAX_SAMPLES``
observations are all kept; each time the reservoir fills it is decimated
to every other sample and the sampling stride doubles, so at any moment
the reservoir holds every ``stride``-th observation of the *entire*
history.  Percentiles therefore describe the same population as
``count``/``mean_ms`` — unlike the previous ring overwrite, whose
percentiles silently switched to "the last 4096 samples" after
wraparound while the lifetime aggregates kept growing.
"""

from __future__ import annotations

import json
import math
import threading
from typing import Dict, List

# Latency reservoirs are bounded; a fuzzing campaign can issue millions of
# requests and percentile quality does not need more than this.
MAX_SAMPLES = 4096


class LatencyStat:
    """Lifetime aggregates + a deterministic systematic sample reservoir."""

    def __init__(self):
        self.count = 0
        self.total_ms = 0.0
        self.max_ms = 0.0
        self.last_ms = 0.0
        self._samples: List[float] = []
        self._stride = 1

    def record(self, ms: float) -> None:
        self.count += 1
        self.total_ms += ms
        self.last_ms = ms
        if ms > self.max_ms:
            self.max_ms = ms
        # Systematic sampling: keep every stride-th observation (1-based
        # observation index 1, 1+stride, 1+2*stride, ...).
        if (self.count - 1) % self._stride:
            return
        if len(self._samples) >= MAX_SAMPLES:
            # Decimate to every other kept sample and double the stride;
            # the reservoir stays a uniform sample of the whole history.
            self._samples = self._samples[::2]
            self._stride *= 2
            if (self.count - 1) % self._stride:
                return
        self._samples.append(ms)

    @property
    def mean_ms(self) -> float:
        return self.total_ms / self.count if self.count else 0.0

    @property
    def sample_stride(self) -> int:
        """Every ``sample_stride``-th observation is in the reservoir."""
        return self._stride

    def percentile(self, p: float) -> float:
        """Deterministic nearest-rank percentile (ties round *up*).

        ``round()`` is banker's rounding: a tie lands on the even rank,
        so p50 over two samples picked the lower one and p90 could
        under-report by a rank depending on reservoir parity.  Nearest
        rank with ``ceil`` never under-reports and is parity-independent.
        The 1e-9 slack absorbs float noise (0.9 * 10 == 9.000000000000002
        must not ceil to 10); true midpoints like 0.5 stay above it.
        """
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        n = len(ordered)
        rank = min(n - 1, max(0, math.ceil(p / 100 * (n - 1) - 1e-9)))
        return ordered[rank]

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean_ms": self.mean_ms,
            "p50_ms": self.percentile(50),
            "p90_ms": self.percentile(90),
            "p99_ms": self.percentile(99),
            "max_ms": self.max_ms,
        }


class MetricsRegistry:
    """Shared registry: counters + gauges + named latency stats."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._latencies: Dict[str, LatencyStat] = {}

    # -- recording ------------------------------------------------------------

    def inc(self, name: str, amount: float = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, ms: float) -> None:
        with self._lock:
            stat = self._latencies.get(name)
            if stat is None:
                stat = self._latencies[name] = LatencyStat()
            stat.record(ms)

    def counter(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0)

    def gauge(self, name: str) -> float:
        with self._lock:
            return self._gauges.get(name, 0)

    def latency(self, name: str) -> LatencyStat:
        """The named stat (created empty if missing) — tests and export."""
        with self._lock:
            stat = self._latencies.get(name)
            if stat is None:
                stat = self._latencies[name] = LatencyStat()
            return stat

    # -- export ---------------------------------------------------------------

    def stats(self) -> dict:
        """One JSON-serializable snapshot of everything recorded."""
        with self._lock:
            snapshot = {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "latency": {
                    name: stat.summary()
                    for name, stat in self._latencies.items()
                },
            }
        requests = snapshot["counters"].get("requests_total", 0)
        compiles = snapshot["counters"].get("fragments_compiled", 0)
        hits = snapshot["counters"].get("cache_hits", 0)
        lookups = hits + snapshot["counters"].get("cache_misses", 0)
        batches = snapshot["counters"].get("batches_total", 0)
        snapshot["derived"] = {
            "cache_hit_rate": hits / lookups if lookups else 0.0,
            "mean_batch_size": requests / batches if batches else 0.0,
            "dedup_ratio": (
                snapshot["counters"].get("ops_submitted", 0)
                / snapshot["counters"].get("ops_applied", 1)
                if snapshot["counters"].get("ops_applied", 0)
                else 1.0
            ),
            "fragments_compiled": compiles,
        }
        return snapshot

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.stats(), indent=indent, sort_keys=True)


# Backward-compatible name: the registry began as the service's metrics.
ServiceMetrics = MetricsRegistry


def format_stats(stats: dict) -> str:
    """Human-readable rendering of a ``stats()`` snapshot."""
    lines = ["recompilation service stats", ""]
    derived = stats.get("derived", {})
    lines.append(f"{'cache hit rate':>22}: {derived.get('cache_hit_rate', 0):.1%}")
    lines.append(f"{'mean batch size':>22}: {derived.get('mean_batch_size', 0):.2f}")
    lines.append(f"{'dedup ratio':>22}: {derived.get('dedup_ratio', 1):.2f}x")
    breaker = stats.get("breaker")
    if breaker:
        lines.append(
            f"{'breaker':>22}: {breaker.get('state', '?')} "
            f"({breaker.get('opens', 0):g} opens, "
            f"{breaker.get('rejections', 0):g} rejections"
            + (f", retry in {breaker['retry_after_s']:.2f}s"
               if breaker.get("retry_after_s") else "")
            + ")"
        )
    queue = stats.get("queue")
    if queue:
        lines.append(
            f"{'shed':>22}: {queue.get('shed_total', 0):g} total "
            f"({queue.get('shed_expired', 0):g} expired, "
            f"{queue.get('shed_overflow', 0):g} overflow); "
            f"drain abandoned "
            f"{stats.get('counters', {}).get('drain_abandoned', 0):g}"
        )
    lines.append("")
    lines.append(f"{'counter':>22} | value")
    for name in sorted(stats.get("counters", {})):
        lines.append(f"{name:>22} | {stats['counters'][name]:g}")
    gauges = stats.get("gauges", {})
    if gauges:
        lines.append("")
        lines.append(f"{'gauge':>22} | value")
        for name in sorted(gauges):
            lines.append(f"{name:>22} | {gauges[name]:g}")
    latency = stats.get("latency", {})
    if latency:
        lines.append("")
        lines.append(
            f"{'stage':>22} | {'count':>7} | {'mean':>8} | {'p50':>8} "
            f"| {'p90':>8} | {'p99':>8} | {'max':>8}"
        )
        for name in sorted(latency):
            s = latency[name]
            lines.append(
                f"{name:>22} | {s['count']:>7.0f} | {s['mean_ms']:>8.2f} "
                f"| {s['p50_ms']:>8.2f} | {s['p90_ms']:>8.2f} "
                f"| {s['p99_ms']:>8.2f} | {s['max_ms']:>8.2f}"
            )
    return "\n".join(lines)
