"""Trace export: Chrome ``trace_event`` JSON and a text flame summary.

The JSON follows the Trace Event Format's complete-event (``"ph": "X"``)
shape, loadable in ``chrome://tracing`` or Perfetto.  Timestamps are the
**simulated** clock (microseconds, as the format requires); the matching
real ``perf_counter`` duration rides along in each event's ``args`` as
``real_ms``.  Fragments compiled on a worker pool appear on separate
``tid`` lanes, so the makespan overlap is visible in the viewer.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Tuple

from repro.obs.tracer import CAT_PASS, CAT_PHASE, CAT_STAGE, Span


def to_trace_events(spans: Iterable[Span], pid: int = 0) -> dict:
    """Render span trees as a Chrome trace-event JSON object."""
    events: List[dict] = []
    lanes = set()

    def emit(span: Span) -> None:
        lanes.add(span.lane)
        args = {"real_ms": round(span.real_ms, 3), "sim_ms": span.sim_ms}
        args.update(span.args)
        events.append(
            {
                "name": span.name,
                "cat": span.cat,
                "ph": "X",
                "ts": span.sim_start_ms * 1000.0,   # µs, per the format
                "dur": span.sim_ms * 1000.0,
                "pid": pid,
                "tid": span.lane,
                "args": args,
            }
        )
        for child in span.children:
            emit(child)

    for span in spans:
        emit(span)

    meta = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": "odin"},
        }
    ]
    for lane in sorted(lanes):
        meta.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": lane,
                "args": {"name": f"lane-{lane}"},
            }
        )
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def trace_json(spans: Iterable[Span], indent: int = 1) -> str:
    return json.dumps(to_trace_events(spans), indent=indent, sort_keys=True)


def write_trace(path: str, spans: Iterable[Span]) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(trace_json(spans))


# -- aggregation ------------------------------------------------------------------


def stage_totals(spans: Iterable[Span]) -> Dict[str, float]:
    """stage name -> total simulated ms across all given trees."""
    totals: Dict[str, float] = {}
    for root in spans:
        for span in root.walk():
            if span.cat in (CAT_STAGE, CAT_PHASE):
                totals[span.name] = totals.get(span.name, 0.0) + span.sim_ms
    return totals


def pass_totals(spans: Iterable[Span]) -> Dict[str, float]:
    """optimization pass name -> total simulated ms across all trees."""
    totals: Dict[str, float] = {}
    for root in spans:
        for span in root.walk():
            if span.cat == CAT_PASS:
                totals[span.name] = totals.get(span.name, 0.0) + span.sim_ms
    return totals


def flame_summary(spans: Iterable[Span], max_depth: int = 3) -> str:
    """Indented text rendering plus stage/pass aggregates."""
    spans = list(spans)
    lines: List[str] = []

    def render(span: Span, depth: int) -> None:
        if depth > max_depth:
            return
        pad = "  " * depth
        lane = f" lane={span.lane}" if span.lane else ""
        lines.append(
            f"{pad}{span.name:<24} {span.sim_ms:>10.2f} ms sim "
            f"{span.real_ms:>9.2f} ms real{lane}"
        )
        for child in span.children:
            render(child, depth + 1)

    for root in spans:
        render(root, 0)
        lines.append("")

    stages = stage_totals(spans)
    if stages:
        lines.append("stage totals (simulated):")
        width = max(len(n) for n in stages)
        for name, ms in sorted(stages.items(), key=lambda kv: -kv[1]):
            lines.append(f"  {name:<{width}}  {ms:>10.2f} ms")
    passes = pass_totals(spans)
    if passes:
        lines.append("optimization passes (simulated):")
        width = max(len(n) for n in passes)
        for name, ms in sorted(passes.items(), key=lambda kv: -kv[1]):
            lines.append(f"  {name:<{width}}  {ms:>10.2f} ms")
    return "\n".join(lines)


def validate_trace_events(payload: dict) -> List[str]:
    """Schema check for exported traces; returns problems (empty = valid).

    Used by tests and ``repro trace`` to guarantee the emitted JSON is a
    well-formed Chrome trace: a ``traceEvents`` list whose complete
    events carry numeric ``ts``/``dur`` and string ``name``/``cat``/
    ``ph``, with non-negative durations.
    """
    problems: List[str] = []
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is not a list"]
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i} is not an object")
            continue
        ph = event.get("ph")
        if not isinstance(ph, str):
            problems.append(f"event {i} has no phase")
            continue
        for key in ("name",):
            if not isinstance(event.get(key), str):
                problems.append(f"event {i} missing string {key!r}")
        if ph == "X":
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)):
                    problems.append(f"event {i} missing numeric {key!r}")
                elif key == "dur" and value < 0:
                    problems.append(f"event {i} has negative duration")
            for key in ("pid", "tid"):
                if not isinstance(event.get(key), int):
                    problems.append(f"event {i} missing integer {key!r}")
    return problems
