"""Hierarchical spans with dual timestamps.

Every span carries two clocks side by side:

* **simulated milliseconds** — positions on the deterministic
  :class:`repro.utils.clock.SimClock` timeline.  These are the numbers
  the paper's figures are built from, identical on every host, and the
  ones all span-sum invariants hold over (per-pass spans sum to their
  fragment's optimize span; stage spans sum to ``RebuildReport.wall_ms``).
* **real milliseconds** — ``time.perf_counter`` durations of the same
  work in this Python process.  Useful for finding where the
  *reproduction* spends its time; never used in reported figures.

Spans form trees: a rebuild root holds one child per stage, the compile
stage holds one child per fragment (``lane`` records which simulated
compile lane the fragment ran on under a worker pool), fragments hold
optimize/isel children, and optimize holds one child per optimization
pass.

The :class:`Tracer` is shared by every component of a stack (engine,
scheduler, service dispatcher, workers).  Recording is thread-safe:
finished span trees are appended under a lock, and open-span nesting
state is thread-local, so service workers can record concurrently
without corrupting each other's trees.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

# Span categories (the Chrome trace "cat" field).
CAT_REBUILD = "rebuild"
CAT_STAGE = "stage"
CAT_FRAGMENT = "fragment"
CAT_PHASE = "phase"      # optimize / isel inside one fragment
CAT_PASS = "pass"
CAT_SERVICE = "service"
CAT_FAULT = "fault"      # retries, breaker trips, restarts, degradations


@dataclass
class Span:
    """One named interval on the dual (simulated + real) timeline."""

    name: str
    cat: str = CAT_STAGE
    # Simulated clock: absolute start position and duration, in ms.
    sim_start_ms: float = 0.0
    sim_ms: float = 0.0
    # Real (perf_counter) duration in ms; starts are process-relative and
    # therefore not comparable across runs, so only the duration is kept.
    real_ms: float = 0.0
    # Simulated compile lane (Chrome trace "tid"): 0 for serial work,
    # 0..workers-1 for fragments scheduled onto a worker pool.
    lane: int = 0
    args: Dict[str, object] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    @property
    def sim_end_ms(self) -> float:
        return self.sim_start_ms + self.sim_ms

    def add(self, child: "Span") -> "Span":
        self.children.append(child)
        return child

    def walk(self) -> Iterator["Span"]:
        """Depth-first iteration over this span and all descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Optional["Span"]:
        """First descendant (or self) with *name*, depth-first."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def find_all(self, name: Optional[str] = None, cat: Optional[str] = None
                 ) -> List["Span"]:
        """All descendants (and self) matching *name* and/or *cat*."""
        return [
            span
            for span in self.walk()
            if (name is None or span.name == name)
            and (cat is None or span.cat == cat)
        ]

    def child_sim_sum(self, cat: Optional[str] = None) -> float:
        """Sum of direct children's simulated durations."""
        return sum(
            c.sim_ms for c in self.children if cat is None or c.cat == cat
        )


class Tracer:
    """Thread-safe collector of finished span trees.

    Two ways in:

    * :meth:`record` hands over a fully built tree (the engine builds its
      rebuild tree from the deterministic cost model, then records it);
    * :meth:`span` is a context manager for real-timed wrapper spans
      (e.g. the service's dispatch path): anything recorded by the same
      thread while it is open — including whole rebuild trees — becomes
      its child.

    ``max_roots`` bounds memory on long campaigns: the oldest trees are
    dropped first, like the metrics reservoir.
    """

    def __init__(self, max_roots: int = 256):
        self._lock = threading.Lock()
        self._roots: List[Span] = []
        self._local = threading.local()
        self.max_roots = max_roots
        self.dropped = 0

    # -- recording ------------------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def record(self, span: Span) -> Span:
        """Attach a finished tree under this thread's open span, if any,
        else as a new root."""
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
            return span
        with self._lock:
            self._roots.append(span)
            overflow = len(self._roots) - self.max_roots
            if overflow > 0:
                del self._roots[:overflow]
                self.dropped += overflow
        return span

    @contextmanager
    def span(self, name: str, cat: str = CAT_STAGE, clock=None, **args):
        """Open a real-timed span; nested records become its children.

        When *clock* (a :class:`~repro.utils.clock.SimClock`) is given,
        the span also gets simulated start/duration from the clock's
        position at entry and exit.
        """
        span = Span(name, cat=cat, args=dict(args))
        if clock is not None:
            span.sim_start_ms = clock.now_ms
        start = time.perf_counter()
        stack = self._stack()
        stack.append(span)
        try:
            yield span
        finally:
            stack.pop()
            span.real_ms = (time.perf_counter() - start) * 1000.0
            if clock is not None:
                span.sim_ms = clock.now_ms - span.sim_start_ms
            self.record(span)

    # -- reading --------------------------------------------------------------

    def roots(self) -> List[Span]:
        with self._lock:
            return list(self._roots)

    def last(self, name: Optional[str] = None) -> Optional[Span]:
        """Most recent root (optionally: containing a span named *name*)."""
        with self._lock:
            roots = list(self._roots)
        for root in reversed(roots):
            if name is None or root.find(name) is not None:
                return root
        return None

    def clear(self) -> None:
        with self._lock:
            self._roots.clear()
