"""repro.opt — the optimization pipeline (LLVM -O2 analogue)."""

from repro.opt.dae import DeadArgumentElimination
from repro.opt.dce import DeadCodeElimination
from repro.opt.inline import FunctionInlining, inline_call_site
from repro.opt.instcombine import InstCombine
from repro.opt.internalize import GlobalDCE, Internalize
from repro.opt.jump_threading import JumpThreading
from repro.opt.loop_unroll import LoopUnroll
from repro.opt.mem2reg import PromoteMem2Reg
from repro.opt.pass_manager import (
    OptContext,
    Pass,
    PassManager,
    REQ_BOND,
    REQ_COPY_ON_USE,
    Requirement,
)
from repro.opt.pipeline import o0_pipeline, o2_pipeline, optimize, trial_optimize
from repro.opt.simplifycfg import SimplifyCFG

__all__ = [
    "DeadArgumentElimination", "DeadCodeElimination", "FunctionInlining",
    "GlobalDCE", "InstCombine", "Internalize", "JumpThreading", "LoopUnroll",
    "PromoteMem2Reg", "SimplifyCFG",
    "OptContext", "Pass", "PassManager", "Requirement",
    "REQ_BOND", "REQ_COPY_ON_USE",
    "o0_pipeline", "o2_pipeline", "optimize", "trial_optimize",
    "inline_call_site",
]
