"""Early common-subexpression elimination.

Dominator-scoped value numbering over pure instructions.  Needed so that
e.g. repeated ``sext`` of the same value (one per C-level use site) collapse
to one, which in turn lets instcombine's range fold recognize
``and (icmp sge X, a), (icmp sle X, b)`` with a *single* X — the Figure 2
pattern.

:class:`FreezeInst` is intentionally *not* CSE'd: each freeze is a distinct
barrier pinning an observation point for instrumentation.  Loads are also
skipped (no memory dependence analysis here).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ir.analysis import compute_dominators
from repro.ir.instructions import (
    BinaryInst,
    CastInst,
    GepInst,
    IcmpInst,
    Instruction,
    SelectInst,
)
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.values import ConstantInt, Value
from repro.opt.pass_manager import FunctionPass, OptContext


def _operand_key(op: Value) -> object:
    """Operands compare by identity, except integer constants by value."""
    if isinstance(op, ConstantInt):
        return ("const", op.type, op.value)
    return id(op)


def _key(inst: Instruction) -> Optional[Tuple]:
    if isinstance(inst, BinaryInst):
        ops = [_operand_key(inst.lhs), _operand_key(inst.rhs)]
        if inst.is_commutative():
            ops.sort(key=repr)
        return ("bin", inst.opcode, inst.type, ops[0], ops[1])
    if isinstance(inst, IcmpInst):
        return ("icmp", inst.predicate, _operand_key(inst.lhs), _operand_key(inst.rhs))
    if isinstance(inst, CastInst):
        return ("cast", inst.opcode, inst.type, _operand_key(inst.value))
    if isinstance(inst, GepInst):
        return (
            "gep", inst.element_type,
            _operand_key(inst.base), _operand_key(inst.index),
        )
    if isinstance(inst, SelectInst):
        return (
            "select",
            _operand_key(inst.cond),
            _operand_key(inst.if_true),
            _operand_key(inst.if_false),
        )
    return None


class EarlyCSE(FunctionPass):
    name = "early-cse"

    def run_on_function(self, fn: Function, module: Module, ctx: OptContext) -> bool:
        idom = compute_dominators(fn)
        children: Dict[BasicBlock, List[BasicBlock]] = {b: [] for b in fn.blocks}
        for block, parent in idom.items():
            if parent is not None:
                children[parent].append(block)

        changed = [False]

        def walk(block: BasicBlock, table: Dict[Tuple, Instruction]) -> None:
            local = dict(table)
            for inst in list(block.instructions):
                key = _key(inst)
                if key is None:
                    continue
                hit = local.get(key)
                if hit is not None:
                    fn.replace_all_uses(inst, hit)
                    inst.erase()
                    ctx.count("cse.eliminated")
                    changed[0] = True
                else:
                    local[key] = inst
            for child in children.get(block, ()):
                walk(child, local)

        walk(fn.entry, {})
        return changed[0]
