"""Dead Argument Elimination — the paper's flagship interprocedural pass.

§2.3 / Figure 4: removing an unused parameter changes both the function's
semantics *and its ABI*, so callee and callers "must be modified in pairs".
This pass therefore:

* only transforms **internal** functions whose every use is a direct call
  (an externally visible function might have callers outside the module —
  the "remedy" from §2.3 that blocks the transform);
* in trial mode, logs a ``bond`` requirement between the callee and each
  caller, which the partitioner turns into a Bond cluster (§3.2 step 1).
"""

from __future__ import annotations

from typing import List, Set

from repro.ir.instructions import CallInst, PhiInst
from repro.ir.module import Function, Module
from repro.ir.types import FunctionType
from repro.ir.values import Argument
from repro.opt.pass_manager import OptContext, Pass, REQ_BOND


def _used_argument_indices(fn: Function) -> Set[int]:
    used: Set[int] = set()
    arg_ids = {id(a): a.index for a in fn.args}
    for inst in fn.instructions():
        ops = list(inst.operands)
        if isinstance(inst, PhiInst):
            ops.extend(inst.used_values())
        for op in ops:
            idx = arg_ids.get(id(op))
            if idx is not None:
                used.add(idx)
    return used


def _only_directly_called(fn: Function, module: Module) -> bool:
    """True when @fn is never referenced except as a direct call callee."""
    for other in module.defined_functions():
        for inst in other.instructions():
            ops = list(inst.operands)
            if isinstance(inst, PhiInst):
                ops.extend(inst.used_values())
            for i, op in enumerate(ops):
                if op is fn:
                    if not (isinstance(inst, CallInst) and i == 0):
                        return False
    for alias in module.aliases():
        if alias.aliasee is fn:
            return False
    return True


class DeadArgumentElimination(Pass):
    name = "dae"

    def run(self, module: Module, ctx: OptContext) -> bool:
        changed = False
        for fn in list(module.defined_functions()):
            if not fn.is_internal:
                continue  # ABI must stay stable: not all callers are visible
            if fn.function_type.vararg:
                continue
            if not fn.args:
                continue
            ctx.charge(fn.count_instructions())
            used = _used_argument_indices(fn)
            dead = [i for i in range(len(fn.args)) if i not in used]
            if not dead:
                continue
            if not _only_directly_called(fn, module):
                continue
            callers = module.callers_of(fn.name)
            for caller in callers:
                if caller is not fn:
                    ctx.log_requirement(REQ_BOND, fn.name, caller.name, self.name)
            self._rewrite(fn, module, dead, ctx)
            changed = True
        return changed

    @staticmethod
    def _rewrite(fn: Function, module: Module, dead: List[int], ctx: OptContext) -> None:
        keep = [i for i in range(len(fn.args)) if i not in dead]
        old_type = fn.function_type
        new_type = FunctionType(
            old_type.ret, tuple(old_type.params[i] for i in keep), old_type.vararg
        )

        # Shrink the callee in place: new Argument objects, remapped uses.
        old_args = fn.args
        fn.function_type = new_type
        fn.args = []
        for new_index, old_index in enumerate(keep):
            old_arg = old_args[old_index]
            fn.args.append(Argument(old_arg.type, old_arg.name, fn, new_index))
        for new_arg, old_index in zip(fn.args, keep):
            fn.replace_all_uses(old_args[old_index], new_arg)

        # Rewrite every call site to drop the dead arguments.
        for other in module.defined_functions():
            for inst in other.instructions():
                if isinstance(inst, CallInst) and inst.callee is fn:
                    inst.set_args([inst.args[i] for i in keep])
                    inst.function_type = new_type
        ctx.count("dae.removed_args", len(dead))
