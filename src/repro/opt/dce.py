"""Dead code elimination.

Removes side-effect-free instructions whose results are unused, iterating
to a fixpoint inside each function.  Loads are considered removable (the
IR has no volatile); stores, calls and terminators are not.
"""

from __future__ import annotations

from typing import Set

from repro.ir.instructions import Instruction, PhiInst
from repro.ir.module import Function, Module
from repro.opt.pass_manager import FunctionPass, OptContext


def _collect_used(fn: Function) -> Set[int]:
    used: Set[int] = set()
    for inst in fn.instructions():
        for op in inst.operands:
            used.add(id(op))
        if isinstance(inst, PhiInst):
            for value, _ in inst.incoming:
                used.add(id(value))
    return used


def is_trivially_dead(inst: Instruction, used: Set[int]) -> bool:
    if inst.has_side_effects():
        return False
    if inst.type.is_void():
        return False
    return id(inst) not in used


class DeadCodeElimination(FunctionPass):
    name = "dce"

    def run_on_function(self, fn: Function, module: Module, ctx: OptContext) -> bool:
        changed = False
        while True:
            used = _collect_used(fn)
            dead = [
                inst
                for block in fn.blocks
                for inst in block.instructions
                if is_trivially_dead(inst, used)
            ]
            if not dead:
                break
            for inst in dead:
                inst.erase()
                ctx.count("dce.removed")
            changed = True
        return changed
