"""Function inlining, bottom-up over call-graph SCCs.

§2.2: "The classic Inline pass also clones basic blocks, but in a
bottom-up fashion along the call graph.  The recursive, interprocedural
optimization renders the recovery of semantics difficult if not
impossible."  Inlining is also the interprocedural optimization whose loss
dominates Odin-MaxPartition's slowdown (§5.2): once a callee lives in a
different fragment, only its declaration is visible and no inlining can
happen — which this pass reproduces for free, since it only inlines
callees *defined in the same module*.

In trial mode, each inlined (callee, caller) pair is logged as a ``bond``
requirement for the partitioner.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ir.analysis import bottom_up_sccs
from repro.ir.builder import IRBuilder, split_block
from repro.ir.clone import ValueMap, clone_instruction
from repro.ir.instructions import CallInst, PhiInst, RetInst
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.values import UndefValue
from repro.opt.pass_manager import OptContext, Pass, REQ_BOND

# A callee bigger than this is never inlined.
INLINE_THRESHOLD = 40
# Internal functions with a single call site are inlined up to this size
# (the definition dies afterwards, so code size cannot grow).
SINGLE_CALLSITE_THRESHOLD = 160


class FunctionInlining(Pass):
    name = "inline"

    def __init__(
        self,
        threshold: int = INLINE_THRESHOLD,
        single_callsite_threshold: int = SINGLE_CALLSITE_THRESHOLD,
    ):
        self.threshold = threshold
        self.single_callsite_threshold = single_callsite_threshold

    def run(self, module: Module, ctx: OptContext) -> bool:
        changed = False
        scc_of: Dict[str, int] = {}
        for i, scc in enumerate(bottom_up_sccs(module)):
            for name in scc:
                scc_of[name] = i

        for scc in bottom_up_sccs(module):
            for caller_name in scc:
                caller = module.get_or_none(caller_name)
                if not isinstance(caller, Function) or caller.is_declaration():
                    continue
                changed |= self._inline_calls_in(caller, module, scc_of, ctx)
        return changed

    def _inline_calls_in(
        self, caller: Function, module: Module, scc_of: Dict[str, int], ctx: OptContext
    ) -> bool:
        changed = False
        progress = True
        while progress:
            progress = False
            for inst in caller.instructions():
                callee = self._inlinable_callee(inst, caller, module, scc_of)
                if callee is None:
                    continue
                ctx.log_requirement(REQ_BOND, callee.name, caller.name, self.name)
                ctx.charge(callee.count_instructions())
                inline_call_site(inst, callee)
                ctx.count("inline.sites")
                progress = changed = True
                break  # block list changed; restart the scan
        return changed

    def _inlinable_callee(
        self, inst, caller: Function, module: Module, scc_of: Dict[str, int]
    ) -> Optional[Function]:
        if not isinstance(inst, CallInst):
            return None
        callee = inst.callee
        if not isinstance(callee, Function) or callee.is_declaration():
            return None
        if callee.function_type.vararg:
            return None
        if callee is caller:
            return None
        if scc_of.get(callee.name) == scc_of.get(caller.name):
            return None  # mutual recursion
        size = callee.count_instructions()
        if size <= self.threshold:
            return callee
        if (
            callee.is_internal
            and size <= self.single_callsite_threshold
            and self._single_call_site(callee, module)
        ):
            return callee
        return None

    @staticmethod
    def _single_call_site(callee: Function, module: Module) -> bool:
        sites = 0
        for fn in module.defined_functions():
            for inst in fn.instructions():
                if isinstance(inst, CallInst) and inst.callee is callee:
                    sites += 1
                    if sites > 1:
                        return False
                ops = list(inst.operands)
                if isinstance(inst, PhiInst):
                    ops.extend(inst.used_values())
                for i, op in enumerate(ops):
                    if op is callee and not (isinstance(inst, CallInst) and i == 0):
                        return False  # address taken
        for alias in module.aliases():
            if alias.aliasee is callee:
                return False
        return sites == 1


def inline_call_site(call: CallInst, callee: Function) -> None:
    """Inline *callee* at *call*; the call instruction is destroyed."""
    caller = call.function
    block = call.parent

    # Split so the call starts its own block; everything after it is the tail.
    tail = split_block(block, call, new_name=f"{block.name}.tail")

    vmap = ValueMap()
    for arg, actual in zip(callee.args, call.args):
        vmap.put(arg, actual)

    # Clone in reverse-postorder (defs before non-phi uses); drop
    # unreachable callee blocks.
    from repro.ir.analysis import reachable_blocks

    order = reachable_blocks(callee)
    for cb in order:
        vmap.put_block(cb, caller.add_block(f"{callee.name}.{cb.name}"))

    returns: List[Tuple[Optional[object], BasicBlock]] = []
    phi_fixups = []
    for cb in order:
        nb = vmap.get_block(cb)
        for inst in cb.instructions:
            if isinstance(inst, RetInst):
                value = vmap.get(inst.value) if inst.value is not None else None
                returns.append((value, nb))
                IRBuilder.at_end(nb).br(tail)
                continue
            clone = clone_instruction(inst, vmap)
            clone.parent = nb
            if not clone.type.is_void():
                clone.name = caller.uniquify_value_name(inst.name or "v")
            nb.instructions.append(clone)
            vmap.put(inst, clone)
            if isinstance(inst, PhiInst):
                phi_fixups.append(inst)
    for phi in phi_fixups:
        clone = vmap.get(phi)
        for value, pred in phi.incoming:
            pred_clone = vmap._blocks.get(id(pred))
            if pred_clone is None:
                continue  # edge from an unreachable block
            clone.incoming.append((vmap.get(value), pred_clone))

    # Redirect the fall-through branch into the inlined entry.
    entry_clone = vmap.get_block(callee.entry)
    block.terminator.replace_target(tail, entry_clone)

    # Wire up the return value.
    if not call.type.is_void():
        if len(returns) == 1:
            caller.replace_all_uses(call, returns[0][0])
        elif returns:
            phi = PhiInst(call.type)
            phi.parent = tail
            phi.name = caller.uniquify_value_name(f"{callee.name}.ret")
            tail.instructions.insert(0, phi)
            for value, pred in returns:
                phi.incoming.append((value, pred))
            caller.replace_all_uses(call, phi)
        else:
            caller.replace_all_uses(call, UndefValue(call.type))
    call.erase()

    # The tail's phi predecessors change when the callee has multiple returns.
    if len(returns) != 1:
        for phi in tail.phis():
            if phi.incoming and any(b is block for _, b in phi.incoming):
                value = phi.incoming_for(block)
                phi.remove_incoming(block)
                for _, pred in returns:
                    phi.add_incoming(value, pred)
    else:
        for phi in tail.phis():
            if any(b is block for _, b in phi.incoming):
                phi.replace_incoming_block(block, returns[0][1])
