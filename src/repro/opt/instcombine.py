"""Instruction Combining: the classic peephole pass.

This pass carries the paper's two signature case studies:

* **Figure 2** (`islower`): after simplifycfg turns the two-comparison
  diamond into ``and (icmp sge X, a), (icmp sle X, b)``, the range-fold
  pattern here rewrites it to ``add X, -a`` + ``icmp ult off, b-a+1`` —
  one comparison, no branches, and exactly the distortion that breaks
  coverage feedback and input-to-state correspondence.

* **Figure 4** (`printf -> puts`): rewriting ``printf("hello\\n")`` into
  ``puts("hello")`` requires *inspecting the string constant*, so in trial
  mode the pass logs a ``copy_on_use`` requirement on the constant — which
  is how the partitioner learns to clone format strings into fragments.

Value-level rewrites never cross a :class:`FreezeInst` barrier, which is
what instrumentation schemes use to pin original values.
"""

from __future__ import annotations

from typing import Optional

from repro.ir.builder import IRBuilder
from repro.ir.instructions import (
    BinaryInst,
    CallInst,
    CastInst,
    IcmpInst,
    Instruction,
    INVERTED_PREDICATE,
    PhiInst,
    SelectInst,
    SWAPPED_PREDICATE,
)
from repro.ir.module import Function, Module
from repro.ir.semantics import eval_binary, eval_cast, eval_icmp
from repro.ir.types import FunctionType, I1, I32, IntType, PTR
from repro.ir.values import ConstantData, ConstantInt, GlobalVariable, UndefValue, Value
from repro.opt.pass_manager import FunctionPass, OptContext, REQ_COPY_ON_USE

TRUE = ConstantInt(I1, 1)
FALSE = ConstantInt(I1, 0)


def _const(value: Value) -> Optional[ConstantInt]:
    return value if isinstance(value, ConstantInt) else None


class InstCombine(FunctionPass):
    name = "instcombine"

    def run_on_function(self, fn: Function, module: Module, ctx: OptContext) -> bool:
        changed = False
        progress = True
        while progress:
            progress = False
            for block in list(fn.blocks):
                for inst in list(block.instructions):
                    if inst.parent is None:
                        continue  # erased by an earlier rewrite this sweep
                    replacement = self._simplify(inst, fn, module, ctx)
                    if replacement is not None:
                        fn.replace_all_uses(inst, replacement)
                        inst.erase()
                        ctx.count("instcombine.simplified")
                        progress = changed = True
        return changed

    # -- dispatch ------------------------------------------------------------

    def _simplify(
        self, inst: Instruction, fn: Function, module: Module, ctx: OptContext
    ) -> Optional[Value]:
        if isinstance(inst, BinaryInst):
            return self._simplify_binary(inst, fn, ctx)
        if isinstance(inst, IcmpInst):
            return self._simplify_icmp(inst, ctx)
        if isinstance(inst, CastInst):
            return self._simplify_cast(inst)
        if isinstance(inst, SelectInst):
            return self._simplify_select(inst, fn, ctx)
        if isinstance(inst, PhiInst):
            return self._simplify_phi(inst)
        if isinstance(inst, CallInst):
            return self._simplify_call(inst, fn, module, ctx)
        return None

    # -- binary ops -----------------------------------------------------------

    def _simplify_binary(
        self, inst: BinaryInst, fn: Function, ctx: OptContext
    ) -> Optional[Value]:
        lhs, rhs = inst.lhs, inst.rhs
        cl, cr = _const(lhs), _const(rhs)
        type_: IntType = inst.type

        # Constant folding.
        if cl is not None and cr is not None:
            try:
                return ConstantInt(type_, eval_binary(inst.opcode, type_, cl.value, cr.value))
            except ZeroDivisionError:
                return None  # leave the trap to runtime

        # Canonicalize constants to the right for commutative ops.
        if cl is not None and cr is None and inst.is_commutative():
            inst.operands[0], inst.operands[1] = rhs, lhs
            lhs, rhs = inst.lhs, inst.rhs
            cl, cr = None, cl

        op = inst.opcode
        if cr is not None:
            if op in ("add", "sub", "or", "xor", "shl", "lshr", "ashr") and cr.is_zero():
                return lhs
            if op == "mul":
                if cr.is_zero():
                    return cr
                if cr.value == 1:
                    return lhs
                # Strength reduction: mul by power of two -> shl.
                if cr.value > 1 and cr.value & (cr.value - 1) == 0:
                    shift = cr.value.bit_length() - 1
                    builder = IRBuilder.before(inst)
                    ctx.count("instcombine.strength_reduce")
                    return builder.shl(lhs, ConstantInt(type_, shift))
            if op == "and":
                if cr.is_zero():
                    return cr
                if cr.value == type_.umax:
                    return lhs
            if op in ("sdiv", "udiv") and cr.value == 1:
                return lhs

            # (x + C1) + C2 -> x + (C1+C2): reassociation enabling range folds.
            if op == "add" and isinstance(lhs, BinaryInst) and lhs.opcode == "add":
                inner = _const(lhs.rhs)
                if inner is not None:
                    builder = IRBuilder.before(inst)
                    folded = ConstantInt(type_, eval_binary("add", type_, inner.value, cr.value))
                    return builder.add(lhs.lhs, folded)

        # x - x, x ^ x -> 0 ; x & x, x | x -> x.
        if lhs is rhs:
            if op in ("sub", "xor"):
                return ConstantInt(type_, 0)
            if op in ("and", "or"):
                return lhs

        # Range fold: and(icmp sge X C1, icmp sle X C2)
        #   -> icmp ult (add X, -C1), (C2 - C1 + 1)        [Figure 2]
        if op == "and" and inst.type is I1:
            folded = self._fold_range_check(inst, fn, ctx)
            if folded is not None:
                return folded
        return None

    def _fold_range_check(
        self, inst: BinaryInst, fn: Function, ctx: OptContext
    ) -> Optional[Value]:
        def bounds(cmp: Value):
            """Return (X, lo, hi) for 'lo <= X' / 'X <= hi' style compares."""
            if not isinstance(cmp, IcmpInst):
                return None
            c = _const(cmp.rhs)
            if c is None or not isinstance(cmp.lhs.type, IntType):
                return None
            pred, x, k = cmp.predicate, cmp.lhs, c.signed
            if pred == "sge":
                return (x, k, None)
            if pred == "sgt":
                return (x, k + 1, None)
            if pred == "sle":
                return (x, None, k)
            if pred == "slt":
                return (x, None, k - 1)
            return None

        a, b = bounds(inst.lhs), bounds(inst.rhs)
        if a is None or b is None:
            return None
        if a[0] is not b[0]:
            return None
        x = a[0]
        lo = a[1] if a[1] is not None else b[1]
        hi = a[2] if a[2] is not None else b[2]
        if lo is None or hi is None or hi < lo:
            return None
        type_: IntType = x.type
        if lo < type_.smin or hi > type_.smax:
            return None
        # Both compares must be dead after the fold to be profitable; since
        # the and is their only use in the canonical pattern, just emit it.
        builder = IRBuilder.before(inst)
        if lo == 0:
            offset = x
        else:
            offset = builder.add(x, ConstantInt(type_, -lo))
        ctx.count("instcombine.range_fold")
        return builder.icmp("ult", offset, ConstantInt(type_, hi - lo + 1))

    # -- icmp -------------------------------------------------------------------

    def _simplify_icmp(self, inst: IcmpInst, ctx: OptContext) -> Optional[Value]:
        cl, cr = _const(inst.lhs), _const(inst.rhs)
        if cl is not None and cr is not None:
            result = eval_icmp(inst.predicate, inst.lhs.type, cl.value, cr.value)
            return TRUE if result else FALSE
        # Canonicalize: constant to the right.
        if cl is not None and cr is None:
            inst.operands[0], inst.operands[1] = inst.rhs, inst.lhs
            inst.predicate = SWAPPED_PREDICATE[inst.predicate]
            return None
        if inst.lhs is inst.rhs:
            always_true = inst.predicate in ("eq", "sle", "sge", "ule", "uge")
            return TRUE if always_true else FALSE
        return None

    # -- casts --------------------------------------------------------------------

    def _simplify_cast(self, inst: CastInst) -> Optional[Value]:
        if inst.opcode not in ("zext", "sext", "trunc"):
            return None
        c = _const(inst.value)
        if c is not None:
            return ConstantInt(
                inst.type, eval_cast(inst.opcode, c.type, inst.type, c.value)
            )
        # trunc(zext/sext x) where widths return to the original -> x.
        inner = inst.value
        if (
            inst.opcode == "trunc"
            and isinstance(inner, CastInst)
            and inner.opcode in ("zext", "sext")
            and inner.value.type is inst.type
        ):
            return inner.value
        return None

    # -- select / phi -----------------------------------------------------------------

    def _simplify_select(
        self, inst: SelectInst, fn: Function, ctx: OptContext
    ) -> Optional[Value]:
        c = _const(inst.cond)
        if c is not None:
            return inst.if_true if c.value else inst.if_false
        if inst.if_true is inst.if_false:
            return inst.if_true
        # Boolean selects become logic ops, feeding the range fold.
        if inst.type is I1:
            t, f = _const(inst.if_true), _const(inst.if_false)
            builder = IRBuilder.before(inst)
            if f is not None and f.is_zero():
                return builder.and_(inst.cond, inst.if_true)  # select c, x, false
            if t is not None and t.value == 1:
                return builder.or_(inst.cond, inst.if_false)  # select c, true, x
        return None

    def _simplify_phi(self, inst: PhiInst) -> Optional[Value]:
        from repro.ir.instructions import Instruction as IRInstruction

        values = [v for v, _ in inst.incoming if v is not inst]
        unique = []
        dropped_undef = False
        for v in values:
            if isinstance(v, UndefValue):
                dropped_undef = True
                continue
            if all(u is not v and not _same_const(u, v) for u in unique):
                unique.append(v)
        if len(unique) != 1:
            return None
        value = unique[0]
        # If we ignored undef incomings, the surviving value only reaches
        # the phi along *some* edges, so it need not dominate the phi's
        # block.  Folding is then only safe for values that dominate
        # everything (constants, arguments, globals).
        if dropped_undef and isinstance(value, IRInstruction):
            return None
        return value

    # -- library call rewrites -----------------------------------------------------------

    def _simplify_call(
        self, inst: CallInst, fn: Function, module: Module, ctx: OptContext
    ) -> Optional[Value]:
        if inst.called_function_name() != "printf" or len(inst.args) != 1:
            return None
        fmt = inst.args[0]
        if not isinstance(fmt, GlobalVariable) or not fmt.is_const:
            return None
        init = fmt.initializer
        if not isinstance(init, ConstantData):
            return None  # declaration or non-string data: no context
        data = init.data
        if not data.endswith(b"\n\x00") or b"%" in data:
            return None
        # Inspecting @fmt's initializer is the "local optimization needs the
        # referenced symbol" dependency of Figure 4.
        ctx.log_requirement(REQ_COPY_ON_USE, fmt.name, fn.name, self.name)

        stripped = data[:-2] + b"\x00"
        new_global = self._string_global(module, stripped, hint=fmt.name)
        puts = module.get_or_none("puts")
        if puts is None:
            from repro.ir.module import Function as IRFunction

            puts = module.add(IRFunction("puts", FunctionType(I32, (PTR,))))
        builder = IRBuilder.before(inst)
        ctx.count("instcombine.printf_to_puts")
        return builder.call(puts, [new_global], puts.function_type)

    @staticmethod
    def _string_global(module: Module, data: bytes, hint: str) -> GlobalVariable:
        for gv in module.global_variables():
            if (
                gv.is_const
                and isinstance(gv.initializer, ConstantData)
                and gv.initializer.data == data
            ):
                return gv
        name = f"{hint}.puts"
        counter = 0
        while name in module:
            counter += 1
            name = f"{hint}.puts.{counter}"
        return module.add(
            GlobalVariable(name, ConstantData(data).type, ConstantData(data),
                           is_const=True, linkage="internal")
        )


def _same_const(a: Value, b: Value) -> bool:
    return isinstance(a, ConstantInt) and isinstance(b, ConstantInt) and a == b
