"""Internalization and global DCE.

* :class:`Internalize` demotes exported symbols that are not in the
  preserved set to internal linkage, unlocking interprocedural transforms
  (the partitioner runs the same operation per fragment — §3.2 step 4).

* :class:`GlobalDCE` deletes internal symbols with no remaining references
  (e.g. a function whose every call site was inlined).
"""

from __future__ import annotations

from typing import Iterable, Set

from repro.ir.instructions import PhiInst
from repro.ir.module import Function, Module
from repro.ir.values import GlobalAlias, GlobalValue
from repro.opt.pass_manager import OptContext, Pass


class Internalize(Pass):
    name = "internalize"

    def __init__(self, preserve: Iterable[str] = ("main",)):
        self.preserve: Set[str] = set(preserve)

    def run(self, module: Module, ctx: OptContext) -> bool:
        changed = False
        for symbol in module.symbols.values():
            if symbol.is_declaration() or symbol.name in self.preserve:
                continue
            if symbol.linkage != "internal":
                symbol.linkage = "internal"
                ctx.count("internalize.demoted")
                changed = True
        return changed


def referenced_symbol_names(module: Module) -> Set[str]:
    """Names of every symbol referenced from code or alias targets."""
    used: Set[str] = set()
    for fn in module.defined_functions():
        for ref in fn.referenced_globals():
            used.add(ref.name)
    for alias in module.aliases():
        used.add(alias.aliasee.name)
    return used


class GlobalDCE(Pass):
    name = "globaldce"

    def run(self, module: Module, ctx: OptContext) -> bool:
        changed = False
        while True:
            used = referenced_symbol_names(module)
            dead = [
                s.name
                for s in module.symbols.values()
                if s.is_internal and s.name not in used
            ]
            if not dead:
                break
            for name in dead:
                module.remove(name)
                ctx.count("globaldce.removed")
            changed = True
        return changed
