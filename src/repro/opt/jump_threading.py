"""Jump threading (conservative).

§2.2 distortion class 4: "the Jump Threading pass can clone a basic block
multiple times" — another way optimization detaches the CFG from the
source program's block structure.

This implementation threads the classic boolean-phi pattern: a block that
consists only of phis and a conditional branch whose condition is an i1
phi.  Predecessors contributing a *constant* condition already know where
the branch goes, so they jump straight to the final target, bypassing
(and effectively cloning away) the dispatch block:

    pred1 ──c=true──▶ ┌───────────────┐ ──true──▶ T
    pred2 ──c=false─▶ │ %c = phi i1.. │ ──false─▶ F
                      └───────────────┘
becomes
    pred1 ─────────────────────▶ T
    pred2 ─────────────────────▶ F

Values the target blocks receive through phis are rewired to flow along
the new edges.  The pattern is exactly what short-circuit `&&`/`||`
lowering produces, so this fires constantly on real code.
"""

from __future__ import annotations

from typing import List, Optional

from repro.ir.instructions import BranchInst, PhiInst, SwitchInst
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.values import ConstantInt
from repro.opt.pass_manager import FunctionPass, OptContext


class JumpThreading(FunctionPass):
    name = "jump-threading"

    def run_on_function(self, fn: Function, module: Module, ctx: OptContext) -> bool:
        changed = False
        progress = True
        while progress:
            progress = False
            for block in list(fn.blocks):
                if block.parent is None or block is fn.entry:
                    continue
                if self._thread_block(fn, block, ctx):
                    progress = changed = True
        return changed

    def _thread_block(self, fn: Function, block: BasicBlock, ctx: OptContext) -> bool:
        # Shape: only phis + a conditional branch on an i1 phi of this block.
        term = block.terminator
        if not (isinstance(term, BranchInst) and term.is_conditional):
            return False
        cond = term.cond
        if not (isinstance(cond, PhiInst) and cond.parent is block):
            return False
        for inst in block.instructions:
            if inst is term or isinstance(inst, PhiInst):
                continue
            return False  # block computes something else: out of scope

        # Threading removes dominance of `block` over its successors, so
        # every phi defined here must only be used inside this block.
        for phi in block.phis():
            for user in fn.users_of(phi):
                if user.parent is not block:
                    return False

        if_true, if_false = term.targets
        if if_true is block or if_false is block:
            return False

        threaded = False
        for value, pred in list(cond.incoming):
            if not isinstance(value, ConstantInt):
                continue
            target = if_true if value.value else if_false
            if not self._can_thread(pred, block, target):
                continue
            self._redirect(fn, pred, block, target)
            ctx.count("jump_threading.threaded")
            threaded = True
        return threaded

    @staticmethod
    def _can_thread(pred: BasicBlock, block: BasicBlock, target: BasicBlock) -> bool:
        pterm = pred.terminator
        if not isinstance(pterm, (BranchInst, SwitchInst)):
            return False
        # The pred may reach `block` through several edges (a switch); all
        # carry the same constant, so threading them together is fine.  But
        # if the pred is *already* a predecessor of the target and the
        # target has phis, adding another edge would need conflicting
        # incomings — skip.
        if target.phis() and any(s is target for s in pred.successors()):
            return False
        return True

    @staticmethod
    def _redirect(
        fn: Function, pred: BasicBlock, block: BasicBlock, target: BasicBlock
    ) -> None:
        # Rewire target's phis: the value that used to flow target<-block
        # now flows target<-pred.  A value defined by a phi in `block`
        # resolves to that phi's incoming for this specific predecessor.
        for phi in target.phis():
            via_block = phi.incoming_for(block)
            if isinstance(via_block, PhiInst) and via_block.parent is block:
                via_block = via_block.incoming_for(pred)
            phi.add_incoming(via_block, pred)
        pred.terminator.replace_target(block, target)
        # The threaded edge is gone: block's phis lose this predecessor.
        for phi in block.phis():
            phi.remove_incoming(pred)
        # If block became unreachable its leftover edges are cleaned by
        # simplifycfg; if it still has predecessors it keeps working as is.
        if not block.predecessors():
            for succ in block.successors():
                for phi in succ.phis():
                    phi.remove_incoming(block)
            fn.remove_block(block)
