"""Full unrolling of small counted loops.

§2.2 distortion class 3: "the loop-related passes ... commit major changes
to a function's control-flow graph and loop analysis results".  A fully
unrolled loop has *no* basic blocks left for a coverage probe to sit in,
so late instrumentation of the loop body becomes impossible — reproducing
the paper's correctness argument.

Scope (deliberately conservative, like a -O2 full-unroll):

* natural loop with one preheader, one latch and one exit block;
* the only conditional branch in the loop is the header's exit test, so
  the body is a single fixed path;
* the exit condition is computable at compile time by evaluating the
  loop's "control slice" from constant initial values (this subsumes the
  canonical ``for (i = 0; i < N; ++i)`` shape);
* trip count and total unrolled size within thresholds.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ir.analysis import NaturalLoop, find_loops
from repro.ir.builder import IRBuilder
from repro.ir.clone import ValueMap, clone_instruction
from repro.ir.instructions import (
    BinaryInst,
    BranchInst,
    CastInst,
    IcmpInst,
    Instruction,
    PhiInst,
    SelectInst,
)
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.semantics import eval_binary, eval_cast, eval_icmp
from repro.ir.values import ConstantInt, UndefValue, Value
from repro.opt.pass_manager import FunctionPass, OptContext

MAX_TRIP_COUNT = 8
MAX_UNROLLED_INSTRUCTIONS = 256


class LoopUnroll(FunctionPass):
    name = "loop-unroll"

    def __init__(
        self,
        max_trip: int = MAX_TRIP_COUNT,
        max_size: int = MAX_UNROLLED_INSTRUCTIONS,
    ):
        self.max_trip = max_trip
        self.max_size = max_size

    def run_on_function(self, fn: Function, module: Module, ctx: OptContext) -> bool:
        changed = False
        # Re-discover loops after each successful unroll; one at a time.
        for _ in range(8):
            unrolled = False
            for loop in find_loops(fn):
                plan = self._plan(fn, loop)
                if plan is not None:
                    self._unroll(fn, loop, plan, ctx)
                    unrolled = changed = True
                    break
            if not unrolled:
                break
        return changed

    # -- planning -------------------------------------------------------------

    def _plan(self, fn: Function, loop: NaturalLoop):
        header = loop.header
        # One preheader outside the loop.
        outside_preds = [p for p in header.predecessors() if p not in loop.blocks]
        if len(outside_preds) != 1:
            return None
        preheader = outside_preds[0]
        pterm = preheader.terminator
        if not isinstance(pterm, (BranchInst,)):
            return None

        # Header exits via a conditional branch with exactly one exit target.
        hterm = header.terminator
        if not (isinstance(hterm, BranchInst) and hterm.is_conditional):
            return None
        t, f = hterm.targets
        in_t, in_f = t in loop.blocks, f in loop.blocks
        if in_t == in_f:
            return None
        body_entry, exit_block = (t, f) if in_t else (f, t)
        if exit_block in loop.blocks:
            return None
        # No other block may leave the loop or branch conditionally.
        path: List[BasicBlock] = [header]
        block = body_entry
        guard = 0
        while block is not header:
            guard += 1
            if guard > len(loop.blocks) + 1:
                return None
            if block not in loop.blocks:
                return None
            term = block.terminator
            if not (isinstance(term, BranchInst) and not term.is_conditional):
                return None
            if block.phis():
                return None  # only the header may carry loop phis
            path.append(block)
            block = term.targets[0]
        if set(path) != loop.blocks:
            return None

        # Seed the simulation with the constant initial phi values; phis
        # with non-constant inits (accumulators seeded from arguments etc.)
        # simply stay symbolic — only the control slice must be evaluable.
        phis = header.phis()
        init: Dict[int, int] = {}
        for phi in phis:
            if len(phi.incoming) != 2:
                return None
            value = phi.incoming_for(preheader)
            if isinstance(value, ConstantInt):
                init[id(phi)] = value.value

        trip = self._simulate_trip_count(path, phis, init, hterm, body_entry)
        if trip is None or trip > self.max_trip:
            return None
        body_size = sum(len(b.instructions) for b in path)
        if trip * body_size > self.max_size:
            return None
        return (preheader, path, exit_block, body_entry, trip)

    @staticmethod
    def _eval_pure(inst: Instruction, env: Dict[int, int]) -> Optional[int]:
        """Evaluate a pure instruction under *env*; None when not evaluable."""

        def value_of(v: Value) -> Optional[int]:
            if isinstance(v, ConstantInt):
                return v.value
            return env.get(id(v))

        if isinstance(inst, BinaryInst):
            a, b = value_of(inst.lhs), value_of(inst.rhs)
            if a is None or b is None:
                return None
            try:
                return eval_binary(inst.opcode, inst.type, a, b)
            except ZeroDivisionError:
                return None
        if isinstance(inst, IcmpInst):
            a, b = value_of(inst.lhs), value_of(inst.rhs)
            if a is None or b is None or not inst.lhs.type.is_integer():
                return None
            return eval_icmp(inst.predicate, inst.lhs.type, a, b)
        if isinstance(inst, CastInst) and inst.opcode in ("zext", "sext", "trunc"):
            a = value_of(inst.value)
            if a is None:
                return None
            return eval_cast(inst.opcode, inst.value.type, inst.type, a)
        if isinstance(inst, SelectInst):
            c = value_of(inst.cond)
            if c is None:
                return None
            return value_of(inst.if_true if c else inst.if_false)
        return None

    def _simulate_trip_count(
        self,
        path: List[BasicBlock],
        phis: List[PhiInst],
        init: Dict[int, int],
        hterm: BranchInst,
        body_entry: BasicBlock,
    ) -> Optional[int]:
        header, latch = path[0], path[-1]
        env: Dict[int, int] = dict(init)
        body_is_true_target = hterm.targets[0] is body_entry
        for trip in range(self.max_trip + 1):
            # Evaluate the header's straight-line portion.
            for inst in header.instructions:
                if isinstance(inst, PhiInst) or inst.is_terminator:
                    continue
                value = self._eval_pure(inst, env)
                if value is not None:
                    env[id(inst)] = value
            cond = env.get(id(hterm.cond)) if not isinstance(hterm.cond, ConstantInt) else hterm.cond.value
            if cond is None:
                return None
            stays = bool(cond) == body_is_true_target
            if not stays:
                return trip
            # Evaluate the rest of the path.
            for block in path[1:]:
                for inst in block.instructions:
                    if inst.is_terminator:
                        continue
                    value = self._eval_pure(inst, env)
                    if value is not None:
                        env[id(inst)] = value
            # Advance the phis for the next iteration.  Phis that are not
            # constant-evaluable (e.g. accumulators over loaded data) simply
            # drop out of the environment — only the control slice (the
            # values the exit condition depends on) must stay evaluable,
            # and if it does not, the condition lookup above returns None.
            next_env: Dict[int, int] = {}
            for phi in phis:
                value = phi.incoming_for(latch)
                if isinstance(value, ConstantInt):
                    next_env[id(phi)] = value.value
                elif id(value) in env:
                    next_env[id(phi)] = env[id(value)]
            env = next_env
        return None

    # -- transformation ----------------------------------------------------------

    def _unroll(self, fn: Function, loop: NaturalLoop, plan, ctx: OptContext) -> None:
        preheader, path, exit_block, body_entry, trip = plan
        header, latch = path[0], path[-1]
        phis = header.phis()

        unrolled = fn.add_block(f"{header.name}.unrolled")
        builder = IRBuilder.at_end(unrolled)

        # env maps original loop values -> values valid for "this iteration".
        env: Dict[int, Value] = {
            id(phi): phi.incoming_for(preheader) for phi in phis
        }

        def translate(value: Value) -> Value:
            if id(value) in env:
                return env[id(value)]
            return value  # constants, globals, values defined outside the loop

        def clone_block_body(block: BasicBlock) -> None:
            for inst in block.instructions:
                if isinstance(inst, PhiInst) or inst.is_terminator:
                    continue
                vmap = ValueMap()
                ops = list(inst.operands)
                for op in ops:
                    vmap.put(op, translate(op))
                clone = clone_instruction(inst, vmap)
                builder._insert(clone)
                env[id(inst)] = clone

        for _ in range(trip):
            for block in path:
                clone_block_body(block)
            # Advance phi values for the next iteration; keep instruction
            # clones so the last full iteration provides "final" values.
            next_env: Dict[int, Value] = {
                id(phi): translate(phi.incoming_for(latch)) for phi in phis
            }
            for key, value in env.items():
                next_env.setdefault(key, value)
            env = next_env

        # The exiting evaluation of the header body runs once more.
        clone_block_body(header)
        builder.br(exit_block)

        # Retarget the preheader.
        preheader.terminator.replace_target(header, unrolled)

        # Rewrite exit phis and outside uses.
        for phi in exit_block.phis():
            if any(b is header for _, b in phi.incoming):
                value = phi.incoming_for(header)
                phi.remove_incoming(header)
                phi.add_incoming(translate(value), unrolled)

        # Replace any remaining outside uses of loop-defined values.
        loop_ids = {id(b) for b in loop.blocks}
        final_values = dict(env)
        for block in list(fn.blocks):
            if id(block) in loop_ids:
                continue
            for inst in block.instructions:
                ops = list(inst.operands)
                if isinstance(inst, PhiInst):
                    ops.extend(inst.used_values())
                for op in ops:
                    replacement = final_values.get(id(op))
                    if replacement is not None and op is not replacement:
                        if isinstance(op, Instruction) and op.parent is not None \
                                and id(op.parent) in loop_ids:
                            inst.replace_uses_of(op, replacement)

        # Remove the now-unreachable loop blocks.
        for block in loop.blocks:
            for succ in block.successors():
                if id(succ) not in loop_ids:
                    for phi in succ.phis():
                        phi.remove_incoming(block)
            fn.remove_block(block)
        ctx.count("loop_unroll.unrolled")
        ctx.charge(trip * sum(len(b.instructions) for b in path))
