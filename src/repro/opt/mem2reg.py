"""mem2reg: promote stack slots to SSA registers.

The MiniC frontend emits every local variable as an ``alloca`` with
loads/stores (like clang -O0).  This pass rewrites promotable allocas into
SSA values with phi nodes, using the classic iterated-dominance-frontier
algorithm.  It runs first in the O2 pipeline; every later pass assumes
values live in registers.

An alloca is promotable when it holds a first-class type and every use is a
direct load or a store *to* it (its address never escapes).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.ir.analysis import compute_dominators, predecessor_map, reachable_blocks
from repro.ir.instructions import AllocaInst, Instruction, LoadInst, PhiInst, StoreInst
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.values import UndefValue, Value
from repro.opt.pass_manager import FunctionPass, OptContext


def promotable_allocas(fn: Function) -> List[AllocaInst]:
    """Allocas whose address is only used by direct loads/stores."""
    allocas = [i for i in fn.instructions() if isinstance(i, AllocaInst)]
    out = []
    for alloca in allocas:
        if not alloca.allocated_type.is_first_class():
            continue
        ok = True
        for inst in fn.instructions():
            for idx, op in enumerate(list(inst.operands)):
                if op is not alloca:
                    continue
                if isinstance(inst, LoadInst):
                    continue
                if isinstance(inst, StoreInst) and idx == 1:
                    continue  # address operand of the store
                ok = False
            if isinstance(inst, PhiInst) and any(v is alloca for v in inst.used_values()):
                ok = False
            if not ok:
                break
        if ok:
            out.append(alloca)
    return out


def dominance_frontiers(fn: Function) -> Dict[BasicBlock, Set[BasicBlock]]:
    idom = compute_dominators(fn)
    preds = predecessor_map(fn)
    frontiers: Dict[BasicBlock, Set[BasicBlock]] = {b: set() for b in fn.blocks}
    for block in reachable_blocks(fn):
        if len(preds[block]) < 2:
            continue
        for pred in preds[block]:
            if pred not in idom:
                continue  # unreachable predecessor
            runner: Optional[BasicBlock] = pred
            while runner is not None and runner is not idom.get(block):
                frontiers[runner].add(block)
                runner = idom.get(runner)
    return frontiers


class PromoteMem2Reg(FunctionPass):
    name = "mem2reg"

    def run_on_function(self, fn: Function, module: Module, ctx: OptContext) -> bool:
        allocas = promotable_allocas(fn)
        if not allocas:
            return False

        idom = compute_dominators(fn)
        frontiers = dominance_frontiers(fn)
        reachable = set(id(b) for b in reachable_blocks(fn))

        # Dominator-tree children for the renaming walk.
        children: Dict[BasicBlock, List[BasicBlock]] = {b: [] for b in fn.blocks}
        for block, parent in idom.items():
            if parent is not None:
                children[parent].append(block)

        # Phase 1: place phis at the iterated dominance frontier of defs.
        phi_owner: Dict[int, AllocaInst] = {}
        for alloca in allocas:
            def_blocks = {
                inst.parent
                for inst in fn.instructions()
                if isinstance(inst, StoreInst) and inst.pointer is alloca
            }
            worklist = [b for b in def_blocks if id(b) in reachable]
            placed: Set[int] = set()
            while worklist:
                block = worklist.pop()
                for frontier_block in frontiers.get(block, ()):
                    if id(frontier_block) in placed:
                        continue
                    placed.add(id(frontier_block))
                    phi = PhiInst(alloca.allocated_type)
                    phi.parent = frontier_block
                    phi.name = fn.uniquify_value_name(alloca.name or "mem")
                    frontier_block.instructions.insert(0, phi)
                    phi_owner[id(phi)] = alloca
                    if frontier_block not in def_blocks:
                        def_blocks.add(frontier_block)
                        worklist.append(frontier_block)

        # Phase 2: rename along the dominator tree.
        current: Dict[int, List[Value]] = {id(a): [] for a in allocas}
        alloca_ids = set(current)

        def value_of(alloca: AllocaInst) -> Value:
            stack = current[id(alloca)]
            return stack[-1] if stack else UndefValue(alloca.allocated_type)

        def rename(block: BasicBlock) -> None:
            pushed: List[int] = []
            for inst in list(block.instructions):
                if isinstance(inst, PhiInst) and id(inst) in phi_owner:
                    current[id(phi_owner[id(inst)])].append(inst)
                    pushed.append(id(phi_owner[id(inst)]))
                elif isinstance(inst, LoadInst) and id(inst.pointer) in alloca_ids:
                    replacement = value_of(inst.pointer)
                    fn.replace_all_uses(inst, replacement)
                    inst.erase()
                elif isinstance(inst, StoreInst) and id(inst.pointer) in alloca_ids:
                    current[id(inst.pointer)].append(inst.value)
                    pushed.append(id(inst.pointer))
                    inst.erase()
            for succ in block.successors():
                for phi in succ.phis():
                    owner = phi_owner.get(id(phi))
                    if owner is not None and not any(b is block for _, b in phi.incoming):
                        phi.add_incoming(value_of(owner), block)
            for child in children.get(block, ()):
                rename(child)
            for key in pushed:
                current[key].pop()

        rename(fn.entry)

        # Phase 3: drop the allocas (and any code left in unreachable blocks
        # that still mentions them is removed with those blocks).
        self._remove_unreachable_blocks(fn, reachable)
        for alloca in allocas:
            alloca.erase()
            ctx.count("mem2reg.promoted")
        return True

    @staticmethod
    def _remove_unreachable_blocks(fn: Function, reachable: Set[int]) -> None:
        for block in list(fn.blocks):
            if id(block) not in reachable:
                for succ in block.successors():
                    for phi in succ.phis():
                        phi.remove_incoming(block)
                fn.remove_block(block)
