"""Pass memoization: skip re-optimization of already-seen fragment IR.

The tier-2 fast path.  A fragment compile's middle-end output is a pure
function of (canonical input IR, pass-pipeline identity), so the engine
can memoize the *optimized IR text* and, on a later compile of the same
input, skip straight to instruction selection: the entry's text is
re-parsed and lowered, charging only the backend share of the cost model.

Why this differs from the content-addressed object cache
(:mod:`repro.service.cache`): that cache keys on (IR + probe signature +
opt level + variant) and returns finished objects; the memo keys on
(IR + pipeline) only — so it also fires across *variant families* and
probe-signature dimensions whose instrumented IR happens to coincide,
and its hits still pay isel, keeping the three tiers' costs distinct
(patch < memo < full).

:class:`PassMemoCache` (a :class:`~repro.service.cache.CodeCache` over
:class:`MemoEntry` payloads) lives in ``repro.service.cache`` so it can
reuse the budget/quarantine machinery; this module only defines the key
scheme and the payload, keeping ``repro.opt`` free of service imports.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Tuple

__all__ = ["MemoEntry", "memo_key", "pipeline_identity"]


@dataclass
class MemoEntry:
    """Optimized-IR snapshot for one (input IR, pipeline) pair.

    ``ir_text`` is the module printed *after* optimization but *before*
    lowering (lowering mutates the CFG via critical-edge splitting, so
    the snapshot must be taken first).  ``diagnostics`` carries the
    probe-integrity sanitizer findings of the original run, replayed on
    hits so sanitize builds see identical reports.
    """

    ir_text: str
    diagnostics: Tuple = ()


def pipeline_identity(opt_level: int, sanitize: bool = False) -> str:
    """Canonical description of the pass pipeline a compile will run.

    Part of the memo key: a memoized optimization is only replayable when
    the exact pass sequence (and fixpoint policy) matches.  Computed from
    the real pipeline objects so pipeline changes invalidate old entries
    automatically.
    """
    from repro.opt.pipeline import o0_pipeline, o2_pipeline

    if opt_level == 0:
        pm, fixpoint = o0_pipeline(), 0
    else:
        pm, fixpoint = o2_pipeline(), 4
    names = ",".join(type(p).__name__ for p in pm.passes)
    return f"o{opt_level}:[{names}]:fixpoint={fixpoint}:sanitize={int(sanitize)}"


def memo_key(ir_text: str, opt_level: int, sanitize: bool = False) -> str:
    """Content address of one middle-end run over canonical *ir_text*."""
    h = hashlib.sha256()
    h.update(ir_text.encode())
    h.update(f"\n;; pipeline={pipeline_identity(opt_level, sanitize)}\n".encode())
    return h.hexdigest()
