"""Pass manager with trial-run requirement logging.

§3.2: the partitioner's symbol classification "requirements are collected
from a trial optimization run, where the compiler passes (modified by Odin)
log the requirements for later inspection".  Passes receive an
:class:`OptContext`; when ``ctx.trial`` is set they record a
:class:`Requirement` every time an optimization needs two symbols to be
visible together:

* ``bond``        — interprocedural: *subject* must be defined together with
                    *peer* (dead-arg-elim pairs, inlining pairs)
* ``copy_on_use`` — local: *subject* (a constant) should be cloned into any
                    fragment that references it (libcall rewrites that
                    inspect a string constant)
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.ir.module import Module
from repro.ir.verifier import verify_module

if False:  # pragma: no cover - typing only, avoids loading analysis eagerly
    from repro.analysis.diagnostics import Diagnostic

REQ_BOND = "bond"
REQ_COPY_ON_USE = "copy_on_use"


@dataclass(frozen=True)
class Requirement:
    """One logged optimization requirement from a trial run."""

    kind: str        # REQ_BOND or REQ_COPY_ON_USE
    subject: str     # symbol the requirement is about
    peer: str        # the symbol that must be co-located / the user
    pass_name: str   # which pass logged it


@dataclass(frozen=True)
class PassTiming:
    """One pass invocation: charged work units + real duration.

    The observability layer turns these into per-pass spans: each pass's
    share of the fragment's simulated middle-end cost is its share of
    the pipeline's total charged work (real_ms rides along untouched).
    """

    pass_name: str
    iteration: int
    work: int
    real_ms: float
    changed: bool


@dataclass
class OptContext:
    """State threaded through every pass invocation."""

    trial: bool = False
    requirements: List[Requirement] = field(default_factory=list)
    stats: Dict[str, int] = field(default_factory=dict)
    # Number of "units of work" performed; drives the compile-time model.
    work: int = 0
    # Probe-integrity findings collected by ``sanitize_each`` pipelines.
    diagnostics: List["Diagnostic"] = field(default_factory=list)
    # Per-pass timing records, in execution order (observability layer).
    pass_timings: List[PassTiming] = field(default_factory=list)

    def log_requirement(self, kind: str, subject: str, peer: str, pass_name: str) -> None:
        if self.trial:
            self.requirements.append(Requirement(kind, subject, peer, pass_name))

    def count(self, stat: str, n: int = 1) -> None:
        self.stats[stat] = self.stats.get(stat, 0) + n

    def charge(self, units: int) -> None:
        self.work += units


class Pass:
    """Base class: a named module transformation."""

    name = "pass"

    def run(self, module: Module, ctx: OptContext) -> bool:
        """Transform *module* in place; return True if anything changed."""
        raise NotImplementedError


class FunctionPass(Pass):
    """A pass that processes one function at a time."""

    def run(self, module: Module, ctx: OptContext) -> bool:
        changed = False
        for fn in module.defined_functions():
            ctx.charge(fn.count_instructions())
            changed |= self.run_on_function(fn, module, ctx)
        return changed

    def run_on_function(self, fn, module: Module, ctx: OptContext) -> bool:
        raise NotImplementedError


class PassManager:
    """Runs a pipeline of passes, optionally checking between passes.

    * ``verify_each`` re-verifies IR structure after every pass and
      re-raises the failure attributed to the offending pass;
    * ``sanitize_each`` runs the probe-integrity sanitizer after every
      pass and collects its findings into ``ctx.diagnostics`` (reports,
      not exceptions — see :mod:`repro.analysis.sanitizer`).
    """

    def __init__(
        self,
        passes: List[Pass],
        *,
        verify_each: bool = False,
        sanitize_each: bool = False,
    ):
        self.passes = list(passes)
        self.verify_each = verify_each
        self.sanitize_each = sanitize_each

    def _make_sanitizer(self, module: Module):
        if not self.sanitize_each:
            return None
        from repro.analysis.sanitizer import ProbeIntegritySanitizer

        return ProbeIntegritySanitizer(module)

    def _after_pass(self, module: Module, p: Pass, ctx: OptContext,
                    sanitizer) -> None:
        """Post-pass checks, every failure attributed to pass *p*."""
        if self.verify_each:
            try:
                verify_module(module)
            except Exception as exc:  # re-raise with pass attribution
                wrapped = type(exc)(f"after pass {p.name!r}: {exc}")
                wrapped.pass_name = p.name
                raise wrapped from exc
        if sanitizer is not None:
            ctx.diagnostics.extend(sanitizer.advance(p.name))

    def _run_pass(
        self, p: Pass, module: Module, ctx: OptContext, iteration: int
    ) -> bool:
        """Run one pass, recording its charged work and real duration."""
        work_before = ctx.work
        start = time.perf_counter()
        changed = p.run(module, ctx)
        ctx.pass_timings.append(
            PassTiming(
                pass_name=p.name,
                iteration=iteration,
                work=ctx.work - work_before,
                real_ms=(time.perf_counter() - start) * 1000.0,
                changed=changed,
            )
        )
        if changed:
            ctx.count(f"pass.{p.name}.changed")
        return changed

    def run(self, module: Module, ctx: Optional[OptContext] = None) -> OptContext:
        ctx = ctx or OptContext()
        sanitizer = self._make_sanitizer(module)
        for p in self.passes:
            self._run_pass(p, module, ctx, 0)
            self._after_pass(module, p, ctx, sanitizer)
        return ctx

    def run_until_fixpoint(
        self, module: Module, ctx: Optional[OptContext] = None, max_iters: int = 4
    ) -> OptContext:
        """Repeat the pipeline until no pass reports changes (bounded)."""
        ctx = ctx or OptContext()
        sanitizer = self._make_sanitizer(module)
        for iteration in range(max_iters):
            any_change = False
            for p in self.passes:
                if self._run_pass(p, module, ctx, iteration):
                    any_change = True
                self._after_pass(module, p, ctx, sanitizer)
            if not any_change:
                break
        return ctx
