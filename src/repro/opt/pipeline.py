"""Standard optimization pipelines.

``o2_pipeline()`` mirrors the shape of a -O2 run with the passes §2.2
names as fuzzing-semantics distorters: instcombine, simplifycfg, inlining,
dead argument elimination, loop unrolling.  ``o0_pipeline()`` only runs
mem2reg so the backend sees SSA.

``trial_optimize()`` is the partitioner's requirement-collection run
(§3.2): it optimizes a *clone* and returns the logged requirements without
touching the input module.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.ir.clone import clone_module
from repro.ir.module import Module
from repro.opt.cse import EarlyCSE
from repro.opt.dae import DeadArgumentElimination
from repro.opt.dce import DeadCodeElimination
from repro.opt.inline import FunctionInlining
from repro.opt.instcombine import InstCombine
from repro.opt.internalize import GlobalDCE, Internalize
from repro.opt.jump_threading import JumpThreading
from repro.opt.loop_unroll import LoopUnroll
from repro.opt.mem2reg import PromoteMem2Reg
from repro.opt.pass_manager import OptContext, Pass, PassManager, Requirement
from repro.opt.simplifycfg import SimplifyCFG


def o0_pipeline() -> PassManager:
    """clang -O0 analogue: no optimization at all (locals stay in stack
    slots with explicit loads/stores, like unoptimized compiler output)."""
    return PassManager([])


def o2_pipeline(
    *, internalize: bool = False, preserve: Iterable[str] = ("main",)
) -> PassManager:
    """The full optimizing pipeline."""
    passes: List[Pass] = [PromoteMem2Reg()]
    if internalize:
        passes.append(Internalize(preserve))
    passes += [
        EarlyCSE(),
        InstCombine(),
        SimplifyCFG(),
        FunctionInlining(),
        DeadArgumentElimination(),
        EarlyCSE(),
        InstCombine(),
        JumpThreading(),
        SimplifyCFG(),
        LoopUnroll(),
        EarlyCSE(),
        InstCombine(),
        SimplifyCFG(),
        DeadCodeElimination(),
        GlobalDCE(),
    ]
    return PassManager(passes)


def optimize(module: Module, level: int = 2, *, verify_each: bool = False,
             sanitize_each: bool = False, internalize: bool = False,
             preserve=("main", "run_input")) -> OptContext:
    """Optimize *module* in place at the given level; returns pass stats.

    ``sanitize_each`` threads the probe-integrity sanitizer through the
    pipeline; its findings come back in ``ctx.diagnostics``.
    """
    pm = o0_pipeline() if level == 0 else o2_pipeline(internalize=internalize, preserve=preserve)
    pm.verify_each = verify_each
    pm.sanitize_each = sanitize_each
    ctx = OptContext()
    if level == 0:
        pm.run(module, ctx)
    else:
        pm.run_until_fixpoint(module, ctx, max_iters=4)
    return ctx


def trial_optimize(module: Module) -> List[Requirement]:
    """Run the O2 pipeline on a clone and return logged requirements.

    The clone is internalized first (everything except main), matching
    the fragment compilation environment where internalization has
    already been decided — so the trial sees the same optimization
    opportunities the real per-fragment compiles will see.
    """
    clone = clone_module(module, f"{module.name}.trial").module
    ctx = OptContext(trial=True)
    pm = o2_pipeline(internalize=True)
    pm.run_until_fixpoint(clone, ctx, max_iters=2)
    return list(ctx.requirements)
