"""CFG simplification.

The paper names "Simplify CFG" as the pass that "can combine multiple basic
blocks into one" (§2.2, distortion class 4) — which is precisely what makes
late coverage instrumentation imprecise and early instrumentation an
optimization barrier.  The speculation rewrite here refuses to touch blocks
containing side-effecting instructions, so a probe call (an opaque
``call``) pins its block in place.

Rewrites, iterated to a fixpoint:

1. remove unreachable blocks
2. fold constant conditional branches and single-target switches
3. merge a block into its unique predecessor
4. skip empty forwarding blocks
5. speculate small side-effect-free diamonds/triangles into ``select``
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.ir.analysis import reachable_blocks
from repro.ir.builder import IRBuilder
from repro.ir.instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    FreezeInst,
    GepInst,
    IcmpInst,
    Instruction,
    LoadInst,
    PhiInst,
    SelectInst,
    StoreInst,
    SwitchInst,
)
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.values import ConstantInt
from repro.opt.pass_manager import FunctionPass, OptContext

# Instructions that may be executed speculatively (hoisted past a branch).
# Loads are excluded (may fault), calls are excluded (arbitrary effects) —
# the latter is what makes early-inserted probes block this rewrite.
_SPECULATABLE = (BinaryInst, IcmpInst, CastInst, SelectInst, GepInst, FreezeInst)
_SPECULATION_BUDGET = 4


def _speculatable(block: BasicBlock) -> bool:
    body = block.instructions[:-1]
    if len(body) > _SPECULATION_BUDGET:
        return False
    for inst in body:
        if not isinstance(inst, _SPECULATABLE):
            return False
        if isinstance(inst, BinaryInst) and inst.opcode in ("sdiv", "udiv", "srem", "urem"):
            divisor = inst.rhs
            if not (isinstance(divisor, ConstantInt) and not divisor.is_zero()):
                return False  # may trap
    return True


class SimplifyCFG(FunctionPass):
    name = "simplifycfg"

    def run_on_function(self, fn: Function, module: Module, ctx: OptContext) -> bool:
        changed = False
        progress = True
        while progress:
            progress = False
            progress |= self._remove_unreachable(fn, ctx)
            progress |= self._fold_constant_branches(fn, ctx)
            progress |= self._merge_into_predecessor(fn, ctx)
            progress |= self._skip_forwarding_blocks(fn, ctx)
            progress |= self._speculate(fn, ctx)
            changed |= progress
        return changed

    # -- 1: unreachable blocks ------------------------------------------------

    @staticmethod
    def _remove_unreachable(fn: Function, ctx: OptContext) -> bool:
        live: Set[int] = {id(b) for b in reachable_blocks(fn)}
        dead = [b for b in fn.blocks if id(b) not in live]
        if not dead:
            return False
        for block in dead:
            for succ in block.successors():
                if id(succ) in live:
                    for phi in succ.phis():
                        phi.remove_incoming(block)
            fn.remove_block(block)
            ctx.count("simplifycfg.unreachable_removed")
        return True

    # -- 2: constant branches ---------------------------------------------------

    @staticmethod
    def _fold_constant_branches(fn: Function, ctx: OptContext) -> bool:
        changed = False
        for block in list(fn.blocks):
            term = block.terminator
            if isinstance(term, BranchInst) and term.is_conditional:
                cond = term.cond
                if isinstance(cond, ConstantInt):
                    taken, not_taken = (
                        (term.targets[0], term.targets[1])
                        if cond.value
                        else (term.targets[1], term.targets[0])
                    )
                    term.erase()
                    if not_taken is not taken:
                        for phi in not_taken.phis():
                            phi.remove_incoming(block)
                    IRBuilder.at_end(block).br(taken)
                    ctx.count("simplifycfg.constant_branch")
                    changed = True
                elif term.targets[0] is term.targets[1]:
                    target = term.targets[0]
                    term.erase()
                    IRBuilder.at_end(block).br(target)
                    changed = True
            elif isinstance(term, SwitchInst) and isinstance(term.value, ConstantInt):
                value = term.value.value
                taken = term.default
                for const, case_block in term.cases:
                    if const.value == value:
                        taken = case_block
                        break
                skipped = [b for b in term.successors() if b is not taken]
                term.erase()
                seen: Set[int] = set()
                for b in skipped:
                    if id(b) in seen:
                        continue
                    seen.add(id(b))
                    for phi in b.phis():
                        phi.remove_incoming(block)
                IRBuilder.at_end(block).br(taken)
                ctx.count("simplifycfg.constant_switch")
                changed = True
        return changed

    # -- 3: merge into predecessor --------------------------------------------------

    @staticmethod
    def _merge_into_predecessor(fn: Function, ctx: OptContext) -> bool:
        changed = False
        for block in list(fn.blocks):
            if block is fn.entry or block.parent is None:
                continue
            preds = block.predecessors()
            if len(preds) != 1:
                continue
            pred = preds[0]
            if pred is block:
                continue
            term = pred.terminator
            if not (isinstance(term, BranchInst) and not term.is_conditional):
                continue
            # Fold single-incoming phis.
            for phi in block.phis():
                fn.replace_all_uses(phi, phi.incoming_for(pred))
                phi.erase()
            term.erase()
            for inst in list(block.instructions):
                inst.parent = None
                block.instructions.remove(inst)
                inst.parent = pred
                pred.instructions.append(inst)
            for succ in pred.successors():
                for phi in succ.phis():
                    phi.replace_incoming_block(block, pred)
            fn.remove_block(block)
            ctx.count("simplifycfg.merged")
            changed = True
        return changed

    # -- 4: empty forwarding blocks ---------------------------------------------------

    @staticmethod
    def _skip_forwarding_blocks(fn: Function, ctx: OptContext) -> bool:
        changed = False
        for block in list(fn.blocks):
            if block is fn.entry or block.parent is None:
                continue
            if len(block.instructions) != 1:
                continue
            term = block.terminator
            if not (isinstance(term, BranchInst) and not term.is_conditional):
                continue
            target = term.targets[0]
            if target is block:
                continue
            preds = block.predecessors()
            if not preds:
                continue
            # Safe only if retargeting creates no conflicting phi edges.
            target_pred_ids = {id(p) for p in target.predecessors()}
            if any(id(p) in target_pred_ids for p in preds) and target.phis():
                continue
            if target.phis() and any(
                isinstance(p.terminator, SwitchInst) for p in preds
            ):
                # switch may have several edges to the same block; keep simple
                continue
            for phi in target.phis():
                value = phi.incoming_for(block)
                phi.remove_incoming(block)
                for pred in preds:
                    phi.add_incoming(value, pred)
            for pred in preds:
                pterm = pred.terminator
                if isinstance(pterm, (BranchInst, SwitchInst)):
                    pterm.replace_target(block, target)
            fn.remove_block(block)
            ctx.count("simplifycfg.forwarded")
            changed = True
        return changed

    # -- 5: speculation (diamond/triangle -> select) ----------------------------------------

    def _speculate(self, fn: Function, ctx: OptContext) -> bool:
        changed = False
        for block in list(fn.blocks):
            if block.parent is None:
                continue
            term = block.terminator
            if not (isinstance(term, BranchInst) and term.is_conditional):
                continue
            then_block, else_block = term.targets
            if then_block is else_block:
                continue
            if self._try_speculate(fn, block, term, then_block, else_block, ctx):
                changed = True
        return changed

    def _try_speculate(
        self,
        fn: Function,
        block: BasicBlock,
        term: BranchInst,
        then_block: BasicBlock,
        else_block: BasicBlock,
        ctx: OptContext,
    ) -> bool:
        cond = term.cond

        def is_simple_arm(arm: BasicBlock, join: BasicBlock) -> bool:
            if arm is block or arm is join:
                return False
            t = arm.terminator
            return (
                isinstance(t, BranchInst)
                and not t.is_conditional
                and t.targets[0] is join
                and len(arm.predecessors()) == 1
                and not arm.phis()
                and _speculatable(arm)
            )

        # Diamond: block -> then/else -> join.
        then_term = then_block.terminator
        if isinstance(then_term, BranchInst) and not then_term.is_conditional:
            join = then_term.targets[0]
            if join is not else_block and is_simple_arm(then_block, join) and is_simple_arm(else_block, join):
                self._hoist(block, then_block)
                self._hoist(block, else_block)
                builder = IRBuilder.before(term)
                for phi in join.phis():
                    tv = phi.incoming_for(then_block)
                    ev = phi.incoming_for(else_block)
                    sel = builder.select(cond, tv, ev) if tv is not ev else tv
                    phi.remove_incoming(then_block)
                    phi.remove_incoming(else_block)
                    phi.add_incoming(sel, block)
                term.erase()
                IRBuilder.at_end(block).br(join)
                fn.remove_block(then_block)
                fn.remove_block(else_block)
                ctx.count("simplifycfg.speculated_diamond")
                return True

        # Triangle: block -> then -> join, block -> join (join == else_block).
        for arm, direct, arm_is_then in (
            (then_block, else_block, True),
            (else_block, then_block, False),
        ):
            if is_simple_arm(arm, direct):
                join = direct
                # The direct edge and the arm edge both enter join.
                self._hoist(block, arm)
                builder = IRBuilder.before(term)
                for phi in join.phis():
                    av = phi.incoming_for(arm)
                    dv = phi.incoming_for(block)
                    sel = (
                        builder.select(cond, av, dv)
                        if arm_is_then
                        else builder.select(cond, dv, av)
                    )
                    phi.remove_incoming(arm)
                    phi.remove_incoming(block)
                    phi.add_incoming(sel, block)
                term.erase()
                IRBuilder.at_end(block).br(join)
                fn.remove_block(arm)
                ctx.count("simplifycfg.speculated_triangle")
                return True
        return False

    @staticmethod
    def _hoist(dest: BasicBlock, arm: BasicBlock) -> None:
        """Move every non-terminator instruction of *arm* before dest's terminator."""
        term = dest.terminator
        idx = dest.instructions.index(term)
        for inst in arm.instructions[:-1]:
            inst.parent = dest
            dest.instructions.insert(idx, inst)
            idx += 1
        arm.instructions = arm.instructions[-1:]
