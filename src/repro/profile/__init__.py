"""repro.profile — on-the-fly performance profiling as a probe family.

The Score-P / CaPI workload (PAPERS.md): call-path timing probes whose
overhead is held under a budget by de-instrumenting hot symbols at run
time.  Odin's patch tier services every flip without touching the
middle end, so the controller's toggles cost probe-site patches, not
recompiles.
"""

from repro.profile.controller import (
    ProfileBudgetConfig,
    ProfileOverheadController,
    ProfileWindow,
)
from repro.profile.probes import (
    PROF_ENTER_RUNTIME,
    PROF_EXIT_RUNTIME,
    ProfEnterProbe,
    ProfExitProbe,
)
from repro.profile.runner import ProfileReport, ProfileRun, run_profile
from repro.profile.runtime import FunctionStats, PathNode, ProfilingRuntime
from repro.profile.tool import Profiler

__all__ = [
    "PROF_ENTER_RUNTIME",
    "PROF_EXIT_RUNTIME",
    "FunctionStats",
    "PathNode",
    "ProfEnterProbe",
    "ProfExitProbe",
    "ProfileBudgetConfig",
    "ProfileOverheadController",
    "ProfileReport",
    "ProfileRun",
    "ProfileWindow",
    "Profiler",
    "ProfilingRuntime",
    "run_profile",
]
