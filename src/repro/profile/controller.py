"""Overhead-budget controller for profiling instrumentation.

The CaPI/Score-P problem (PAPERS.md) driven through Odin: full
function-level profiling of a hot program can cost far more than a user
is willing to pay, but a *static* instrumentation selection has to guess
which symbols are hot.  This controller measures instead: it windows
executions, attributes the window's probe overhead to symbols exactly
(every prof event has a fixed cost-model price), and **de-instruments**
the hottest symbols until the achieved slowdown sits inside the budget
band — re-instrumenting cold ones if the budget frees up.

Unlike :class:`repro.variants.controller.BudgetController`, which shifts
a dispatch mix over co-resident variants, every actuation here is a pure
probe *toggle*: the flipped probes are patchable, so each control step is
serviced by the engine's stage-1 patch tier — probe sites toggled in the
cached master objects, zero compile batches.  The rebuild reports are
kept as evidence (:attr:`ProfileOverheadController.rebuilds`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional

from repro.core.engine import RebuildReport, TIER_NOOP, TIER_PATCH
from repro.obs.metrics import MetricsRegistry
from repro.profile.tool import Profiler

_EPS = 1e-9

#: Tiers a pure probe-toggle rebuild is allowed to land on.
TOGGLE_TIERS = frozenset({TIER_PATCH, TIER_NOOP})


@dataclass(frozen=True)
class ProfileBudgetConfig:
    #: The budget: target fractional slowdown over the clean baseline.
    target_overhead: float = 0.25
    #: Executions per control window.
    window: int = 30
    #: Relative band around the target counting as converged.
    tolerance: float = 0.25
    #: Windows averaged when judging convergence.
    convergence_windows: int = 3
    #: Symbols the controller must never de-instrument (entry points).
    protected: FrozenSet[str] = frozenset()
    #: Cap on concurrently de-instrumented symbols (None = unlimited).
    max_deinstrumented: Optional[int] = None

    def __post_init__(self):
        if self.target_overhead <= 0:
            raise ValueError("target_overhead must be positive")
        if self.window <= 0:
            raise ValueError("window must be positive")
        if self.tolerance < 0:
            raise ValueError("tolerance must be non-negative")

    @property
    def band(self) -> tuple:
        """(lo, hi) overhead band the controller steers into."""
        return (
            self.target_overhead * (1.0 - self.tolerance),
            self.target_overhead * (1.0 + self.tolerance),
        )


@dataclass
class ProfileWindow:
    """One closed control window."""

    index: int
    executions: int
    achieved_overhead: float
    deinstrumented: List[str]
    reinstrumented: List[str]
    rebuild_tier: Optional[str] = None

    @property
    def summary(self) -> str:
        parts = [f"window {self.index}: overhead {self.achieved_overhead:+.3f}"]
        if self.deinstrumented:
            parts.append(f"deinstrumented {', '.join(self.deinstrumented)}")
        if self.reinstrumented:
            parts.append(f"reinstrumented {', '.join(self.reinstrumented)}")
        if self.rebuild_tier:
            parts.append(f"tier={self.rebuild_tier}")
        return "; ".join(parts)


class ProfileOverheadController:
    """Toggles profiling probes per symbol to hold a target slowdown."""

    def __init__(
        self,
        tool: Profiler,
        config: Optional[ProfileBudgetConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.tool = tool
        self.config = config if config is not None else ProfileBudgetConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.windows: List[ProfileWindow] = []
        #: Rebuild report of every actuation — the patch-tier evidence.
        self.rebuilds: List[RebuildReport] = []
        #: Symbol -> estimated overhead fraction it carried when flipped
        #: off (the re-instrumentation ranking reads this).
        self.deinstrumented: Dict[str, float] = {}
        self.total_cycles = 0
        self.total_baseline = 0
        self._win_cycles = 0
        self._win_baseline = 0
        self._win_execs = 0
        # Snapshot of the runtime's lifetime per-symbol event ledger at
        # the last window boundary; deltas give this window's overhead.
        self._events_mark: Dict[str, List[int]] = {}

    # -- feeding ----------------------------------------------------------------

    def record_execution(self, cycles: int, baseline_cycles: int) -> None:
        """Account one finished execution against the clean-baseline cost
        of the same input."""
        self.total_cycles += cycles
        self.total_baseline += baseline_cycles
        self._win_cycles += cycles
        self._win_baseline += baseline_cycles
        self._win_execs += 1
        self.metrics.observe("profile.exec.cycles", float(cycles))
        if self._win_execs >= self.config.window:
            self._close_window()

    # -- read-backs -------------------------------------------------------------

    @property
    def achieved_overhead(self) -> float:
        if not self.total_baseline:
            return 0.0
        return self.total_cycles / self.total_baseline - 1.0

    @property
    def converged(self) -> bool:
        """Is the controller at a fixed point that satisfies the budget?

        Either the recent-window mean overhead sits inside the tolerance
        band, or it sits *below* the band floor with every symbol still
        instrumented — a program whose full instrumentation is cheaper
        than the budget has nothing left to converge toward.
        """
        k = self.config.convergence_windows
        recent = self.windows[-k:]
        if not recent:
            return False
        mean = sum(w.achieved_overhead for w in recent) / len(recent)
        target = self.config.target_overhead
        if abs(mean - target) <= self.config.tolerance * target:
            return True
        return mean < target and not self.deinstrumented

    @property
    def toggles_patch_only(self) -> bool:
        """Did every actuation land on the patch/noop tier (no compiles)?"""
        return all(
            tier in TOGGLE_TIERS
            for report in self.rebuilds
            for tier in report.fragment_tiers.values()
        )

    # -- the control step -------------------------------------------------------

    def _window_symbol_overheads(self) -> Dict[str, int]:
        """Probe-overhead cycles each symbol charged *this window*."""
        current: Dict[str, List[int]] = self.tool.runtime.symbol_events
        from repro.profile.runtime import PROF_ENTER_COST, PROF_EXIT_COST

        out: Dict[str, int] = {}
        for symbol, (enters, exits) in current.items():
            m_enter, m_exit = self._events_mark.get(symbol, (0, 0))
            cyc = (
                (enters - m_enter) * PROF_ENTER_COST
                + (exits - m_exit) * PROF_EXIT_COST
            )
            if cyc > 0:
                out[symbol] = cyc
        return out

    def _close_window(self) -> None:
        cfg = self.config
        achieved = (
            self._win_cycles / self._win_baseline - 1.0
            if self._win_baseline
            else 0.0
        )
        lo, hi = cfg.band
        self.metrics.set_gauge("profile.window.overhead", achieved)
        self.metrics.set_gauge("profile.lifetime.overhead", self.achieved_overhead)
        self.metrics.inc("profile.windows")

        flipped_off: List[str] = []
        flipped_on: List[str] = []
        if achieved > hi:
            flipped_off = self._deinstrument(achieved)
        elif achieved < lo and self.deinstrumented:
            flipped_on = self._reinstrument(achieved)

        tier = self._actuate(flipped_off, flipped_on)

        self.windows.append(
            ProfileWindow(
                index=len(self.windows),
                executions=self._win_execs,
                achieved_overhead=achieved,
                deinstrumented=flipped_off,
                reinstrumented=flipped_on,
                rebuild_tier=tier,
            )
        )
        self._win_cycles = 0
        self._win_baseline = 0
        self._win_execs = 0
        self._events_mark = {
            sym: list(ev) for sym, ev in self.tool.runtime.symbol_events.items()
        }

    def _deinstrument(self, achieved: float) -> List[str]:
        """Flip off the hottest symbols until the projected overhead is
        back inside the band (without undershooting its floor)."""
        cfg = self.config
        lo, hi = cfg.band
        if not self._win_baseline:
            return []
        overheads = self._window_symbol_overheads()
        est = {
            sym: cyc / self._win_baseline
            for sym, cyc in overheads.items()
            if sym not in cfg.protected and sym not in self.deinstrumented
        }
        flipped: List[str] = []
        projected = achieved
        while projected > hi and est:
            if (
                cfg.max_deinstrumented is not None
                and len(self.deinstrumented) >= cfg.max_deinstrumented
            ):
                break
            # A single flip that lands at or below the ceiling finishes
            # the step: prefer the hottest one that stays inside the band,
            # else the one undershooting the least.  If no single flip
            # reaches the ceiling, strip the hottest and keep going.
            fits = [s for s in est if projected - est[s] <= hi]
            in_band = [s for s in fits if projected - est[s] >= lo]
            if in_band:
                pick = max(in_band, key=lambda s: (est[s], s))
            elif fits:
                pick = min(fits, key=lambda s: (est[s], s))
            else:
                pick = max(est, key=lambda s: (est[s], s))
            if self.tool.set_symbol_probes_enabled(pick, False) == 0:
                del est[pick]
                continue
            self.deinstrumented[pick] = est.pop(pick)
            projected -= self.deinstrumented[pick]
            flipped.append(pick)
            self.metrics.inc("profile.deinstrumented")
        return flipped

    def _reinstrument(self, achieved: float) -> List[str]:
        """Budget freed up: flip the coldest de-instrumented symbol back
        on, provided its estimated cost fits under the band ceiling."""
        cfg = self.config
        lo, hi = cfg.band
        ranked = sorted(
            self.deinstrumented, key=lambda s: (self.deinstrumented[s], s)
        )
        flipped: List[str] = []
        projected = achieved
        for symbol in ranked:
            est = self.deinstrumented[symbol]
            if projected + est > hi:
                break  # sorted ascending: nothing hotter fits either
            if self.tool.set_symbol_probes_enabled(symbol, True) == 0:
                del self.deinstrumented[symbol]
                continue
            del self.deinstrumented[symbol]
            projected += est
            flipped.append(symbol)
            self.metrics.inc("profile.reinstrumented")
            break  # one per window: conservative, avoids oscillation
        return flipped

    def _actuate(
        self, flipped_off: List[str], flipped_on: List[str]
    ) -> Optional[str]:
        if not flipped_off and not flipped_on:
            return None
        report = self.tool.engine.rebuild_if_needed()
        if report is None:
            return TIER_NOOP
        self.rebuilds.append(report)
        self.metrics.set_gauge("profile.rebuild.patched", float(report.patched))
        return report.tier
