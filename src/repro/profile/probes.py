"""Profiling probes: function entry/exit timing hooks.

One :class:`ProfEnterProbe` at each function's entry block and one
:class:`ProfExitProbe` before each of its ``ret`` instructions.  Both
emit a single runtime call carrying only the probe id, so they lower to
one register-free ``probe`` machine instruction — the stage-1
*patchable* shape: the overhead controller's enable/disable flips are
serviced by toggling sites in the cached master object, never by a
recompile.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.probe import BlockProbe, InstructionProbe
from repro.ir.builder import IRBuilder
from repro.ir.instructions import Instruction, RetInst
from repro.ir.module import Function
from repro.ir.types import FunctionType, I64, VOID
from repro.ir.values import ConstantInt

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.scheduler import Scheduler

PROF_ENTER_RUNTIME = "__odin_prof_enter"
PROF_EXIT_RUNTIME = "__odin_prof_exit"
_PROF_FN_TYPE = FunctionType(VOID, (I64,))


class ProfEnterProbe(BlockProbe):
    """Fires when its function is entered (anchored at the entry block)."""

    patchable = True
    family = "prof"

    def __init__(self, function: Function):
        super().__init__(function, function.entry)
        self.calls = 0  # annotation synced from the profiling runtime

    def instrument(self, builder: IRBuilder, sched: "Scheduler") -> None:
        runtime = sched.declare_runtime(PROF_ENTER_RUNTIME, _PROF_FN_TYPE)
        builder.call(runtime, [ConstantInt(I64, self.id)], _PROF_FN_TYPE)


class ProfExitProbe(InstructionProbe):
    """Fires just before one ``ret`` of its function."""

    patchable = True
    family = "prof"

    def __init__(self, ret: Instruction):
        if not isinstance(ret, RetInst):
            raise TypeError("ProfExitProbe targets a ret instruction")
        super().__init__(ret)
        self.calls = 0

    def instrument(
        self, builder: IRBuilder, mapped: Instruction, sched: "Scheduler"
    ) -> None:
        runtime = sched.declare_runtime(PROF_EXIT_RUNTIME, _PROF_FN_TYPE)
        builder.call(runtime, [ConstantInt(I64, self.id)], _PROF_FN_TYPE)
