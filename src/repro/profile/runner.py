"""Drive a program under budgeted profiling; report what happened.

:func:`run_profile` is the subsystem's front door (the CLI's
``repro profile`` and the overhead benchmark both sit on it):

1. build a clean engine and measure the baseline cycles of each seed
   input (what "no instrumentation" costs);
2. build a fully instrumented engine — enter/exit probes on every
   defined function — under a :class:`~repro.profile.tool.Profiler`;
3. run *executions* executions, feeding each cycle count to the
   :class:`~repro.profile.controller.ProfileOverheadController`, which
   de-instruments hot symbols (pure patch-tier toggles) until the
   slowdown converges into the budget band;
4. fold everything into a :class:`ProfileReport`: flat + call-path
   profile, edges, de-instrumented vs. still-cold symbols, convergence,
   and the toggle-rebuild tier evidence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.engine import Odin
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.programs.registry import TargetProgram
from repro.profile.controller import (
    ProfileBudgetConfig,
    ProfileOverheadController,
)
from repro.profile.tool import Profiler
from repro.vm.interpreter import VM

ENTRY = "run_input"
PRESERVED = ("main", "run_input")


@dataclass
class ProfileReport:
    """One budgeted profiling run, JSON-serializable."""

    program: str
    seed: int
    budget: float
    executions: int
    window: int
    baseline_cycles: int
    profiled_cycles: int
    achieved_overhead: float
    final_window_overhead: Optional[float]
    converged: bool
    windows: int
    probes_total: int
    probes_enabled: int
    flat: List[dict]                 # per-symbol rows, hottest first
    edges: List[dict]                # caller -> callee call counts
    deinstrumented: List[str]        # flipped off by the controller
    cold_instrumented: List[str]     # zero calls seen, still instrumented
    unattributed: int                # counter events with no live probe
    rebuilds: int                    # controller actuations
    rebuild_tiers: List[str]         # worst tier of each actuation
    compile_batches: int             # fragments actually compiled by them
    toggles_patch_only: bool         # every actuation pure patch/noop

    def to_dict(self) -> dict:
        return {
            "program": self.program,
            "seed": self.seed,
            "budget": self.budget,
            "executions": self.executions,
            "window": self.window,
            "baseline_cycles": self.baseline_cycles,
            "profiled_cycles": self.profiled_cycles,
            "achieved_overhead": self.achieved_overhead,
            "final_window_overhead": self.final_window_overhead,
            "converged": self.converged,
            "windows": self.windows,
            "probes_total": self.probes_total,
            "probes_enabled": self.probes_enabled,
            "flat": [dict(row) for row in self.flat],
            "edges": [dict(row) for row in self.edges],
            "deinstrumented": list(self.deinstrumented),
            "cold_instrumented": list(self.cold_instrumented),
            "unattributed": self.unattributed,
            "rebuilds": self.rebuilds,
            "rebuild_tiers": list(self.rebuild_tiers),
            "compile_batches": self.compile_batches,
            "toggles_patch_only": self.toggles_patch_only,
        }

    def summary(self) -> str:
        deinst = (
            f", de-instrumented: {', '.join(self.deinstrumented)}"
            if self.deinstrumented
            else ""
        )
        return (
            f"{self.program}: {self.executions} executions, "
            f"overhead {self.achieved_overhead:+.3f} vs budget "
            f"{self.budget:+.3f} "
            f"({'converged' if self.converged else 'not converged'}), "
            f"{self.probes_enabled}/{self.probes_total} probes live, "
            f"{self.rebuilds} toggle rebuilds "
            f"({'patch-only' if self.toggles_patch_only else 'COMPILED'})"
            f"{deinst}"
        )


@dataclass
class ProfileRun:
    """The report plus the live objects (for tests, benchmarks, traces)."""

    report: ProfileReport
    tool: Profiler
    controller: ProfileOverheadController
    engine: Odin
    tracer: Tracer
    metrics: MetricsRegistry


def _run_one(vm: VM, data: bytes):
    """One execution using the corpus protocol shared with the fuzzer."""
    vm.reset()
    addr = vm.alloc(max(len(data), 1) + 1)
    vm.write_bytes(addr, data)
    return vm.run(ENTRY, (addr, len(data)), reset=False)


def run_profile(
    program: TargetProgram,
    *,
    budget: float = 0.25,
    executions: int = 300,
    seed: int = 1,
    window: int = 20,
    max_inputs: int = 4,
    config: Optional[ProfileBudgetConfig] = None,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> ProfileRun:
    """Profile *program* under an overhead budget."""
    inputs = program.seeds(seed)[:max_inputs]
    if not inputs:
        raise ValueError(f"program {program.name!r} has an empty seed corpus")

    tracer = tracer if tracer is not None else Tracer()
    metrics = metrics if metrics is not None else MetricsRegistry()

    # Clean baseline: an uninstrumented engine over the same module.
    clean = Odin(program.compile(), preserve=PRESERVED)
    clean.initial_build()
    baseline: List[int] = []
    for data in inputs:
        baseline.append(_run_one(VM(clean.executable), data).cycles)

    engine = Odin(program.compile(), preserve=PRESERVED, tracer=tracer)
    tool = Profiler(engine, metrics=metrics)
    tool.add_all_function_probes()
    tool.build()
    controller = ProfileOverheadController(
        tool,
        config
        if config is not None
        else ProfileBudgetConfig(
            target_overhead=budget,
            window=window,
            protected=frozenset(PRESERVED),
        ),
        metrics=metrics,
    )

    exe = engine.executable
    vm = tool.make_vm()
    baseline_total = 0
    profiled_total = 0
    for i in range(executions):
        if engine.executable is not exe:
            # The controller toggled probes and relinked mid-run.
            exe = engine.executable
            vm = tool.make_vm()
        result = _run_one(vm, inputs[i % len(inputs)])
        tool.runtime.finish_execution(result.cycles)
        base = baseline[i % len(inputs)]
        baseline_total += base
        profiled_total += result.cycles
        controller.record_execution(result.cycles, base)

    # Final sync: runtime event counts -> probe.calls annotations; what
    # cannot be attributed any more lands in tool.unattributed.
    tool.sync_profiles(clear=True)
    tool.runtime.publish(metrics)
    tracer.record(tool.runtime.span_tree(f"profile:{program.name}"))

    runtime = tool.runtime
    enabled_symbols = {
        p.target_symbol() for p in tool.probes.values() if p.enabled
    }
    flat = [
        {
            "symbol": stats.symbol,
            "calls": stats.calls,
            "incl_cycles": stats.incl_cycles,
            "excl_cycles": stats.excl_cycles,
            "enabled": stats.symbol in enabled_symbols,
        }
        for stats in sorted(
            runtime.stats.values(),
            key=lambda s: (-s.incl_cycles, s.symbol),
        )
    ]
    edges = [
        {"caller": caller, "callee": callee, "calls": count}
        for (caller, callee), count in sorted(
            runtime.edges.items(), key=lambda kv: (-kv[1], kv[0])
        )
    ]
    called = {sym for sym, stats in runtime.stats.items() if stats.calls}
    cold = sorted(
        sym
        for sym in tool.probes.symbols()
        if sym not in called and sym in enabled_symbols
    )
    compile_batches = sum(
        1
        for report in controller.rebuilds
        for tier in report.fragment_tiers.values()
        if tier in ("full", "memo")
    )

    report = ProfileReport(
        program=program.name,
        seed=seed,
        budget=budget,
        executions=executions,
        window=window,
        baseline_cycles=baseline_total,
        profiled_cycles=profiled_total,
        achieved_overhead=controller.achieved_overhead,
        final_window_overhead=(
            controller.windows[-1].achieved_overhead
            if controller.windows
            else None
        ),
        converged=controller.converged,
        windows=len(controller.windows),
        probes_total=len(tool.probes),
        probes_enabled=sum(
            1 for probe in tool.probes.values() if probe.enabled
        ),
        flat=flat,
        edges=edges,
        deinstrumented=sorted(controller.deinstrumented),
        cold_instrumented=cold,
        unattributed=tool.unattributed,
        rebuilds=len(controller.rebuilds),
        rebuild_tiers=[r.tier for r in controller.rebuilds],
        compile_batches=compile_batches,
        toggles_patch_only=controller.toggles_patch_only,
    )
    return ProfileRun(
        report=report,
        tool=tool,
        controller=controller,
        engine=engine,
        tracer=tracer,
        metrics=metrics,
    )
