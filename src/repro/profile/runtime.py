"""VM-side profiling runtime: shadow call stack + call-path tree.

``__odin_prof_enter``/``__odin_prof_exit`` events drive a shadow stack
whose frames carry the VM's deterministic cycle counter at entry.  On
exit the frame's inclusive cycles (everything since entry) and exclusive
cycles (inclusive minus instrumented callees) are folded into

* per-symbol :class:`FunctionStats` (the flat profile),
* a :class:`PathNode` context tree (the call-path profile; exported as
  an :class:`~repro.obs.tracer.Span` tree for Chrome traces),
* caller -> callee edge counts.

Partial instrumentation is the normal case here — the overhead
controller de-instruments hot symbols mid-run — so the stack tolerates
missing frames: an uninstrumented callee simply attributes its cycles to
the nearest instrumented ancestor's exclusive time, and a :class:`VMTrap`
that aborts mid-call leaves frames that :meth:`finish_execution` unwinds
against the execution's final cycle count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.backend.costmodel import PROBE_COST
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Span
from repro.vm.interpreter import ProbeRuntime, VM

#: Modelled per-event cycle cost of the profiling probes; the controller
#: uses these for exact per-symbol overhead attribution.
PROF_ENTER_COST = PROBE_COST["prof_enter"]
PROF_EXIT_COST = PROBE_COST["prof_exit"]

ROOT_SYMBOL = "<root>"

#: Span category for profiling call-path trees.
CAT_PROFILE = "profile"


@dataclass
class FunctionStats:
    """Flat per-symbol profile."""

    symbol: str
    calls: int = 0
    incl_cycles: int = 0
    excl_cycles: int = 0


@dataclass
class PathNode:
    """One node of the call-path (context) tree."""

    symbol: str
    calls: int = 0
    incl_cycles: int = 0
    excl_cycles: int = 0
    children: Dict[str, "PathNode"] = field(default_factory=dict)

    def child(self, symbol: str) -> "PathNode":
        node = self.children.get(symbol)
        if node is None:
            node = self.children[symbol] = PathNode(symbol)
        return node

    def walk(self):
        yield self
        for child in self.children.values():
            yield from child.walk()


@dataclass
class _Frame:
    symbol: str
    entry_cycles: int
    node: PathNode
    child_incl: int = 0


class ProfilingRuntime(ProbeRuntime):
    """Receives prof_enter/prof_exit events; aggregates the profile."""

    def __init__(self, metrics: Optional[MetricsRegistry] = None):
        self.metrics = metrics
        # Probe id -> (symbol, "enter"|"exit"), registered by the tool.
        self.symbol_of: Dict[int, str] = {}
        self.kind_of: Dict[int, str] = {}
        # Aggregates.
        self.stats: Dict[str, FunctionStats] = {}
        self.edges: Dict[Tuple[str, str], int] = {}
        self.root = PathNode(ROOT_SYMBOL)
        # Per-probe event counts since the last sync (profile_counts).
        self.events: Dict[int, int] = {}
        # Lifetime per-symbol [enter, exit] event counts — the exact
        # per-symbol overhead ledger the controller windows over.
        self.symbol_events: Dict[str, List[int]] = {}
        self._stack: List[_Frame] = []

    # -- registration (tool-side) ----------------------------------------------

    def register_probe(self, probe_id: int, symbol: str, kind: str) -> None:
        self.symbol_of[probe_id] = symbol
        self.kind_of[probe_id] = kind

    def forget_probe(self, probe_id: int) -> None:
        self.symbol_of.pop(probe_id, None)
        self.kind_of.pop(probe_id, None)

    # -- event handling ---------------------------------------------------------

    def on_probe(
        self, kind: str, probe_id: int, args: Tuple[int, ...], vm: VM
    ) -> None:
        if kind == "prof_enter":
            self._on_enter(probe_id, vm.cycles)
        elif kind == "prof_exit":
            self._on_exit(probe_id, vm.cycles)

    def _on_enter(self, probe_id: int, cycles: int) -> None:
        symbol = self.symbol_of.get(probe_id)
        if symbol is None:
            return
        self.events[probe_id] = self.events.get(probe_id, 0) + 1
        self.symbol_events.setdefault(symbol, [0, 0])[0] += 1
        caller = self._stack[-1].symbol if self._stack else ROOT_SYMBOL
        self.edges[(caller, symbol)] = self.edges.get((caller, symbol), 0) + 1
        parent_node = self._stack[-1].node if self._stack else self.root
        node = parent_node.child(symbol)
        node.calls += 1
        self._flat(symbol).calls += 1
        self._stack.append(_Frame(symbol, cycles, node))

    def _on_exit(self, probe_id: int, cycles: int) -> None:
        symbol = self.symbol_of.get(probe_id)
        if symbol is None:
            return
        self.events[probe_id] = self.events.get(probe_id, 0) + 1
        self.symbol_events.setdefault(symbol, [0, 0])[1] += 1
        # Normally the exit matches the top frame.  A mismatch means
        # intervening frames never saw their exit (callee trapped and was
        # caught upstream, or probes flipped mid-window): unwind down to
        # the matching frame, attributing each abandoned frame up to now.
        if not any(frame.symbol == symbol for frame in self._stack):
            return  # enter was not recorded (flipped mid-call); drop
        while self._stack and self._stack[-1].symbol != symbol:
            self._retire(self._stack.pop(), cycles)
        if self._stack:
            self._retire(self._stack.pop(), cycles)

    def finish_execution(self, final_cycles: int) -> None:
        """Unwind frames an aborted execution (VMTrap/exit) left behind."""
        while self._stack:
            self._retire(self._stack.pop(), final_cycles)

    def _retire(self, frame: _Frame, cycles: int) -> None:
        incl = max(0, cycles - frame.entry_cycles)
        excl = max(0, incl - frame.child_incl)
        stats = self._flat(frame.symbol)
        stats.incl_cycles += incl
        stats.excl_cycles += excl
        frame.node.incl_cycles += incl
        frame.node.excl_cycles += excl
        if self._stack:
            self._stack[-1].child_incl += incl
        if self.metrics is not None:
            self.metrics.observe(f"profile.call.{frame.symbol}", float(incl))

    def _flat(self, symbol: str) -> FunctionStats:
        stats = self.stats.get(symbol)
        if stats is None:
            stats = self.stats[symbol] = FunctionStats(symbol)
        return stats

    # -- the profile-sync hooks -------------------------------------------------

    def event_counts(self) -> Dict[int, int]:
        return dict(self.events)

    def clear_event_counts(self) -> None:
        self.events.clear()

    # -- overhead accounting ----------------------------------------------------

    def symbol_overhead_cycles(self) -> Dict[str, int]:
        """Lifetime probe-event cycles charged per symbol (exact: the
        cost model prices every prof event deterministically)."""
        return {
            symbol: enters * PROF_ENTER_COST + exits * PROF_EXIT_COST
            for symbol, (enters, exits) in self.symbol_events.items()
        }

    def overhead_cycles(self) -> int:
        return sum(self.symbol_overhead_cycles().values())

    # -- export -----------------------------------------------------------------

    def publish(self, metrics: Optional[MetricsRegistry] = None) -> None:
        """Push the aggregate profile into a metrics registry as gauges."""
        metrics = metrics if metrics is not None else self.metrics
        if metrics is None:
            return
        for symbol, stats in self.stats.items():
            metrics.set_gauge(f"profile.calls.{symbol}", float(stats.calls))
            metrics.set_gauge(
                f"profile.incl_cycles.{symbol}", float(stats.incl_cycles)
            )
            metrics.set_gauge(
                f"profile.excl_cycles.{symbol}", float(stats.excl_cycles)
            )

    def span_tree(self, name: str = "profile") -> Span:
        """The context tree as a span tree (1 simulated ms == 1 cycle).

        Children tile their parent sequentially — the tree is a call-path
        *aggregate*, not a timeline, but the layout keeps every child
        inside its parent so Chrome trace viewers render the nesting.
        """

        def build(node: PathNode, start: float) -> Span:
            span = Span(
                node.symbol,
                cat=CAT_PROFILE,
                sim_start_ms=start,
                sim_ms=float(node.incl_cycles),
                args={
                    "calls": node.calls,
                    "excl_cycles": node.excl_cycles,
                },
            )
            cursor = start
            for child in node.children.values():
                span.add(build(child, cursor))
                cursor += float(child.incl_cycles)
            return span

        total = float(sum(c.incl_cycles for c in self.root.children.values()))
        root = Span(
            name,
            cat=CAT_PROFILE,
            sim_start_ms=0.0,
            sim_ms=total,
            args={"symbols": len(self.stats)},
        )
        cursor = 0.0
        for child in self.root.children.values():
            root.add(build(child, cursor))
            cursor += float(child.incl_cycles)
        return root

    def clear(self) -> None:
        """Reset every aggregate (not the probe registrations)."""
        self.stats.clear()
        self.edges.clear()
        self.root = PathNode(ROOT_SYMBOL)
        self.events.clear()
        self.symbol_events.clear()
        self._stack.clear()
