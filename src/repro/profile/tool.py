"""The profiling tool: a :class:`SanitizerTool` for the "prof" family.

Installs one :class:`ProfEnterProbe` per defined function plus one
:class:`ProfExitProbe` per ``ret``, wires them to a
:class:`ProfilingRuntime`, and exposes the shared tool surface
(``build``/``make_vm``/``sync_profiles``/``set_symbol_probes_enabled``)
so the overhead controller and the variants machinery can treat
profiling exactly like coverage or a sanitizer.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.engine import Odin
from repro.instrument.base import SanitizerTool
from repro.ir.instructions import RetInst
from repro.obs.metrics import MetricsRegistry
from repro.profile.probes import ProfEnterProbe, ProfExitProbe
from repro.profile.runtime import ProfilingRuntime


class Profiler(SanitizerTool):
    """Function-level timing + call-path profiling over an Odin engine."""

    family = "prof"
    #: sync_profiles folds enter/exit event counts into ``probe.calls``.
    profile_attr = "calls"

    def __init__(self, engine: Odin, *, metrics: Optional[MetricsRegistry] = None):
        super().__init__(engine, ProfilingRuntime(metrics=metrics))
        self.runtime: ProfilingRuntime  # narrow the base annotation

    def add_all_function_probes(
        self, skip: Iterable[str] = ()
    ) -> List[Tuple[str, int]]:
        """One enter probe + one exit probe per ``ret`` for every defined
        function not in *skip*; returns ``(symbol, probe_count)`` pairs.
        """
        skipped = set(skip)
        installed: List[Tuple[str, int]] = []
        for fn in self.engine.module.defined_functions():
            if fn.name in skipped:
                continue
            count = 0
            enter = self.register(ProfEnterProbe(fn))
            self.runtime.register_probe(enter.id, fn.name, "enter")
            count += 1
            for inst in fn.instructions():
                if isinstance(inst, RetInst):
                    exit_probe = self.register(ProfExitProbe(inst))
                    self.runtime.register_probe(exit_probe.id, fn.name, "exit")
                    count += 1
            installed.append((fn.name, count))
        return installed

    # -- profile-sync hooks ------------------------------------------------------

    def profile_counts(self) -> Dict[int, int]:
        return self.runtime.event_counts()

    def clear_profile_counts(self) -> None:
        self.runtime.clear_event_counts()
