"""freetype2 — binary font loader.

Mid-sized binary parser: table directory, per-glyph outline records,
checksum validation, bounding-box/advance computation.  Medium functions
with moderate call-graph density.
"""

from __future__ import annotations

from typing import List

from repro.programs.registry import TargetProgram, register
from repro.utils.rng import DeterministicRNG

SOURCE = r"""
// freetype2_mini: parse a tiny binary font format.
// Layout:
//   magic "FT2\0" | u8 num_glyphs | u8 flags | u16 checksum
//   per glyph: u8 npoints | u8 advance | npoints * (i8 dx, i8 dy)

static int glyph_advances[64];
static int glyph_widths[64];
static int glyphs_loaded;
static int checksum_state;

static int read_u8(const char *p) { return (int)*p & 255; }
static int read_i8(const char *p) { return (int)*p; }
static int read_u16(const char *p) { return read_u8(p) * 256 + read_u8(p + 1); }

static void checksum_mix(int v) {
    checksum_state = (checksum_state * 131 + v) % 65521;
}

static int parse_outline(const char *data, long avail, int npoints, int glyph) {
    int x = 0;
    int y = 0;
    int minx = 0;
    int maxx = 0;
    int miny = 0;
    int maxy = 0;
    int i;
    if ((long)npoints * 2 > avail) return -1;
    for (i = 0; i < npoints; i++) {
        x += read_i8(data + i * 2);
        y += read_i8(data + i * 2 + 1);
        if (x < minx) minx = x;
        if (x > maxx) maxx = x;
        if (y < miny) miny = y;
        if (y > maxy) maxy = y;
        checksum_mix(x * 3 + y);
    }
    glyph_widths[glyph] = maxx - minx;
    if (maxy - miny > 127) return -2;
    return npoints * 2;
}

static int parse_glyph(const char *data, long avail, int glyph) {
    int npoints;
    int advance;
    int used;
    if (avail < 2) return -1;
    npoints = read_u8(data);
    advance = read_u8(data + 1);
    if (npoints > 48) return -2;
    used = parse_outline(data + 2, avail - 2, npoints, glyph);
    if (used < 0) return used;
    glyph_advances[glyph] = advance;
    checksum_mix(advance);
    return used + 2;
}

static int hinting_pass(int num_glyphs, int flags) {
    // Snap advances to a grid; widen narrow glyphs when flag bit 1 set.
    int i;
    int total = 0;
    for (i = 0; i < num_glyphs; i++) {
        int adv = glyph_advances[i];
        if (flags & 1) adv = (adv + 3) & ~3;
        if ((flags & 2) && glyph_widths[i] < 4) adv += 2;
        if (adv > 255) adv = 255;
        glyph_advances[i] = adv;
        total += adv;
    }
    return total;
}

static int kern_metric(int num_glyphs) {
    int i;
    int metric = 0;
    for (i = 1; i < num_glyphs; i++) {
        int d = glyph_widths[i] - glyph_widths[i - 1];
        if (d < 0) d = -d;
        metric += d > 8 ? 8 : d;
    }
    return metric;
}

int run_input(const char *data, long size) {
    int num_glyphs;
    int flags;
    int want_checksum;
    long pos;
    int g;
    int total_advance;

    if (size < 8) return -1;
    if (data[0] != 'F' || data[1] != 'T' || data[2] != '2' || data[3] != (char)0)
        return -2;
    num_glyphs = read_u8(data + 4);
    flags = read_u8(data + 5);
    want_checksum = read_u16(data + 6);
    if (num_glyphs > 64) return -3;

    checksum_state = 1;
    glyphs_loaded = 0;
    pos = 8;
    for (g = 0; g < num_glyphs; g++) {
        int used = parse_glyph(data + pos, size - pos, g);
        if (used < 0) return -4;
        pos += used;
        glyphs_loaded++;
    }
    total_advance = hinting_pass(num_glyphs, flags);
    if ((flags & 4) && checksum_state != want_checksum) return -5;
    return total_advance * 100 + kern_metric(num_glyphs) + glyphs_loaded;
}

int main(void) {
    char font[32];
    int r;
    font[0] = 'F'; font[1] = 'T'; font[2] = '2'; font[3] = (char)0;
    font[4] = (char)2;   // glyphs
    font[5] = (char)1;   // flags: grid snap
    font[6] = (char)0; font[7] = (char)0;
    // glyph 0: 2 points
    font[8] = (char)2; font[9] = (char)10;
    font[10] = (char)5; font[11] = (char)3;
    font[12] = (char)250; font[13] = (char)1;   // dx=-6, dy=1
    // glyph 1: 1 point
    font[14] = (char)1; font[15] = (char)7;
    font[16] = (char)2; font[17] = (char)2;
    r = run_input(font, 18);
    printf("freetype2 metric=%d\n", r);
    return r < 0 ? 1 : 0;
}
"""


def _make_font(rng: DeterministicRNG, glyphs: int, flags: int) -> bytes:
    body = bytearray(b"FT2\x00")
    body.append(glyphs)
    body.append(flags & ~4)  # skip checksum enforcement in seeds
    body.extend(b"\x00\x00")
    for _ in range(glyphs):
        npoints = rng.randint(0, 12)
        body.append(npoints)
        body.append(rng.randint(1, 40))
        for _ in range(npoints):
            body.append(rng.randint(0, 255))
            body.append(rng.randint(0, 255))
    return bytes(body)


def make_seeds(rng: DeterministicRNG) -> List[bytes]:
    seeds = [b"FT2\x00\x00\x00\x00\x00"]
    for _ in range(11):
        seeds.append(_make_font(rng, rng.randint(1, 24), rng.randint(0, 3)))
    return seeds


register(
    TargetProgram(
        name="freetype2",
        description="binary font loader: outline records + hinting passes",
        source=SOURCE,
        make_seeds=make_seeds,
    )
)
