"""harfbuzz — text shaping engine.

Paper shape notes: harfbuzz is the *worst* program for Odin-MaxPartition
(186.91% overhead, §5.2) because its hot loops lean on interprocedural
optimization.  So: shaping pipeline whose inner loops call many tiny
helpers (glyph classification, kerning lookup, ligature matching) —
inlined they melt into the loop; compiled separately every character pays
several call overheads.
"""

from __future__ import annotations

from typing import List

from repro.programs.registry import TargetProgram, register
from repro.utils.rng import DeterministicRNG

SOURCE = r"""
// harfbuzz_mini: tiny text shaper.
// Pipeline: map codepoints to glyphs -> apply ligatures -> kerning ->
// accumulate advance widths.  All per-character work goes through small
// helpers: this program's performance is made by the inliner.

static int glyph_buf[256];
static int class_buf[256];
static int glyph_count;

static int is_space(int cp) { return cp == ' ' || cp == '\t' || cp == '\n'; }
static int is_lower(int cp) { return cp >= 'a' && cp <= 'z'; }
static int is_upper(int cp) { return cp >= 'A' && cp <= 'Z'; }
static int is_digit_cp(int cp) { return cp >= '0' && cp <= '9'; }
static int is_punct(int cp) {
    return cp == '.' || cp == ',' || cp == '!' || cp == '?' || cp == ';';
}

static int glyph_class(int cp) {
    if (is_space(cp)) return 0;
    if (is_lower(cp)) return 1;
    if (is_upper(cp)) return 2;
    if (is_digit_cp(cp)) return 3;
    if (is_punct(cp)) return 4;
    return 5;
}

static int map_glyph(int cp) {
    int cls = glyph_class(cp);
    if (cls == 1) return 100 + (cp - 'a');
    if (cls == 2) return 200 + (cp - 'A');
    if (cls == 3) return 300 + (cp - '0');
    if (cls == 4) return 400 + (cp & 15);
    if (cls == 0) return 1;
    return 2;
}

static int base_advance(int glyph) {
    if (glyph == 1) return 3;                 // space
    if (glyph >= 100 && glyph < 200) return 6 + (glyph & 3);
    if (glyph >= 200 && glyph < 300) return 8 + (glyph & 3);
    if (glyph >= 300 && glyph < 400) return 7;
    return 5;
}

static int glyph_is_cap(int glyph) { return glyph >= 200 && glyph < 300; }
static int glyph_is_small(int glyph) { return glyph >= 100 && glyph < 200; }
static int glyph_bucket(int glyph) { return glyph & 7; }
static int serif_pad(int glyph) { return glyph_is_cap(glyph) ? 1 : 0; }

static int kern_pair(int left, int right) {
    // Classic kerning pairs: AV, To, fi-ish combinations by class.
    if (glyph_is_cap(left) && glyph_is_small(right)) return -2 - serif_pad(left);
    if (left == right) return 1;
    if (glyph_bucket(left) == glyph_bucket(right)) return -1;
    return serif_pad(left) - serif_pad(right);
}

static int lig_match(int a, int b) {
    // 'f'+'i' -> fi ligature, 'f'+'l' -> fl.
    int f = 100 + ('f' - 'a');
    int i = 100 + ('i' - 'a');
    int l = 100 + ('l' - 'a');
    if (a == f && b == i) return 500;
    if (a == f && b == l) return 501;
    if (a == i && b == i) return 502;
    return 0;
}

static void push_glyph(int glyph, int cls) {
    if (glyph_count < 256) {
        glyph_buf[glyph_count] = glyph;
        class_buf[glyph_count] = cls;
        glyph_count++;
    }
}

static void map_all(const char *text, long size) {
    long i;
    glyph_count = 0;
    for (i = 0; i < size; i++) {
        int cp = (int)text[i] & 255;
        push_glyph(map_glyph(cp), glyph_class(cp));
    }
}

static void apply_ligatures(void) {
    int out = 0;
    int i = 0;
    while (i < glyph_count) {
        int lig = 0;
        if (i + 1 < glyph_count) lig = lig_match(glyph_buf[i], glyph_buf[i + 1]);
        if (lig != 0) {
            glyph_buf[out] = lig;
            class_buf[out] = 6;
            i += 2;
        } else {
            glyph_buf[out] = glyph_buf[i];
            class_buf[out] = class_buf[i];
            i += 1;
        }
        out++;
    }
    glyph_count = out;
}

static int shape_width(void) {
    int width = 0;
    int i;
    for (i = 0; i < glyph_count; i++) {
        width += base_advance(glyph_buf[i]) + serif_pad(glyph_buf[i]);
        if (i > 0) width += kern_pair(glyph_buf[i - 1], glyph_buf[i]);
    }
    return width;
}

static int cluster_count(void) {
    int clusters = 0;
    int i;
    int in_word = 0;
    for (i = 0; i < glyph_count; i++) {
        int space = class_buf[i] == 0;
        if (!space && !in_word) clusters++;
        in_word = !space;
    }
    return clusters;
}

int run_input(const char *data, long size) {
    int width;
    int clusters;
    if (size > 256) size = 256;
    map_all(data, size);
    apply_ligatures();
    width = shape_width();
    clusters = cluster_count();
    return width * 1000 + clusters * 10 + (glyph_count & 7);
}

int main(void) {
    char text[32] = "The quick fight of fish";
    int r = run_input(text, 23);
    printf("harfbuzz shape=%d\n", r);
    return 0;
}
"""


def make_seeds(rng: DeterministicRNG) -> List[bytes]:
    words = ["fish", "flight", "offer", "The", "Viking", "mix", "affix",
             "Tofu", "skiing", "scaffold", "42nd", "fjord"]
    seeds = [
        b"Hello, World!",
        b"The quick brown fox jumps over the lazy dog.",
        b"ffi ffl offline affine",
    ]
    for _ in range(10):
        n = rng.randint(4, 18)
        text = " ".join(rng.choice(words) for _ in range(n))
        seeds.append(text.encode())
    return seeds


register(
    TargetProgram(
        name="harfbuzz",
        description="text shaper: hot loops over tiny helpers (IPO-dependent)",
        source=SOURCE,
        make_seeds=make_seeds,
    )
)
