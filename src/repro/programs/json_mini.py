"""json — header-only-style JSON parser.

Paper shape notes (§5.3): "Take json, a header-only C++ template library
for example.  Its extensive use of C++ templates results in short
functions suitable for interprocedural optimization."  So: the smallest
target, a recursive-descent parser made of many tiny static helpers that
all want to be inlined.
"""

from __future__ import annotations

from typing import List

from repro.programs.registry import TargetProgram, register
from repro.utils.rng import DeterministicRNG

SOURCE = r"""
// json_mini: recursive-descent JSON subset parser.
// Built from many tiny static helpers, like a header-only template library
// lowers to: short functions that live or die by inlining.

static const char *cur;
static const char *end;
static int depth;
static int error_flag;
static int counts[8];   // 0 obj, 1 arr, 2 str, 3 num, 4 bool, 5 null, 6 keys, 7 commas

static int at_end(void) { return cur >= end; }
static char peek(void) { return at_end() ? (char)0 : *cur; }
static char advance(void) { return at_end() ? (char)0 : *cur++; }
static int is_ws(char c) { return c == ' ' || c == '\t' || c == '\n' || c == '\r'; }
static int is_digit(char c) { return c >= '0' && c <= '9'; }
static void skip_ws(void) { while (!at_end() && is_ws(peek())) advance(); }
static void fail(void) { error_flag = 1; }
static int expect(char c) {
    if (peek() == c) { advance(); return 1; }
    fail();
    return 0;
}
static void bump(int kind) { counts[kind]++; }

static int parse_value(void);

static int parse_string(void) {
    if (!expect('"')) return 0;
    while (!at_end() && peek() != '"') {
        char c = advance();
        if (c == '\\') {
            if (at_end()) { fail(); return 0; }
            advance();
        }
    }
    if (!expect('"')) return 0;
    bump(2);
    return 1;
}

static int parse_number(void) {
    if (peek() == '-') advance();
    if (!is_digit(peek())) { fail(); return 0; }
    while (is_digit(peek())) advance();
    if (peek() == '.') {
        advance();
        if (!is_digit(peek())) { fail(); return 0; }
        while (is_digit(peek())) advance();
    }
    if (peek() == 'e' || peek() == 'E') {
        advance();
        if (peek() == '+' || peek() == '-') advance();
        if (!is_digit(peek())) { fail(); return 0; }
        while (is_digit(peek())) advance();
    }
    bump(3);
    return 1;
}

static int parse_literal(const char *word, int len, int kind) {
    int i;
    for (i = 0; i < len; i++) {
        if (at_end() || peek() != word[i]) { fail(); return 0; }
        advance();
    }
    bump(kind);
    return 1;
}

static int parse_array(void) {
    if (!expect('[')) return 0;
    depth++;
    if (depth > 24) { fail(); depth--; return 0; }
    skip_ws();
    if (peek() == ']') { advance(); depth--; bump(1); return 1; }
    while (1) {
        if (!parse_value()) { depth--; return 0; }
        skip_ws();
        if (peek() == ',') { advance(); bump(7); skip_ws(); continue; }
        break;
    }
    depth--;
    if (!expect(']')) return 0;
    bump(1);
    return 1;
}

static int parse_object(void) {
    if (!expect('{')) return 0;
    depth++;
    if (depth > 24) { fail(); depth--; return 0; }
    skip_ws();
    if (peek() == '}') { advance(); depth--; bump(0); return 1; }
    while (1) {
        skip_ws();
        if (!parse_string()) { depth--; return 0; }
        bump(6);
        skip_ws();
        if (!expect(':')) { depth--; return 0; }
        skip_ws();
        if (!parse_value()) { depth--; return 0; }
        skip_ws();
        if (peek() == ',') { advance(); bump(7); continue; }
        break;
    }
    depth--;
    if (!expect('}')) return 0;
    bump(0);
    return 1;
}

static int parse_value(void) {
    char c;
    skip_ws();
    if (at_end()) { fail(); return 0; }
    c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return parse_string();
    if (c == 't') { char w[5] = "true"; return parse_literal(w, 4, 4); }
    if (c == 'f') { char w[6] = "false"; return parse_literal(w, 5, 4); }
    if (c == 'n') { char w[5] = "null"; return parse_literal(w, 4, 5); }
    if (c == '-' || is_digit(c)) return parse_number();
    fail();
    return 0;
}

int run_input(const char *data, long size) {
    int i;
    cur = data;
    end = data + size;
    depth = 0;
    error_flag = 0;
    for (i = 0; i < 8; i++) counts[i] = 0;
    parse_value();
    skip_ws();
    if (!at_end()) error_flag = 1;
    if (error_flag) return -1;
    return counts[0] + counts[1] * 2 + counts[2] * 3 + counts[3] * 5
         + counts[4] * 7 + counts[5] * 11 + counts[6] * 13 + counts[7] * 17;
}

int main(void) {
    char doc[32] = "{\"a\": [1, 2, true]}";
    int r = run_input(doc, 19);
    printf("json checksum=%d\n", r);
    return r < 0 ? 1 : 0;
}
"""


def _random_value(rng: DeterministicRNG, depth: int) -> str:
    if depth <= 0 or rng.chance(0.4):
        kind = rng.randint(0, 3)
        if kind == 0:
            return str(rng.randint(-9999, 9999))
        if kind == 1:
            word = "".join(chr(rng.randint(97, 122)) for _ in range(rng.randint(1, 8)))
            return f'"{word}"'
        if kind == 2:
            return rng.choice(["true", "false", "null"])
        return f"{rng.randint(0, 99)}.{rng.randint(0, 99)}"
    if rng.chance(0.5):
        items = ", ".join(_random_value(rng, depth - 1) for _ in range(rng.randint(0, 4)))
        return f"[{items}]"
    pairs = ", ".join(
        f'"k{rng.randint(0, 99)}": {_random_value(rng, depth - 1)}'
        for _ in range(rng.randint(0, 4))
    )
    return f"{{{pairs}}}"


def make_seeds(rng: DeterministicRNG) -> List[bytes]:
    seeds = [
        b"{}",
        b"[]",
        b'{"key": "value"}',
        b"[1, 2, 3, 4, 5]",
        b'{"nested": {"arr": [true, false, null], "num": -3.25e2}}',
    ]
    for _ in range(12):
        seeds.append(_random_value(rng, 4).encode())
    return seeds


register(
    TargetProgram(
        name="json",
        description="header-only-style JSON parser: tiny inlinable helpers",
        source=SOURCE,
        make_seeds=make_seeds,
    )
)
