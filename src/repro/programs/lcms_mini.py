"""lcms — color management.

Per-pixel 3x3 matrix transform, tone-curve lookup with linear
interpolation, and gamut clipping — LUT-heavy numeric loops with a small
helper layer.
"""

from __future__ import annotations

from typing import List

from repro.programs.registry import TargetProgram, register
from repro.utils.rng import DeterministicRNG

SOURCE = r"""
// lcms_mini: color pipeline.
// Input: u8 profile_id | 9 x i8 matrix | pixels (3 bytes each).
// Pipeline per pixel: matrix multiply (8.8 fixed), tone curve LUT with
// interpolation, gamut clip, accumulate histogram.

static int tone_curve[33];
static int curve_ready;
static int matrix[9];
static int histogram[8];

static void build_curve(int profile_id) {
    // Gamma-like curve: out = in^gamma approximated piecewise.
    int i;
    int gamma_x10 = 10 + (profile_id % 16);
    for (i = 0; i <= 32; i++) {
        int x = i * 8;             // 0..256
        long acc = 256;
        int g;
        for (g = 0; g < gamma_x10 / 10; g++) acc = acc * x / 256;
        if (gamma_x10 % 10 >= 5) acc = (acc * x / 256 + acc) / 2;
        tone_curve[i] = (int)acc;
    }
    curve_ready = 1;
}

static int curve_lookup(int v) {
    int idx;
    int frac;
    int lo;
    int hi;
    if (v < 0) v = 0;
    if (v > 255) v = 255;
    idx = v >> 3;
    frac = v & 7;
    lo = tone_curve[idx];
    hi = tone_curve[idx + 1];
    return lo + ((hi - lo) * frac >> 3);
}

static int dot_row(int row, int r, int g, int b) {
    return (matrix[row * 3] * r + matrix[row * 3 + 1] * g
          + matrix[row * 3 + 2] * b) >> 6;
}

static int clip(int v) {
    if (v < 0) return 0;
    if (v > 255) return 255;
    return v;
}

static void bump_histogram(int luma) {
    histogram[(luma >> 5) & 7]++;
}

int run_input(const char *data, long size) {
    int i;
    long pos;
    int checksum = 0;
    int pixels = 0;
    if (size < 10) return -1;
    build_curve((int)data[0] & 255);
    for (i = 0; i < 9; i++) matrix[i] = (int)data[1 + i];
    for (i = 0; i < 8; i++) histogram[i] = 0;
    pos = 10;
    while (pos + 3 <= size && pixels < 256) {
        int r = (int)data[pos] & 255;
        int g = (int)data[pos + 1] & 255;
        int b = (int)data[pos + 2] & 255;
        int tr = clip(curve_lookup(dot_row(0, r, g, b)));
        int tg = clip(curve_lookup(dot_row(1, r, g, b)));
        int tb = clip(curve_lookup(dot_row(2, r, g, b)));
        int luma = (tr * 77 + tg * 151 + tb * 28) >> 8;
        bump_histogram(luma);
        checksum = (checksum * 31 + tr + tg * 3 + tb * 7) % 1000003;
        pixels++;
        pos += 3;
    }
    if (pixels == 0) return -2;
    {
        int spread = 0;
        for (i = 0; i < 8; i++) {
            if (histogram[i] > 0) spread++;
        }
        return checksum * 10 + spread;
    }
}

int main(void) {
    char buf[28];
    int i;
    int r;
    buf[0] = (char)12;
    for (i = 0; i < 9; i++) buf[1 + i] = (char)(i == 0 || i == 4 || i == 8 ? 64 : 3);
    for (i = 10; i < 28; i++) buf[i] = (char)(i * 9);
    r = run_input(buf, 28);
    printf("lcms checksum=%d\n", r);
    return r < 0 ? 1 : 0;
}
"""


def make_seeds(rng: DeterministicRNG) -> List[bytes]:
    seeds = []
    for _ in range(10):
        out = bytearray([rng.randint(0, 255)])
        out.extend(rng.bytes(9))
        out.extend(rng.bytes(3 * rng.randint(4, 64)))
        seeds.append(bytes(out))
    return seeds


register(
    TargetProgram(
        name="lcms",
        description="color pipeline: matrix transform + tone-curve LUT",
        source=SOURCE,
        make_seeds=make_seeds,
    )
)
