"""libjpeg — baseline JPEG-style block codec.

Paper shape notes: libjpeg is the *best* program for Odin-MaxPartition
(0.95% overhead, §5.2) — flat numeric kernels whose hot loops are
self-contained inside big functions, so losing interprocedural
optimization costs almost nothing.
"""

from __future__ import annotations

from typing import List

from repro.programs.registry import TargetProgram, register
from repro.utils.rng import DeterministicRNG

SOURCE = r"""
// libjpeg_mini: 8x8 block transform codec.
// Parse a header, dequantize each 8x8 block, run a butterfly transform
// (integer IDCT stand-in), clamp, and checksum.  All hot code is loops
// inside big leaf functions: no cross-function calls to inline.

static int quant_table[64];
static int workspace[64];
static int output_sum;
static int blocks_done;

static void load_quant_table(const char *data) {
    int i;
    for (i = 0; i < 64; i++) {
        int q = (int)data[i] & 255;
        if (q == 0) q = 1;
        quant_table[i] = q;
    }
}

static void transform_block(const char *coeffs) {
    // Dequantize + two butterfly passes + clamp, all in one function.
    int i;
    int row;
    int col;
    for (i = 0; i < 64; i++) {
        int c = (int)coeffs[i];
        workspace[i] = c * quant_table[i];
    }
    // Row pass: butterflies within each row of 8.
    for (row = 0; row < 8; row++) {
        int base = row * 8;
        for (col = 0; col < 4; col++) {
            int a = workspace[base + col];
            int b = workspace[base + 7 - col];
            int s = a + b;
            int d = a - b;
            workspace[base + col] = s + (d >> 2);
            workspace[base + 7 - col] = d - (s >> 2);
        }
    }
    // Column pass.
    for (col = 0; col < 8; col++) {
        for (row = 0; row < 4; row++) {
            int a = workspace[row * 8 + col];
            int b = workspace[(7 - row) * 8 + col];
            int s = a + b;
            int d = a - b;
            workspace[row * 8 + col] = s + (d >> 3);
            workspace[(7 - row) * 8 + col] = d - (s >> 3);
        }
    }
    // Descale and clamp to 0..255, accumulate checksum.
    for (i = 0; i < 64; i++) {
        int v = (workspace[i] >> 4) + 128;
        if (v < 0) v = 0;
        if (v > 255) v = 255;
        output_sum = (output_sum + v * (i + 1)) % 16777213;
    }
    blocks_done++;
}

int run_input(const char *data, long size) {
    long pos;
    if (size < 68) return -1;
    if (data[0] != (char)0xFF || data[1] != (char)0xD8) return -2;  // SOI-ish
    output_sum = 0;
    blocks_done = 0;
    load_quant_table(data + 2);
    pos = 66;
    while (pos + 64 <= size) {
        transform_block(data + pos);
        pos += 64;
    }
    return output_sum + blocks_done;
}

int main(void) {
    char buf[200];
    int i;
    int r;
    buf[0] = (char)0xFF;
    buf[1] = (char)0xD8;
    for (i = 2; i < 200; i++) buf[i] = (char)((i * 7 + 3) & 255);
    r = run_input(buf, 200);
    printf("libjpeg checksum=%d\n", r);
    return r < 0 ? 1 : 0;
}
"""


def make_seeds(rng: DeterministicRNG) -> List[bytes]:
    seeds = []
    for _ in range(10):
        blocks = rng.randint(1, 4)
        body = bytearray(b"\xff\xd8")
        body.extend(rng.bytes(64))  # quant table
        for _ in range(blocks):
            body.extend(rng.bytes(64))
        seeds.append(bytes(body))
    seeds.append(b"\xff\xd8" + bytes(range(64)) + bytes(64))
    return seeds


register(
    TargetProgram(
        name="libjpeg",
        description="block transform codec: flat numeric kernels, no IPO",
        source=SOURCE,
        make_seeds=make_seeds,
    )
)
