"""libpng — chunked image format decoder.

Chunk framing with CRC validation plus per-scanline filter reconstruction
(the None/Sub/Up/Average filters) — the classic PNG decoder hot path.
"""

from __future__ import annotations

from typing import List

from repro.programs.registry import TargetProgram, register
from repro.utils.rng import DeterministicRNG

SOURCE = r"""
// libpng_mini: PNG-like chunk parser and scanline defilter.
// Format:
//   signature 0x89 'P' 'N' 'G'
//   chunks: u8 len | u8 type | len bytes | u8 crc   (crc = sum of data & 255)
//   type 'H': header -> width, height
//   type 'D': filtered scanline data (filter byte + width bytes per line)
//   type 'E': end

static int img_width;
static int img_height;
static int have_header;
static char recon[64][32];
static int lines_done;
static int crc_failures;

static int check_crc(const char *data, int len, int crc) {
    int sum = 0;
    int i;
    for (i = 0; i < len; i++) sum = (sum + ((int)data[i] & 255)) & 255;
    return sum == crc;
}

static int paeth(int a, int b, int c) {
    int p = a + b - c;
    int pa = p > a ? p - a : a - p;
    int pb = p > b ? p - b : b - p;
    int pc = p > c ? p - c : c - p;
    if (pa <= pb && pa <= pc) return a;
    if (pb <= pc) return b;
    return c;
}

static void defilter_line(const char *src, int y, int filter) {
    int x;
    for (x = 0; x < img_width; x++) {
        int raw = (int)src[x] & 255;
        int left = x > 0 ? (int)recon[y][x - 1] & 255 : 0;
        int up = y > 0 ? (int)recon[y - 1][x] & 255 : 0;
        int corner = (x > 0 && y > 0) ? (int)recon[y - 1][x - 1] & 255 : 0;
        int value;
        if (filter == 0) value = raw;
        else if (filter == 1) value = raw + left;
        else if (filter == 2) value = raw + up;
        else if (filter == 3) value = raw + (left + up) / 2;
        else value = raw + paeth(left, up, corner);
        recon[y][x] = (char)(value & 255);
    }
}

static int handle_header(const char *data, int len) {
    if (len < 2) return 0;
    img_width = (int)data[0] & 255;
    img_height = (int)data[1] & 255;
    if (img_width == 0 || img_width > 32) return 0;
    if (img_height == 0 || img_height > 64) return 0;
    have_header = 1;
    return 1;
}

static int handle_data(const char *data, int len) {
    int pos = 0;
    if (!have_header) return 0;
    while (pos + 1 + img_width <= len && lines_done < img_height) {
        int filter = (int)data[pos] & 255;
        if (filter > 4) return 0;
        defilter_line(data + pos + 1, lines_done, filter);
        lines_done++;
        pos += 1 + img_width;
    }
    return 1;
}

static int image_checksum(void) {
    int sum = 0;
    int y;
    int x;
    for (y = 0; y < lines_done; y++) {
        for (x = 0; x < img_width; x++) {
            sum = (sum * 33 + ((int)recon[y][x] & 255)) % 1000003;
        }
    }
    return sum;
}

int run_input(const char *data, long size) {
    long pos;
    int saw_end = 0;
    if (size < 4) return -1;
    if (((int)data[0] & 255) != 137 || data[1] != 'P' || data[2] != 'N'
        || data[3] != 'G') return -2;
    img_width = 0;
    img_height = 0;
    have_header = 0;
    lines_done = 0;
    crc_failures = 0;
    pos = 4;
    while (pos + 2 <= size && !saw_end) {
        int len = (int)data[pos] & 255;
        char type = data[pos + 1];
        const char *body = data + pos + 2;
        int crc;
        if (pos + 2 + len + 1 > size) return -3;
        crc = (int)data[pos + 2 + len] & 255;
        if (!check_crc(body, len, crc)) {
            crc_failures++;
            if (crc_failures > 3) return -4;
        } else if (type == 'H') {
            if (!handle_header(body, len)) return -5;
        } else if (type == 'D') {
            if (!handle_data(body, len)) return -6;
        } else if (type == 'E') {
            saw_end = 1;
        }
        pos += 2 + len + 1;
    }
    if (!saw_end) return -7;
    return image_checksum() * 10 + lines_done;
}

int main(void) {
    char png[40];
    int r;
    png[0] = (char)137; png[1] = 'P'; png[2] = 'N'; png[3] = 'G';
    // header chunk: len 2, type 'H', 4x2 image, crc
    png[4] = (char)2; png[5] = 'H'; png[6] = (char)4; png[7] = (char)2;
    png[8] = (char)6;
    // data chunk: len 10 (2 lines of filter + 4 px)
    png[9] = (char)10; png[10] = 'D';
    png[11] = (char)0; png[12] = (char)1; png[13] = (char)2; png[14] = (char)3; png[15] = (char)4;
    png[16] = (char)1; png[17] = (char)1; png[18] = (char)1; png[19] = (char)1; png[20] = (char)1;
    png[21] = (char)(1+2+3+4+1+1+1+1+1);
    // end chunk
    png[22] = (char)0; png[23] = 'E'; png[24] = (char)0;
    r = run_input(png, 25);
    printf("libpng checksum=%d\n", r);
    return r < 0 ? 1 : 0;
}
"""


def _chunk(type_: bytes, body: bytes) -> bytes:
    crc = sum(body) & 255
    return bytes([len(body)]) + type_ + body + bytes([crc])


def _make_png(rng: DeterministicRNG) -> bytes:
    width = rng.randint(1, 16)
    height = rng.randint(1, 12)
    out = bytearray(b"\x89PNG")
    out.extend(_chunk(b"H", bytes([width, height])))
    lines = bytearray()
    for _ in range(height):
        lines.append(rng.randint(0, 4))
        lines.extend(rng.bytes(width))
        if len(lines) > 200:
            break
    # split into chunks of <= 120 bytes
    for i in range(0, len(lines), 120):
        out.extend(_chunk(b"D", bytes(lines[i : i + 120])))
    out.extend(_chunk(b"E", b""))
    return bytes(out)


def make_seeds(rng: DeterministicRNG) -> List[bytes]:
    seeds = [b"\x89PNG" + _chunk(b"H", bytes([2, 2]))
             + _chunk(b"D", bytes([0, 1, 2, 1, 3, 4])) + _chunk(b"E", b"")]
    for _ in range(10):
        seeds.append(_make_png(rng))
    return seeds


register(
    TargetProgram(
        name="libpng",
        description="chunked image decoder: CRC framing + scanline filters",
        source=SOURCE,
        make_seeds=make_seeds,
    )
)
