"""libxml2 — XML push parser.

The paper's Fig. 3 build-cost target and a mid-sized parser: tag stack,
attribute scanning, entity expansion, well-formedness checking.  Mixed
call-graph density: helpers inline, but the element machinery is big
enough to stand alone.
"""

from __future__ import annotations

from typing import List

from repro.programs.registry import TargetProgram, register
from repro.utils.rng import DeterministicRNG

SOURCE = r"""
// libxml2_mini: XML subset parser with a tag stack and entity expansion.

static const char *cur;
static const char *end;
static int error_code;
static int element_count;
static int attribute_count;
static int text_chars;
static int entity_count;
static int max_depth;

static char tag_stack[32][16];
static int tag_len[32];
static int depth;

static int at_end(void) { return cur >= end; }
static char peek(void) { return at_end() ? (char)0 : *cur; }
static char peek2(void) { return (cur + 1 >= end) ? (char)0 : cur[1]; }
static char advance(void) { return at_end() ? (char)0 : *cur++; }
static int is_space(char c) { return c == ' ' || c == '\t' || c == '\n' || c == '\r'; }
static int is_name_start(char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
static int is_name_char(char c) {
    return is_name_start(c) || (c >= '0' && c <= '9') || c == '-' || c == '.';
}
static void skip_space(void) { while (!at_end() && is_space(peek())) advance(); }
static void set_error(int code) { if (!error_code) error_code = code; }

static int read_name(char *out, int cap) {
    int n = 0;
    if (!is_name_start(peek())) { set_error(1); return 0; }
    while (!at_end() && is_name_char(peek())) {
        char c = advance();
        if (n < cap - 1) out[n++] = c;
    }
    out[n] = (char)0;
    return n;
}

static int name_equal(const char *a, const char *b, int n) {
    int i;
    for (i = 0; i < n; i++) {
        if (a[i] != b[i]) return 0;
    }
    return b[n] == (char)0;
}

static int parse_entity(void) {
    // &amp; &lt; &gt; &quot; &apos; &#NN;
    char name[8];
    int n = 0;
    advance();  // '&'
    if (peek() == '#') {
        advance();
        if (!(peek() >= '0' && peek() <= '9')) { set_error(2); return 0; }
        while (peek() >= '0' && peek() <= '9') advance();
        if (peek() != ';') { set_error(2); return 0; }
        advance();
        entity_count++;
        return 1;
    }
    while (!at_end() && peek() != ';' && n < 7) name[n++] = advance();
    name[n] = (char)0;
    if (peek() != ';') { set_error(2); return 0; }
    advance();
    if (name_equal(name, "amp", 3) || name_equal(name, "lt", 2)
        || name_equal(name, "gt", 2) || name_equal(name, "quot", 4)
        || name_equal(name, "apos", 4)) {
        entity_count++;
        return 1;
    }
    set_error(3);
    return 0;
}

static int parse_attr_value(void) {
    char quote = peek();
    if (quote != '"' && quote != '\'') { set_error(4); return 0; }
    advance();
    while (!at_end() && peek() != quote) {
        if (peek() == '&') {
            if (!parse_entity()) return 0;
        } else if (peek() == '<') {
            set_error(5);
            return 0;
        } else {
            advance();
        }
    }
    if (at_end()) { set_error(4); return 0; }
    advance();
    return 1;
}

static int parse_attributes(void) {
    while (1) {
        char name[16];
        skip_space();
        if (peek() == '>' || peek() == '/' || at_end()) return 1;
        if (!read_name(name, 16)) return 0;
        skip_space();
        if (peek() != '=') { set_error(6); return 0; }
        advance();
        skip_space();
        if (!parse_attr_value()) return 0;
        attribute_count++;
    }
}

static int parse_open_tag(void) {
    char name[16];
    int n;
    advance();  // '<'
    n = read_name(name, 16);
    if (n == 0) return 0;
    if (!parse_attributes()) return 0;
    if (peek() == '/') {
        advance();
        if (peek() != '>') { set_error(7); return 0; }
        advance();
        element_count++;
        return 1;  // self-closing
    }
    if (peek() != '>') { set_error(7); return 0; }
    advance();
    if (depth >= 32) { set_error(8); return 0; }
    {
        int i;
        for (i = 0; i <= n && i < 16; i++) tag_stack[depth][i] = name[i];
        tag_len[depth] = n;
    }
    depth++;
    if (depth > max_depth) max_depth = depth;
    element_count++;
    return 1;
}

static int parse_close_tag(void) {
    char name[16];
    int n;
    advance();  // '<'
    advance();  // '/'
    n = read_name(name, 16);
    if (n == 0) return 0;
    skip_space();
    if (peek() != '>') { set_error(7); return 0; }
    advance();
    if (depth == 0) { set_error(9); return 0; }
    depth--;
    if (tag_len[depth] != n || !name_equal(tag_stack[depth], name, n)) {
        set_error(10);
        return 0;
    }
    return 1;
}

static int parse_comment(void) {
    // "<!--" already detected; skip to "-->"
    advance(); advance(); advance(); advance();
    while (!at_end()) {
        if (peek() == '-' && peek2() == '-') {
            advance(); advance();
            if (peek() == '>') { advance(); return 1; }
            set_error(11);
            return 0;
        }
        advance();
    }
    set_error(11);
    return 0;
}

int run_input(const char *data, long size) {
    cur = data;
    end = data + size;
    error_code = 0;
    element_count = 0;
    attribute_count = 0;
    text_chars = 0;
    entity_count = 0;
    max_depth = 0;
    depth = 0;

    skip_space();
    while (!at_end() && !error_code) {
        if (peek() == '<') {
            if (peek2() == '/') {
                if (!parse_close_tag()) break;
            } else if (peek2() == '!') {
                if (!parse_comment()) break;
            } else {
                if (!parse_open_tag()) break;
            }
        } else if (peek() == '&') {
            if (!parse_entity()) break;
            text_chars++;
        } else {
            advance();
            text_chars++;
        }
    }
    if (!error_code && depth != 0) set_error(12);
    if (error_code) return -error_code;
    return element_count * 1000 + attribute_count * 100
         + entity_count * 10 + max_depth;
}

int main(void) {
    char doc[64] = "<root a=\"1\"><item>hi &amp; bye</item><x/></root>";
    int r = run_input(doc, 49);
    printf("libxml2 result=%d\n", r);
    return r < 0 ? 1 : 0;
}
"""


def _random_doc(rng: DeterministicRNG, depth: int) -> str:
    tags = ["a", "b", "item", "node", "x", "list", "head"]
    if depth <= 0 or rng.chance(0.3):
        return rng.choice(["text", "hi &amp; bye", "42", "&lt;x&gt;", "data"])
    tag = rng.choice(tags)
    attrs = ""
    for _ in range(rng.randint(0, 2)):
        attrs += f' k{rng.randint(0, 9)}="v{rng.randint(0, 99)}"'
    if rng.chance(0.2):
        return f"<{tag}{attrs}/>"
    inner = "".join(_random_doc(rng, depth - 1) for _ in range(rng.randint(1, 3)))
    return f"<{tag}{attrs}>{inner}</{tag}>"


def make_seeds(rng: DeterministicRNG) -> List[bytes]:
    seeds = [
        b"<root></root>",
        b'<a b="c">text</a>',
        b"<r><!-- comment --><x/>&amp;</r>",
    ]
    for _ in range(10):
        seeds.append(_random_doc(rng, 4).encode())
    return seeds


register(
    TargetProgram(
        name="libxml2",
        description="XML parser: tag stack, attributes, entities, comments",
        source=SOURCE,
        make_seeds=make_seeds,
    )
)
