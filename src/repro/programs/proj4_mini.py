"""proj4 — cartographic projection library.

Fixed-point trigonometry (table-driven sin/cos with interpolation) feeding
a chain of forward/inverse projections — numeric transform pipelines with
a medium-depth call graph.
"""

from __future__ import annotations

from typing import List

from repro.programs.registry import TargetProgram, register
from repro.utils.rng import DeterministicRNG

SOURCE = r"""
// proj4_mini: fixed-point projection pipeline.
// Coordinates are 16.16 fixed point.  Input: pairs of (lat, lon) in
// centidegrees (i16), projected forward then inverted; round-trip error
// accumulates into the result.

static int sin_table[91];
static int table_ready;

static void init_tables(void) {
    // Quarter-wave sine table in 1.14 fixed point, built with the
    // Bhaskara approximation (integer only).
    int deg;
    if (table_ready) return;
    for (deg = 0; deg <= 90; deg++) {
        int x = deg * (31416 / 180);
        long num = (long)(4 * x) * (31416 - x);
        long den = 49348 * 5 - (long)x * (31416 - x) / 4096 * 4;
        sin_table[deg] = (int)(num / (den / 4096 + 1));
        table_ready = 1;
    }
}

static int fx_sin(int centideg) {
    int deg;
    int sign = 1;
    centideg = centideg % 36000;
    if (centideg < 0) centideg += 36000;
    if (centideg >= 18000) { sign = -1; centideg -= 18000; }
    if (centideg > 9000) centideg = 18000 - centideg;
    deg = centideg / 100;
    if (deg > 90) deg = 90;
    return sign * sin_table[deg];
}

static int fx_cos(int centideg) { return fx_sin(centideg + 9000); }

static int fx_mul(int a, int b) { return (int)(((long)a * (long)b) >> 14); }

static int fx_div(int a, int b) {
    if (b == 0) return 0;
    return (int)(((long)a << 14) / b);
}

static int mercator_y(int lat_cd) {
    // y = atanh(sin lat) approximated by s + s^3/3 + s^5/5.
    int s = fx_sin(lat_cd);
    int s2 = fx_mul(s, s);
    int s3 = fx_mul(s2, s);
    int s5 = fx_mul(s3, s2);
    return s + s3 / 3 + s5 / 5;
}

static int forward_x(int lon_cd) { return lon_cd * 4; }

static int inverse_lat(int y) {
    // Invert mercator_y with 4 Newton-ish refinement steps.
    int lat = y / 4;
    int step;
    for (step = 0; step < 4; step++) {
        int fy = mercator_y(lat);
        int err = y - fy;
        lat = lat + err / 8;
        if (lat > 8500) lat = 8500;
        if (lat < -8500) lat = -8500;
    }
    return lat;
}

static int equal_area_x(int lat_cd, int lon_cd) {
    return fx_mul(forward_x(lon_cd), fx_cos(lat_cd));
}

static int datum_shift(int v, int k) {
    return v + fx_mul(k, fx_sin(v / 2 + k * 100));
}

int run_input(const char *data, long size) {
    long pos;
    int err_acc = 0;
    int points = 0;
    init_tables();
    if (size < 4) return -1;
    for (pos = 0; pos + 4 <= size && points < 64; pos += 4) {
        int lat = ((int)data[pos] & 255) * 256 + ((int)data[pos + 1] & 255);
        int lon = ((int)data[pos + 2] & 255) * 256 + ((int)data[pos + 3] & 255);
        int y;
        int lat2;
        int e;
        lat = lat % 17000 - 8500;     // clamp to +/- 85 degrees
        lon = lon % 36000 - 18000;
        y = mercator_y(lat);
        lat2 = inverse_lat(y);
        e = lat - lat2;
        if (e < 0) e = -e;
        err_acc += e > 500 ? 500 : e;
        err_acc += (equal_area_x(lat, lon) ^ datum_shift(lon, 3)) & 15;
        points++;
    }
    if (points == 0) return -2;
    return err_acc * 100 + points;
}

int main(void) {
    char pts[16];
    int r;
    pts[0] = (char)10; pts[1] = (char)0; pts[2] = (char)30; pts[3] = (char)0;
    pts[4] = (char)60; pts[5] = (char)100; pts[6] = (char)2; pts[7] = (char)200;
    r = run_input(pts, 8);
    printf("proj4 err=%d\n", r);
    return r < 0 ? 1 : 0;
}
"""


def make_seeds(rng: DeterministicRNG) -> List[bytes]:
    seeds = []
    for _ in range(10):
        n = rng.randint(2, 24)
        seeds.append(rng.bytes(n * 4))
    seeds.append(bytes(range(64)))
    return seeds


register(
    TargetProgram(
        name="proj4",
        description="fixed-point projection math: sin tables + Newton inversion",
        source=SOURCE,
        make_seeds=make_seeds,
    )
)
