"""re2 — regular expression engine.

Pattern compiler + NFA-style breadth-first simulator (Thompson
construction over a restricted syntax: literals, ``.``, ``*``, ``+``,
``?``, character classes, anchors).  Input: pattern NUL text.
"""

from __future__ import annotations

from typing import List

from repro.programs.registry import TargetProgram, register
from repro.utils.rng import DeterministicRNG

SOURCE = r"""
// re2_mini: compile a restricted regex into a program of (kind, arg,
// quantifier) triples, then simulate it with a breadth-first state set.
// Kinds: 0 literal, 1 any '.', 2 class start (arg = class index).

static int pat_kind[64];
static int pat_arg[64];
static int pat_quant[64];   // 0 once, 1 star, 2 plus, 3 opt
static int pat_len;
static int anchored_start;
static int anchored_end;

static char class_chars[16][16];
static int class_sizes[16];
static int class_negated[16];
static int num_classes;

static int state_now[65];
static int state_next[65];

static int compile_class(const char *pat, int plen, int pos) {
    // pos points just after '['; returns chars consumed or -1.
    int idx = num_classes;
    int n = 0;
    int start = pos;
    if (idx >= 16) return -1;
    class_negated[idx] = 0;
    if (pos < plen && pat[pos] == '^') { class_negated[idx] = 1; pos++; }
    while (pos < plen && pat[pos] != ']') {
        char c = pat[pos];
        if (pos + 2 < plen && pat[pos + 1] == '-' && pat[pos + 2] != ']') {
            char lo = c;
            char hi = pat[pos + 2];
            char ch;
            for (ch = lo; ch <= hi && n < 16; ch++) class_chars[idx][n++] = ch;
            pos += 3;
        } else {
            if (n < 16) class_chars[idx][n++] = c;
            pos++;
        }
    }
    if (pos >= plen) return -1;
    class_sizes[idx] = n;
    num_classes++;
    return pos + 1 - start;
}

static int compile_pattern(const char *pat, int plen) {
    int pos = 0;
    pat_len = 0;
    num_classes = 0;
    anchored_start = 0;
    anchored_end = 0;
    if (pos < plen && pat[pos] == '^') { anchored_start = 1; pos++; }
    while (pos < plen && pat_len < 64) {
        char c = pat[pos];
        if (c == '$' && pos == plen - 1) { anchored_end = 1; pos++; continue; }
        if (c == '[') {
            int used = compile_class(pat, plen, pos + 1);
            if (used < 0) return -1;
            pat_kind[pat_len] = 2;
            pat_arg[pat_len] = num_classes - 1;
            pos += 1 + used;
        } else if (c == '.') {
            pat_kind[pat_len] = 1;
            pat_arg[pat_len] = 0;
            pos++;
        } else if (c == '\\' && pos + 1 < plen) {
            pat_kind[pat_len] = 0;
            pat_arg[pat_len] = (int)pat[pos + 1] & 255;
            pos += 2;
        } else if (c == '*' || c == '+' || c == '?') {
            return -2;  // dangling quantifier
        } else {
            pat_kind[pat_len] = 0;
            pat_arg[pat_len] = (int)c & 255;
            pos++;
        }
        pat_quant[pat_len] = 0;
        if (pos < plen) {
            char q = pat[pos];
            if (q == '*') { pat_quant[pat_len] = 1; pos++; }
            else if (q == '+') { pat_quant[pat_len] = 2; pos++; }
            else if (q == '?') { pat_quant[pat_len] = 3; pos++; }
        }
        pat_len++;
    }
    return pat_len;
}

static int unit_matches(int idx, char c) {
    int kind = pat_kind[idx];
    if (kind == 0) return ((int)c & 255) == pat_arg[idx];
    if (kind == 1) return 1;
    {
        int cls = pat_arg[idx];
        int i;
        int hit = 0;
        for (i = 0; i < class_sizes[cls]; i++) {
            if (class_chars[cls][i] == c) { hit = 1; break; }
        }
        return class_negated[cls] ? !hit : hit;
    }
}

static void add_state(int *set, int idx) {
    // Closure over star/opt units: they can be skipped.
    while (idx < pat_len && !set[idx]) {
        set[idx] = 1;
        if (pat_quant[idx] == 1 || pat_quant[idx] == 3) idx++;
        else return;
    }
    if (idx >= pat_len) set[pat_len] = 1;  // accepting
}

static int simulate(const char *text, int tlen, int start) {
    int i;
    int pos;
    for (i = 0; i <= pat_len; i++) state_now[i] = 0;
    add_state(state_now, 0);
    for (pos = start; pos < tlen; pos++) {
        char c = text[pos];
        int any = 0;
        if (state_now[pat_len] && !anchored_end) return 1;
        for (i = 0; i <= pat_len; i++) state_next[i] = 0;
        for (i = 0; i < pat_len; i++) {
            if (!state_now[i]) continue;
            if (unit_matches(i, c)) {
                int q = pat_quant[i];
                if (q == 1 || q == 2) add_state(state_next, i);  // may repeat
                add_state(state_next, i + 1);
                any = 1;
            }
        }
        for (i = 0; i <= pat_len; i++) state_now[i] = state_next[i];
        if (!any && anchored_start) break;
    }
    return state_now[pat_len];
}

static int search(const char *text, int tlen) {
    int start;
    if (anchored_start) return simulate(text, tlen, 0);
    for (start = 0; start <= tlen; start++) {
        if (simulate(text, tlen, start)) return 1;
    }
    return 0;
}

int run_input(const char *data, long size) {
    long split = 0;
    int plen;
    int matched;
    while (split < size && data[split] != (char)0) split++;
    if (split == 0 || split >= size) return -1;
    plen = compile_pattern(data, (int)split);
    if (plen < 0) return -2;
    matched = search(data + split + 1, (int)(size - split - 1));
    return matched * 1000 + plen * 10 + num_classes;
}

int main(void) {
    char input[32] = "h[a-z]+o*";
    int r;
    input[9] = (char)0;
    input[10] = 'h'; input[11] = 'e'; input[12] = 'l'; input[13] = 'l';
    input[14] = 'o'; input[15] = '!';
    r = run_input(input, 16);
    printf("re2 match=%d\n", r);
    return r < 0 ? 1 : 0;
}
"""


def make_seeds(rng: DeterministicRNG) -> List[bytes]:
    patterns = [b"abc", b"a*bc+", b"^hello$", b"[a-f]+[0-9]?x",
                b"h.llo", b"[^xyz]*end", b"a?b?c?d?e", b"\\*lit[+]"]
    texts = [b"abcdef", b"hello world", b"aaabcc", b"deadbeef99x",
             b"the quick brown fox", b"mismatch"]
    seeds = []
    for _ in range(12):
        pat = rng.choice(patterns)
        text = rng.choice(texts) + rng.bytes(rng.randint(0, 8)).replace(b"\x00", b"a")
        seeds.append(pat + b"\x00" + text)
    return seeds


register(
    TargetProgram(
        name="re2",
        description="regex engine: pattern compiler + NFA state-set simulator",
        source=SOURCE,
        make_seeds=make_seeds,
    )
)
