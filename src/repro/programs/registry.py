"""Registry of target programs.

The paper evaluates "every program occurring in both Google
fuzzer-test-suite and FuzzBench" — thirteen real-world C/C++ targets.  We
reproduce each as a MiniC program whose *shape* matches the qualitative
description driving the paper's per-program variation:

* ``json`` — tiny, header-only-style: many small inlinable helpers
* ``harfbuzz`` — worst MaxPartition case: hot loops call tiny helpers
  cross-function (IPO-dependent)
* ``libjpeg`` — best MaxPartition case: flat numeric kernels, few calls
* ``sqlite`` — largest program; one enormous VDBE interpreter function
  (worst-case recompile in Fig. 12)
* the rest — parsers/codecs of varying size and call-graph density

Every program exposes ``int run_input(const char *data, long size)`` (the
LLVMFuzzerTestOneInput convention) plus ``main`` for standalone smoke
runs, and ships a deterministic seed corpus standing in for "the seed
files collected during a 24-hour fuzzing campaign" (§5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Dict, List

from repro.errors import ReproError
from repro.frontend.codegen import compile_source
from repro.ir.module import Module
from repro.ir.verifier import verify_module
from repro.utils.rng import DeterministicRNG

ENTRY_POINT = "run_input"


@dataclass
class TargetProgram:
    """One benchmark target: source + seed corpus."""

    name: str
    description: str
    source: str
    make_seeds: Callable[[DeterministicRNG], List[bytes]]

    @property
    def source_lines(self) -> int:
        return self.source.count("\n") + 1

    def seeds(self, seed: int = 0) -> List[bytes]:
        return self.make_seeds(DeterministicRNG(seed))

    def compile(self) -> Module:
        """Frontend-compile to fresh, unoptimized, verified IR."""
        module = compile_source(self.source, self.name)
        verify_module(module)
        return module


_REGISTRY: Dict[str, TargetProgram] = {}


def register(program: TargetProgram) -> TargetProgram:
    if program.name in _REGISTRY:
        raise ReproError(f"duplicate target program {program.name!r}")
    _REGISTRY[program.name] = program
    return program


def get_program(name: str) -> TargetProgram:
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ReproError(
            f"unknown target program {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def all_programs() -> List[TargetProgram]:
    """The full benchmark suite, in the paper's figure order."""
    _ensure_loaded()
    order = [
        "freetype2", "libjpeg", "proj4", "libpng", "re2", "harfbuzz",
        "sqlite", "json", "libxml2", "vorbis", "lcms", "woff2", "x509",
    ]
    return [_REGISTRY[name] for name in order]


def program_names() -> List[str]:
    return [p.name for p in all_programs()]


@lru_cache(maxsize=None)
def _ensure_loaded() -> bool:
    """Import every program module (each registers itself)."""
    from repro.programs import (  # noqa: F401
        freetype2_mini,
        harfbuzz_mini,
        json_mini,
        lcms_mini,
        libjpeg_mini,
        libpng_mini,
        libxml2_mini,
        proj4_mini,
        re2_mini,
        sqlite_mini,
        vorbis_mini,
        woff2_mini,
        x509_mini,
    )

    return True
