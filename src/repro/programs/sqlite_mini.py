"""sqlite — embedded database engine with a giant VDBE interpreter.

Paper shape notes (§5.3): "SQLite places all SQL execution logic inside
the function sqlite3VdbeExec.  The complexity of SQL leads to this
enormous function: it counts 6,475 lines in source code, handles the
execution of 163 opcodes, compiles to 2,058 basic blocks" — the worst
case for recompilation latency (Fig. 12).

We generate ``vdbe_exec`` programmatically: one ``switch`` dispatching
>100 opcodes, each with a distinct small body, yielding by far the
largest single function in the suite.  Inputs are bytecode programs
(header + opcode/operand pairs) that drive the interpreter over a
synthetic table.
"""

from __future__ import annotations

from typing import List

from repro.programs.registry import TargetProgram, register
from repro.utils.rng import DeterministicRNG

NUM_REGS = 8
MAX_STEPS = 300

# Opcode space layout (dense, like SQLite's):
#  0      halt
#  1      jump         (operand = absolute pc)
#  2      jz r0        (jump if reg0 == 0)
#  3      rewind       (cursor to row 0)
#  4      next         (advance cursor; jump to operand while rows remain)
#  5      column0      (reg0 = col0[cursor])
#  6      column1      (reg0 = col1[cursor])
#  7      loadimm      (reg0 = operand)
#  8      move         (reg[op&7] = reg[(op>>3)&7])
#  9      agg_add      (acc += reg0)
# 10..    generated arithmetic/compare/aggregate families

_FIXED_CASES = """
        case 0: { running = 0; break; }
        case 1: { pc = op % prog_len; break; }
        case 2: { if (reg[0] == 0) pc = op % prog_len; break; }
        case 3: { cursor = 0; break; }
        case 4: {
            cursor++;
            if (cursor < row_count) pc = op % prog_len;
            break;
        }
        case 5: { reg[0] = col0[cursor % 64]; break; }
        case 6: { reg[0] = col1[cursor % 64]; break; }
        case 7: { reg[0] = op; break; }
        case 8: { reg[op & 7] = reg[(op >> 3) & 7]; break; }
        case 9: { acc += reg[0]; break; }
"""


def _generated_cases(first: int, count: int) -> str:
    """Emit `count` distinct opcode bodies from arithmetic templates."""
    templates = [
        # (body template, cost flavour)
        "reg[{a}] = reg[{a}] + reg[{b}] + {k};",
        "reg[{a}] = reg[{a}] - reg[{b}] * {k};",
        "reg[{a}] = (reg[{a}] * {k}) ^ reg[{b}];",
        "reg[{a}] = (reg[{a}] << {s}) | (reg[{b}] & {m});",
        "reg[{a}] = (reg[{a}] >> {s}) + col0[(unsigned int)reg[{b}] % 64];",
        "if (reg[{a}] > reg[{b}]) reg[{a}] = reg[{b}] + {k}; else reg[{a}] = reg[{a}] - {k};",
        "reg[{a}] = reg[{a}] % {p}; acc ^= reg[{a}];",
        "acc += reg[{a}] > {k} ? reg[{a}] - {k} : {k} - reg[{a}];",
        "reg[{a}] = col1[(unsigned int)(reg[{b}] + {k}) % 64] + (acc & {m});",
        "{{ int t = reg[{a}]; reg[{a}] = reg[{b}]; reg[{b}] = t + {k}; }}",
        "if (acc < 0) acc = -acc; acc = (acc + reg[{a}] * {k}) % 1000003;",
        "reg[{a}] = (reg[{a}] & {m}) + ((reg[{b}] | {k}) >> {s});",
        "{{ int i; int t = 0; for (i = 0; i < (op & 3) + 1; i++) t += col0[(i + reg[{b}]) & 63]; reg[{a}] = t; }}",
        "if ((reg[{a}] ^ reg[{b}]) & 1) acc += {k}; else acc -= {p};",
        "reg[{a}] = sat_add(reg[{a}], reg[{b}] + {k});",
        "reg[{a}] = tbl_hash(reg[{a}], {k});",
    ]
    primes = [3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41]
    lines = []
    for i in range(count):
        opc = first + i
        t = templates[i % len(templates)]
        body = t.format(
            a=i % NUM_REGS,
            b=(i * 3 + 1) % NUM_REGS,
            k=(i * 7 + 3) % 97,
            s=(i % 5) + 1,
            m=(1 << ((i % 6) + 3)) - 1,
            p=primes[i % len(primes)],
        )
        lines.append(f"        case {opc}: {{ {body} break; }}")
    return "\n".join(lines)


NUM_GENERATED = 118
FIRST_GENERATED = 10
NUM_OPCODES = FIRST_GENERATED + NUM_GENERATED


def _build_source() -> str:
    return r"""
// sqlite_mini: bytecode query engine.
// run_input parses a tiny program header, "compiles" the remaining bytes
// into (opcode, operand) pairs, prepares a synthetic table, and executes
// the program in vdbe_exec -- one enormous switch-based interpreter
// function, exactly the sqlite3VdbeExec shape.

static int col0[64];
static int col1[64];
static int row_count;

static int prog_op[256];
static int prog_arg[256];
static int prog_len;

static int sat_add(int a, int b) {
    long s = (long)a + (long)b;
    if (s > 2147483647) return 2147483647;
    if (s < -2147483647) return -2147483647;
    return (int)s;
}

static int tbl_hash(int v, int salt) {
    unsigned int x = (unsigned int)v;
    x ^= (unsigned int)salt * 2654435761u;
    x ^= x >> 13;
    x = x * 2246822519u;
    x ^= x >> 11;
    return (int)(x & 1073741823u);
}

static void prepare_table(int seed) {
    int i;
    row_count = 64;
    for (i = 0; i < 64; i++) {
        col0[i] = tbl_hash(i, seed) % 1000;
        col1[i] = (i * 37 + seed) % 257 - 128;
    }
}

static int compile_program(const char *data, long size) {
    long i;
    prog_len = 0;
    for (i = 0; i + 1 < size && prog_len < 256; i += 2) {
        int opc = (int)data[i] & 255;
        int arg = (int)data[i + 1] & 255;
        prog_op[prog_len] = opc % """ + str(NUM_OPCODES) + r""";
        prog_arg[prog_len] = arg;
        prog_len++;
    }
    return prog_len;
}

static int vdbe_exec(void) {
    int reg[8];
    int acc = 0;
    int pc = 0;
    int cursor = 0;
    int steps = 0;
    int running = 1;
    int i;
    for (i = 0; i < 8; i++) reg[i] = 0;
    if (prog_len == 0) return 0;
    while (running && steps < """ + str(MAX_STEPS) + r""") {
        int opcode;
        int op;
        steps++;
        if (pc < 0 || pc >= prog_len) break;
        opcode = prog_op[pc];
        op = prog_arg[pc];
        pc++;
        switch (opcode) {
""" + _FIXED_CASES + _generated_cases(FIRST_GENERATED, NUM_GENERATED) + r"""
        default: { acc ^= opcode; break; }
        }
    }
    for (i = 0; i < 8; i++) acc = (acc * 31 + reg[i]) % 1000000007;
    return acc;
}

int run_input(const char *data, long size) {
    int seed;
    if (size < 4) return -1;
    if (data[0] != 'S' || data[1] != 'Q') return -2;
    seed = ((int)data[2] & 255) * 256 + ((int)data[3] & 255);
    prepare_table(seed);
    if (compile_program(data + 4, size - 4) == 0) return -3;
    return vdbe_exec();
}

int main(void) {
    char prog[20];
    int r;
    prog[0] = 'S'; prog[1] = 'Q'; prog[2] = (char)1; prog[3] = (char)2;
    prog[4] = (char)7;  prog[5] = (char)42;   // loadimm 42
    prog[6] = (char)3;  prog[7] = (char)0;    // rewind
    prog[8] = (char)5;  prog[9] = (char)0;    // column0
    prog[10] = (char)9; prog[11] = (char)0;   // agg_add
    prog[12] = (char)4; prog[13] = (char)8;   // next -> pc 8
    prog[14] = (char)0; prog[15] = (char)0;   // halt
    r = run_input(prog, 16);
    printf("sqlite acc=%d\n", r);
    return 0;
}
"""


SOURCE = _build_source()


def make_seeds(rng: DeterministicRNG) -> List[bytes]:
    seeds = []
    # A scan-and-aggregate query.
    scan = bytes(
        [ord("S"), ord("Q"), 0, 7,
         7, 10, 3, 0, 5, 0, 9, 0, 6, 0, 9, 0, 4, 4, 0, 0]
    )
    seeds.append(scan)
    for _ in range(12):
        n = rng.randint(6, 40)
        body = bytearray(b"SQ")
        body.append(rng.randint(0, 255))
        body.append(rng.randint(0, 255))
        for _ in range(n):
            body.append(rng.randint(0, NUM_OPCODES - 1))
            body.append(rng.randint(0, 255))
        seeds.append(bytes(body))
    return seeds


register(
    TargetProgram(
        name="sqlite",
        description="bytecode query engine: one enormous switch interpreter",
        source=SOURCE,
        make_seeds=make_seeds,
    )
)
