"""vorbis — audio decoder.

Bit-level reader, codebook (prefix code) decoding, and an integer
windowed overlap-add synthesis loop — the classic lossy-audio decode
shape.
"""

from __future__ import annotations

from typing import List

from repro.programs.registry import TargetProgram, register
from repro.utils.rng import DeterministicRNG

SOURCE = r"""
// vorbis_mini: bitstream audio frame decoder.
// Frame: magic 'O','V' | u8 nsamples | u8 window_kind | payload bits.
// Payload: per sample a prefix code (codebook below) yielding a residual;
// synthesis applies a triangular window and overlap-add.

static int residuals[128];
static int pcm[128];
static int overlap[32];
static int frames_decoded;

static const char *bit_data;
static long bit_size;
static long bit_pos;   // in bits

static int read_bit(void) {
    long byte = bit_pos >> 3;
    int shift;
    if (byte >= bit_size) return -1;
    shift = (int)(bit_pos & 7);
    bit_pos++;
    return ((int)bit_data[byte] >> shift) & 1;
}

static int read_bits(int n) {
    int v = 0;
    int i;
    for (i = 0; i < n; i++) {
        int b = read_bit();
        if (b < 0) return -1;
        v |= b << i;
    }
    return v;
}

static int decode_codeword(void) {
    // Canonical prefix code:
    //   0       -> 0
    //   10      -> +1
    //   110     -> -1
    //   1110    -> +small (2 bits)
    //   1111    -> +large (5 bits, signed offset)
    int b = read_bit();
    if (b < 0) return -999;
    if (b == 0) return 0;
    b = read_bit();
    if (b < 0) return -999;
    if (b == 0) return 1;
    b = read_bit();
    if (b < 0) return -999;
    if (b == 0) return -1;
    b = read_bit();
    if (b < 0) return -999;
    if (b == 0) {
        int v = read_bits(2);
        return v < 0 ? -999 : v + 2;
    }
    {
        int v = read_bits(5);
        return v < 0 ? -999 : v - 16;
    }
}

static int window_coeff(int kind, int i, int n) {
    // Integer triangular / rectangular / half windows in 0..256.
    if (kind == 0) return 256;
    if (kind == 1) {
        int half = n / 2;
        if (half == 0) return 256;
        return i < half ? (i * 256) / half : ((n - i) * 256) / half;
    }
    return i * 256 / (n ? n : 1);
}

static void synthesize(int nsamples, int kind) {
    int i;
    int prev = 0;
    for (i = 0; i < nsamples; i++) {
        int r = residuals[i];
        int predicted = prev + r;
        int w = window_coeff(kind, i, nsamples);
        int sample = (predicted * w) >> 8;
        if (i < 32) sample += overlap[i];
        if (sample > 32767) sample = 32767;
        if (sample < -32768) sample = -32768;
        pcm[i] = sample;
        prev = predicted;
    }
    // Save the tail for overlap-add with the next frame.
    for (i = 0; i < 32; i++) {
        int src = nsamples - 32 + i;
        overlap[i] = src >= 0 && src < nsamples ? pcm[src] / 4 : 0;
    }
}

static int frame_energy(int nsamples) {
    int e = 0;
    int i;
    for (i = 0; i < nsamples; i++) {
        int s = pcm[i];
        e = (e + (s > 0 ? s : -s)) % 1000003;
    }
    return e;
}

int run_input(const char *data, long size) {
    int energy = 0;
    long pos = 0;
    frames_decoded = 0;
    {
        int i;
        for (i = 0; i < 32; i++) overlap[i] = 0;
    }
    while (pos + 4 <= size && frames_decoded < 8) {
        int nsamples;
        int kind;
        int i;
        int bad = 0;
        if (data[pos] != 'O' || data[pos + 1] != 'V') return -1;
        nsamples = (int)data[pos + 2] & 127;
        kind = (int)data[pos + 3] & 3;
        if (nsamples == 0) return -2;
        bit_data = data + pos + 4;
        bit_size = size - pos - 4;
        bit_pos = 0;
        for (i = 0; i < nsamples; i++) {
            int r = decode_codeword();
            if (r == -999) { bad = 1; break; }
            residuals[i] = r;
        }
        if (bad) break;
        synthesize(nsamples, kind);
        energy = (energy * 31 + frame_energy(nsamples)) % 1000003;
        frames_decoded++;
        pos += 4 + ((bit_pos + 7) >> 3);
    }
    if (frames_decoded == 0) return -3;
    return energy * 10 + frames_decoded;
}

int main(void) {
    char frame[16];
    int r;
    frame[0] = 'O'; frame[1] = 'V'; frame[2] = (char)8; frame[3] = (char)1;
    frame[4] = (char)0x52; frame[5] = (char)0xA6; frame[6] = (char)0x0B;
    frame[7] = (char)0x00;
    r = run_input(frame, 8);
    printf("vorbis energy=%d\n", r);
    return r < 0 ? 1 : 0;
}
"""


def make_seeds(rng: DeterministicRNG) -> List[bytes]:
    seeds = []
    for _ in range(10):
        out = bytearray()
        for _ in range(rng.randint(1, 3)):
            n = rng.randint(4, 96)
            out.extend(b"OV")
            out.append(n)
            out.append(rng.randint(0, 3))
            out.extend(rng.bytes(rng.randint(n // 4 + 1, n // 2 + 4)))
        seeds.append(bytes(out))
    return seeds


register(
    TargetProgram(
        name="vorbis",
        description="audio decoder: bit reader, prefix codes, overlap-add",
        source=SOURCE,
        make_seeds=make_seeds,
    )
)
