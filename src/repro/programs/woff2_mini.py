"""woff2 — compressed font container.

LZ-style decompressor (literal runs + back-references, Brotli stand-in)
feeding a table-directory reconstruction pass — decompress-then-parse,
the WOFF2 pipeline shape.
"""

from __future__ import annotations

from typing import List

from repro.programs.registry import TargetProgram, register
from repro.utils.rng import DeterministicRNG

SOURCE = r"""
// woff2_mini: decompress an LZ stream, then rebuild a table directory.
// Container: magic 'w','F' | u8 num_tables | u8 reserved | LZ stream.
// LZ ops: 0x00 len  <bytes>      literal run
//         0x01 dist len          back-reference
//         0x02                   end of stream
// Decompressed layout per table: u8 tag | u8 len | len bytes.

static char window[512];
static int window_len;
static int table_tags[16];
static int table_sums[16];
static int tables_found;

static int lz_decompress(const char *src, long size) {
    long pos = 0;
    window_len = 0;
    while (pos < size) {
        int op = (int)src[pos] & 255;
        if (op == 0) {
            int len;
            int i;
            if (pos + 1 >= size) return -1;
            len = (int)src[pos + 1] & 255;
            if (pos + 2 + len > size) return -2;
            for (i = 0; i < len; i++) {
                if (window_len >= 512) return -3;
                window[window_len++] = src[pos + 2 + i];
            }
            pos += 2 + len;
        } else if (op == 1) {
            int dist;
            int len;
            int i;
            if (pos + 2 >= size) return -1;
            dist = ((int)src[pos + 1] & 255) + 1;
            len = (int)src[pos + 2] & 255;
            if (dist > window_len) return -4;
            for (i = 0; i < len; i++) {
                char c = window[window_len - dist];
                if (window_len >= 512) return -3;
                window[window_len] = c;
                window_len++;
            }
            pos += 3;
        } else if (op == 2) {
            return window_len;
        } else {
            return -5;
        }
    }
    return window_len;
}

static int parse_tables(int num_tables) {
    int pos = 0;
    tables_found = 0;
    while (tables_found < num_tables && tables_found < 16) {
        int tag;
        int len;
        int sum = 0;
        int i;
        if (pos + 2 > window_len) return -1;
        tag = (int)window[pos] & 255;
        len = (int)window[pos + 1] & 255;
        if (pos + 2 + len > window_len) return -2;
        for (i = 0; i < len; i++) sum = (sum + ((int)window[pos + 2 + i] & 255)) & 65535;
        table_tags[tables_found] = tag;
        table_sums[tables_found] = sum;
        tables_found++;
        pos += 2 + len;
    }
    return tables_found;
}

static int directory_checksum(void) {
    int i;
    int acc = 0;
    for (i = 0; i < tables_found; i++) {
        acc = (acc * 131 + table_tags[i] * 7 + table_sums[i]) % 1000003;
    }
    // Known-tag bonus: glyf(71) loca(76) head(104) get validated ordering.
    for (i = 1; i < tables_found; i++) {
        if (table_tags[i - 1] > table_tags[i]) acc += 1;
    }
    return acc;
}

int run_input(const char *data, long size) {
    int num_tables;
    int produced;
    int parsed;
    if (size < 4) return -1;
    if (data[0] != 'w' || data[1] != 'F') return -2;
    num_tables = (int)data[2] & 15;
    produced = lz_decompress(data + 4, size - 4);
    if (produced < 0) return -10 + produced;
    if (num_tables == 0) return produced;
    parsed = parse_tables(num_tables);
    if (parsed < 0) return -20 + parsed;
    return directory_checksum() * 100 + parsed * 10 + (produced & 7);
}

int main(void) {
    char font[32];
    int r;
    font[0] = 'w'; font[1] = 'F'; font[2] = (char)2; font[3] = (char)0;
    // literal run: table 1 (tag 71, len 3, bytes) + table 2 header
    font[4] = (char)0; font[5] = (char)7;
    font[6] = (char)71; font[7] = (char)3; font[8] = 'a'; font[9] = 'b'; font[10] = 'c';
    font[11] = (char)76; font[12] = (char)2;
    // backref: copy 2 bytes from distance 5 ("ab")
    font[13] = (char)1; font[14] = (char)4; font[15] = (char)2;
    font[16] = (char)2;  // end
    r = run_input(font, 17);
    printf("woff2 dir=%d\n", r);
    return r < 0 ? 1 : 0;
}
"""


def _lz_stream(rng: DeterministicRNG, tables: int) -> bytes:
    # Build a decompressed payload then encode with literals + backrefs.
    payload = bytearray()
    for _ in range(tables):
        tag = rng.randint(60, 120)
        length = rng.randint(0, 12)
        payload.append(tag)
        payload.append(length)
        payload.extend(rng.bytes(length))
    out = bytearray()
    pos = 0
    while pos < len(payload):
        if pos > 4 and rng.chance(0.25):
            # Back-reference exercising the copy path; the decompressed
            # stream diverges from `payload`, which is fine for seeds.
            dist = rng.randint(1, min(pos, 255))
            out.extend([1, dist - 1, rng.randint(1, 6)])
        run = min(rng.randint(1, 16), len(payload) - pos)
        out.extend([0, run])
        out.extend(payload[pos : pos + run])
        pos += run
    out.append(2)
    return bytes(out)


def make_seeds(rng: DeterministicRNG) -> List[bytes]:
    seeds = []
    for _ in range(10):
        tables = rng.randint(1, 6)
        seeds.append(bytes([ord("w"), ord("F"), tables, 0]) + _lz_stream(rng, tables))
    return seeds


register(
    TargetProgram(
        name="woff2",
        description="LZ decompressor + table-directory rebuild",
        source=SOURCE,
        make_seeds=make_seeds,
    )
)
