"""x509 — certificate parser.

ASN.1 DER TLV walker: nested SEQUENCEs, INTEGER/OID/UTCTime leaves,
validity-window and key-usage checks — deeply recursive structure
walking, the certificate-parsing shape.
"""

from __future__ import annotations

from typing import List

from repro.programs.registry import TargetProgram, register
from repro.utils.rng import DeterministicRNG

SOURCE = r"""
// x509_mini: DER-style TLV certificate walker.
// Tags: 0x30 SEQUENCE, 0x02 INTEGER, 0x06 OID, 0x17 UTCTime,
//       0x03 BITSTRING, 0x13 PrintableString.
// Lengths are single-byte (0..127).

static int integers_seen;
static int oids_seen;
static int strings_seen;
static int max_nesting;
static int bad_structure;
static long serial_number;
static int not_before;
static int not_after;
static int key_bits;

static int read_len(const char *data, long size, long pos) {
    if (pos >= size) return -1;
    {
        int len = (int)data[pos] & 255;
        if (len > 127) return -1;
        return len;
    }
}

static void parse_integer(const char *body, int len) {
    long v = 0;
    int i;
    for (i = 0; i < len && i < 8; i++) v = v * 256 + ((int)body[i] & 255);
    if (integers_seen == 0) serial_number = v;
    if (integers_seen == 1) key_bits = (int)(v % 4096);
    integers_seen++;
}

static void parse_utctime(const char *body, int len) {
    int v = 0;
    int i;
    for (i = 0; i < len && i < 6; i++) {
        char c = body[i];
        if (c < '0' || c > '9') { bad_structure = 1; return; }
        v = v * 10 + (c - '0');
    }
    if (not_before == 0) not_before = v;
    else if (not_after == 0) not_after = v;
}

static void parse_oid(const char *body, int len) {
    int acc = 0;
    int i;
    for (i = 0; i < len; i++) acc = (acc * 41 + ((int)body[i] & 255)) % 100003;
    oids_seen += acc >= 0 ? 1 : 0;
}

static long walk(const char *data, long size, long pos, long end_pos, int depth);

static long parse_tlv(const char *data, long size, long pos, int depth) {
    int tag;
    int len;
    if (pos >= size) return -1;
    tag = (int)data[pos] & 255;
    len = read_len(data, size, pos + 1);
    if (len < 0) { bad_structure = 1; return -1; }
    if (pos + 2 + len > size) { bad_structure = 1; return -1; }
    if (tag == 0x30 || tag == 0x31) {
        if (depth >= 12) { bad_structure = 1; return -1; }
        if (depth + 1 > max_nesting) max_nesting = depth + 1;
        if (walk(data, size, pos + 2, pos + 2 + len, depth + 1) < 0) return -1;
    } else if (tag == 0x02) {
        parse_integer(data + pos + 2, len);
    } else if (tag == 0x06) {
        parse_oid(data + pos + 2, len);
    } else if (tag == 0x17) {
        parse_utctime(data + pos + 2, len);
    } else if (tag == 0x03 || tag == 0x13) {
        strings_seen++;
    } else {
        bad_structure = 1;
        return -1;
    }
    return pos + 2 + len;
}

static long walk(const char *data, long size, long pos, long end_pos, int depth) {
    while (pos < end_pos) {
        long next = parse_tlv(data, size, pos, depth);
        if (next < 0) return -1;
        pos = next;
    }
    return pos;
}

static int validate(void) {
    int score = 0;
    if (serial_number > 0) score += 1;
    if (not_before != 0 && not_after != 0 && not_before <= not_after) score += 2;
    if (oids_seen >= 1) score += 4;
    if (key_bits >= 2048 % 4096) score += 8;
    if (max_nesting >= 3) score += 16;
    return score;
}

int run_input(const char *data, long size) {
    integers_seen = 0;
    oids_seen = 0;
    strings_seen = 0;
    max_nesting = 0;
    bad_structure = 0;
    serial_number = 0;
    not_before = 0;
    not_after = 0;
    key_bits = 0;
    if (size < 2) return -1;
    if (((int)data[0] & 255) != 0x30) return -2;
    if (parse_tlv(data, size, 0, 0) < 0 || bad_structure) return -3;
    return validate() * 1000 + integers_seen * 100 + oids_seen * 10 + strings_seen;
}

int main(void) {
    char cert[32];
    int r;
    cert[0] = (char)0x30; cert[1] = (char)14;       // outer sequence
    cert[2] = (char)0x02; cert[3] = (char)2; cert[4] = (char)1; cert[5] = (char)35;
    cert[6] = (char)0x17; cert[7] = (char)4; cert[8] = '2'; cert[9] = '2';
    cert[10] = '0'; cert[11] = '1';
    cert[12] = (char)0x06; cert[13] = (char)2; cert[14] = (char)42; cert[15] = (char)3;
    r = run_input(cert, 16);
    printf("x509 score=%d\n", r);
    return r < 0 ? 1 : 0;
}
"""


def _der(tag: int, body: bytes) -> bytes:
    return bytes([tag, len(body) & 127]) + body


def _random_cert(rng: DeterministicRNG, depth: int) -> bytes:
    if depth <= 0 or rng.chance(0.4):
        kind = rng.randint(0, 3)
        if kind == 0:
            return _der(0x02, rng.bytes(rng.randint(1, 4)))
        if kind == 1:
            return _der(0x06, rng.bytes(rng.randint(1, 6)))
        if kind == 2:
            digits = "".join(str(rng.randint(0, 9)) for _ in range(6))
            return _der(0x17, digits.encode())
        return _der(0x13, rng.bytes(rng.randint(0, 8)))
    body = b"".join(_random_cert(rng, depth - 1) for _ in range(rng.randint(1, 3)))
    return _der(0x30, body[:100])


def make_seeds(rng: DeterministicRNG) -> List[bytes]:
    seeds = [
        _der(0x30, _der(0x02, b"\x01") + _der(0x17, b"220101")
             + _der(0x17, b"250101") + _der(0x06, b"\x2a\x03")),
    ]
    for _ in range(10):
        cert = _random_cert(rng, 4)
        if cert[0] != 0x30:
            cert = _der(0x30, cert)
        seeds.append(cert)
    return seeds


register(
    TargetProgram(
        name="x509",
        description="DER TLV walker: nested sequences + validity checks",
        source=SOURCE,
        make_seeds=make_seeds,
    )
)
